package histcube

// Integration tests exercising whole pipelines across modules: the
// workload generators feeding the public cube, CSV round trips into
// ingestion, hierarchies over live cubes, and the framework variants
// against each other on one stream.

import (
	"bytes"
	"math/rand"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/dims"
	"histcube/internal/framework"
	"histcube/internal/hierarchy"
	"histcube/internal/workload"
)

// TestWorkloadThroughPublicCube streams a scaled gauss3 data set into
// memory-, disk- and tiered-backed cubes and checks a spread of
// queries against a naive replay — the whole system end to end.
func TestWorkloadThroughPublicCube(t *testing.T) {
	ds := workload.Generate(workload.Gauss3Spec.Scaled(0.001))
	naive := func(q workload.TimeQuery) float64 {
		total := 0.0
		for _, u := range ds.Updates {
			if u.Time >= q.TimeLo && u.Time <= q.TimeHi && q.Box.Contains(u.Coords) {
				total += u.Delta
			}
		}
		return total
	}
	for _, storage := range []core.Storage{
		{Kind: core.Memory},
		{Kind: core.Disk, PageSize: 512},
		{Kind: core.Tiered, PageSize: 512},
	} {
		var cdims []core.Dim
		for i, n := range ds.SliceShape {
			cdims = append(cdims, core.Dim{Name: string(rune('a' + i)), Size: n})
		}
		cube, err := core.New(core.Config{Dims: cdims, Operator: agg.Sum, Storage: storage})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ds.Updates {
			if err := cube.AddDelta(u.Time, u.Coords, u.Delta); err != nil {
				t.Fatal(err)
			}
		}
		if storage.Kind == core.Tiered {
			if _, err := cube.Age(cube.Stats().Slices / 2); err != nil {
				t.Fatal(err)
			}
		}
		r := rand.New(rand.NewSource(101))
		qs := workload.TimeQueries(r, ds.SliceShape, ds.TimeSize, 60, false)
		for i, q := range qs {
			got, err := cube.Query(core.Range{TimeLo: q.TimeLo, TimeHi: q.TimeHi, Lo: q.Box.Lo, Hi: q.Box.Hi})
			if err != nil {
				t.Fatal(err)
			}
			if want := naive(q); got != want {
				t.Fatalf("storage %v query %d: got %v, want %v", storage.Kind, i, got, want)
			}
		}
	}
}

// TestCSVPipelineIntoCube writes a generated data set to CSV, reads it
// back (the histgen format) and ingests it; totals must survive.
func TestCSVPipelineIntoCube(t *testing.T) {
	ds := workload.Generate(workload.Weather6Spec.Scaled(0.0005))
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var cdims []core.Dim
	for i, n := range back.SliceShape {
		cdims = append(cdims, core.Dim{Name: string(rune('a' + i)), Size: n})
	}
	cube, err := core.New(core.Config{Dims: cdims, Operator: agg.Sum})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0.0
	for _, u := range back.Updates {
		if err := cube.AddDelta(u.Time, u.Coords, u.Delta); err != nil {
			t.Fatal(err)
		}
		wantTotal += u.Delta
	}
	full := dims.FullBox(back.SliceShape)
	got, err := cube.Query(core.Range{TimeLo: 0, TimeHi: int64(back.TimeSize), Lo: full.Lo, Hi: full.Hi})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantTotal {
		t.Fatalf("total after CSV round trip = %v, want %v", got, wantTotal)
	}
}

// TestHierarchyRollupOverStream combines a live cube with a dimension
// hierarchy and time buckets: roll-ups must partition totals exactly.
func TestHierarchyRollupOverStream(t *testing.T) {
	cube, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "city", Size: 24}, {Name: "sku", Size: 10}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.New("geo", 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddUniformLevel("state", 4); err != nil {
		t.Fatal(err)
	}
	if err := h.AddUniformLevel("region", 3); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(103))
	total := 0.0
	for i := 0; i < 2000; i++ {
		v := float64(r.Intn(50) + 1)
		if err := cube.Insert(int64(i/100), []int{r.Intn(24), r.Intn(10)}, v); err != nil {
			t.Fatal(err)
		}
		total += v
	}
	q := func(lo, hi []int) (float64, error) {
		return cube.Query(core.Range{TimeLo: 0, TimeHi: 30, Lo: lo, Hi: hi})
	}
	for _, level := range []string{"state", "region", ""} {
		_, aggs, err := hierarchy.GroupBy(q, []int{0, 0}, []int{23, 9}, 0, h, level)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, a := range aggs {
			sum += a
		}
		if sum != total {
			t.Fatalf("level %q roll-up sums to %v, want %v", level, sum, total)
		}
	}
	// Time buckets partition the total too.
	_, baggs, err := hierarchy.TimeBuckets(func(tLo, tHi int64) (float64, error) {
		return cube.Query(core.Range{TimeLo: tLo, TimeHi: tHi, Lo: []int{0, 0}, Hi: []int{23, 9}})
	}, 0, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range baggs {
		sum += a
	}
	if sum != total {
		t.Fatalf("time buckets sum to %v, want %v", sum, total)
	}
}

// TestFrameworkVariantsOnOneStream runs the same 1-d append stream
// through every framework instance source and the MOLAP cube; all five
// answers must be identical on every query.
func TestFrameworkVariantsOnOneStream(t *testing.T) {
	mv, err := framework.NewMVBTSource()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]*framework.AppendOnly{}
	for name, src := range map[string]framework.InstanceSource{
		"btree-clone": framework.NewCloneSource(func() framework.Cloneable { return framework.NewBTreeStructure() }),
		"treap":       framework.NewTreapSource(),
		"mvbt":        mv,
	} {
		a, err := framework.New(framework.Config{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		variants[name] = a
	}
	cube, err := core.New(core.Config{Dims: []core.Dim{{Name: "loc", Size: 64}}, Operator: agg.Sum})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(104))
	now := int64(0)
	for i := 0; i < 600; i++ {
		if r.Intn(3) == 0 {
			now += int64(r.Intn(4) + 1)
		}
		x := r.Intn(64)
		v := float64(r.Intn(9) + 1)
		for name, a := range variants {
			if err := a.Update(now, []int{x}, v); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := cube.AddDelta(now, []int{x}, v); err != nil {
			t.Fatal(err)
		}
		if i%9 == 0 {
			lo := r.Intn(64)
			hi := lo + r.Intn(64-lo)
			tLo := int64(r.Intn(int(now) + 2))
			tHi := tLo + int64(r.Intn(int(now)+2))
			ref, err := cube.Query(core.Range{TimeLo: tLo, TimeHi: tHi, Lo: []int{lo}, Hi: []int{hi}})
			if err != nil {
				t.Fatal(err)
			}
			for name, a := range variants {
				got, err := a.Query(tLo, tHi, dims.NewBox([]int{lo}, []int{hi}))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got != ref {
					t.Fatalf("op %d: %s = %v, cube = %v", i, name, got, ref)
				}
			}
		}
	}
}
