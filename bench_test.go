// Package histcube's top-level benchmarks regenerate every table and
// figure of the paper (via the experiment drivers, at reduced scale so
// `go test -bench=.` completes in minutes — cmd/histbench runs the
// full-scale versions) and measure the core structures directly.
// Paper-metric results (cell/page accesses) are attached with
// b.ReportMetric; wall-clock ns/op comes from the harness.
package histcube

import (
	"math/rand"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/appendcube"
	"histcube/internal/btree"
	"histcube/internal/core"
	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/ecube"
	"histcube/internal/experiments"
	"histcube/internal/framework"
	"histcube/internal/mvbt"
	"histcube/internal/mversion"
	"histcube/internal/pager"
	"histcube/internal/prefix"
	"histcube/internal/rstar"
	"histcube/internal/workload"
)

// --- Table and figure reproductions (reduced scale) ---

// BenchmarkTable3Datasets regenerates the Table 3 inventory.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(0.002)
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig10ECubeUni regenerates Figure 10 (query cost vs #queries,
// uni mix) and reports the converged eCube cost.
func BenchmarkFig10ECubeUni(b *testing.B) {
	var last experiments.QueryCostResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.QueryCost(0.01, 1000, false, 50, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ECubeFirst, "ecube-first-cells/query")
	b.ReportMetric(last.ECubeLast, "ecube-last-cells/query")
	b.ReportMetric(last.DDCAvg, "ddc-cells/query")
	b.ReportMetric(last.PSAvg, "ps-cells/query")
}

// BenchmarkFig11ECubeSkew regenerates Figure 11 (skew mix).
func BenchmarkFig11ECubeSkew(b *testing.B) {
	var last experiments.QueryCostResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.QueryCost(0.01, 1000, true, 50, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ECubeFirst, "ecube-first-cells/query")
	b.ReportMetric(last.ECubeLast, "ecube-last-cells/query")
}

// BenchmarkFig12UpdateQuantiles regenerates Figure 12 (weather6 update
// cost with and without copy work).
func BenchmarkFig12UpdateQuantiles(b *testing.B) {
	var last experiments.UpdateCostResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.UpdateCost(workload.Weather6Spec, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.P90, "p90-cells/update")
	b.ReportMetric(last.TotalCopy/float64(last.Updates), "copy-cells/update")
}

// BenchmarkFig13UpdateQuantiles regenerates Figure 13 (gauss3).
func BenchmarkFig13UpdateQuantiles(b *testing.B) {
	var last experiments.UpdateCostResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.UpdateCost(workload.Gauss3Spec, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.P90, "p90-cells/update")
	b.ReportMetric(last.TotalCopy/float64(last.Updates), "copy-cells/update")
}

// BenchmarkTable4Incomplete regenerates Table 4 (incompletely copied
// instances, both storage modes).
func BenchmarkTable4Incomplete(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(0.005, 8192)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxMem, maxDisk := 0, 0
	for _, r := range rows {
		if r.Mode == "disk" && r.Max > maxDisk {
			maxDisk = r.Max
		}
		if r.Mode == "in-memory" && r.Max > maxMem {
			maxMem = r.Max
		}
	}
	b.ReportMetric(float64(maxMem), "max-incomplete-mem")
	b.ReportMetric(float64(maxDisk), "max-incomplete-disk")
}

// BenchmarkFig14ArrayVsRStar regenerates Figure 14 at reduced scale
// (full scale flips the ordering decisively in the array's favour; see
// EXPERIMENTS.md for the recorded full-scale run).
func BenchmarkFig14ArrayVsRStar(b *testing.B) {
	var last experiments.IOCostResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.IOCost(0.05, 300, 8192, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ArrayAvg, "array-pages/query")
	b.ReportMetric(last.RTreeAvg, "rtree-leaves/query")
}

// --- Core structure micro-benchmarks ---

func benchCube(b *testing.B, shape dims.Shape, slices, perSlice int) *appendcube.Cube {
	b.Helper()
	cube, err := appendcube.New(appendcube.Config{SliceShape: shape})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	x := make([]int, len(shape))
	for s := 0; s < slices; s++ {
		for u := 0; u < perSlice; u++ {
			for d, n := range shape {
				x[d] = r.Intn(n)
			}
			if _, err := cube.Update(int64(s), x, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	return cube
}

// BenchmarkCubeUpdate measures one append-only update (including
// amortised copy work) on a 64x64 cube.
func BenchmarkCubeUpdate(b *testing.B) {
	shape := dims.Shape{64, 64}
	cube := benchCube(b, shape, 50, 300)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(50 + i/300)
		if _, err := cube.Update(t, []int{r.Intn(64), r.Intn(64)}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCubeQueryHistoric measures a historic range query (eCube
// path), converging as conversions accumulate.
func BenchmarkCubeQueryHistoric(b *testing.B) {
	shape := dims.Shape{64, 64}
	cube := benchCube(b, shape, 50, 300)
	r := rand.New(rand.NewSource(3))
	qs := workload.TimeQueries(r, shape, 50, 512, false)
	base := cube.Accesses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := cube.Query(q.TimeLo, q.TimeHi, q.Box); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cube.Accesses()-base)/float64(b.N), "cells/query")
}

// BenchmarkECubeQuery measures standalone eCube queries from cold
// (first iteration converts) to hot.
func BenchmarkECubeQuery(b *testing.B) {
	shape := dims.Shape{128, 128}
	data := make([]float64, shape.Size())
	r := rand.New(rand.NewSource(4))
	for i := range data {
		data[i] = float64(r.Intn(4))
	}
	a, err := ecube.FromDense(data, shape)
	if err != nil {
		b.Fatal(err)
	}
	boxes := workload.Boxes(r, shape, 512, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Query(boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDCQuery and BenchmarkPSQuery measure the static baselines.
func BenchmarkDDCQuery(b *testing.B) {
	benchStatic(b, func(data []float64, shape dims.Shape) (interface {
		Query(dims.Box) (float64, error)
	}, error) {
		return ddc.FromDense(data, shape)
	})
}

func BenchmarkPSQuery(b *testing.B) {
	benchStatic(b, func(data []float64, shape dims.Shape) (interface {
		Query(dims.Box) (float64, error)
	}, error) {
		return prefix.FromDense(data, shape)
	})
}

func benchStatic(b *testing.B, build func([]float64, dims.Shape) (interface {
	Query(dims.Box) (float64, error)
}, error)) {
	b.Helper()
	shape := dims.Shape{128, 128}
	data := make([]float64, shape.Size())
	r := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = float64(r.Intn(4))
	}
	a, err := build(data, shape)
	if err != nil {
		b.Fatal(err)
	}
	boxes := workload.Boxes(r, shape, 512, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Query(boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreeRangeSum measures the aggregate B+tree.
func BenchmarkBTreeRangeSum(b *testing.B) {
	tr := btree.New(0)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100000; i++ {
		tr.Add(int64(r.Intn(1<<20)), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(r.Intn(1 << 20))
		tr.RangeSum(lo, lo+int64(r.Intn(1<<16)))
	}
}

// BenchmarkTreapVersionedAdd measures persistent-treap updates (one
// new version per op).
func BenchmarkTreapVersionedAdd(b *testing.B) {
	var tr mversion.Treap
	r := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr = tr.Add(int64(r.Intn(1<<20)), 1)
	}
}

// BenchmarkRStarInsert and BenchmarkRStarQuery measure the comparator
// index.
func BenchmarkRStarInsert(b *testing.B) {
	tr, err := rstar.New(rstar.Config{Dim: 3, MaxEntries: 64})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(rstar.Entry{Coords: []int{r.Intn(1000), r.Intn(1000), r.Intn(1000)}, Value: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRStarQuery(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	es := make([]rstar.Entry, 100000)
	for i := range es {
		es[i] = rstar.Entry{Coords: []int{r.Intn(1000), r.Intn(1000), r.Intn(1000)}, Value: 1}
	}
	tr, err := rstar.BulkLoad(rstar.Config{Dim: 3, MaxEntries: 64}, es)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := []int{r.Intn(900), r.Intn(900), r.Intn(900)}
		hi := []int{lo[0] + 100, lo[1] + 100, lo[2] + 100}
		if _, err := tr.RangeAggregate(dims.Box{Lo: lo, Hi: hi}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationCopyAhead compares the adaptive copy-ahead against
// lazy-copy-only: without copy-ahead, incomplete instances accumulate
// and worst-case update cost spikes.
func BenchmarkAblationCopyAhead(b *testing.B) {
	run := func(b *testing.B, threshold int) (maxInc int, maxCost int) {
		ds := workload.Generate(workload.Weather6Spec.Scaled(0.005))
		for i := 0; i < b.N; i++ {
			cube, err := appendcube.New(appendcube.Config{
				SliceShape:         ds.SliceShape,
				CopyAheadThreshold: threshold,
			})
			if err != nil {
				b.Fatal(err)
			}
			maxInc, maxCost = 0, 0
			for _, u := range ds.Updates {
				res, err := cube.Update(u.Time, u.Coords, u.Delta)
				if err != nil {
					b.Fatal(err)
				}
				if res.Incomplete > maxInc {
					maxInc = res.Incomplete
				}
				if c := res.Cost(); c > maxCost {
					maxCost = c
				}
			}
		}
		return maxInc, maxCost
	}
	b.Run("adaptive", func(b *testing.B) {
		inc, cost := run(b, 0)
		b.ReportMetric(float64(inc), "max-incomplete")
		b.ReportMetric(float64(cost), "max-cells/update")
	})
	b.Run("disabled", func(b *testing.B) {
		inc, cost := run(b, -1)
		b.ReportMetric(float64(inc), "max-incomplete")
		b.ReportMetric(float64(cost), "max-cells/update")
	})
}

// BenchmarkAblationConversion compares historic queries with and
// without the eCube DDC->PS conversion.
func BenchmarkAblationConversion(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		shape := dims.Shape{64, 64}
		cube, err := appendcube.New(appendcube.Config{SliceShape: shape, DisableConversion: disable})
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewSource(10))
		x := make([]int, 2)
		for s := 0; s < 40; s++ {
			for u := 0; u < 200; u++ {
				x[0], x[1] = r.Intn(64), r.Intn(64)
				if _, err := cube.Update(int64(s), x, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
		qs := workload.TimeQueries(r, shape, 40, 256, false)
		base := cube.Accesses()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, err := cube.Query(q.TimeLo, q.TimeHi, q.Box); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cube.Accesses()-base)/float64(b.N), "cells/query")
	}
	b.Run("ecube", func(b *testing.B) { run(b, false) })
	b.Run("ddc-only", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationGd compares the linear-scan out-of-order buffer
// against the R*-tree-backed one as the buffer grows.
func BenchmarkAblationGd(b *testing.B) {
	const buffered = 20000
	fill := func(g framework.GeneralStructure) {
		r := rand.New(rand.NewSource(11))
		for i := 0; i < buffered; i++ {
			g.Insert(int64(r.Intn(1000)), []int{r.Intn(100), r.Intn(100)}, 1)
		}
	}
	query := func(b *testing.B, g framework.GeneralStructure) {
		r := rand.New(rand.NewSource(12))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tLo := int64(r.Intn(900))
			lo := []int{r.Intn(90), r.Intn(90)}
			if _, err := g.Query(tLo, tLo+100, dims.NewBox(lo, []int{lo[0] + 10, lo[1] + 10})); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("list", func(b *testing.B) {
		g := framework.NewListGd()
		fill(g)
		query(b, g)
	})
	b.Run("rstar", func(b *testing.B) {
		g, err := rstar.NewGd(2)
		if err != nil {
			b.Fatal(err)
		}
		fill(g)
		query(b, g)
	})
}

// BenchmarkCoreInsert measures the public facade end to end (AVERAGE
// operator: two inner cubes).
func BenchmarkCoreInsert(b *testing.B) {
	c, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "x", Size: 64}, {Name: "y", Size: 64}},
		Operator: agg.Average,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(int64(i/200), []int{r.Intn(64), r.Intn(64)}, float64(r.Intn(100))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutOfOrderSweep exercises Section 2.5's graceful
// degradation: increasing out-of-order shares grow the G_d buffer; the
// R*-tree-backed buffer keeps per-query work far below the linear
// scan.
func BenchmarkOutOfOrderSweep(b *testing.B) {
	var rows []experiments.OOORow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.OutOfOrderSweep(0.003, []float64{0, 10, 50}, 100, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Buffered), "buffered-at-50pct")
	b.ReportMetric(float64(last.TreeLeaves)/float64(last.Queries), "rtree-leaves/query")
}

// BenchmarkMVBTAdd measures multiversion B-tree updates (each creates
// versions).
func BenchmarkMVBTAdd(b *testing.B) {
	tr, err := mvbt.New(mvbt.Config{Capacity: 32})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Add(int64(r.Intn(1<<16)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVBTVersionedRangeSum measures range sums against random
// historical versions.
func BenchmarkMVBTVersionedRangeSum(b *testing.B) {
	tr, err := mvbt.New(mvbt.Config{Capacity: 32})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 50000; i++ {
		if err := tr.Add(int64(r.Intn(1<<16)), 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ver := int64(r.Intn(int(tr.Version())) + 1)
		lo := int64(r.Intn(1 << 16))
		tr.RangeSum(ver, lo, lo+1024)
	}
}

// BenchmarkDiskCubeUpdate measures disk-backed updates including the
// page-wise copy-ahead; the page I/O count per op is attached.
func BenchmarkDiskCubeUpdate(b *testing.B) {
	shape := dims.Shape{64, 64}
	pg, err := pager.New(pager.NewMemBackend(pager.DefaultPageSize), pager.DefaultPageSize)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := appendcube.New(appendcube.Config{
		SliceShape: shape,
		Store:      appendcube.NewDiskStore(shape.Size(), pg),
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(16))
	base := pg.IOs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Update(int64(i/300), []int{r.Intn(64), r.Intn(64)}, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pg.IOs()-base)/float64(b.N), "page-ios/update")
}
