# Developer entry points; `make check` is the CI gate.

.PHONY: check build test race bench bench-smoke shardbench replbench microbench fmt crash lint lockgraph fuzz explain traceguard perfguard chaos shardchaos replchaos runtimemetrics

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

lint:
	go run ./cmd/histlint ./...

# Export the project-wide lock-acquisition graph (lockorder analyzer)
# as Graphviz DOT. Render with: dot -Tsvg lockgraph.dot -o lockgraph.svg
lockgraph:
	go run ./cmd/histlint -lockgraph lockgraph.dot ./...
	@echo "wrote lockgraph.dot"

fuzz:
	go test -run='^$$' -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/wal/
	go test -run='^$$' -fuzz=FuzzCSVWorkload -fuzztime=10s ./internal/workload/
	go test -run='^$$' -fuzz=FuzzShardMapParse -fuzztime=10s ./internal/shard/
	go test -run='^$$' -fuzz=FuzzSpanJSON -fuzztime=10s ./internal/trace/

# Full load run against the real server: writes the next
# BENCH_<seq>.json trajectory point plus pprof profiles. Compare two
# points with: go run ./cmd/histperf -compare old.json new.json
bench:
	go build -o bin/histserve ./cmd/histserve
	go run ./cmd/histperf -serve-bin bin/histserve \
	    -mixes read,write,mixed,convergence \
	    -conns 4 -duration 5s -warmup 1s \
	    -profile-dir bench-profiles -out auto

# The CI smoke variant: short run, gated against the committed
# baseline with a generous cross-machine tolerance (same step as
# check.sh).
bench-smoke:
	go build -o bin/histserve ./cmd/histserve
	go run ./cmd/histperf -serve-bin bin/histserve \
	    -mixes read,write,mixed,convergence \
	    -conns 2 -duration 2s -warmup 500ms -quiet -out BENCH_smoke.json
	go run ./cmd/histperf -compare -tolerance 0.9 BENCH_0001.json BENCH_smoke.json

# Scatter-gather scaling: the same read mix against a single node and
# against a 4-shard histproxy topology, as two consecutive
# BENCH_<seq>.json trajectory points. On >= 4 cores the topology run
# should show >= 2x the single-node ops/sec.
shardbench:
	go build -o bin/histserve ./cmd/histserve
	go build -o bin/histproxy ./cmd/histproxy
	go run ./cmd/histperf -serve-bin bin/histserve \
	    -mixes read -conns 4 -duration 5s -warmup 1s -out auto
	go run ./cmd/histperf -serve-bin bin/histserve -proxy-bin bin/histproxy \
	    -shard-count 4 -mixes read -conns 4 -duration 5s -warmup 1s -out auto

# Replicated-topology load: the same read mix against a 2-shard
# topology with one WAL-shipping follower per shard — hedged reads fan
# across the replica sets. Written as the next BENCH_<seq>.json
# trajectory point.
replbench:
	go build -o bin/histserve ./cmd/histserve
	go build -o bin/histproxy ./cmd/histproxy
	go run ./cmd/histperf -serve-bin bin/histserve -proxy-bin bin/histproxy \
	    -shard-count 2 -replicas 1 -mixes read,mixed -conns 4 -duration 5s -warmup 1s -out auto

microbench:
	go test -bench=. -benchmem ./...

crash:
	go test -race -count=1 -v -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

chaos:
	go test -race -count=1 -v -run 'TestChaos' ./cmd/histserve/

# Multi-shard chaos: SIGKILL a historic shard behind a live histproxy
# mid-workload; answers must degrade to exact PARTIALs and recover to
# complete once the shard rejoins, without a proxy restart.
shardchaos:
	go test -race -count=1 -v -run TestShardChaosPartialAnswersAndRejoin ./cmd/histproxy/

# Replication chaos: SIGKILL a semi-sync primary mid-append under live
# proxy write load; no acked write may be lost, reads must stay exact
# and complete via the WAL-shipped replica, and the promoted replica
# must take writes within the prober's failover interval.
replchaos:
	go test -race -count=1 -v -run TestReplChaosPrimaryKillUnderLoad ./cmd/histproxy/

explain:
	go test -race -count=1 -v -run TestExplainSmokeRealBinary ./cmd/histserve/

traceguard:
	go test -count=1 -v -run TestDisabledTracerOverhead ./internal/trace/

perfguard:
	go test -count=1 -v -run TestRecorderOverhead ./internal/perf/

# Smoke the runtime/contention collector: every histcube_runtime_* and
# histcube_lock_* series must render from a live registry.
runtimemetrics:
	go test -race -count=1 -v -run 'TestRuntimeMetrics|TestMutexContentionEvents' ./internal/obs/

fmt:
	gofmt -w .
