# Developer entry points; `make check` is the CI gate.

.PHONY: check build test race bench fmt crash lint fuzz explain traceguard chaos

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

lint:
	go run ./cmd/histlint ./...

fuzz:
	go test -run='^$$' -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/wal/
	go test -run='^$$' -fuzz=FuzzCSVWorkload -fuzztime=10s ./internal/workload/

bench:
	go test -bench=. -benchmem

crash:
	go test -race -count=1 -v -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

chaos:
	go test -race -count=1 -v -run 'TestChaos' ./cmd/histserve/

explain:
	go test -race -count=1 -v -run TestExplainSmokeRealBinary ./cmd/histserve/

traceguard:
	go test -count=1 -v -run TestDisabledTracerOverhead ./internal/trace/

fmt:
	gofmt -w .
