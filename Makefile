# Developer entry points; `make check` is the CI gate.

.PHONY: check build test race bench fmt crash

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem

crash:
	go test -race -count=1 -v -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

fmt:
	gofmt -w .
