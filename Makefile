# Developer entry points; `make check` is the CI gate.

.PHONY: check build test race bench fmt

check:
	./check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem

fmt:
	gofmt -w .
