// Command histbench regenerates every table and figure of the paper's
// evaluation (Section 5 of Riedewald/Agrawal/El Abbadi, SIGMOD 2002).
//
// Usage:
//
//	histbench -exp table3|fig10|fig11|fig12|fig13|table4|fig14|all [flags]
//
// Flags:
//
//	-scale f    geometry scale factor (1 = the paper's full Table 3
//	            geometry; figures default to reduced scales so a run
//	            finishes in minutes — see per-experiment defaults)
//	-queries n  number of queries for fig10/fig11/fig14
//	-series     also print the full per-point series as CSV
//	-seed n     RNG seed
//	-json path  write a machine-readable report (p50/p90/p99/mean per
//	            cost curve, plus wall-clock seconds per experiment,
//	            stamped with the shared perf.RunMeta build metadata:
//	            git revision, Go version, GOMAXPROCS, OS/arch) to
//	            path, or to stdout with "-"
//	-trace      additionally run the traced per-query cost experiment:
//	            drives the core facade with a span per query and emits
//	            one JSON record per query (duration plus the span's
//	            cells_touched/conversions/instances counters) next to
//	            the closed-form DDC and PS bounds
//
// Costs are cell accesses (in-memory experiments) or page accesses
// (disk experiments), the paper's hardware-independent metric; the
// JSON digests use the same nearest-rank quantiles as the server's
// live histograms (internal/stats, internal/obs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"histcube/internal/experiments"
	"histcube/internal/obs"
	"histcube/internal/perf"
	"histcube/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table3, fig10, fig11, fig12, fig13, table4, fig14, all")
		scale   = flag.Float64("scale", 0, "geometry scale factor (0 = per-experiment default)")
		queries = flag.Int("queries", 0, "query count for fig10/fig11/fig14 (0 = paper default)")
		series  = flag.Bool("series", false, "print full per-point series as CSV")
		seed    = flag.Int64("seed", 1, "RNG seed")
		jsonOut = flag.String("json", "", "write a machine-readable JSON report to this path (\"-\" = stdout)")
		traced  = flag.Bool("trace", false, "run the traced per-query cost experiment: one JSON record per query (span counters vs the closed-form DDC/PS bounds)")
	)
	flag.Parse()

	report := make(map[string]any)
	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		t := obs.NewTimer(nil)
		rec, err := fn()
		wall := t.ObserveDuration().Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if rec != nil {
			report[name] = map[string]any{"wall_seconds": wall, "result": rec}
		}
		fmt.Println()
	}

	pick := func(def float64) float64 {
		if *scale > 0 {
			return *scale
		}
		return def
	}
	nq := func(def int) int {
		if *queries > 0 {
			return *queries
		}
		return def
	}

	run("table3", func() (any, error) {
		sc := pick(1.0)
		rows := experiments.Table3(sc)
		fmt.Printf("Data sets (scale %g); paper: weather4 143,648,037/1,048,679/0.0073, weather6 139,826,700/549,010/0.0039, gauss3 19,902,511/950,633/0.048\n", sc)
		fmt.Printf("%-16s %5s %14s %12s %9s\n", "name", "dims", "cells", "non-empty", "density")
		for _, r := range rows {
			fmt.Printf("%-16s %5d %14d %12d %9.4f\n", r.Name, r.Dims, r.TotalCells, r.NonEmpty, r.Density)
		}
		return map[string]any{"scale": sc, "rows": rows}, nil
	})

	queryCost := func(skew bool) (any, error) {
		sc := pick(1.0)
		n := nq(2000)
		res, err := experiments.QueryCost(sc, n, skew, 50, *seed)
		if err != nil {
			return nil, err
		}
		mix := "uni"
		if skew {
			mix = "skew"
		}
		fmt.Printf("Query cost vs #queries (weather4 time slice, %s mix, scale %g, %d queries, rolling window 50)\n", mix, sc, n)
		fmt.Printf("eCube first window avg %.1f -> last window avg %.1f; DDC avg %.1f; PS avg %.1f\n",
			res.ECubeFirst, res.ECubeLast, res.DDCAvg, res.PSAvg)
		fmt.Printf("converted %d of %d slice cells to PS\n", res.Converted, res.SliceCells)
		fmt.Println("paper shape: eCube starts above DDC, converges towards the constant PS cost; skew converges faster")
		if *series {
			fmt.Println("query,ecube,ddc,ps")
			for _, p := range res.Points {
				fmt.Printf("%d,%.2f,%.2f,%.2f\n", p.Query, p.ECube, p.DDC, p.PS)
			}
		}
		ecube := make([]float64, len(res.Points))
		for i, p := range res.Points {
			ecube[i] = p.ECube
		}
		return map[string]any{
			"mix":          mix,
			"scale":        sc,
			"queries":      n,
			"ecube_first":  res.ECubeFirst,
			"ecube_last":   res.ECubeLast,
			"ddc_avg":      res.DDCAvg,
			"ps_avg":       res.PSAvg,
			"converted":    res.Converted,
			"slice_cells":  res.SliceCells,
			"wall_seconds": res.WallSeconds,
			// Digest of the eCube rolling-window cost curve.
			"ecube_window_cost": obs.Summarize(ecube),
		}, nil
	}
	run("fig10", func() (any, error) { return queryCost(false) })
	run("fig11", func() (any, error) { return queryCost(true) })

	updateCost := func(spec workload.Spec, def float64) (any, error) {
		sc := pick(def)
		res, err := experiments.UpdateCost(spec, sc)
		if err != nil {
			return nil, err
		}
		with := obs.Summarize(res.SortedWith)
		without := obs.Summarize(res.SortedWithout)
		fmt.Printf("Update cost quantiles, %s at scale %g (%d updates), costs in cell accesses\n", spec.Name, sc, res.Updates)
		fmt.Printf("with copy cost:   p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
			with.P50, with.P90, with.P99, with.Max)
		fmt.Printf("without copies:   p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
			without.P50, without.P90, without.P99, without.Max)
		fmt.Printf("total copy work (area between curves): %.0f\n", res.TotalCopy)
		fmt.Println("paper shape: copies ride on cheap updates; expensive updates do little extra work")
		if *series {
			fmt.Println("rank,with,without")
			step := len(res.SortedWith)/200 + 1
			for i := 0; i < len(res.SortedWith); i += step {
				fmt.Printf("%d,%.0f,%.0f\n", i, res.SortedWith[i], res.SortedWithout[i])
			}
		}
		return map[string]any{
			"dataset":         spec.Name,
			"scale":           sc,
			"updates":         res.Updates,
			"with_copy":       with,
			"without_copy":    without,
			"total_copy_work": res.TotalCopy,
			"wall_seconds":    res.WallSeconds,
		}, nil
	}
	run("fig12", func() (any, error) { return updateCost(workload.Weather6Spec, 0.05) })
	run("fig13", func() (any, error) { return updateCost(workload.Gauss3Spec, 0.05) })

	run("table4", func() (any, error) {
		sc := pick(0.05)
		rows, err := experiments.Table4(sc, 0)
		if err != nil {
			return nil, err
		}
		fmt.Printf("Incompletely copied historic instances after each update (scale %g)\n", sc)
		fmt.Println("paper: in-memory 0/2/2 (weather4), 0/2/2 (weather6), 0/5/1 (gauss3); disk always 0/1/1")
		fmt.Printf("%-12s %-10s %4s %4s %14s\n", "data set", "mode", "min", "max", "most frequent")
		for _, r := range rows {
			fmt.Printf("%-12s %-10s %4d %4d %14d\n", r.Dataset, r.Mode, r.Min, r.Max, r.MostFrequent)
		}
		return map[string]any{"scale": sc, "rows": rows}, nil
	})

	run("fig14", func() (any, error) {
		sc := pick(1.0)
		n := nq(10000)
		res, err := experiments.IOCost(sc, n, 0, *seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("I/O cost per query, weather6 at scale %g, %d uni queries, 8K pages\n", sc, n)
		fmt.Printf("DDC array avg %.2f page accesses; bulk-loaded R*-tree avg %.2f leaf accesses\n", res.ArrayAvg, res.RTreeAvg)
		fmt.Printf("R*-tree: height %d, %d leaves\n", res.TreeHeight, res.TreeLeaves)
		fmt.Printf("storage: array %d cells vs tree %d entries (ratio %.1fx; paper: up to 20x)\n",
			res.ArrayCells, res.TreeEntries, float64(res.ArrayCells)/float64(res.TreeEntries))
		fmt.Println("paper (full scale): array 59.17 vs R*-tree 275.65 — the array wins;")
		fmt.Println("at small scales the ordering flips (few points -> few leaves), the crossover the paper predicts for sparser data")
		if *series {
			fmt.Println("rank,array,rtree")
			step := len(res.SortedArray)/200 + 1
			for i := 0; i < len(res.SortedArray); i += step {
				fmt.Printf("%d,%.0f,%.0f\n", i, res.SortedArray[i], res.SortedRTree[i])
			}
		}
		return map[string]any{
			"scale":        sc,
			"queries":      n,
			"array_avg":    res.ArrayAvg,
			"rtree_avg":    res.RTreeAvg,
			"tree_height":  res.TreeHeight,
			"tree_leaves":  res.TreeLeaves,
			"array_cells":  res.ArrayCells,
			"tree_entries": res.TreeEntries,
			"array_cost":   obs.Summarize(res.SortedArray),
			"rtree_cost":   obs.Summarize(res.SortedRTree),
		}, nil
	})

	run("ooo", func() (any, error) {
		sc := pick(0.01)
		n := nq(200)
		rows, err := experiments.OutOfOrderSweep(sc, []float64{0, 1, 5, 10, 25, 50}, n, *seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("Graceful degradation with out-of-order updates (Section 2.5), gauss3 at scale %g, %d queries\n", sc, n)
		fmt.Printf("%8s %10s %16s %16s\n", "%ooo", "buffered", "list work/query", "rtree leaves/query")
		for _, r := range rows {
			fmt.Printf("%8.0f %10d %16.1f %16.1f\n", r.Percent, r.Buffered,
				float64(r.ListChecks)/float64(r.Queries), float64(r.TreeLeaves)/float64(r.Queries))
		}
		fmt.Println("paper claim: query cost converges to a general d-dimensional structure's cost as the share grows")
		return map[string]any{"scale": sc, "queries": n, "rows": rows}, nil
	})

	if *traced {
		run("trace", func() (any, error) {
			n := nq(48)
			res, err := experiments.TracedQueryCost(16, 2, n, true, *seed)
			if err != nil {
				return nil, err
			}
			fmt.Printf("Traced per-query cost via the core facade (n=%d, %d non-time dims, identical historic query, %d repeats)\n",
				res.N, res.Dims, res.Queries)
			fmt.Printf("bounds: ddc=(2 log2 n)^d=%.0f cells, ps=2^d=%.0f cells\n", res.DDCBound, res.PSBound)
			enc := json.NewEncoder(os.Stdout)
			for _, rec := range res.Records {
				if err := enc.Encode(rec); err != nil {
					return nil, err
				}
			}
			first := res.Records[0]
			last := res.Records[len(res.Records)-1]
			fmt.Printf("first query: %d cells, %d conversions; last: %d cells, %d conversions\n",
				first.CellsTouched, first.Conversions, last.CellsTouched, last.Conversions)
			fmt.Println("paper shape (Figs. 10/11): identical queries converge from the DDC regime to the constant PS bound")
			cells := make([]float64, len(res.Records))
			for i, rec := range res.Records {
				cells[i] = float64(rec.CellsTouched)
			}
			return map[string]any{
				"n":          res.N,
				"dims":       res.Dims,
				"queries":    res.Queries,
				"ddc_bound":  res.DDCBound,
				"ps_bound":   res.PSBound,
				"first":      first,
				"last":       last,
				"cells_cost": obs.Summarize(cells),
			}, nil
		})
	}

	if *exp != "all" && !strings.Contains("table3 fig10 fig11 fig12 fig13 table4 fig14 ooo trace", *exp) {
		fmt.Fprintf(os.Stderr, "histbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonOut != "" {
		if err := writeReport(*jsonOut, report, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "histbench: writing report: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReport emits the machine-readable run report — the format
// BENCH_*.json trajectories are built from, so the tool itself is the
// producer rather than ad-hoc postprocessing. The meta block (git
// revision, Go version, GOMAXPROCS, OS/arch) is the same
// perf.RunMeta histperf stamps on its reports, so every benchmark
// artifact in the repo is attributable to a build the same way.
func writeReport(path string, experiments map[string]any, seed int64) error {
	doc := map[string]any{
		"tool":        "histbench",
		"meta":        perf.CollectMeta("histbench"),
		"seed":        seed,
		"quantiles":   "nearest-rank (internal/stats.Quantile)",
		"experiments": experiments,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
