package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildHistlint compiles the histlint binary once into a temp dir.
func buildHistlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "histlint")
	cmd := exec.Command("go", "build", "-o", bin, "histcube/cmd/histlint")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building histlint: %v\n%s", err, out)
	}
	return bin
}

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// dirtyModule is a self-contained module with exactly one violation
// per analyzer, at known positions.
func dirtyModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module tempmod\n\ngo 1.22\n",
		"internal/obs/obs.go": `package obs

type Counter struct{}

type Registry struct{}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }
`,
		"internal/appendcube/cube.go": `package appendcube

type Cube struct{ cells []float64 }

func (c *Cube) Update(i int, v float64) { c.cells[i] += v }
`,
		// InsertUnlogged's apply call is on line 13.
		"internal/core/core.go": `package core

import "tempmod/internal/appendcube"

type Op struct{ Cell int }

type Cube struct{ inner *appendcube.Cube }

func (c *Cube) logOp(op Op) error { return nil }
func (c *Cube) apply(op Op)       { c.inner.Update(op.Cell, 1) }

func (c *Cube) InsertUnlogged(op Op) {
	c.apply(op)
}
`,
		// One violation per remaining per-package analyzer plus a stale
		// directive, at the line numbers asserted in `expected`.
		"lint.go": `package tempmod

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tempmod/internal/obs"
)

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (b *box) peek() int { return b.n }

func narrow(v int64) int {
	return int(v)
}

func wrap(err error) error {
	return fmt.Errorf("failed: %v", err)
}

func metric(reg *obs.Registry) {
	reg.NewCounter("Bad_Name", "malformed")
}

func floatEq(a, b float64) bool {
	return a == b
}

func (b *box) leak(c bool) int {
	b.mu.Lock()
	if c {
		return 0
	}
	b.mu.Unlock()
	return 1
}

type rw struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (r *rw) sneak() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.v = 1
}

type stat struct {
	hits int64
}

func bump(s *stat) { atomic.AddInt64(&s.hits, 1) }

func readPlain(s *stat) int64 { return s.hits }

func spin(ctx context.Context, ready func() bool) {
	for {
		if ready() {
			return
		}
	}
}

func rotted() int {
	//histlint:ignore coordnarrow the narrowing this justified is gone
	return 0
}
`,
		// An AB/BA inversion across two methods: the lockorder cycle is
		// whole-program state, reported at the earliest witnessing edge.
		"locks.go": `package tempmod

import "sync"

type la struct{ mu sync.Mutex }

type lb struct{ mu sync.Mutex }

type lockPair struct {
	a la
	b lb
}

func (p *lockPair) fwd() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
}

func (p *lockPair) rev() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
}
`,
	})
}

// expected diagnostics for dirtyModule, in the driver's sort order
// (file, then line): one per analyzer.
var expected = []struct {
	file     string
	line     int
	analyzer string
	fragment string
}{
	{"internal/core/core.go", 13, "appendbeforeapply", "without logging it first"},
	{"lint.go", 17, "mutexguard", "box.n is guarded by mu"},
	{"lint.go", 20, "coordnarrow", "unguarded narrowing int(v)"},
	{"lint.go", 24, "errwrap", "use %w"},
	{"lint.go", 28, "metricname", "violates the naming contract"},
	{"lint.go", 32, "nofloateq", "floating-point == comparison"},
	{"lint.go", 36, "deferunlock", "not released on every path"},
	{"lint.go", 52, "rwlockdiscipline", "write to rw.v under mu.RLock()"},
	{"lint.go", 61, "atomicfield", "plain access to hits"},
	{"lint.go", 64, "ctxloop", "unbounded for loop in spin never polls cancellation"},
	{"lint.go", 72, "histlint", "stale ignore directive: no coordnarrow finding"},
	{"locks.go", 17, "lockorder", "lock-order cycle"},
}

func runHistlint(t *testing.T, bin, dir string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running histlint: %v", err)
	}
	return out.String(), errb.String(), exit
}

func TestHistlintEndToEnd(t *testing.T) {
	bin := buildHistlint(t)
	dir := dirtyModule(t)

	stdout, stderr, exit := runHistlint(t, bin, dir)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(lines), len(expected), stdout)
	}
	for i, want := range expected {
		prefix := filepath.Join(dir, filepath.FromSlash(want.file))
		wantHead := prefix + ":" + strconv.Itoa(want.line) + ":"
		if !strings.HasPrefix(lines[i], wantHead) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], wantHead)
		}
		if !strings.Contains(lines[i], ": "+want.analyzer+": ") {
			t.Errorf("line %d = %q, want analyzer %q", i, lines[i], want.analyzer)
		}
		if !strings.Contains(lines[i], want.fragment) {
			t.Errorf("line %d = %q, want fragment %q", i, lines[i], want.fragment)
		}
	}
	if !strings.Contains(stderr, "12 finding(s)") {
		t.Errorf("stderr = %q, want finding count", stderr)
	}
}

// TestHistlintLockGraph checks the DOT export: written even when
// findings exist, containing both halves of the dirty module's
// inversion, and stable (sorted) line order.
func TestHistlintLockGraph(t *testing.T) {
	bin := buildHistlint(t)
	dir := dirtyModule(t)
	dot := filepath.Join(t.TempDir(), "lockgraph.dot")

	_, _, exit := runHistlint(t, bin, dir, "-lockgraph", dot)
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatalf("lock graph not written: %v", err)
	}
	graph := string(data)
	for _, want := range []string{
		"digraph lockorder {",
		`"tempmod.la.mu" -> "tempmod.lb.mu";`,
		`"tempmod.lb.mu" -> "tempmod.la.mu";`,
	} {
		if !strings.Contains(graph, want) {
			t.Errorf("lock graph missing %q:\n%s", want, graph)
		}
	}
	fwd := strings.Index(graph, `"tempmod.la.mu" -> "tempmod.lb.mu";`)
	rev := strings.Index(graph, `"tempmod.lb.mu" -> "tempmod.la.mu";`)
	if fwd > rev {
		t.Errorf("edges not sorted:\n%s", graph)
	}
}

// TestHistlintLockGraphClean: an acyclic module exports a graph and
// exits 0 — the artifact is for review, not only for failures.
func TestHistlintLockGraphClean(t *testing.T) {
	bin := buildHistlint(t)
	dir := writeTree(t, map[string]string{
		"go.mod": "module cleanmod\n\ngo 1.22\n",
		"safe.go": `package cleanmod

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}
`,
	})
	dot := filepath.Join(t.TempDir(), "lockgraph.dot")
	stdout, stderr, exit := runHistlint(t, bin, dir, "-lockgraph", dot)
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatalf("lock graph not written: %v", err)
	}
	if !strings.Contains(string(data), `"cleanmod.counter.mu";`) {
		t.Errorf("lock graph missing the node:\n%s", data)
	}
	if strings.Contains(string(data), "->") {
		t.Errorf("single-lock module should have no edges:\n%s", data)
	}
}

func TestHistlintJSON(t *testing.T) {
	bin := buildHistlint(t)
	dir := dirtyModule(t)

	stdout, _, exit := runHistlint(t, bin, dir, "-json")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\n%s", exit, stdout)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(expected))
	}
	for i, want := range expected {
		d := diags[i]
		if d.Analyzer != want.analyzer || d.Line != want.line || d.Col == 0 ||
			d.File != filepath.Join(dir, filepath.FromSlash(want.file)) ||
			!strings.Contains(d.Message, want.fragment) {
			t.Errorf("diagnostic %d = %+v, want %+v", i, d, want)
		}
	}
}

func TestHistlintCleanModule(t *testing.T) {
	bin := buildHistlint(t)
	dir := writeTree(t, map[string]string{
		"go.mod":  "module cleanmod\n\ngo 1.22\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	stdout, stderr, exit := runHistlint(t, bin, dir)
	if exit != 0 || strings.TrimSpace(stdout) != "" {
		t.Fatalf("exit = %d, stdout = %q, stderr = %q; want clean exit 0", exit, stdout, stderr)
	}
}

func TestHistlintBadPattern(t *testing.T) {
	bin := buildHistlint(t)
	dir := writeTree(t, map[string]string{
		"go.mod": "module cleanmod\n\ngo 1.22\n",
	})
	_, stderr, exit := runHistlint(t, bin, dir, "./nonexistent")
	if exit != 2 {
		t.Fatalf("exit = %d, want 2 (stderr %q)", exit, stderr)
	}
}
