// Command histlint runs histcube's stdlib-only static-analysis suite
// over the module in the current directory.
//
// Usage:
//
//	histlint [-json] [-list] [packages]
//
// Packages default to ./... and accept the same directory patterns the
// go tool does (./internal/core, ./internal/..., ...). Exit status is
// 0 when the tree is clean, 1 when findings were reported, and 2 when
// the analysis itself failed (unparseable source, broken types, bad
// pattern).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"histcube/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("histlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: histlint [-json] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "histlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "histlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "histlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
