// Command histlint runs histcube's stdlib-only static-analysis suite
// over the module in the current directory.
//
// Usage:
//
//	histlint [-json] [-list] [-lockgraph out.dot] [packages]
//
// Packages default to ./... and accept the same directory patterns the
// go tool does (./internal/core, ./internal/..., ...). Exit status is
// 0 when the tree is clean, 1 when findings were reported, and 2 when
// the analysis itself failed (unparseable source, broken types, bad
// pattern). -lockgraph writes the project-wide lock-acquisition graph
// accumulated by the lockorder analyzer as Graphviz DOT (CI publishes
// it as a build artifact); the graph is written even when findings
// exist, so a cycle's DOT rendering is available alongside the report
// of it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"histcube/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("histlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	list := fs.Bool("list", false, "list the analyzers and exit")
	lockgraph := fs.String("lockgraph", "", "write the lock-acquisition graph as Graphviz DOT to this file")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: histlint [-json] [-list] [-lockgraph out.dot] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	lo := analysis.NewLockOrder()
	analyzers := analysis.AllWith(lo)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "histlint: %v\n", err)
		return 2
	}

	if *lockgraph != "" {
		f, err := os.Create(*lockgraph)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histlint: %v\n", err)
			return 2
		}
		werr := lo.WriteDOT(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "histlint: writing lock graph: %v\n", werr)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "histlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "histlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
