package main

import (
	"strings"
	"testing"
)

func TestVersionCommand(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	got := c.cmd(t, "VERSION")
	if !strings.HasPrefix(got, "OK histserve rev=") || !strings.Contains(got, " go=go") {
		t.Fatalf("VERSION -> %q", got)
	}
	if got := c.cmd(t, "VERSION extra"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("VERSION with args -> %q, want ERR", got)
	}
}

func TestStatsCarriesGitRev(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	got := c.cmd(t, "STATS")
	if !strings.Contains(got, " git_rev=") {
		t.Fatalf("STATS missing git_rev: %q", got)
	}
	// Nothing sealed yet: the field must be absent so numeric STATS
	// consumers never see the MinInt64 sentinel.
	if strings.Contains(got, "sealed_through=") {
		t.Fatalf("STATS reports sealed_through before any SEAL: %q", got)
	}
}

func TestSealRejectsHistoricMutations(t *testing.T) {
	addr := startTestServer(t, true)
	c := dial(t, addr)

	if got := c.cmd(t, "INS 5 1 1 2"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}
	if got := c.cmd(t, "SEAL 10"); got != "OK sealed_through=10" {
		t.Fatalf("SEAL 10 -> %q", got)
	}
	// At and below the boundary: rejected; queries still serve it.
	if got := c.cmd(t, "INS 10 1 1 2"); !strings.HasPrefix(got, "ERR sealed:") {
		t.Fatalf("INS at boundary -> %q, want ERR sealed", got)
	}
	if got := c.cmd(t, "DEL 5 1 1 2"); !strings.HasPrefix(got, "ERR sealed:") {
		t.Fatalf("DEL below boundary -> %q, want ERR sealed", got)
	}
	if got := c.cmd(t, "QRY 0 10 0 0 7 7"); got != "2" {
		t.Fatalf("QRY into sealed range -> %q, want 2", got)
	}
	// Above the boundary: mutations flow.
	if got := c.cmd(t, "INS 11 1 1 3"); got != "OK" {
		t.Fatalf("INS above boundary -> %q", got)
	}

	// Monotonic: a lower SEAL is a no-op reporting the boundary.
	if got := c.cmd(t, "SEAL 3"); got != "OK sealed_through=10" {
		t.Fatalf("SEAL 3 after SEAL 10 -> %q", got)
	}
	if got := c.cmd(t, "STATS"); !strings.Contains(got, "sealed_through=10") {
		t.Fatalf("STATS missing sealed_through: %q", got)
	}

	// Bare SEAL: full demotion, everything read-only.
	if got := c.cmd(t, "SEAL"); !strings.HasPrefix(got, "OK sealed_through=") {
		t.Fatalf("bare SEAL -> %q", got)
	}
	if got := c.cmd(t, "INS 999999 1 1 1"); !strings.HasPrefix(got, "ERR sealed:") {
		t.Fatalf("INS after full seal -> %q", got)
	}

	if got := c.cmd(t, "SEAL 1 2"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("SEAL with two args -> %q, want ERR", got)
	}
	if got := c.cmd(t, "SEAL x"); !strings.HasPrefix(got, "ERR bad seal time") {
		t.Fatalf("SEAL x -> %q", got)
	}
}
