package main

// Crash-injection harness: build the real histserve binary, drive a
// 10k-append workload over TCP with -fsync=always, SIGKILL the process
// mid-append, restart it on the same data directory and verify that
// recovery (checkpoint + log-tail replay, torn final record truncated)
// loses no acknowledged record. This is the durability acceptance test
// wired into check.sh and CI; it needs the go toolchain to build the
// binary and is skipped under -short.

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildHistserve compiles the server binary once per test run.
func buildHistserve(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build the crash-test binary")
	}
	bin := filepath.Join(t.TempDir(), "histserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building histserve: %v\n%s", err, out)
	}
	return bin
}

var listenRE = regexp.MustCompile(`msg=listening addr=([^ ]+)`)

// histProc is one running histserve child process.
type histProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr []string
	lines  chan string
}

// startHistserve launches the binary and waits for its listen address.
func startHistserve(t *testing.T, bin string, args ...string) *histProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &histProc{cmd: cmd, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a full buffer
			}
		}
		close(p.lines)
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("histserve exited before listening; stderr:\n%s", strings.Join(p.stderr, "\n"))
			}
			p.stderr = append(p.stderr, line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				p.addr = m[1]
				return p
			}
		case <-deadline:
			p.cmd.Process.Kill()
			t.Fatalf("histserve did not report a listen address; stderr:\n%s", strings.Join(p.stderr, "\n"))
		}
	}
}

// waitExit drains stderr to EOF and then reaps the child — in that
// order, because cmd.Wait closes the pipe and would race the reader
// out of the final log lines. Returns the full stderr and exit error.
func (p *histProc) waitExit(t *testing.T, d time.Duration) (string, error) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		for line := range p.lines {
			p.stderr = append(p.stderr, line)
		}
		done <- p.cmd.Wait()
	}()
	select {
	case err := <-done:
		return strings.Join(p.stderr, "\n"), err
	case <-time.After(d):
		p.cmd.Process.Kill()
		t.Fatal("child process did not exit in time")
		return "", nil
	}
}

func TestCrashRecoveryNoAcknowledgedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-injection test builds and kills real processes")
	}
	bin := buildHistserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-dims", "8,8", "-op", "sum", "-data-dir", dataDir,
		"-fsync", "always", "-checkpoint-every", "500"}

	// Phase 1: drive the append workload and SIGKILL mid-append.
	p1 := startHistserve(t, bin, args...)
	conn := dialTCP(t, p1.addr)
	const workload = 10000
	const killAfter = 1200 // acks before the plug is pulled
	acked, sent := 0, 0
	killed := false
	for i := 0; i < workload; i++ {
		_, err := fmt.Fprintf(conn.w, "INS %d %d %d 1\n", i/10, i%8, (i/3)%8)
		if err == nil {
			err = conn.w.Flush()
		}
		if err != nil {
			break // the kill landed
		}
		sent++
		resp, err := conn.r.ReadString('\n')
		if err != nil {
			break // killed between request and response
		}
		if strings.TrimSpace(resp) != "OK" {
			t.Fatalf("append %d: %q", i, strings.TrimSpace(resp))
		}
		acked++
		if acked == killAfter {
			// SIGKILL while the workload is in full flight: the next
			// iterations race the process teardown.
			if err := p1.cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	if !killed {
		t.Fatalf("workload finished (%d acks) before the kill", acked)
	}
	p1.waitExit(t, 30*time.Second)
	if acked < killAfter {
		t.Fatalf("only %d acks before failure, want >= %d", acked, killAfter)
	}

	// Phase 2: restart on the same directory; recovery must replay
	// checkpoint + tail, tolerate a torn final record, and preserve
	// every acknowledged append (value 1 each: SUM == count).
	p2 := startHistserve(t, bin, args...)
	recovered := ""
	for _, line := range p2.stderr {
		if strings.Contains(line, "msg=recovered") {
			recovered = line
		}
	}
	if recovered == "" {
		t.Fatalf("no recovery log line; stderr:\n%s", strings.Join(p2.stderr, "\n"))
	}
	conn2 := dialTCP(t, p2.addr)
	total := query(t, conn2, "QRY 0 100000 0 0 7 7")
	if total < float64(acked) || total > float64(sent) {
		t.Fatalf("recovered SUM = %v, want within [acked=%d, sent=%d]\nrecovery: %s",
			total, acked, sent, recovered)
	}
	t.Logf("acked=%d sent=%d recovered=%v (%s)", acked, sent, total, recovered)

	// The recovered server keeps accepting appends.
	if _, err := fmt.Fprintln(conn2.w, "INS 99999 0 0 1"); err != nil {
		t.Fatal(err)
	}
	conn2.w.Flush()
	if resp, _ := conn2.r.ReadString('\n'); strings.TrimSpace(resp) != "OK" {
		t.Fatalf("post-recovery append: %q", resp)
	}
	after := query(t, conn2, "QRY 0 100000 0 0 7 7")
	if after != total+1 {
		t.Fatalf("post-recovery SUM = %v, want %v", after, total+1)
	}

	// Phase 3: graceful shutdown on SIGTERM — final checkpoint, exit 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	stderr2, werr := p2.waitExit(t, 30*time.Second)
	if werr != nil {
		t.Fatalf("graceful shutdown exit: %v\nstderr:\n%s", werr, stderr2)
	}
	if !strings.Contains(stderr2, "msg=\"shutdown complete\"") {
		t.Fatalf("no shutdown-complete log line:\n%s", stderr2)
	}

	// Phase 4: a third boot resumes from the final checkpoint with an
	// empty tail — the canonical clean restart.
	p3 := startHistserve(t, bin, args...)
	conn3 := dialTCP(t, p3.addr)
	final := query(t, conn3, "QRY 0 100000 0 0 7 7")
	if final != after {
		t.Fatalf("after clean restart SUM = %v, want %v", final, after)
	}
	p3.cmd.Process.Signal(syscall.SIGTERM)
	if _, err := p3.waitExit(t, 30*time.Second); err != nil {
		t.Fatalf("clean restart shutdown exit: %v", err)
	}
}

type tcpConn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func dialTCP(t *testing.T, addr string) *tcpConn {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		conn, err := dialOnce(addr)
		if err == nil {
			t.Cleanup(func() { conn.close() })
			return conn.tcpConn
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("dialing %s: %v", addr, lastErr)
	return nil
}

type ownedConn struct {
	*tcpConn
	close func() error
}

func dialOnce(addr string) (*ownedConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &ownedConn{
		tcpConn: &tcpConn{r: bufio.NewReader(c), w: bufio.NewWriter(c)},
		close:   c.Close,
	}, nil
}

func query(t *testing.T, c *tcpConn, q string) float64 {
	t.Helper()
	if _, err := fmt.Fprintln(c.w, q); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(resp), 64)
	if err != nil {
		t.Fatalf("query %q -> %q", q, strings.TrimSpace(resp))
	}
	return v
}
