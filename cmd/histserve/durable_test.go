package main

import (
	"fmt"
	"strings"
	"testing"

	"histcube/internal/wal"
)

// expect sends one command and requires an exact response.
func (c *client) expect(t *testing.T, line, want string) {
	t.Helper()
	if got := c.cmd(t, line); got != want {
		t.Fatalf("%s -> %q, want %q", line, got, want)
	}
}

// newDurableServer builds a quiet server recovered from dir.
func newDurableServer(t *testing.T, dir string, every int64) (*server, wal.RecoverResult) {
	t.Helper()
	srv := newQuietServer(t, "8,8", "sum", false)
	res, err := srv.enableDurability(dir, wal.Options{Sync: wal.SyncNever}, every)
	if err != nil {
		t.Fatal(err)
	}
	return srv, res
}

func TestDurableRestartResumesState(t *testing.T) {
	dir := t.TempDir()
	srv, res := newDurableServer(t, dir, 0)
	if res.Replayed != 0 || res.CheckpointLSN != 0 {
		t.Fatalf("fresh dir recovery = %+v", res)
	}
	addr := serveOn(t, srv)
	c := dial(t, addr)
	total := 0.0
	for i := 0; i < 200; i++ {
		v := float64(i%7 + 1)
		c.expect(t, fmt.Sprintf("INS %d %d %d %g", i/10, i%8, (i/3)%8, v), "OK")
		total += v
	}
	srv.shutdown() // graceful path: final checkpoint + WAL close

	// "Restart": a second server over the same directory.
	srv2, res2 := newDurableServer(t, dir, 0)
	if res2.CheckpointLSN != 200 || res2.Replayed != 0 {
		t.Fatalf("restart recovery = %+v, want checkpoint at LSN 200, nothing to replay", res2)
	}
	c2 := dial(t, serveOn(t, srv2))
	c2.expect(t, "QRY 0 1000 0 0 7 7", fmt.Sprintf("%g", total))
	// And it keeps accepting appends.
	c2.expect(t, "INS 1000 0 0 5", "OK")
	c2.expect(t, "QRY 0 2000 0 0 7 7", fmt.Sprintf("%g", total+5))
	srv2.shutdown()
}

func TestDurableRestartWithoutShutdownReplaysLog(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, 0)
	addr := serveOn(t, srv)
	c := dial(t, addr)
	for i := 0; i < 50; i++ {
		c.expect(t, fmt.Sprintf("INS %d %d 0 2", i, i%8), "OK")
	}
	// Crash: no shutdown, no checkpoint — only the log survives. Force
	// the OS-buffered writes down first (SyncNever in tests).
	srv.mu.Lock()
	srv.wal.Sync()
	srv.mu.Unlock()

	srv2, res := newDurableServer(t, dir, 0)
	if res.CheckpointLSN != 0 || res.Replayed != 50 {
		t.Fatalf("recovery = %+v, want 50 records replayed from LSN 1", res)
	}
	c2 := dial(t, serveOn(t, srv2))
	c2.expect(t, "QRY 0 1000 0 0 7 7", "100")
	srv2.shutdown()
}

func TestCheckpointCommand(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, 0)
	c := dial(t, serveOn(t, srv))
	c.expect(t, "INS 1 0 0 3", "OK")
	c.expect(t, "INS 2 1 1 4", "OK")
	c.expect(t, "CHECKPOINT", "OK 2")
	c.expect(t, "CHECKPOINT extra", "ERR CHECKPOINT takes no arguments")
	srv.shutdown()

	// The on-demand checkpoint seeds the next recovery.
	srv2, res := newDurableServer(t, dir, 0)
	if res.CheckpointLSN < 2 {
		t.Fatalf("recovery = %+v, want checkpoint LSN >= 2", res)
	}
	srv2.shutdown()
}

func TestCheckpointCommandWithoutDataDir(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	c := dial(t, serveOn(t, srv))
	resp := c.cmd(t, "CHECKPOINT")
	if !strings.HasPrefix(resp, "ERR") || !strings.Contains(resp, "-data-dir") {
		t.Fatalf("CHECKPOINT without data dir: %q", resp)
	}
}

func TestAutomaticCheckpointEveryN(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, 10)
	c := dial(t, serveOn(t, srv))
	for i := 0; i < 25; i++ {
		c.expect(t, fmt.Sprintf("INS %d 0 0 1", i), "OK")
	}
	srv.mu.Lock()
	since := srv.wal.SinceCheckpoint()
	srv.mu.Unlock()
	if since != 5 {
		t.Fatalf("records since checkpoint = %d, want 5 (auto checkpoints at 10 and 20)", since)
	}
	srv.shutdown()

	srv2, res := newDurableServer(t, dir, 10)
	if res.CheckpointLSN != 25 { // shutdown wrote the final one
		t.Fatalf("recovery = %+v, want final checkpoint at 25", res)
	}
	c2 := dial(t, serveOn(t, srv2))
	c2.expect(t, "QRY 0 1000 0 0 7 7", "25")
	srv2.shutdown()
}

func TestDurableMetricsRegistered(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, 0)
	c := dial(t, serveOn(t, srv))
	c.expect(t, "INS 1 0 0 1", "OK")
	c.expect(t, "CHECKPOINT", "OK 1")
	var sb strings.Builder
	if err := srv.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"histcube_wal_appends_total 1",
		"histcube_wal_checkpoints_total 1",
		"histcube_wal_segments",
		"histcube_wal_checkpoint_age_seconds",
		"histcube_wal_records_since_checkpoint 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	srv.shutdown()
}
