package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"histcube/internal/trace"
)

// cmdMulti sends one request and reads the multi-line response of
// EXPLAIN/SLOWLOG, which is terminated by an END line.
func (c *client) cmdMulti(t *testing.T, line string) []string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		resp, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp = strings.TrimRight(resp, "\n")
		if strings.HasPrefix(resp, "ERR") && len(lines) == 0 {
			return []string{resp}
		}
		if resp == "END" {
			return lines
		}
		lines = append(lines, resp)
	}
}

// explainTotals extracts the named counters from an EXPLAIN totals
// line ("totals cells_touched=12 conversions=8 ...").
func explainTotals(t *testing.T, lines []string) map[string]int64 {
	t.Helper()
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "totals ") {
		t.Fatalf("EXPLAIN did not end with a totals line: %q", last)
	}
	out := make(map[string]int64)
	for _, field := range strings.Fields(last)[1:] {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			t.Fatalf("bad totals field %q", field)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad totals value %q: %v", field, err)
		}
		out[k] = n
	}
	return out
}

// TestExplainConvergence reproduces the paper's Fig. 10/11 signal over
// the wire: repeating the identical historic range query, EXPLAIN's
// cells_touched drops from the DDC regime (> 2^(d-1)) to exactly
// 2^(d-1) once lazy conversion has rewritten the query's corner cells
// to PS form, at which point conversions hits zero and stays there.
func TestExplainConvergence(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	// Three slices; time 1 becomes historic once 2 and 3 open.
	for tm := 1; tm <= 3; tm++ {
		for i := 0; i < 8; i++ {
			if got := c.cmd(t, fmt.Sprintf("INS %d %d %d 1", tm, i, (i*5)%8)); got != "OK" {
				t.Fatalf("INS -> %q", got)
			}
		}
	}
	const q = "EXPLAIN QRY 1 1 1 1 6 6"
	const psBound = 4 // 2^(d-1) with d-1 = 2 non-time dimensions

	first := c.cmdMulti(t, q)
	if !strings.HasPrefix(first[0], "OK result=") {
		t.Fatalf("EXPLAIN -> %q", first[0])
	}
	wantResult := strings.TrimPrefix(first[0], "OK result=")
	tot := explainTotals(t, first)
	if tot["conversions"] == 0 {
		t.Fatalf("first historic EXPLAIN converted nothing: %v", tot)
	}
	if tot["cells_touched"] <= psBound {
		t.Fatalf("first historic EXPLAIN already at the PS bound: %v", tot)
	}
	// The rendered tree must show the server and cube spans.
	tree := strings.Join(first, "\n")
	for _, want := range []string{"histserve.query", "histcube.query", "histcube.prefix"} {
		if !strings.Contains(tree, want) {
			t.Errorf("EXPLAIN tree missing %q:\n%s", want, tree)
		}
	}

	// Identical queries converge: monotonically non-increasing cost,
	// ending at exactly the PS bound with no further conversions.
	prev := tot
	converged := false
	for i := 0; i < 12 && !converged; i++ {
		lines := c.cmdMulti(t, q)
		if got := strings.TrimPrefix(lines[0], "OK result="); got != wantResult {
			t.Fatalf("result drifted across identical queries: %q -> %q", wantResult, got)
		}
		cur := explainTotals(t, lines)
		if cur["cells_touched"] > prev["cells_touched"] {
			t.Fatalf("per-query cost increased: %v -> %v", prev, cur)
		}
		converged = cur["cells_touched"] == psBound && cur["conversions"] == 0
		prev = cur
	}
	if !converged {
		t.Fatalf("identical query did not converge to %d cells, 0 conversions: %v", psBound, prev)
	}
	if prev["instances"] != 1 {
		t.Errorf("instances = %d, want 1 (time 0 prefix resolves to no slice)", prev["instances"])
	}
}

// TestSlowLogCommand drives queries through a threshold-0 slow log and
// checks SLOWLOG's reply: bounded, worst-first, well-formed.
func TestSlowLogCommand(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.slow = trace.NewSlowLog(2, 0) // admit everything, keep the 2 worst
	addr := serveOn(t, srv)
	c := dial(t, addr)
	c.cmd(t, "INS 1 1 1 2")
	c.cmd(t, "INS 2 2 2 3")
	for i := 0; i < 5; i++ {
		c.cmd(t, "QRY 1 1 0 0 7 7")
	}
	lines := c.cmdMulti(t, "SLOWLOG")
	if !strings.HasPrefix(lines[0], "OK n=2 cap=2 threshold=0s observed=5") {
		t.Fatalf("SLOWLOG header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("SLOWLOG returned %d entry lines, want 2:\n%s", len(lines)-1, strings.Join(lines, "\n"))
	}
	entryRE := regexp.MustCompile(`^#\d+ dur=\S+ at=\S+ cells_touched=\d+ conversions=\d+ trace_id=[0-9a-f]{16} line="QRY 1 1 0 0 7 7"$`)
	var durs []time.Duration
	for _, e := range lines[1:] {
		if !entryRE.MatchString(e) {
			t.Errorf("malformed SLOWLOG entry %q", e)
			continue
		}
		d, err := time.ParseDuration(strings.TrimPrefix(strings.Fields(e)[1], "dur="))
		if err != nil {
			t.Fatal(err)
		}
		durs = append(durs, d)
	}
	for i := 1; i < len(durs); i++ {
		if durs[i] > durs[i-1] {
			t.Errorf("SLOWLOG not worst-first: %v", durs)
		}
	}
	if got := c.cmd(t, "SLOWLOG extra"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("SLOWLOG with arguments -> %q, want ERR", got)
	}
	// Mutations must not enter the slow log (queries only), but they do
	// enter the recent ring along with the queries.
	if got := srv.slow.Observed(); got != 5 {
		t.Errorf("slow log observed %d traces, want the 5 queries", got)
	}
	if got := len(srv.recent.Entries()); got != 7 {
		t.Errorf("recent ring holds %d traces, want 7 (2 INS + 5 QRY)", got)
	}
}

// syncBuf is a goroutine-safe log sink for asserting on slog output.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTraceIDPropagationAndExplainJSON drives the distributed-tracing
// contract end to end on the shard side: a TID= token is adopted as
// the root span's trace ID and becomes observable in the EXPLAIN JSON
// reply, the SLOWLOG wire format, the /debug JSON feeds and the slog
// stream — the correlation path histproxy relies on.
func TestTraceIDPropagationAndExplainJSON(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.slow = trace.NewSlowLog(8, 0)
	var logs syncBuf
	srv.log = slog.New(slog.NewTextHandler(&logs, nil))
	addr := serveOn(t, srv)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })

	c := dial(t, addr)
	c.cmd(t, "INS 1 1 1 2")
	c.cmd(t, "INS 2 2 2 3")
	id := trace.NewID()

	// A plain QRY carrying a TID= token answers exactly as without it.
	if got := c.cmd(t, trace.FormatRequestID(id)+"QRY 1 1 0 0 7 7"); got != "2" {
		t.Fatalf("QRY with TID -> %q, want 2", got)
	}

	// EXPLAIN JSON answers a one-line structured document whose root
	// carries the propagated trace ID.
	resp := c.cmd(t, trace.FormatRequestID(id)+"EXPLAIN JSON QRY 1 1 0 0 7 7")
	body, ok := strings.CutPrefix(resp, "OK ")
	if !ok {
		t.Fatalf("EXPLAIN JSON -> %q", resp)
	}
	var doc struct {
		Result float64         `json:"result"`
		Trace  *trace.SpanJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("EXPLAIN JSON body is not JSON: %v\n%s", err, body)
	}
	if doc.Result != 2 {
		t.Errorf("EXPLAIN JSON result = %v, want 2", doc.Result)
	}
	if doc.Trace == nil || doc.Trace.Name != "histserve.query" {
		t.Fatalf("EXPLAIN JSON trace malformed: %+v", doc.Trace)
	}
	if doc.Trace.TraceID != id.String() {
		t.Errorf("EXPLAIN JSON trace_id = %q, want adopted %q", doc.Trace.TraceID, id)
	}
	if len(doc.Trace.Children) == 0 || doc.Trace.Children[0].Name != "histcube.query" {
		t.Errorf("EXPLAIN JSON lost the span tree: %+v", doc.Trace)
	}
	if doc.Trace.Children[0].TraceID != id.String() {
		t.Errorf("child trace_id = %q, want inherited %q", doc.Trace.Children[0].TraceID, id)
	}

	// The JSON variant keeps EXPLAIN's ERR discipline.
	for _, bad := range []string{"EXPLAIN JSON", "EXPLAIN JSON STATS", "EXPLAIN JSON QRY 1"} {
		if got := c.cmd(t, bad); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%q -> %q, want ERR", bad, got)
		}
	}

	// SLOWLOG's wire format names the trace.
	lines := c.cmdMulti(t, "SLOWLOG")
	if !strings.Contains(strings.Join(lines, "\n"), "trace_id="+id.String()) {
		t.Errorf("SLOWLOG lost trace_id %s:\n%s", id, strings.Join(lines, "\n"))
	}

	// Both JSON feeds carry a top-level trace_id per entry.
	for _, path := range []string{"/debug/slowlog", "/debug/trace/recent"} {
		resp, err := http.Get("http://" + mln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var feed struct {
			Entries []trace.EntryJSON `json:"entries"`
		}
		if err := json.Unmarshal(body, &feed); err != nil {
			t.Fatalf("%s is not JSON: %v", path, err)
		}
		found := false
		for _, e := range feed.Entries {
			if e.TraceID == id.String() {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no entry with trace_id %s:\n%s", path, id, body)
		}
	}

	// The slog stream carries the same ID: the threshold-0 slow log
	// admits the query and logs it, and a failing request with a TID=
	// token logs the ID too.
	if got := c.cmd(t, trace.FormatRequestID(id)+"QRY bogus"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad QRY -> %q, want ERR", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logs.String(), "trace_id="+id.String()) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond) // the handle goroutine logs asynchronously
	}
	out := logs.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "trace_id="+id.String()) {
		t.Errorf("slog stream lost the trace ID:\n%s", out)
	}
	if !strings.Contains(out, "request failed") {
		t.Errorf("failed request with TID not logged:\n%s", out)
	}
}

// TestExplainErrors covers EXPLAIN's ERR branches.
func TestExplainErrors(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	for _, line := range []string{
		"EXPLAIN",                 // nothing to wrap
		"EXPLAIN STATS",           // only QRY is explainable
		"EXPLAIN QRY 1",           // too few args
		"EXPLAIN QRY 2 1 0 0 7 7", // inverted time range
		"EXPLAIN QRY 0 1 x 0 7 7", // bad integer
		"EXPLAIN QRY 0 1 0 0 9 9", // out of domain
	} {
		if got := c.cmd(t, line); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%q -> %q, want ERR", line, got)
		}
	}
}

// TestReadyzGatesOnRecovery pins the readiness contract: /healthz is
// alive from the start, /readyz answers 503 until markReady.
func TestReadyzGatesOnRecovery(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	base := "http://" + mln.Addr().String()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz before ready -> %d, want 200 (liveness is not readiness)", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready -> %d, want 503", got)
	}
	srv.markReady()
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after ready -> %d, want 200", got)
	}
}

// TestDebugEndpoints checks the trace JSON feeds and the pprof index.
func TestDebugEndpoints(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.slow = trace.NewSlowLog(8, 0)
	addr := serveOn(t, srv)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	base := "http://" + mln.Addr().String()

	c := dial(t, addr)
	c.cmd(t, "INS 1 1 1 2")
	c.cmd(t, "INS 2 2 2 3")
	c.cmd(t, "QRY 1 1 0 0 7 7")

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
		return body
	}

	type feed struct {
		Entries []struct {
			Line       string          `json:"line"`
			DurationNS int64           `json:"duration_ns"`
			Trace      *trace.SpanJSON `json:"trace"`
		} `json:"entries"`
	}
	var slow feed
	if err := json.Unmarshal(get("/debug/slowlog"), &slow); err != nil {
		t.Fatalf("/debug/slowlog is not JSON: %v", err)
	}
	if len(slow.Entries) != 1 || slow.Entries[0].Line != "QRY 1 1 0 0 7 7" {
		t.Fatalf("/debug/slowlog entries = %+v", slow.Entries)
	}
	e := slow.Entries[0]
	if e.DurationNS <= 0 || e.Trace == nil || e.Trace.Name != "histserve.query" {
		t.Fatalf("slowlog entry malformed: %+v", e)
	}
	if len(e.Trace.Children) == 0 || e.Trace.Children[0].Name != "histcube.query" {
		t.Fatalf("slowlog trace lost its span tree: %+v", e.Trace)
	}

	var recent feed
	if err := json.Unmarshal(get("/debug/trace/recent"), &recent); err != nil {
		t.Fatalf("/debug/trace/recent is not JSON: %v", err)
	}
	if len(recent.Entries) != 3 {
		t.Fatalf("/debug/trace/recent holds %d entries, want 3", len(recent.Entries))
	}
	// Newest first: the query is the most recent request.
	if recent.Entries[0].Line != "QRY 1 1 0 0 7 7" {
		t.Errorf("recent[0] = %q, want the query", recent.Entries[0].Line)
	}

	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong: %.120s", body)
	}
}

// TestConcurrentExplainNoSpanMixing runs parallel clients, each
// inserting into its own region and repeatedly EXPLAINing its own
// query: every client must read back its own result with a
// well-formed single-root trace (the per-request span tree never
// leaks across requests), and the slow log must stay within its
// bound. Run with -race to check the retention structures.
func TestConcurrentExplainNoSpanMixing(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.slow = trace.NewSlowLog(4, 0)
	addr := serveOn(t, srv)

	// Seed an extra slice so every client's time-1 query is historic.
	seed := dial(t, addr)
	for i := 0; i < 8; i++ {
		seed.cmd(t, fmt.Sprintf("INS 1 %d %d 1", i, i))
	}
	seed.cmd(t, "INS 2 0 0 1")

	const clients = 4
	const rounds = 20
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := dial(t, addr)
			// Client n owns row n: its query sums exactly its seed point.
			q := fmt.Sprintf("EXPLAIN QRY 1 1 %d %d %d %d", n, n, n, n)
			for r := 0; r < rounds; r++ {
				lines := c.cmdMulti(t, q)
				if lines[0] != "OK result=1" {
					errCh <- fmt.Errorf("client %d round %d: %q", n, r, lines[0])
					return
				}
				tot := explainTotals(t, lines)
				if tot["instances"] != 1 {
					errCh <- fmt.Errorf("client %d: instances=%d, span tree mixed across requests", n, tot["instances"])
					return
				}
				roots := 0
				for _, l := range lines[1:] {
					if strings.HasPrefix(l, "histserve.query") {
						roots++
					}
				}
				if roots != 1 {
					errCh <- fmt.Errorf("client %d: %d root spans in one EXPLAIN", n, roots)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := len(srv.slow.Entries()); got > srv.slow.Cap() {
		t.Errorf("slow log grew past its bound: %d > %d", got, srv.slow.Cap())
	}
	if got := srv.slow.Observed(); got != clients*rounds {
		t.Errorf("slow log observed %d queries, want %d", got, clients*rounds)
	}
}
