package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

var metricsRE = regexp.MustCompile(`msg="metrics listening" addr=([^ ]+)`)

// sendLines sends one request over the raw test connection and reads
// lines until the END terminator (or a single ERR/OK line).
func sendLines(t *testing.T, c *tcpConn, req string) []string {
	t.Helper()
	if _, err := fmt.Fprintln(c.w, req); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		resp, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp = strings.TrimRight(resp, "\n")
		if resp == "END" {
			return lines
		}
		lines = append(lines, resp)
		if resp == "OK" || strings.HasPrefix(resp, "ERR") {
			return lines
		}
	}
}

// TestExplainSmokeRealBinary is the end-to-end smoke for the tracing
// surface: a real histserve binary answers EXPLAIN with a span tree,
// SLOWLOG with retained traces, and serves /readyz, /debug/slowlog
// and /debug/pprof on the metrics listener. Run by check.sh and CI;
// skipped under -short.
func TestExplainSmokeRealBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("real-binary smoke test skipped in -short mode")
	}
	bin := buildHistserve(t)
	p := startHistserve(t, bin, "-dims", "8,8",
		"-metrics", "127.0.0.1:0", "-slow-query-threshold", "0s", "-slowlog-size", "4")
	defer func() {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
		if out, err := p.waitExit(t, 15*time.Second); err != nil {
			t.Errorf("shutdown: %v\n%s", err, out)
		}
	}()
	var metricsAddr string
	for _, line := range p.stderr {
		if m := metricsRE.FindStringSubmatch(line); m != nil {
			metricsAddr = m[1]
		}
	}
	if metricsAddr == "" {
		t.Fatalf("no metrics listen address in stderr:\n%s", strings.Join(p.stderr, "\n"))
	}

	c := dialTCP(t, p.addr)
	for _, ins := range []string{"INS 1 1 1 5", "INS 2 2 2 7"} {
		if got := sendLines(t, c, ins); len(got) != 1 || got[0] != "OK" {
			t.Fatalf("%s -> %v", ins, got)
		}
	}
	lines := sendLines(t, c, "EXPLAIN QRY 1 1 0 0 7 7")
	if lines[0] != "OK result=5" {
		t.Fatalf("EXPLAIN first line = %q", lines[0])
	}
	tree := strings.Join(lines, "\n")
	for _, want := range []string{"histserve.query", "histcube.query", "histcube.prefix", "totals ", "cells_touched="} {
		if !strings.Contains(tree, want) {
			t.Errorf("EXPLAIN reply missing %q:\n%s", want, tree)
		}
	}
	slow := sendLines(t, c, "SLOWLOG")
	if !strings.HasPrefix(slow[0], "OK n=1 cap=4 threshold=0s") {
		t.Fatalf("SLOWLOG header = %q", slow[0])
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + metricsAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/readyz -> %d %q (the serving binary must be ready)", code, body)
	}
	if code, body := get("/debug/slowlog"); code != http.StatusOK ||
		!strings.Contains(body, `"histserve.query"`) {
		t.Errorf("/debug/slowlog -> %d, missing the query trace:\n%.300s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ -> %d", code)
	}
}
