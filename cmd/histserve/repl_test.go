package main

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// startReplica builds a durable follower of primaryAddr over its own
// temp directory and returns the server plus its client address.
func startReplica(t *testing.T, primaryAddr string) (*server, string) {
	t.Helper()
	srv, _ := newDurableServer(t, t.TempDir(), 0)
	srv.startFollower(primaryAddr)
	return srv, serveOn(t, srv)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// statsField extracts one k=v token from a STATS line.
func statsField(t *testing.T, stats, key string) string {
	t.Helper()
	for _, tok := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(tok, key+"="); ok {
			return v
		}
	}
	t.Fatalf("STATS %q has no field %s", stats, key)
	return ""
}

func TestReplicaFollowsPrimaryAndAnswersIdentically(t *testing.T) {
	primary, _ := newDurableServer(t, t.TempDir(), 0)
	paddr := serveOn(t, primary)
	follower, faddr := startReplica(t, paddr)

	pc := dial(t, paddr)
	for i := 0; i < 100; i++ {
		pc.expect(t, fmt.Sprintf("INS %d %d %d %g", i/5, i%8, (i/3)%8, float64(i%7)+0.25), "OK")
	}
	// Deletes only ever touch the latest slice (the paper's append-only
	// contract); replication must carry them like inserts.
	for i := 0; i < 20; i++ {
		pc.expect(t, fmt.Sprintf("DEL 19 %d %d %g", i%8, (i/3)%8, 0.25), "OK")
	}
	want := primary.walLastLSN()
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return follower.repl.applied.Load() == want
	})

	// Identical answers: cube state is a deterministic function of the
	// op stream, so every query must come back bit-identical.
	fc := dial(t, faddr)
	for _, q := range []string{
		"QRY 0 100 0 0 7 7",
		"QRY 3 9 1 2 6 6",
		"QRY 0 0 0 0 7 7",
		"QRY 7 19 2 0 5 7",
	} {
		if p, f := pc.cmd(t, q), fc.cmd(t, q); p != f {
			t.Fatalf("%s: primary %q != replica %q", q, p, f)
		}
	}
	// And identical cube state in STATS (the op-stream-derived fields;
	// the win_* latency digests are per-process, not state).
	ps, fs := pc.cmd(t, "STATS"), fc.cmd(t, "STATS")
	for _, key := range []string{"slices", "incomplete", "pending", "appended", "ooo"} {
		if p, f := statsField(t, ps, key), statsField(t, fs, key); p != f {
			t.Fatalf("STATS %s: primary %q != replica %q", key, p, f)
		}
	}
	if statsField(t, fs, "replica") != "1" {
		t.Fatalf("replica STATS missing replica=1: %q", fs)
	}
	if got := statsField(t, fs, "replica_applied_lsn"); got != fmt.Sprint(want) {
		t.Fatalf("replica_applied_lsn = %s, want %d", got, want)
	}

	// Replicas reject client mutations — their cube is written only by
	// the shipped stream.
	if got := fc.cmd(t, "INS 1000 0 0 1"); !strings.HasPrefix(got, "ERR read-only replica") {
		t.Fatalf("replica INS -> %q", got)
	}
	// Role probes on both sides.
	if got := fc.cmd(t, "ROLE"); !strings.HasPrefix(got, "OK role=replica applied_lsn=") ||
		!strings.Contains(got, "primary="+paddr) {
		t.Fatalf("replica ROLE -> %q", got)
	}
	if got := pc.cmd(t, "ROLE"); !strings.HasPrefix(got, "OK role=primary") ||
		!strings.Contains(got, "followers=1") {
		t.Fatalf("primary ROLE -> %q", got)
	}
}

func TestReplicaColdStartBootstrapsFromSnapshot(t *testing.T) {
	primary, _ := newDurableServer(t, t.TempDir(), 0)
	paddr := serveOn(t, primary)
	pc := dial(t, paddr)
	total := 0.0
	for i := 0; i < 80; i++ {
		v := float64(i%9) + 1
		pc.expect(t, fmt.Sprintf("INS %d %d %d %g", i/4, i%8, (i/2)%8, v), "OK")
		total += v
	}
	// Checkpoint rotates and prunes the pre-checkpoint segments, so a
	// cold follower asking for LSN 1 is behind the retention horizon
	// and must be served a snapshot.
	pc.expect(t, "CHECKPOINT", "OK 80")
	for i := 0; i < 20; i++ {
		pc.expect(t, fmt.Sprintf("INS %d 0 1 2", 100+i), "OK")
		total += 2
	}

	follower, faddr := startReplica(t, paddr)
	waitUntil(t, 5*time.Second, "snapshot bootstrap + catch-up", func() bool {
		return follower.repl.applied.Load() == 100 && follower.repl.synced.Load()
	})
	fc := dial(t, faddr)
	fc.expect(t, "QRY 0 1000 0 0 7 7", fmt.Sprintf("%g", total))
	if got := follower.walLastLSN(); got != 100 {
		t.Fatalf("follower log ends at LSN %d, want 100 (primary positions adopted)", got)
	}

	// The stream continues live after the bootstrap on the same link.
	pc.expect(t, "INS 200 0 0 5", "OK")
	waitUntil(t, 5*time.Second, "live record after bootstrap", func() bool {
		return follower.repl.applied.Load() == 101
	})
	fc.expect(t, "QRY 0 1000 0 0 7 7", fmt.Sprintf("%g", total+5))

	// The installed state is durable: a restart over the follower's own
	// directory recovers to the same answers without the primary.
	follower.shutdown()
	restarted, _ := newDurableServer(t, follower.walDir, 0)
	rc := dial(t, serveOn(t, restarted))
	rc.expect(t, "QRY 0 1000 0 0 7 7", fmt.Sprintf("%g", total+5))
	restarted.shutdown()
}

func TestPromotionFencingAndTakeover(t *testing.T) {
	primary, _ := newDurableServer(t, t.TempDir(), 0)
	paddr := serveOn(t, primary)
	follower, faddr := startReplica(t, paddr)
	pc := dial(t, paddr)
	for i := 0; i < 50; i++ {
		pc.expect(t, fmt.Sprintf("INS %d 0 0 1", i), "OK")
	}
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return follower.repl.applied.Load() == 50
	})

	fc := dial(t, faddr)
	// A fence above the applied position means acked writes exist that
	// this replica never received: promotion must refuse.
	if got := fc.cmd(t, "PROMOTE 60"); !strings.HasPrefix(got, "ERR promotion fenced") {
		t.Fatalf("fenced PROMOTE -> %q", got)
	}
	if !follower.isReplica() {
		t.Fatal("refused promotion still flipped the role")
	}
	// At the fence: the replica holds everything acked, take over.
	if got := fc.cmd(t, "PROMOTE 50"); !strings.HasPrefix(got, "OK role=primary last_lsn=50") {
		t.Fatalf("PROMOTE -> %q", got)
	}
	// Idempotent for a retrying proxy.
	if got := fc.cmd(t, "PROMOTE 50"); !strings.HasPrefix(got, "OK role=primary") {
		t.Fatalf("repeated PROMOTE -> %q", got)
	}
	// The promoted server accepts writes and extends the same log.
	fc.expect(t, "INS 1000 2 2 7", "OK")
	if got := follower.walLastLSN(); got != 51 {
		t.Fatalf("promoted log ends at %d, want 51", got)
	}
	fc.expect(t, "QRY 1000 1000 0 0 7 7", "7")
	if got := fc.cmd(t, "ROLE"); !strings.HasPrefix(got, "OK role=primary") {
		t.Fatalf("promoted ROLE -> %q", got)
	}
}

func TestSemiSyncHoldsAckUntilFollowerApplies(t *testing.T) {
	primary, _ := newDurableServer(t, t.TempDir(), 0)
	primary.replMinAcks = 1
	primary.replAckTimeout = 300 * time.Millisecond
	paddr := serveOn(t, primary)
	pc := dial(t, paddr)

	// No follower connected: the write lands locally but the OK cannot
	// be given — the client learns the write is indeterminate.
	if got := pc.cmd(t, "INS 1 0 0 1"); !strings.Contains(got, "replication timeout") {
		t.Fatalf("semi-sync INS without followers -> %q", got)
	}

	follower, _ := startReplica(t, paddr)
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return follower.repl.applied.Load() == 1
	})
	// With a live follower the ack arrives and the OK goes out.
	pc.expect(t, "INS 2 0 0 1", "OK")
	if follower.repl.applied.Load() != 2 && !waitApplied(follower, 2) {
		t.Fatal("acked write not applied on the follower")
	}
}

// waitApplied polls briefly for the follower to reach lsn.
func waitApplied(s *server, lsn uint64) bool {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.repl.applied.Load() >= lsn {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
