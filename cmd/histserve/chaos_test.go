package main

// Seeded chaos suite: drive the server with the deterministic fault
// injector (internal/fault) and assert the robustness invariants the
// governance layer promises — no acknowledged write is ever lost, no
// panic escapes a request, and the server always answers or cleanly
// rejects. `make chaos` runs these race-enabled; TestChaos* names are
// the contract the Makefile and CI grep for.

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"histcube/internal/fault"
	"histcube/internal/wal"
)

// enableChaosWAL attaches a durable WAL under dir to an in-process
// server, with fsync=always so every acked record is on disk.
func enableChaosWAL(t *testing.T, srv *server, dir string) {
	t.Helper()
	if _, err := srv.enableDurability(dir, wal.Options{Sync: wal.SyncAlways}, 0); err != nil {
		t.Fatalf("enableDurability: %v", err)
	}
}

// chaosQuery runs a full-range query through dispatch and parses the
// SUM (every chaos INS has value 1, so SUM counts applied records).
func chaosQuery(t *testing.T, srv *server) float64 {
	t.Helper()
	resp, _ := srv.safeDispatch(0, "QRY 0 1000000 0 0 7 7")
	v, err := strconv.ParseFloat(resp, 64)
	if err != nil {
		t.Fatalf("chaos query -> %q", resp)
	}
	return v
}

// TestChaosReadOnlyDegradationAndRecovery walks the full degradation
// state machine: a persistent out-of-space fault flips the server
// read-only (mutations rejected, queries served, /readyz 503, STATS
// degraded=1), healing the fault lets the next probe mutation through,
// and the server returns to normal service.
func TestChaosReadOnlyDegradationAndRecovery(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.inj = fault.MustParse("wal.write:nospace@4+", 1)
	srv.probeEvery = 50 * time.Millisecond
	enableChaosWAL(t, srv, filepath.Join(t.TempDir(), "data"))
	srv.markReady()
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	readyz := func() int {
		t.Helper()
		resp, err := http.Get("http://" + mln.Addr().String() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz before faults -> %d", got)
	}

	// Drive inserts until the injected disk-full lands.
	acked := 0
	var firstErr string
	for i := 0; i < 100; i++ {
		resp, _ := srv.safeDispatch(0, fmt.Sprintf("INS %d %d %d 1", i, i%8, (i/3)%8))
		if resp != "OK" {
			firstErr = resp
			break
		}
		acked++
	}
	if firstErr == "" {
		t.Fatal("the nospace fault never fired")
	}
	if !strings.Contains(firstErr, "no space") {
		t.Fatalf("first failure = %q, want the injected no-space error", firstErr)
	}
	if !srv.degraded.Load() {
		t.Fatal("server did not enter degraded mode after the storage failure")
	}

	// Mutations are now rejected fast, with the read-only prefix.
	resp, _ := srv.safeDispatch(0, "INS 1000 0 0 1")
	if !strings.HasPrefix(resp, "ERR read-only:") {
		t.Fatalf("degraded INS -> %q, want ERR read-only", resp)
	}
	// Queries keep serving the historic data exactly.
	if got := chaosQuery(t, srv); got != float64(acked) {
		t.Fatalf("degraded QRY = %v, want %d", got, acked)
	}
	stats, _ := srv.safeDispatch(0, "STATS")
	if !strings.Contains(stats, "degraded=1") {
		t.Fatalf("STATS while degraded: %q", stats)
	}
	if srv.readonlyRejects.Value() == 0 {
		t.Fatal("readonly_rejections counter did not move")
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded -> %d, want 503", got)
	}

	// Heal the disk; after the probe interval one mutation gets
	// through as a probe, succeeds, and clears the flag.
	srv.inj.Heal()
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		resp, _ := srv.safeDispatch(0, "INS 2000 0 0 1")
		if resp == "OK" {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("server never recovered after the fault was healed")
	}
	if srv.degraded.Load() {
		t.Fatal("degraded flag still set after a successful probe")
	}
	stats, _ = srv.safeDispatch(0, "STATS")
	if !strings.Contains(stats, "degraded=0") {
		t.Fatalf("STATS after recovery: %q", stats)
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz after recovery -> %d", got)
	}
	if got := chaosQuery(t, srv); got != float64(acked+1) {
		t.Fatalf("post-recovery QRY = %v, want %d", got, acked+1)
	}
	srv.shutdown()
}

// TestChaosSeededWorkloadNoAckLoss runs a mutation workload under
// probabilistic write/sync faults (transient errors, torn writes,
// latency) for fixed seeds plus one randomized seed, then recovers the
// directory with a healthy server and checks the durability invariant:
// every acknowledged record is recovered, and nothing beyond what was
// attempted appears (acked <= recovered <= sent).
func TestChaosSeededWorkloadNoAckLoss(t *testing.T) {
	seeds := []int64{1, 7, 42, time.Now().UnixNano()}
	const spec = "wal.write:err%0.05;wal.write:short%0.03;wal.sync:err%0.02;wal.write:slow=100us%0.01"
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("chaos schedule: spec=%q seed=%d", spec, seed)
			dir := filepath.Join(t.TempDir(), "data")
			srv := newQuietServer(t, "8,8", "sum", false)
			srv.inj = fault.MustParse(spec, seed)
			srv.probeEvery = time.Millisecond // keep probing so transient degradation heals fast
			enableChaosWAL(t, srv, dir)

			const workload = 400
			acked, sent := 0, 0
			for i := 0; i < workload; i++ {
				sent++
				resp, _ := srv.safeDispatch(0, fmt.Sprintf("INS %d %d %d 1", i/5, i%8, (i/3)%8))
				if resp == "OK" {
					acked++
				} else if !strings.HasPrefix(resp, "ERR") {
					t.Fatalf("op %d: non-protocol response %q", i, resp)
				}
				if strings.HasPrefix(resp, "ERR read-only:") {
					// Rejected before reaching storage; let the probe
					// clock advance so the workload keeps exercising it.
					time.Sleep(2 * time.Millisecond)
				}
			}
			if acked == 0 {
				t.Fatal("no op was acknowledged under chaos")
			}
			// Tear down without a final checkpoint: recovery must work
			// from the log alone, exactly as after a crash.
			if err := srv.wal.Close(); err != nil {
				t.Logf("closing chaotic WAL: %v (acceptable under injected sync faults)", err)
			}

			fresh := newQuietServer(t, "8,8", "sum", false)
			enableChaosWAL(t, fresh, dir)
			recovered := chaosQuery(t, fresh)
			if recovered < float64(acked) || recovered > float64(sent) {
				t.Fatalf("recovered SUM = %v, want within [acked=%d, sent=%d]", recovered, acked, sent)
			}
			t.Logf("acked=%d sent=%d recovered=%v injected_faults=%d", acked, sent, recovered, srv.inj.Injected())
			fresh.shutdown()
		})
	}
}

// TestChaosPanicRecovery injects a panic into the dispatch path and
// checks the blast radius: the panicking request answers ERR internal,
// the connection keeps serving, and the cube mutex is not poisoned —
// later mutations and queries on the same connection succeed.
func TestChaosPanicRecovery(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.inj = fault.MustParse("serve.dispatch:panic@2", 1)
	addr := serveOn(t, srv)
	c := dial(t, addr)

	if got := c.cmd(t, "INS 1 2 3 5"); got != "OK" {
		t.Fatalf("pre-panic INS -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); !strings.HasPrefix(got, "ERR internal error") {
		t.Fatalf("panicking request -> %q, want ERR internal error", got)
	}
	if srv.panics.Value() != 1 {
		t.Fatalf("recovered-panic counter = %d, want 1", srv.panics.Value())
	}
	// Same connection, post-panic: both paths of the mutex contract.
	if got := c.cmd(t, "INS 2 2 3 2"); got != "OK" {
		t.Fatalf("post-panic INS -> %q (mutex poisoned?)", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "7" {
		t.Fatalf("post-panic QRY -> %q, want 7", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}

// TestChaosGovernanceLimits covers the connection-scoped governance:
// the -max-conns cap fast-rejects the surplus connection with a single
// ERR line, and an overlong request line is answered with ERR before
// the connection is closed.
func TestChaosGovernanceLimits(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	srv.maxConns = 1
	srv.maxLineLen = 256
	addr := serveOn(t, srv)

	c1 := dial(t, addr)
	if got := c1.cmd(t, "INS 1 1 1 1"); got != "OK" {
		t.Fatalf("INS on first connection -> %q", got)
	}
	c2 := dial(t, addr)
	line, err := c2.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading cap rejection: %v", err)
	}
	if !strings.HasPrefix(line, "ERR server busy") {
		t.Fatalf("over-cap connection -> %q, want ERR server busy", strings.TrimSpace(line))
	}
	if srv.connRejects.Value() != 1 {
		t.Fatalf("rejected-connection counter = %d, want 1", srv.connRejects.Value())
	}

	// The surviving connection trips the line-length guard next.
	long := "INS " + strings.Repeat("9", 512)
	if _, err := fmt.Fprintln(c1.conn, long); err != nil {
		t.Fatal(err)
	}
	resp, err := c1.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading too-long rejection: %v", err)
	}
	if !strings.HasPrefix(resp, "ERR line too long") {
		t.Fatalf("overlong line -> %q, want ERR line too long", strings.TrimSpace(resp))
	}
	if _, err := c1.r.ReadString('\n'); err == nil {
		t.Fatal("connection survived an overlong line; the scanner cannot resynchronise, it must close")
	}

	// With the first connection gone, the server accepts new ones.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := dialOnce(addr)
		if err == nil {
			if _, err := fmt.Fprintln(c3.tcpConn.w, "QRY 0 5 0 0 7 7"); err == nil {
				_ = c3.tcpConn.w.Flush()
				if got, err := c3.tcpConn.r.ReadString('\n'); err == nil && strings.TrimSpace(got) == "1" {
					c3.close()
					return
				}
			}
			c3.close()
		}
		if time.Now().After(deadline) {
			t.Fatal("server kept rejecting connections after the slot freed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosBinaryDegradeKillRecover is the end-to-end acceptance run:
// the real binary with an armed -fault-spec fills its disk mid-
// workload, degrades to read-only while still answering queries, is
// SIGKILLed, and a healthy restart on the same directory serves
// exactly the acknowledged records — nothing lost, nothing invented.
func TestChaosBinaryDegradeKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos binary test builds and kills real processes")
	}
	bin := buildHistserve(t)
	dataDir := filepath.Join(t.TempDir(), "data")

	p1 := startHistserve(t, bin,
		"-dims", "8,8", "-op", "sum", "-data-dir", dataDir, "-fsync", "always",
		"-fault-spec", "wal.write:nospace@120+", "-fault-seed", "3",
		"-degraded-probe-every", "250ms")
	conn := dialTCP(t, p1.addr)
	acked, readonlySeen := 0, false
	for i := 0; i < 400; i++ {
		if _, err := fmt.Fprintf(conn.w, "INS %d %d %d 1\n", i/5, i%8, (i/3)%8); err != nil {
			t.Fatal(err)
		}
		if err := conn.w.Flush(); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp = strings.TrimSpace(resp)
		switch {
		case resp == "OK":
			acked++
		case strings.HasPrefix(resp, "ERR read-only:"):
			readonlySeen = true
		case strings.HasPrefix(resp, "ERR"): // the first no-space failure
		default:
			t.Fatalf("op %d: unexpected response %q", i, resp)
		}
	}
	if acked == 0 || !readonlySeen {
		t.Fatalf("workload saw acked=%d readonly=%v; the fault schedule did not engage", acked, readonlySeen)
	}
	// Degraded, but still serving queries, exactly.
	if got := query(t, conn, "QRY 0 1000000 0 0 7 7"); got != float64(acked) {
		t.Fatalf("degraded query = %v, want acked=%d", got, acked)
	}

	// Pull the plug mid-degradation.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.waitExit(t, 30*time.Second)

	// A healthy restart recovers every acknowledged record and nothing
	// else, and serves writes again.
	p2 := startHistserve(t, bin, "-dims", "8,8", "-op", "sum", "-data-dir", dataDir, "-fsync", "always")
	conn2 := dialTCP(t, p2.addr)
	if got := query(t, conn2, "QRY 0 1000000 0 0 7 7"); got != float64(acked) {
		t.Fatalf("recovered SUM = %v, want acked=%d", got, acked)
	}
	if _, err := fmt.Fprintln(conn2.w, "INS 999999 0 0 1"); err != nil {
		t.Fatal(err)
	}
	conn2.w.Flush()
	if resp, _ := conn2.r.ReadString('\n'); strings.TrimSpace(resp) != "OK" {
		t.Fatalf("post-recovery INS -> %q", strings.TrimSpace(resp))
	}
	p2.cmd.Process.Kill()
	p2.waitExit(t, 30*time.Second)
}
