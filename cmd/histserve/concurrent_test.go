package main

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentClients spins N goroutine clients doing mixed
// INS/QRY/STATS against one server and asserts a clean shutdown. Run
// under -race (CI does) it pins the server's locking contract: queries
// take the same exclusive mutex as updates, because a "read" mutates
// shared state — the eCube query algorithm lazily converts historic
// DDC cells to PS form in place and bumps shared cost counters. With a
// reader/writer split this test races; with the single mutex it must
// stay clean.
func TestConcurrentClients(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", true) // ooo: interleaved times buffer instead of failing
	addr := serveOn(t, srv)

	const clients = 8
	const opsPerClient = 60
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := dial(t, addr)
			r := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < opsPerClient; i++ {
				switch i % 3 {
				case 0:
					line := fmt.Sprintf("INS %d %d %d 1", r.Intn(100), r.Intn(8), r.Intn(8))
					if got := c.cmd(t, line); got != "OK" {
						errCh <- fmt.Errorf("client %d: %q -> %q", n, line, got)
						return
					}
				case 1:
					lo := r.Intn(8)
					line := fmt.Sprintf("QRY 0 100 %d 0 7 7", lo)
					if got := c.cmd(t, line); strings.HasPrefix(got, "ERR") {
						errCh <- fmt.Errorf("client %d: %q -> %q", n, line, got)
						return
					}
				case 2:
					if got := c.cmd(t, "STATS"); !strings.HasPrefix(got, "slices=") {
						errCh <- fmt.Errorf("client %d: STATS -> %q", n, got)
						return
					}
				}
			}
			if got := c.cmd(t, "QUIT"); got != "BYE" {
				errCh <- fmt.Errorf("client %d: QUIT -> %q", n, got)
			}
		}(n)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every update must be accounted for, either appended or buffered.
	resp, _ := srv.dispatch(0, "STATS")
	var slices, incomplete, pending, appended int
	if _, err := fmt.Sscanf(resp, "slices=%d incomplete=%d pending=%d appended=%d",
		&slices, &incomplete, &pending, &appended); err != nil {
		t.Fatalf("STATS parse: %v (%q)", err, resp)
	}
	wantUpdates := clients * opsPerClient / 3
	if appended+pending != wantUpdates {
		t.Errorf("appended %d + pending %d != %d inserts", appended, pending, wantUpdates)
	}
	// The server-side close (and its gauge decrement) runs after the
	// client reads BYE; give the handlers a moment to drain.
	deadline := time.Now().Add(2 * time.Second)
	for srv.connections.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.connections.Value(); got != 0 {
		t.Errorf("connections gauge = %d after shutdown, want 0", got)
	}
	if got := srv.connTotal.Value(); got != clients {
		t.Errorf("connections_total = %d, want %d", got, clients)
	}
	if got := srv.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %d after shutdown, want 0", got)
	}
}
