package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

func startTestServer(t *testing.T, ooo bool) (addr string) {
	t.Helper()
	srv, err := newServer("8,8", "sum", ooo)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.handle(conn)
		}
	}()
	return ln.Addr().String()
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

func TestProtocolRoundTrip(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)

	if got := c.cmd(t, "INS 1 3 4 5.5"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}
	if got := c.cmd(t, "INS 2 3 4 2.5"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "8" {
		t.Fatalf("QRY -> %q, want 8", got)
	}
	if got := c.cmd(t, "QRY 2 2 3 4 3 4"); got != "2.5" {
		t.Fatalf("point QRY -> %q", got)
	}
	if got := c.cmd(t, "DEL 2 3 4 2.5"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "5.5" {
		t.Fatalf("QRY after DEL -> %q", got)
	}
	if got := c.cmd(t, "STATS"); !strings.HasPrefix(got, "slices=2") {
		t.Fatalf("STATS -> %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	for _, bad := range []string{
		"FLY 1 2 3",
		"INS 1 2 3",       // too few fields
		"INS 1 2 3 4 5 6", // too many
		"INS x 2 3 4",     // bad int
		"QRY 1 2 3",       // too few
		"INS 5 1 1 1",     // fine
		"INS 3 1 1 1",     // out of order without buffer
		"QRY 2 1 0 0 7 7", // inverted time
		"QRY 0 9 0 0 9 9", // box out of domain
		"INS 6 9 9 1",     // coords out of domain
	} {
		got := c.cmd(t, bad)
		if bad == "INS 5 1 1 1" {
			if got != "OK" {
				t.Fatalf("%q -> %q, want OK", bad, got)
			}
			continue
		}
		if !strings.HasPrefix(got, "ERR") {
			t.Fatalf("%q -> %q, want ERR", bad, got)
		}
	}
}

func TestOutOfOrderBuffered(t *testing.T) {
	addr := startTestServer(t, true)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 20 2 2 3")
	if got := c.cmd(t, "INS 15 3 3 7"); got != "OK" {
		t.Fatalf("buffered INS -> %q", got)
	}
	if got := c.cmd(t, "QRY 14 16 0 0 7 7"); got != "7" {
		t.Fatalf("QRY over buffered update -> %q", got)
	}
	if got := c.cmd(t, "STATS"); !strings.Contains(got, "pending=1") {
		t.Fatalf("STATS -> %q", got)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer("a,b", "sum", false); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := newServer("4,4", "median", false); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestSaveAndResume(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snap.gob"
	addr := startTestServer(t, false)
	c := dial(t, addr)
	c.cmd(t, "INS 1 2 3 10")
	c.cmd(t, "INS 2 2 3 5")
	if got := c.cmd(t, "SAVE "+path); got != "OK" {
		t.Fatalf("SAVE -> %q", got)
	}
	if got := c.cmd(t, "SAVE"); got == "OK" {
		t.Fatal("SAVE without path accepted")
	}

	// Resume a fresh server from the snapshot.
	srv2, err := newServer("8,8", "sum", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.loadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	resp, _ := srv2.dispatch("QRY 0 5 0 0 7 7")
	if resp != "15" {
		t.Fatalf("resumed QRY -> %q, want 15", resp)
	}
	resp, _ = srv2.dispatch("INS 3 2 3 1")
	if resp != "OK" {
		t.Fatalf("resumed INS -> %q", resp)
	}
	if err := srv2.loadSnapshot(dir + "/missing.gob"); err == nil {
		t.Error("loading missing snapshot succeeded")
	}
}
