package main

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
)

func newQuietServer(t *testing.T, dims, op string, ooo bool) *server {
	t.Helper()
	srv, err := newServer(dims, op, ooo, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	return srv
}

func serveOn(t *testing.T, srv *server) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.handle(conn)
		}
	}()
	return ln.Addr().String()
}

func startTestServer(t *testing.T, ooo bool) (addr string) {
	t.Helper()
	return serveOn(t, newQuietServer(t, "8,8", "sum", ooo))
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

func TestProtocolRoundTrip(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)

	if got := c.cmd(t, "INS 1 3 4 5.5"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}
	if got := c.cmd(t, "INS 2 3 4 2.5"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "8" {
		t.Fatalf("QRY -> %q, want 8", got)
	}
	if got := c.cmd(t, "QRY 2 2 3 4 3 4"); got != "2.5" {
		t.Fatalf("point QRY -> %q", got)
	}
	if got := c.cmd(t, "DEL 2 3 4 2.5"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "5.5" {
		t.Fatalf("QRY after DEL -> %q", got)
	}
	if got := c.cmd(t, "STATS"); !strings.HasPrefix(got, "slices=2") {
		t.Fatalf("STATS -> %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}

// TestProtocolErrors exercises every ERR branch of dispatch.
func TestProtocolErrors(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	addr := serveOn(t, srv)
	c := dial(t, addr)
	cases := []struct {
		line string
		why  string
	}{
		{"FLY 1 2 3", "unknown command"},
		{"INS 1 2 3", "too few INS fields"},
		{"INS 1 2 3 4 5 6", "too many INS fields"},
		{"INS x 2 3 4", "bad time integer"},
		{"INS 1 x 3 4", "bad coordinate integer"},
		{"INS 1 2 3 nope", "bad value float"},
		{"INS 1 4294967296 3 4", "coordinate overflows int32"},
		{"INS 1 -4294967296 3 4", "negative coordinate overflows int32"},
		{"INS 6 9 9 1", "coords out of domain"},
		{"QRY 1 2 3", "too few QRY fields"},
		{"QRY 0 1 x 0 7 7", "bad QRY integer"},
		{"QRY 0 1 4294967296 0 7 7", "QRY coordinate overflows"},
		{"QRY 2 1 0 0 7 7", "inverted time range"},
		{"QRY 0 9 0 0 9 9", "box out of domain"},
		{"SAVE", "SAVE without path"},
		{"SAVE /nonexistent-dir/snap.gob", "SAVE to unwritable path"},
	}
	if got := c.cmd(t, "INS 5 1 1 1"); got != "OK" {
		t.Fatalf("seed INS -> %q", got)
	}
	cases = append(cases, struct{ line, why string }{"INS 3 1 1 1", "out of order without buffer"})
	for _, tc := range cases {
		if got := c.cmd(t, tc.line); !strings.HasPrefix(got, "ERR") {
			t.Errorf("%s: %q -> %q, want ERR", tc.why, tc.line, got)
		}
	}
	// The empty-command branch is unreachable over the wire (handle
	// skips blank lines), so hit dispatch directly.
	if got, _ := srv.dispatch(0, "   "); !strings.HasPrefix(got, "ERR") {
		t.Errorf("blank dispatch -> %q, want ERR", got)
	}
	// Every ERR above must be visible in the error counters.
	total := int64(0)
	for _, cmd := range commands {
		total += srv.errors[cmd].Value()
	}
	if want := int64(len(cases) + 1); total != want {
		t.Errorf("error counter total = %d, want %d", total, want)
	}
}

func TestOutOfOrderBuffered(t *testing.T) {
	addr := startTestServer(t, true)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 20 2 2 3")
	if got := c.cmd(t, "INS 15 3 3 7"); got != "OK" {
		t.Fatalf("buffered INS -> %q", got)
	}
	if got := c.cmd(t, "QRY 14 16 0 0 7 7"); got != "7" {
		t.Fatalf("QRY over buffered update -> %q", got)
	}
	if got := c.cmd(t, "STATS"); !strings.Contains(got, "pending=1") {
		t.Fatalf("STATS -> %q", got)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer("a,b", "sum", false, 0); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := newServer("4,4", "median", false, 0); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestSaveAndResume(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snap.gob"
	addr := startTestServer(t, false)
	c := dial(t, addr)
	c.cmd(t, "INS 1 2 3 10")
	c.cmd(t, "INS 2 2 3 5")
	if got := c.cmd(t, "SAVE "+path); got != "OK" {
		t.Fatalf("SAVE -> %q", got)
	}
	if got := c.cmd(t, "SAVE"); got == "OK" {
		t.Fatal("SAVE without path accepted")
	}

	// Resume a fresh server from the snapshot.
	srv2 := newQuietServer(t, "8,8", "sum", false)
	if err := srv2.loadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	resp, _ := srv2.dispatch(0, "QRY 0 5 0 0 7 7")
	if resp != "15" {
		t.Fatalf("resumed QRY -> %q, want 15", resp)
	}
	resp, _ = srv2.dispatch(0, "INS 3 2 3 1")
	if resp != "OK" {
		t.Fatalf("resumed INS -> %q", resp)
	}
	// The snapshot-load duration and the post-resume operations must
	// land in the same instrument set (re-attached to the new cube).
	if srv2.ins.SnapshotLoad.Count() != 1 {
		t.Errorf("snapshot load observations = %d, want 1", srv2.ins.SnapshotLoad.Count())
	}
	if srv2.ins.Insert.Count() != 1 {
		t.Errorf("post-resume insert observations = %d, want 1", srv2.ins.Insert.Count())
	}
	if err := srv2.loadSnapshot(dir + "/missing.gob"); err == nil {
		t.Error("loading missing snapshot succeeded")
	}
}

// TestStatsExtended pins the extended STATS fields: the original four
// stay first (wire compatibility), the new counters follow.
func TestStatsExtended(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	c.cmd(t, "INS 1 1 1 2")
	c.cmd(t, "INS 2 2 2 3")
	c.cmd(t, "QRY 1 1 0 0 7 7") // historic -> eCube conversions
	got := c.cmd(t, "STATS")
	if !strings.HasPrefix(got, "slices=2 incomplete=") {
		t.Fatalf("STATS prefix changed: %q", got)
	}
	for _, field := range []string{
		"appended=2", "ooo=0", "conversions=", "conversions_query=",
		"conversions_append=0", "cells_touched=",
		"forced_copies=", "copy_ahead=", "demoted=0",
		"cache_accesses=", "store_accesses=",
	} {
		if !strings.Contains(got, field) {
			t.Errorf("STATS missing %q: %q", field, got)
		}
	}
	// The historic query must have converted at least one cell, STATS
	// must report it, and the trigger split must attribute it to the
	// query leg (appends never run the eCube algorithm).
	if strings.Contains(got, "conversions=0 ") {
		t.Errorf("historic query reported zero conversions: %q", got)
	}
	if strings.Contains(got, "conversions_query=0 ") {
		t.Errorf("conversions not attributed to the query trigger: %q", got)
	}
}

// TestMetricsEndpoint drives the server under a small load and
// scrapes /metrics: query latency buckets must be populated and
// histcube_ecube_conversions_total must increase monotonically across
// repeated historic queries — the paper's lazy-conversion convergence
// made observable.
func TestMetricsEndpoint(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	addr := serveOn(t, srv)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	base := "http://" + mln.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s -> %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if got := get("/healthz"); strings.TrimSpace(got) != "ok" {
		t.Errorf("/healthz -> %q", got)
	}

	c := dial(t, addr)
	for i := 0; i < 16; i++ {
		if got := c.cmd(t, fmt.Sprintf("INS %d %d %d 1", i, i%8, (i*3)%8)); got != "OK" {
			t.Fatalf("INS -> %q", got)
		}
	}
	// The conversions counter is split by trigger label; sum the legs
	// for the monotonic total and keep the query leg for attribution.
	conversionsBy := func(body, trigger string) (v int64) {
		prefix := fmt.Sprintf(`histcube_ecube_conversions_total{trigger=%q} `, trigger)
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				fmt.Sscanf(rest, "%d", &v)
			}
		}
		return v
	}
	conversions := func(body string) int64 {
		return conversionsBy(body, "query") + conversionsBy(body, "append")
	}

	c.cmd(t, "QRY 0 3 0 0 7 7") // historic query
	body1 := get("/metrics")
	for _, want := range []string{
		"# TYPE histcube_query_duration_seconds histogram",
		`histcube_query_duration_seconds_bucket{le="+Inf"} 1`,
		"# TYPE histcube_ecube_conversions_total counter",
		"# TYPE histserve_requests_total counter",
		`histserve_requests_total{cmd="INS"} 16`,
		`histserve_requests_total{cmd="QRY"} 1`,
		"histserve_connections 1",
		"histserve_connections_total 1",
		"histcube_slices 16",
	} {
		if !strings.Contains(body1, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	conv1 := conversions(body1)
	if conv1 == 0 {
		t.Fatalf("no conversions after historic query:\n%s", body1)
	}

	// Repeated historic queries over fresh regions keep converting;
	// the counter must grow and never shrink.
	prev := conv1
	for _, q := range []string{"QRY 4 6 1 1 6 6", "QRY 0 9 2 0 5 7", "QRY 2 5 0 2 7 5"} {
		c.cmd(t, q)
		cur := conversions(get("/metrics"))
		if cur < prev {
			t.Fatalf("conversions shrank: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev <= conv1 {
		t.Errorf("conversions did not grow across varied historic queries: %d -> %d", conv1, prev)
	}
	if leg := conversionsBy(get("/metrics"), "append"); leg != 0 {
		t.Errorf("append-triggered conversions = %d, want 0 (appends never run the eCube algorithm)", leg)
	}

	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}
