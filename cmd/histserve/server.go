// Command histserve exposes a histcube over TCP with a line-oriented
// text protocol, turning the append-only cube into a tiny aggregation
// service for streaming sources (the data-warehouse loading scenario
// of the paper's introduction).
//
// Usage:
//
//	histserve -addr :7070 -dims 16,16 -op sum [-ooo] [-metrics :9090]
//
// Protocol (one request per line, one response per line unless noted):
//
//	INS <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	DEL <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	QRY <tlo> <thi> <l1> ... <ld> <u1> ... <ud> -> <number> | ERR <msg>
//	EXPLAIN QRY <args>                 -> OK result=<number>, span tree,
//	                                      totals line, END | ERR <msg>
//	EXPLAIN JSON QRY <args>            -> OK {"result":...,"trace":{...}}
//	                                      (single line; the structured
//	                                      span tree histproxy grafts)
//	SLOWLOG                            -> OK n=<n> ..., one line per
//	                                      retained trace, END
//	VERSION                            -> OK histserve rev=<git-rev> go=<ver>
//	SEAL [<time>]                      -> OK sealed_through=<t> | ERR <msg>
//	ROLE                               -> OK role=primary last_lsn=<n> followers=<n>
//	                                      | OK role=replica applied_lsn=<n> lag_lsn=<n> primary=<addr>
//	PROMOTE [<min_lsn>]                -> OK role=primary ... | ERR promotion fenced ...
//	REPLICATE FROM <lsn>               -> hijacks the connection for WAL
//	                                      shipping (see repl.go)
//	STATS                              -> slices=<n> incomplete=<n> pending=<n> appended=<n> ...
//	SAVE <path>                        -> OK | ERR <msg> (cube snapshot)
//	CHECKPOINT                         -> OK <lsn> | ERR <msg> (durable mode only)
//	QUIT                               -> BYE (closes the connection)
//
// STATS carries the full counter set (see README's Observability
// section): out-of-order totals, eCube conversion progress (split by
// query/append trigger), lazy-copy work, tier demotions and access
// counts, plus trailing win_* fields digesting the sliding latency
// window (-perf-window) for QRY and INS: ops/sec, p50 and p99 in
// microseconds over the last N seconds.
//
// Every request is traced (internal/trace): EXPLAIN renders the span
// tree with the paper's per-query cost counters, SLOWLOG returns the
// worst traces at or above -slow-query-threshold (bounded by
// -slowlog-size), and the metrics listener serves them as JSON.
// Distributed tracing: any request line may carry a leading
// "TID=<16 hex>" token (histproxy stamps one on every shard leg); the
// request's root span adopts that trace ID, so one identifier
// correlates the query across proxy and shard slog lines, SLOWLOG
// entries and both /debug/trace/recent feeds.
//
// Start with -load <path> to resume from a snapshot written by SAVE
// (the -dims and -op flags must match the snapshot's configuration).
//
// With -data-dir the server is durable: every acknowledged mutation is
// first appended to a write-ahead log (internal/wal) under the given
// directory, -fsync selects the always/interval/never fsync policy,
// and -checkpoint-every N writes a cube snapshot and truncates the log
// every N records (CHECKPOINT forces one on demand). On boot the
// server recovers from the latest valid checkpoint plus the log tail,
// truncating a torn final record. SIGINT/SIGTERM trigger a graceful
// shutdown: stop accepting connections, write a final checkpoint,
// flush and fsync the log, exit 0.
//
// With -metrics the server additionally serves a Prometheus-style
// endpoint: GET /metrics renders every histcube_* and histserve_*
// metric in text exposition format, GET /healthz answers "ok"
// (liveness), GET /readyz answers "ok" only once WAL recovery has
// finished (readiness — 503 while replaying). The same listener
// serves GET /debug/slowlog and /debug/trace/recent (retained traces
// as JSON), GET /debug/perf (per-command sliding-window latency
// digests as JSON — the feed cmd/histperf scrapes) and the standard
// /debug/pprof/* profiling endpoints. Start with
// -mutex-profile-fraction / -block-profile-rate to populate
// /debug/pprof/mutex and /debug/pprof/block when profiling the
// single-mutex bottleneck.
//
// Resource governance: -max-conns caps concurrently open client
// connections (excess connections get one "ERR server busy" line and
// are closed), -read-timeout closes idle connections and doubles as
// the write deadline on every response (a client that stops reading
// cannot pin a goroutine on a blocked flush), -max-line-bytes
// bounds the request line a client may send, and -request-timeout puts
// a context deadline on every INS/DEL/QRY/EXPLAIN — long-running
// eCube evaluations poll it cooperatively and abandon the request with
// "ERR timeout". A panic inside a request is recovered per connection:
// the client sees "ERR internal", the span tree and stack go to the
// log, and the cube mutex is released by defer rather than poisoned.
//
// Graceful degradation: when the durable layer fails persistently — a
// WAL append that survives its retry budget, or out-of-space anywhere
// on the checkpoint path — the server flips to read-only. Mutations
// are rejected with "ERR read-only: ..." while queries keep serving
// the historic data (the paper's historic slices are immutable, so
// reads need no healthy write path). Every -degraded-probe-every, one
// mutation is let through as a recovery probe; the first success
// clears the flag. /readyz answers 503 and STATS reports degraded=1
// while the state lasts.
//
// The hidden -fault-spec / -fault-seed flags arm the deterministic
// fault injector (internal/fault) on the WAL segment files and the
// dispatch loop for chaos runs; see that package for the spec grammar.
//
// Replication: start with -follow <primary> (plus -data-dir) to run
// as a replica — the server tails the primary's WAL over a REPLICATE
// connection, applies every acked record to its own log and cube
// (answers are bit-identical to the primary's, since cube state is a
// deterministic function of the op stream), rejects client mutations,
// and reports its positions via ROLE, STATS (replica=1,
// replica_applied_lsn, replica_lag_lsn) and /readyz. A follower whose
// position fell behind the primary's checkpoint retention is
// bootstrapped automatically from a shipped snapshot. PROMOTE turns a
// follower into a primary during failover; -repl-min-acks N makes a
// primary hold each mutation's OK until N followers acknowledged it
// (semi-synchronous replication), so failover loses no acked write.
//
// Sharding support: SEAL <t> (or bare SEAL for everything) makes all
// times at or below t read-only — mutations into the sealed range get
// "ERR sealed: ..." while queries keep serving. A sharding proxy
// (cmd/histproxy) demotes a historic shard by sealing the time range
// it owns, so a misrouted or replayed mutation cannot silently land in
// history that other shards now answer for. The seal boundary only
// ever rises, is reported by STATS as sealed_through, and is a runtime
// state, not a durable one: pass -seal-through on restart (the shard
// map, not the shard, is the source of truth for ownership). VERSION
// lets clients and probes verify which build they reached; STATS
// carries the same revision as git_rev.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/dims"
	"histcube/internal/fault"
	"histcube/internal/obs"
	"histcube/internal/perf"
	"histcube/internal/trace"
	"histcube/internal/wal"
)

// errWALAppend marks an op-sink failure: the WAL could not append the
// mutation, so it was never applied. isStorageFailure keys off it to
// flip the server read-only.
var errWALAppend = errors.New("wal append failed")

// errInternal is the client-visible face of a recovered panic; the
// span tree and stack stay in the server log.
var errInternal = errors.New("internal error (recovered panic; see server log)")

// commands lists every protocol verb, used to pre-register one
// labelled request/error counter per command ("other" catches unknown
// verbs so a misbehaving client cannot grow the label set unbounded).
var commands = []string{"INS", "DEL", "QRY", "EXPLAIN", "SLOWLOG", "STATS", "SAVE", "CHECKPOINT", "SEAL", "VERSION", "ROLE", "PROMOTE", "REPLICATE", "QUIT", "other"}

// server is one histserve instance.
//
// Locking contract: mu guards the cube — every cube call, including
// queries. Queries mutate shared state (the eCube conversion rewrites
// historic DDC cells to PS form, and the read path bumps cost
// counters), so a plain RWMutex read lock would race; the single
// mutex is load-bearing, not an oversight. The metrics registry is
// not guarded by mu: metric primitives are atomic, and the
// state-derived callbacks registered in newServer take mu themselves
// at scrape time.
type server struct {
	mu   sync.Mutex
	cube *core.Cube // guarded by mu
	dims int

	reg *obs.Registry
	ins *core.Instruments
	log *slog.Logger

	// wal, when non-nil, makes the server durable: the cube's op sink
	// appends (and, under -fsync=always, fsyncs) every mutation before
	// it is applied, and checkpointEvery drives automatic snapshots.
	wal             *wal.Log // guarded by mu
	checkpointEvery int64    // guarded by mu

	// walDir/walOpts are retained after enableDurability (startup-only
	// from then on) so a follower can re-run recovery after installing a
	// snapshot shipped by its primary; cubeCfg rebuilds a fresh cube for
	// that recovery.
	walDir  string
	walOpts wal.Options
	cubeCfg core.Config

	// Replication (see repl.go): repl is non-nil in follower mode
	// (-follow) and set before the listener starts; hub aggregates
	// follower acknowledgements on the primary side so mutations can
	// wait for -repl-min-acks replicas before answering OK.
	repl           *replState
	hub            *replHub
	replMinAcks    int           // startup-only, like the governance knobs
	replAckTimeout time.Duration // startup-only

	// slow retains the worst query traces at or above its threshold;
	// recent is a ring of the last finished request traces regardless of
	// duration. Both carry their own locks, so they are deliberately
	// outside the mu contract — Observe/Add run after mu is released.
	slow   *trace.SlowLog
	recent *trace.Ring

	// perf records per-command request latency into sliding windows
	// (internal/perf); like slow/recent it is atomic internally and
	// outside the mu contract. STATS, /debug/perf and the
	// histserve_cmd_latency_* gauges read it.
	perf *perf.Set

	// ready flips to true once startup (snapshot load, WAL recovery) has
	// finished; /readyz answers 503 until then while /healthz stays a
	// pure liveness probe.
	ready atomic.Bool

	// Resource governance knobs, set from flags before the listener
	// starts (startup-only, like dims); zero values disable each limit.
	reqTimeout  time.Duration // per-request context deadline
	readTimeout time.Duration // idle-connection read deadline; doubles as the per-write deadline
	maxLineLen  int           // largest accepted request line in bytes
	maxConns    int64         // open-connection cap; 0 = unlimited
	probeEvery  time.Duration // recovery-probe interval while degraded

	// shape is the cube's per-dimension domain, frozen at startup (the
	// protocol's arity and domains cannot change while serving); used to
	// reject out-of-range coordinates at the boundary.
	shape []int

	// inj is the optional fault injector (-fault-spec); a nil *Injector
	// is inert, so call sites need no guard.
	inj *fault.Injector

	// sealedThrough is the seal boundary: mutations with time at or
	// below it are rejected (historic-shard demotion). math.MinInt64
	// means nothing is sealed; the value only ever rises (SEAL and
	// -seal-through), never falls.
	sealedThrough atomic.Int64

	// meta self-describes the running build (git revision); VERSION
	// and the STATS git_rev field report it so benchmark records can
	// verify the binary they actually hit.
	meta perf.RunMeta

	// Degradation state machine: degraded flips on persistent storage
	// failure and back off when a probe mutation succeeds. degradedMsg
	// holds the cause (a string); lastProbeNano serialises probe slots
	// via CAS so the reject fast path never takes mu.
	degraded      atomic.Bool
	degradedMsg   atomic.Value
	lastProbeNano atomic.Int64

	liveConns   atomic.Int64
	connSeq     atomic.Int64
	connections *obs.Gauge
	connTotal   *obs.Counter
	inflight    *obs.Gauge
	requests    map[string]*obs.Counter
	errors      map[string]*obs.Counter

	readonlyRejects *obs.Counter
	panics          *obs.Counter
	connRejects     *obs.Counter
	degradedFlips   *obs.Counter
}

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		dimsArg = flag.String("dims", "16,16", "comma-separated non-time dimension sizes")
		opArg   = flag.String("op", "sum", "aggregate operator: sum, count, avg")
		ooo     = flag.Bool("ooo", false, "buffer out-of-order updates instead of rejecting them")
		load    = flag.String("load", "", "resume from a snapshot written by the SAVE command")
		metrics = flag.String("metrics", "", "optional HTTP listen address serving /metrics and /healthz (e.g. :9090)")
		dataDir = flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); empty disables durability")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always, interval, never (with -data-dir)")
		ckptN   = flag.Int64("checkpoint-every", 10000, "checkpoint every N WAL records; 0 = only on CHECKPOINT/shutdown (with -data-dir)")
		slowThr = flag.Duration("slow-query-threshold", 10*time.Millisecond, "queries at or above this duration enter the slow-query log")
		slowCap = flag.Int("slowlog-size", 32, "worst traces retained by the slow-query log")
		reqTO   = flag.Duration("request-timeout", 10*time.Second, "per-request deadline for INS/DEL/QRY/EXPLAIN; 0 disables")
		readTO  = flag.Duration("read-timeout", 5*time.Minute, "close connections idle for this long; also bounds each response write; 0 disables")
		maxLine = flag.Int("max-line-bytes", 1<<20, "largest accepted request line in bytes")
		maxConn = flag.Int64("max-conns", 256, "open client connections accepted at once; 0 = unlimited")
		probeIv = flag.Duration("degraded-probe-every", 2*time.Second, "while read-only, let one mutation through per interval to probe storage recovery")
		sealArg = flag.String("seal-through", "", "reject mutations with time at or below this value (historic-shard demotion; the SEAL command raises it at runtime); empty seals nothing")
		follow  = flag.String("follow", "", "run as a replica of the given primary histserve address: apply its WAL stream and reject client mutations until PROMOTE (requires -data-dir)")
		minAcks = flag.Int("repl-min-acks", 0, "followers that must acknowledge a mutation before the client sees OK (semi-synchronous replication); 0 = asynchronous")
		ackTO   = flag.Duration("repl-ack-timeout", 2*time.Second, "how long a mutation waits for -repl-min-acks follower acknowledgements before answering ERR (the write is then indeterminate, not failed)")
		fspec   = flag.String("fault-spec", "", "fault-injection spec for chaos testing (see internal/fault); empty disables")
		fseed   = flag.Int64("fault-seed", 1, "seed for probabilistic -fault-spec rules")
		perfWin = flag.Duration("perf-window", 10*time.Second, "sliding window for per-command latency/throughput digests (STATS, /debug/perf, histserve_cmd_latency_* metrics)")
		mutexPF = flag.Int("mutex-profile-fraction", 0, "runtime mutex profile sampling fraction (1 samples every contention event, 0 disables); populates /debug/pprof/mutex and scales histcube_lock_contention_events_total")
		blockPR = flag.Int("block-profile-rate", 0, "runtime block profile sampling rate in ns (1 records every blocking event, 0 disables); populates /debug/pprof/block")
		rtEvery = flag.Duration("runtime-metrics-every", 10*time.Second, "sampling interval for histcube_runtime_* gauges (GC pause, goroutines, scheduler latency); 0 disables the sampler")
	)
	flag.Parse()

	// Profiling the single-mutex bottleneck needs these set before any
	// contention happens; both default off because sampling costs the
	// hot path a little.
	if *mutexPF > 0 {
		runtime.SetMutexProfileFraction(*mutexPF)
	}
	if *blockPR > 0 {
		runtime.SetBlockProfileRate(*blockPR)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := newServer(*dimsArg, *opArg, *ooo, *perfWin)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	srv.log = logger
	srv.slow = trace.NewSlowLog(*slowCap, *slowThr)
	if *rtEvery > 0 {
		rc := obs.NewRuntimeCollector(srv.reg)
		defer rc.Start(*rtEvery)()
	}
	srv.reqTimeout = *reqTO
	srv.readTimeout = *readTO
	srv.maxLineLen = *maxLine
	srv.maxConns = *maxConn
	srv.probeEvery = *probeIv
	if *sealArg != "" {
		t, err := strconv.ParseInt(*sealArg, 10, 64)
		if err != nil {
			logger.Error("bad -seal-through: want an integer time", "value", *sealArg, "err", err)
			os.Exit(1)
		}
		srv.sealThrough(t)
		logger.Info("sealed", "through", t)
	}
	if *fspec != "" {
		inj, err := fault.Parse(*fspec, *fseed)
		if err != nil {
			logger.Error("bad -fault-spec", "err", err)
			os.Exit(1)
		}
		srv.inj = inj
		inj.RegisterMetrics(srv.reg)
		logger.Warn("fault injection armed", "fault", inj.String())
	}
	if *load != "" && *dataDir != "" {
		logger.Error("-load and -data-dir are mutually exclusive (the data directory has its own checkpoints)")
		os.Exit(1)
	}
	// The debug/metrics listener comes up before recovery so operators
	// can watch a long WAL replay: /healthz (liveness) answers during
	// it, /readyz answers 503 until markReady below.
	if *metrics != "" {
		mln, err := srv.serveMetrics(*metrics)
		if err != nil {
			logger.Error("metrics listener failed", "addr", *metrics, "err", err)
			os.Exit(1)
		}
		logger.Info("metrics listening", "addr", mln.Addr().String())
	}
	if *load != "" {
		if err := srv.loadSnapshot(*load); err != nil {
			logger.Error("loading snapshot failed", "path", *load, "err", err)
			os.Exit(1)
		}
		logger.Info("resumed from snapshot", "path", *load)
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			logger.Error("bad -fsync flag", "err", err)
			os.Exit(1)
		}
		res, err := srv.enableDurability(*dataDir, wal.Options{Sync: policy}, *ckptN)
		if err != nil {
			logger.Error("recovery failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		logger.Info("recovered",
			"dir", *dataDir, "fsync", policy.String(),
			"checkpoint_lsn", res.CheckpointLSN, "replayed", res.Replayed,
			"skipped_ops", res.SkippedOps, "torn_tail", res.TornTail,
			"checkpoints_skipped", res.CheckpointsSkipped)
	}
	srv.replMinAcks = *minAcks
	srv.replAckTimeout = *ackTO
	if *follow != "" {
		if *dataDir == "" {
			logger.Error("-follow requires -data-dir (the replica keeps its own durable log)")
			os.Exit(1)
		}
		srv.startFollower(*follow)
		logger.Info("follower mode", "primary", *follow)
	}
	srv.markReady()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// Graceful shutdown: the signal goroutine only closes the
	// listener; the accept loop then runs the actual shutdown on the
	// main goroutine and returns, so the process exits 0 strictly
	// after the final checkpoint and WAL fsync completed.
	var closing atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutdown signal received", "signal", s.String())
		closing.Store(true)
		_ = ln.Close() // unblocking Accept is the point; the error is uninteresting
	}()
	logger.Info("listening", "addr", ln.Addr().String(), "dims", srv.dims, "op", *opArg)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if closing.Load() {
				srv.shutdown()
				logger.Info("shutdown complete")
				return
			}
			logger.Error("accept failed", "err", err)
			os.Exit(1)
		}
		go srv.handle(conn)
	}
}

// enableDurability recovers the cube from dir and attaches the WAL:
// the recovered (or fresh) cube replaces the server's, its op sink
// appends to the log, and WAL metrics join the registry. The recovered
// cube's dimensions must match the -dims flag, which fixes the
// protocol's coordinate arity.
func (s *server) enableDurability(dir string, opts wal.Options, checkpointEvery int64) (wal.RecoverResult, error) {
	opts.Metrics = wal.NewMetrics(s.reg)
	if inj := s.inj; inj != nil {
		// fault.File is a structural copy of wal.SegmentFile, so the
		// interface values convert both ways without an adapter.
		opts.WrapSegment = func(f wal.SegmentFile) wal.SegmentFile {
			return inj.WrapFile("wal", f)
		}
	}
	s.walDir, s.walOpts = dir, opts
	s.mu.Lock()
	fresh := s.cube // still untouched; captured under mu so Recover's callback needs no lock
	s.checkpointEvery = checkpointEvery
	s.mu.Unlock()
	// Recovery runs without mu so the metrics listener stays live during
	// a long replay (its state callbacks take mu at scrape time).
	cube, log, res, err := s.recoverWAL(func() (*core.Cube, error) {
		return fresh, nil
	})
	if err != nil {
		return res, err
	}
	// Registered through an indirection, not on the log itself: a
	// follower installing a shipped snapshot swaps the log, and the
	// gauges must follow the swap.
	wal.RegisterStateMetricsFunc(s.reg, func() *wal.Log {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.wal
	})
	s.mu.Lock()
	s.attachRecoveredLocked(cube, log)
	s.mu.Unlock()
	return res, nil
}

// recoverWAL recovers a cube+log pair from the durable directory
// captured by enableDurability, enforcing the -dims contract. Shared
// by startup recovery and a follower's snapshot re-recovery.
func (s *server) recoverWAL(fallback func() (*core.Cube, error)) (*core.Cube, *wal.Log, wal.RecoverResult, error) {
	cube, log, res, err := wal.Recover(s.walDir, s.walOpts, fallback)
	if err != nil {
		return nil, nil, res, err
	}
	if shape := cube.Shape(); len(shape) != s.dims {
		_ = log.Close() // the dimension mismatch is the actionable error
		return nil, nil, res, fmt.Errorf("recovered cube has %d dimensions, -dims specifies %d", len(shape), s.dims)
	}
	return cube, log, res, nil
}

// attachRecoveredLocked wires a recovered cube+log into the server:
// instruments, the durable op sink, and the serving fields. The caller
// holds mu.
func (s *server) attachRecoveredLocked(cube *core.Cube, log *wal.Log) {
	cube.SetInstruments(s.ins)
	cube.SetOpSink(func(op core.Op) error {
		if _, err := log.Append(op); err != nil {
			return fmt.Errorf("%w: %w", errWALAppend, err)
		}
		return nil
	})
	s.cube = cube
	s.wal = log
	s.shape = cube.Shape()
}

// shutdown writes a final checkpoint and closes the WAL and cube. It
// holds mu throughout, so in-flight requests finish first and later
// ones fail cleanly on the closed log.
func (s *server) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if lsn, err := s.wal.Checkpoint(s.cube.Save); err != nil {
			s.log.Error("final checkpoint failed", "err", err)
		} else {
			s.log.Info("final checkpoint written", "lsn", lsn)
		}
		if err := s.wal.Close(); err != nil {
			s.log.Error("closing WAL failed", "err", err)
		}
	}
	if err := s.cube.Close(); err != nil {
		s.log.Error("closing cube failed", "err", err)
	}
}

// maybeCheckpointLocked runs the every-N-records checkpoint policy;
// the caller holds mu. Checkpoint failures are logged, not fatal: the
// log keeps growing, so durability degrades to slower recovery rather
// than data loss — unless the failure is out-of-space, which means
// appends are about to fail too, so the server degrades to read-only
// proactively.
func (s *server) maybeCheckpointLocked() {
	if s.wal == nil {
		return
	}
	ran, err := s.wal.MaybeCheckpoint(s.checkpointEvery, s.cube.Save)
	if err != nil {
		s.log.Error("checkpoint failed", "err", err)
		if isStorageFailure(err) {
			s.setDegraded(err)
		}
	} else if ran {
		s.log.Info("checkpoint written", "lsn", s.wal.LastLSN())
	}
}

func newServer(dimsArg, opArg string, ooo bool, perfWindow time.Duration) (*server, error) {
	var ds []core.Dim
	for i, part := range strings.Split(dimsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", part, err)
		}
		ds = append(ds, core.Dim{Name: fmt.Sprintf("d%d", i), Size: n})
	}
	var op agg.Operator
	switch opArg {
	case "sum":
		op = agg.Sum
	case "count":
		op = agg.Count
	case "avg":
		op = agg.Average
	default:
		return nil, fmt.Errorf("unknown operator %q", opArg)
	}
	cfg := core.Config{Dims: ds, Operator: op, BufferOutOfOrder: ooo}
	cube, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if perfWindow <= 0 {
		perfWindow = 10 * time.Second
	}
	s := &server{
		cube:       cube,
		cubeCfg:    cfg,
		dims:       len(ds),
		shape:      cube.Shape(),
		hub:        newReplHub(),
		reg:        obs.NewRegistry(),
		log:        slog.Default(),
		slow:       trace.NewSlowLog(32, 10*time.Millisecond),
		recent:     trace.NewRing(64),
		perf:       perf.NewSet(perfWindow, commands...),
		maxLineLen: 1 << 20,
		probeEvery: 2 * time.Second,
		meta:       perf.CollectMeta("histserve"),
	}
	s.sealedThrough.Store(math.MinInt64)
	s.perf.Register(s.reg)
	s.ins = core.NewInstruments(s.reg)
	cube.SetInstruments(s.ins)
	core.RegisterStatsMetrics(s.reg, func() core.Stats {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cube.Stats()
	})
	s.connections = s.reg.NewGauge("histserve_connections", "Open client connections.")
	s.connTotal = s.reg.NewCounter("histserve_connections_total", "Client connections accepted since start.")
	s.inflight = s.reg.NewGauge("histserve_inflight_requests", "Requests currently being dispatched.")
	s.requests = make(map[string]*obs.Counter, len(commands))
	s.errors = make(map[string]*obs.Counter, len(commands))
	for _, cmd := range commands {
		s.requests[cmd] = s.reg.NewCounter("histserve_requests_total",
			"Requests dispatched, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
		s.errors[cmd] = s.reg.NewCounter("histserve_errors_total",
			"Requests answered with ERR, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
	}
	s.readonlyRejects = s.reg.NewCounter("histserve_readonly_rejections_total",
		"Mutations rejected while the server was in degraded read-only mode.")
	s.panics = s.reg.NewCounter("histserve_panics_recovered_total",
		"Request panics recovered into ERR internal responses.")
	s.connRejects = s.reg.NewCounter("histserve_connections_rejected_total",
		"Connections rejected at the -max-conns cap.")
	s.degradedFlips = s.reg.NewCounter("histserve_degraded_transitions_total",
		"Transitions into degraded read-only mode.")
	s.reg.NewGaugeFunc("histcube_degraded",
		"1 while the server is in degraded read-only mode, 0 when healthy.",
		func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	return s, nil
}

// serveMetrics starts the Prometheus-style HTTP listener. It returns
// the bound listener so callers (and tests) learn the resolved port.
func (s *server) serveMetrics(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.log.Error("metrics render failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness is distinct from liveness: during WAL replay the
	// process is alive but must not receive traffic yet, and in
	// degraded read-only mode a load balancer should route mutating
	// traffic elsewhere.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		if s.degraded.Load() {
			msg, _ := s.degradedMsg.Load().(string)
			http.Error(w, "degraded: "+msg, http.StatusServiceUnavailable)
			return
		}
		// A replica is ready once it has caught up to its primary's
		// frontier at least once; until then routing reads to it would
		// serve answers from before the bootstrap finished.
		if s.isReplica() {
			r := s.repl
			if !r.synced.Load() {
				http.Error(w, fmt.Sprintf("replica syncing: applied_lsn=%d replica_lag_lsn=%d",
					r.applied.Load(), r.lag()), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintf(w, "ok replica_lag_lsn=%d\n", r.lag())
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, s.log, map[string]any{
			"threshold_ns": s.slow.Threshold().Nanoseconds(),
			"capacity":     s.slow.Cap(),
			"observed":     s.slow.Observed(),
			"admitted":     s.slow.Admitted(),
		}, s.slow.Entries())
	})
	mux.HandleFunc("/debug/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, s.log, map[string]any{
			"capacity": s.recent.Cap(),
		}, s.recent.Entries())
	})
	// Per-command sliding-window digests — the JSON feed cmd/histperf
	// scrapes; the same numbers back the histserve_cmd_latency_*
	// gauges on /metrics and the STATS win_* fields.
	mux.HandleFunc("/debug/perf", func(w http.ResponseWriter, r *http.Request) {
		byCmd := make(map[string]perf.Snapshot, len(commands))
		for _, cmd := range s.perf.Names() {
			byCmd[cmd] = s.perf.Snapshot(cmd)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"window_ns": s.perf.Window().Nanoseconds(),
			"commands":  byCmd,
		}); err != nil {
			s.log.Error("perf JSON render failed", "err", err)
		}
	})
	// pprof normally registers on http.DefaultServeMux at import; this
	// listener uses its own mux, so the handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !strings.Contains(err.Error(), "use of closed") {
			s.log.Error("metrics server stopped", "err", err)
		}
	}()
	return ln, nil
}

// handle serves one connection. Each connection gets a process-unique
// id for log correlation and its requests/errors are accounted both
// globally (metrics) and per connection (the close log line). A
// connection past the -max-conns cap is rejected with a single ERR
// line before any per-connection state is set up, so an accept flood
// cannot exhaust the server.
func (s *server) handle(conn net.Conn) {
	if s.maxConns > 0 && s.liveConns.Add(1) > s.maxConns {
		s.liveConns.Add(-1)
		s.connRejects.Inc()
		s.log.Warn("connection rejected at -max-conns cap",
			"remote", conn.RemoteAddr().String(), "max", s.maxConns)
		s.setWriteDeadline(conn)
		fmt.Fprintln(conn, "ERR server busy: connection limit reached, retry later")
		_ = conn.Close() // the reject line is best-effort; nothing to salvage
		return
	}
	id := s.connSeq.Add(1)
	s.connections.Inc()
	s.connTotal.Inc()
	log := s.log.With("conn", id, "remote", conn.RemoteAddr().String())
	log.Info("connection opened")
	var reqs, errs int64
	defer func() {
		if err := conn.Close(); err != nil {
			log.Warn("closing connection failed", "err", err)
		}
		s.connections.Dec()
		if s.maxConns > 0 {
			s.liveConns.Add(-1)
		}
		log.Info("connection closed", "requests", reqs, "errors", errs)
	}()
	sc := bufio.NewScanner(conn)
	if s.maxLineLen > 0 {
		// The scanner's effective cap is max(cap(buf), maxLineLen), so
		// the initial buffer must not exceed the configured limit.
		sc.Buffer(make([]byte, 0, min(4096, s.maxLineLen)), s.maxLineLen)
	}
	w := bufio.NewWriter(conn)
	for {
		if s.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		reqs++
		// An optional leading TID= token carries a propagated trace
		// identifier (histproxy stamps one on every shard leg); the
		// request's root span adopts it so one trace_id correlates the
		// query across the fleet's logs and /debug feeds.
		tid, stripped := trace.CutRequestID(line)
		// REPLICATE hijacks the connection for WAL shipping: from here
		// on it speaks the replication protocol, not request/response.
		if f := strings.Fields(stripped); len(f) > 0 && strings.EqualFold(f[0], "REPLICATE") {
			s.serveReplication(conn, sc, w, stripped)
			return
		}
		resp, quit := s.safeDispatch(tid, stripped)
		if strings.HasPrefix(resp, "ERR") {
			errs++
			if tid != 0 {
				log.Warn("request failed", "trace_id", tid.String(), "line", stripped, "resp", resp)
			} else {
				log.Warn("request failed", "line", stripped, "resp", resp)
			}
		}
		fmt.Fprintln(w, resp)
		s.setWriteDeadline(conn)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
	switch err := sc.Err(); {
	case err == nil: // clean EOF
	case errors.Is(err, bufio.ErrTooLong):
		// The scanner cannot resynchronise past an overlong line; tell
		// the client why before closing.
		fmt.Fprintf(w, "ERR line too long (max %d bytes)\n", s.maxLineLen)
		s.setWriteDeadline(conn)
		_ = w.Flush() // best-effort farewell on a connection being torn down
		log.Warn("connection closed: line exceeds -max-line-bytes", "max", s.maxLineLen)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			log.Info("connection closed: idle past -read-timeout", "timeout", s.readTimeout)
		} else {
			log.Warn("connection read failed", "err", err)
		}
	}
}

// setWriteDeadline bounds the next response write with the same
// duration that bounds reads: a client that stops reading must not pin
// a goroutine (and a -max-conns slot) forever on a blocked flush — the
// slow-loris variant of the idle-read problem. 0 disables, mirroring
// -read-timeout.
func (s *server) setWriteDeadline(conn net.Conn) {
	if s.readTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.readTimeout))
	}
}

// safeDispatch is dispatch behind a panic barrier: a panic anywhere in
// request handling (including one injected at the serve.dispatch fault
// site) is logged with its stack and answered with ERR internal, and
// the connection keeps serving. Panics under mu are converted even
// earlier, inside mutate/queryLocked, so the deferred unlock runs and
// the mutex is never poisoned.
func (s *server) safeDispatch(tid trace.ID, line string) (resp string, quit bool) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			s.log.Error("panic recovered in dispatch",
				"line", line, "panic", fmt.Sprint(r), "stack", string(debug.Stack()))
			resp, quit = errResponse(fmt.Errorf("%w (%v)", errInternal, r)), false
		}
	}()
	return s.dispatch(tid, line)
}

// finish accounts one dispatched request under the command's label:
// the request counter, the error counter for responses starting with
// ERR, and the command's sliding-window latency recorder.
func (s *server) finish(cmd, resp string, start time.Time) {
	key := cmd
	if _, known := s.requests[key]; !known {
		key = "other"
	}
	s.requests[key].Inc()
	if strings.HasPrefix(resp, "ERR") {
		s.errors[key].Inc()
	}
	s.perf.Record(key, time.Since(start))
}

// dispatch answers one request line. tid is the trace identifier
// propagated by the request's TID= token (zero when absent): traced
// commands adopt it for their root span, so the ID a proxy generated
// at the edge survives into this shard's spans, slow log and feeds.
func (s *server) dispatch(tid trace.ID, line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := "other"
	if len(fields) > 0 {
		cmd = strings.ToUpper(fields[0])
	}
	start := time.Now()
	s.inflight.Inc()
	defer func() {
		s.inflight.Dec()
		s.finish(cmd, resp, start)
	}()
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	// The serve.dispatch fault site: chaos specs can delay, fail or
	// panic whole requests here to exercise the governance paths. The
	// panic kind propagates out of Check into safeDispatch's barrier.
	if out := s.inj.Check("serve.dispatch"); out.Err != nil || out.Delay > 0 {
		time.Sleep(out.Delay)
		if out.Err != nil {
			return "ERR " + out.Err.Error(), false
		}
	}
	switch cmd {
	case "QUIT":
		return "BYE", true
	case "VERSION":
		if len(fields) != 1 {
			return "ERR VERSION takes no arguments", false
		}
		return fmt.Sprintf("OK histserve rev=%s dirty=%t go=%s", s.meta.GitRev, s.meta.GitDirty, s.meta.GoVersion), false
	case "ROLE":
		if len(fields) != 1 {
			return "ERR ROLE takes no arguments", false
		}
		return s.roleLine(), false
	case "PROMOTE":
		// PROMOTE [<min_lsn>] — failover: turn this follower into a
		// primary. The optional fence refuses the promotion when this
		// replica has applied less than min_lsn (another replica holds
		// more acked history and must take over instead).
		if len(fields) > 2 {
			return "ERR PROMOTE takes at most one argument: PROMOTE [<min_lsn>]", false
		}
		var minLSN uint64
		if len(fields) == 2 {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return "ERR bad fence LSN: " + err.Error(), false
			}
			minLSN = v
		}
		return s.promote(minLSN), false
	case "SEAL":
		// SEAL <t> raises the seal boundary to t; bare SEAL seals the
		// whole timeline (full read-only demotion). Monotonic: sealing
		// below the current boundary is a no-op reporting the boundary,
		// because unsealing would re-open history other shards already
		// answer for.
		if len(fields) > 2 {
			return "ERR SEAL takes at most one argument: SEAL [<time>]", false
		}
		t := int64(math.MaxInt64)
		if len(fields) == 2 {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return "ERR bad seal time: " + err.Error(), false
			}
			t = v
		}
		return fmt.Sprintf("OK sealed_through=%d", s.sealThrough(t)), false
	case "STATS":
		st := s.statsSnapshot()
		degraded := 0
		if s.degraded.Load() {
			degraded = 1
		}
		// The trailing win_* fields digest the sliding latency windows
		// (internal/perf) for the two hot commands; times in
		// microseconds, throughput in ops/sec over the covered window.
		qry := s.perf.Snapshot("QRY")
		ins := s.perf.Snapshot("INS")
		// sealed_through appears only once something is sealed: the
		// MinInt64 sentinel would poison numeric STATS aggregation
		// (histproxy sums/maxes the fields it understands). git_rev is
		// the only non-numeric field; consumers skip unknown tokens.
		tail := ""
		if sealed := s.sealedThrough.Load(); sealed != math.MinInt64 {
			tail = fmt.Sprintf(" sealed_through=%d", sealed)
		}
		// Follower mode reports its replication positions; the fields
		// appear only on replicas, so a proxy summing primary STATS
		// never sees them.
		if s.isReplica() {
			r := s.repl
			tail += fmt.Sprintf(" replica=1 replica_applied_lsn=%d replica_lag_lsn=%d",
				r.applied.Load(), r.lag())
		}
		tail += " git_rev=" + s.meta.GitRev
		return fmt.Sprintf("slices=%d incomplete=%d pending=%d appended=%d "+
			"ooo=%d conversions=%d conversions_query=%d conversions_append=%d "+
			"cells_touched=%d forced_copies=%d copy_ahead=%d "+
			"demoted=%d cache_accesses=%d store_accesses=%d "+
			"degraded=%d readonly_rejections=%d "+
			"win_s=%.0f qry_ops=%.1f qry_p50_us=%.1f qry_p99_us=%.1f "+
			"ins_ops=%.1f ins_p50_us=%.1f ins_p99_us=%.1f",
			st.Slices, st.IncompleteSlices, st.PendingOutOfOrder, st.AppendedUpdates,
			st.OutOfOrderUpdates, st.ECubeConversions, st.ECubeConversionsQuery,
			st.ECubeConversionsAppend, st.ECubeCellsTouched,
			st.ForcedCopies, st.CopyAheadWork,
			st.TierDemotions, st.CacheAccesses, st.StoreAccesses,
			degraded, s.readonlyRejects.Value(),
			s.perf.Window().Seconds(),
			qry.OpsPerSec, micros(qry.P50), micros(qry.P99),
			ins.OpsPerSec, micros(ins.P50), micros(ins.P99)) + tail, false
	case "SAVE":
		if len(fields) != 2 {
			return "ERR SAVE needs a file path", false
		}
		if err := s.saveSnapshot(fields[1]); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "CHECKPOINT":
		if len(fields) != 1 {
			return "ERR CHECKPOINT takes no arguments", false
		}
		return s.checkpointNow(), false
	case "INS", "DEL":
		// INS <time> <c1>..<cd> <value>
		if len(fields) != 1+1+s.dims+1 {
			return fmt.Sprintf("ERR %s needs time, %d coordinates and a value", cmd, s.dims), false
		}
		nums, err := parseInts(fields[1 : 1+1+s.dims])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return "ERR bad value: " + err.Error(), false
		}
		coords := make([]int, s.dims)
		for i := range coords {
			c, ok := dims.ToCoord(nums[1+i])
			if !ok {
				return fmt.Sprintf("ERR coordinate %d overflows", nums[1+i]), false
			}
			coords[i] = c
		}
		if resp := s.badCoord(coords); resp != "" {
			return resp, false
		}
		if resp := s.replicaReject(); resp != "" {
			return resp, false
		}
		if sealed := s.sealedThrough.Load(); nums[0] <= sealed {
			return fmt.Sprintf("ERR sealed: time %d is in the sealed range (sealed through %d; this history is read-only)",
				nums[0], sealed), false
		}
		if resp := s.readOnlyReject(); resp != "" {
			return resp, false
		}
		var root *trace.Span
		if cmd == "INS" {
			root = trace.New("histserve.insert")
		} else {
			root = trace.New("histserve.delete")
		}
		root.SetTraceID(tid)
		lsn, err := s.mutate(cmd, root, nums[0], coords, val)
		root.End()
		s.observe(line, root)
		if err != nil {
			return errResponse(err), false
		}
		// Semi-synchronous replication: the write is durable and applied
		// locally; hold the OK until enough followers have appended and
		// applied it too, so an acked write survives losing this primary.
		// The wait runs after mu is released — followers never contend
		// with the mutation they are acknowledging.
		if s.replMinAcks > 0 && lsn > 0 {
			if err := s.hub.WaitAcked(lsn, s.replMinAcks, s.replAckTimeout); err != nil {
				return "ERR " + err.Error(), false
			}
		}
		return "OK", false
	case "QRY":
		rng, errResp := s.parseQueryRange(fields[1:])
		if errResp != "" {
			return errResp, false
		}
		v, _, err := s.runQuery(tid, line, rng)
		if err != nil {
			return errResponse(err), false
		}
		return strconv.FormatFloat(v, 'g', -1, 64), false
	case "EXPLAIN":
		// EXPLAIN [JSON] QRY ... — the JSON variant answers on a single
		// line with the full structured span tree, which is what
		// histproxy consumes to graft this shard's spans under its own
		// proxy.leg (the text variant stays the human/debug format).
		args := fields[1:]
		jsonMode := len(args) > 0 && strings.ToUpper(args[0]) == "JSON"
		if jsonMode {
			args = args[1:]
		}
		if len(args) < 1 || strings.ToUpper(args[0]) != "QRY" {
			return "ERR EXPLAIN wraps a query: EXPLAIN [JSON] QRY <tlo> <thi> <lo...> <hi...>", false
		}
		rng, errResp := s.parseQueryRange(args[1:])
		if errResp != "" {
			return errResp, false
		}
		v, root, err := s.runQuery(tid, line, rng)
		if err != nil {
			return errResponse(err), false
		}
		if jsonMode {
			doc, err := json.Marshal(explainJSON{Result: v, Trace: root.JSON()})
			if err != nil {
				return "ERR rendering trace: " + err.Error(), false
			}
			return "OK " + string(doc), false
		}
		var b strings.Builder
		fmt.Fprintf(&b, "OK result=%s\n", strconv.FormatFloat(v, 'g', -1, 64))
		root.Render(&b)
		b.WriteString("totals")
		for c := trace.Counter(0); c < trace.NumCounters; c++ {
			fmt.Fprintf(&b, " %s=%d", c, root.Total(c))
		}
		b.WriteString("\nEND")
		return b.String(), false
	case "SLOWLOG":
		if len(fields) != 1 {
			return "ERR SLOWLOG takes no arguments", false
		}
		entries := s.slow.Entries()
		var b strings.Builder
		fmt.Fprintf(&b, "OK n=%d cap=%d threshold=%s observed=%d admitted=%d\n",
			len(entries), s.slow.Cap(), s.slow.Threshold(),
			s.slow.Observed(), s.slow.Admitted())
		for i, e := range entries {
			fmt.Fprintf(&b, "#%d dur=%s at=%s cells_touched=%d conversions=%d trace_id=%s line=%q\n",
				i+1, e.Duration, e.At.UTC().Format(time.RFC3339Nano),
				e.Span.Total(trace.CellsTouched), e.Span.Total(trace.Conversions),
				e.Span.TraceID(), e.Line)
		}
		b.WriteString("END")
		return b.String(), false
	default:
		return "ERR unknown command " + cmd, false
	}
}

// parseQueryRange parses the arguments of a QRY (after the verb):
// <tlo> <thi> <l1>..<ld> <u1>..<ud>. The second result is a non-empty
// ERR response on failure.
func (s *server) parseQueryRange(args []string) (core.Range, string) {
	if len(args) != 2+2*s.dims {
		return core.Range{}, fmt.Sprintf("ERR QRY needs tlo, thi and %d lo + %d hi coordinates", s.dims, s.dims)
	}
	nums, err := parseInts(args)
	if err != nil {
		return core.Range{}, "ERR " + err.Error()
	}
	lo := make([]int, s.dims)
	hi := make([]int, s.dims)
	for i := 0; i < s.dims; i++ {
		l, okl := dims.ToCoord(nums[2+i])
		h, okh := dims.ToCoord(nums[2+s.dims+i])
		if !okl || !okh {
			return core.Range{}, "ERR coordinate overflows"
		}
		lo[i] = l
		hi[i] = h
	}
	if resp := s.badCoord(lo); resp != "" {
		return core.Range{}, resp
	}
	if resp := s.badCoord(hi); resp != "" {
		return core.Range{}, resp
	}
	return core.Range{TimeLo: nums[0], TimeHi: nums[1], Lo: lo, Hi: hi}, ""
}

// badCoord validates parsed coordinates against the cube's domains at
// the protocol boundary, naming the offending dimension — out-of-range
// input is a client error and must never reach the storage layer.
func (s *server) badCoord(coords []int) string {
	for i, c := range coords {
		if i < len(s.shape) && (c < 0 || c >= s.shape[i]) {
			return fmt.Sprintf("ERR bad coordinate d%d: %d outside [0, %d)", i, c, s.shape[i])
		}
	}
	return ""
}

// runQuery executes one traced range query (shared by QRY and
// EXPLAIN) and retains the finished trace. A non-zero tid (the TID=
// token) becomes the root span's trace ID.
func (s *server) runQuery(tid trace.ID, line string, rng core.Range) (float64, *trace.Span, error) {
	root := trace.New("histserve.query")
	root.SetTraceID(tid)
	v, err := s.queryLocked(root, rng)
	root.End()
	s.observe(line, root)
	return v, root, err
}

// queryLocked runs the deadline-bounded query under mu (queries mutate
// shared state; see the locking contract) with the same panic
// containment as mutate.
func (s *server) queryLocked(root *trace.Span, rng core.Range) (v float64, err error) {
	ctx, cancel := s.requestCtx()
	defer cancel()
	ctx = trace.NewContext(ctx, root)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = s.recoveredPanic("QRY", r, root)
		}
	}()
	return s.cube.QueryCtx(ctx, rng)
}

// mutate runs one INS/DEL under mu. The deferred unlock plus the inner
// recover keep a panicking cube call from poisoning mu; the panic is
// logged with the request's span tree and surfaces as ERR internal. A
// successful mutation doubles as the recovery probe that clears
// degraded mode; a storage failure (WAL append exhausting its retries,
// or out-of-space) enters it. On success lsn is the WAL position the
// mutation landed at (0 without durability) — what the semi-sync ack
// wait keys on.
func (s *server) mutate(cmd string, root *trace.Span, t int64, coords []int, val float64) (lsn uint64, err error) {
	ctx, cancel := s.requestCtx()
	defer cancel()
	ctx = trace.NewContext(ctx, root)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			err = s.recoveredPanic(cmd, r, root)
		}
	}()
	// The WAL-bytes delta is taken under mu, where the op sink's
	// appends are serialised, so the attribution to this request is
	// exact.
	var walBefore int64
	if s.wal != nil {
		walBefore = s.wal.AppendedBytes()
	}
	if cmd == "INS" {
		err = s.cube.InsertCtx(ctx, t, coords, val)
	} else {
		err = s.cube.DeleteCtx(ctx, t, coords, val)
	}
	if s.wal != nil {
		root.Add(trace.WALBytes, s.wal.AppendedBytes()-walBefore)
	}
	switch {
	case err == nil:
		if s.wal != nil {
			lsn = s.wal.LastLSN()
		}
		s.maybeCheckpointLocked()
		s.clearDegraded()
	case isStorageFailure(err):
		s.setDegraded(err)
	}
	return lsn, err
}

// statsSnapshot reads the cube's counters under mu.
func (s *server) statsSnapshot() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cube.Stats()
}

// requestCtx derives the per-request context from -request-timeout.
func (s *server) requestCtx() (context.Context, context.CancelFunc) {
	if s.reqTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), s.reqTimeout)
}

// errResponse renders an error as the protocol's ERR line, giving
// deadline and cancellation failures a stable prefix clients can match.
func errResponse(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "ERR timeout: " + err.Error()
	case errors.Is(err, context.Canceled):
		return "ERR canceled: " + err.Error()
	default:
		return "ERR " + err.Error()
	}
}

// recoveredPanic converts a panic caught under mu into an error. It
// runs inside the deferred recover, before the deferred Unlock, so the
// mutex is released normally and later requests proceed.
func (s *server) recoveredPanic(cmd string, r any, root *trace.Span) error {
	s.panics.Inc()
	var tree strings.Builder
	root.Render(&tree)
	s.log.Error("panic recovered", "cmd", cmd, "panic", fmt.Sprint(r),
		"trace", tree.String(), "stack", string(debug.Stack()))
	return fmt.Errorf("%w (%s: %v)", errInternal, cmd, r)
}

// isStorageFailure classifies errors that mean the durable layer is
// broken rather than the request: these flip the server read-only
// instead of just failing one op.
func isStorageFailure(err error) bool {
	return errors.Is(err, errWALAppend) || errors.Is(err, syscall.ENOSPC)
}

// setDegraded enters read-only mode (idempotently): mutations are
// rejected, queries keep serving, and lastProbeNano starts the probe
// clock so recovery attempts are rate-limited from now.
func (s *server) setDegraded(cause error) {
	s.degradedMsg.Store(cause.Error())
	s.lastProbeNano.Store(time.Now().UnixNano())
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedFlips.Inc()
		s.log.Error("entering degraded read-only mode", "cause", cause)
	}
}

// clearDegraded leaves read-only mode after a successful mutation
// proved the storage path works again. A no-op when healthy.
func (s *server) clearDegraded() {
	if s.degraded.CompareAndSwap(true, false) {
		s.log.Info("leaving degraded read-only mode: storage recovered")
	}
}

// readOnlyReject gates mutations while degraded. Every -degraded-probe-
// every interval one mutation passes through as a recovery probe: if
// it succeeds, mutate clears the flag; if storage is still broken, the
// probe fails like the original mutation did and the server stays
// read-only.
func (s *server) readOnlyReject() string {
	if !s.degraded.Load() || s.probeDue() {
		return ""
	}
	s.readonlyRejects.Inc()
	msg, _ := s.degradedMsg.Load().(string)
	if msg == "" {
		msg = "storage failure"
	}
	return "ERR read-only: mutations disabled after " + msg + " (queries still served; probing for recovery)"
}

// probeDue claims the next recovery-probe slot: at most one mutation
// per interval may test whether storage healed. The CAS keeps the
// claim race-free without taking mu on the reject fast path.
func (s *server) probeDue() bool {
	every := s.probeEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	now := time.Now().UnixNano()
	last := s.lastProbeNano.Load()
	if now-last < every.Nanoseconds() {
		return false
	}
	return s.lastProbeNano.CompareAndSwap(last, now)
}

// observe retains one finished request trace: every request enters
// the recent ring; queries are additionally offered to the slow log.
// A query the slow log admits is also logged with its trace_id — the
// slog side of fleet-wide correlation (the proxy logs the same ID for
// the same request).
func (s *server) observe(line string, root *trace.Span) {
	at := time.Now()
	d := root.Duration()
	s.recent.Add(line, at, d, root)
	if root.Name() == "histserve.query" {
		if s.slow.Observe(line, at, d, root) {
			s.log.Warn("slow query", "trace_id", root.TraceID().String(), "dur", d, "line", line)
		}
	}
}

// markReady flips /readyz to 200: startup (snapshot load, WAL
// recovery) has finished and the server is about to accept traffic.
func (s *server) markReady() { s.ready.Store(true) }

// sealThrough raises the seal boundary to t (monotonically — a lower
// request leaves it unchanged) and returns the resulting boundary.
func (s *server) sealThrough(t int64) int64 {
	for {
		cur := s.sealedThrough.Load()
		if t <= cur {
			return cur
		}
		if s.sealedThrough.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// micros renders a duration as fractional microseconds for the STATS
// win_* fields.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// explainJSON is the single-line reply body of EXPLAIN JSON QRY — the
// structured variant histproxy consumes to graft shard span trees.
type explainJSON struct {
	Result float64         `json:"result"`
	Trace  *trace.SpanJSON `json:"trace"`
}

// writeEntriesJSON renders retained traces as a JSON document: the
// meta fields plus an "entries" array of {line, trace_id, at,
// duration_ns, trace} objects (trace.EntryJSON, shared with
// histproxy).
func writeEntriesJSON(w http.ResponseWriter, log *slog.Logger, meta map[string]any, entries []trace.Entry) {
	meta["entries"] = trace.EntriesJSON(entries)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		log.Error("trace JSON render failed", "err", err)
	}
}

// checkpointNow runs the CHECKPOINT command. It holds mu across the
// whole snapshot so the covered LSN is exact.
func (s *server) checkpointNow() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return "ERR no data directory configured (start with -data-dir)"
	}
	lsn, err := s.wal.Checkpoint(s.cube.Save)
	if err != nil {
		if isStorageFailure(err) {
			s.setDegraded(err)
		}
		return "ERR " + err.Error()
	}
	return fmt.Sprintf("OK %d", lsn)
}

func (s *server) saveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	err = s.cube.Save(f)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *server) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Read-only: decode errors are the signal, the close result is not.
	defer func() { _ = f.Close() }()
	t := obs.NewTimer(s.ins.SnapshotLoad)
	cube, err := core.Load(f)
	if err != nil {
		return err
	}
	t.ObserveDuration()
	cube.SetInstruments(s.ins)
	s.mu.Lock()
	s.cube = cube
	s.shape = cube.Shape()
	s.mu.Unlock()
	return nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}
