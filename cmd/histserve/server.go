// Command histserve exposes a histcube over TCP with a line-oriented
// text protocol, turning the append-only cube into a tiny aggregation
// service for streaming sources (the data-warehouse loading scenario
// of the paper's introduction).
//
// Usage:
//
//	histserve -addr :7070 -dims 16,16 -op sum [-ooo] [-metrics :9090]
//
// Protocol (one request per line, one response per line unless noted):
//
//	INS <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	DEL <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	QRY <tlo> <thi> <l1> ... <ld> <u1> ... <ud> -> <number> | ERR <msg>
//	EXPLAIN QRY <args>                 -> OK result=<number>, span tree,
//	                                      totals line, END | ERR <msg>
//	SLOWLOG                            -> OK n=<n> ..., one line per
//	                                      retained trace, END
//	STATS                              -> slices=<n> incomplete=<n> pending=<n> appended=<n> ...
//	SAVE <path>                        -> OK | ERR <msg> (cube snapshot)
//	CHECKPOINT                         -> OK <lsn> | ERR <msg> (durable mode only)
//	QUIT                               -> BYE (closes the connection)
//
// STATS carries the full counter set (see README's Observability
// section): out-of-order totals, eCube conversion progress (split by
// query/append trigger), lazy-copy work, tier demotions and access
// counts.
//
// Every request is traced (internal/trace): EXPLAIN renders the span
// tree with the paper's per-query cost counters, SLOWLOG returns the
// worst traces at or above -slow-query-threshold (bounded by
// -slowlog-size), and the metrics listener serves them as JSON.
//
// Start with -load <path> to resume from a snapshot written by SAVE
// (the -dims and -op flags must match the snapshot's configuration).
//
// With -data-dir the server is durable: every acknowledged mutation is
// first appended to a write-ahead log (internal/wal) under the given
// directory, -fsync selects the always/interval/never fsync policy,
// and -checkpoint-every N writes a cube snapshot and truncates the log
// every N records (CHECKPOINT forces one on demand). On boot the
// server recovers from the latest valid checkpoint plus the log tail,
// truncating a torn final record. SIGINT/SIGTERM trigger a graceful
// shutdown: stop accepting connections, write a final checkpoint,
// flush and fsync the log, exit 0.
//
// With -metrics the server additionally serves a Prometheus-style
// endpoint: GET /metrics renders every histcube_* and histserve_*
// metric in text exposition format, GET /healthz answers "ok"
// (liveness), GET /readyz answers "ok" only once WAL recovery has
// finished (readiness — 503 while replaying). The same listener
// serves GET /debug/slowlog and /debug/trace/recent (retained traces
// as JSON) and the standard /debug/pprof/* profiling endpoints.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/dims"
	"histcube/internal/obs"
	"histcube/internal/trace"
	"histcube/internal/wal"
)

// commands lists every protocol verb, used to pre-register one
// labelled request/error counter per command ("other" catches unknown
// verbs so a misbehaving client cannot grow the label set unbounded).
var commands = []string{"INS", "DEL", "QRY", "EXPLAIN", "SLOWLOG", "STATS", "SAVE", "CHECKPOINT", "QUIT", "other"}

// server is one histserve instance.
//
// Locking contract: mu guards the cube — every cube call, including
// queries. Queries mutate shared state (the eCube conversion rewrites
// historic DDC cells to PS form, and the read path bumps cost
// counters), so a plain RWMutex read lock would race; the single
// mutex is load-bearing, not an oversight. The metrics registry is
// not guarded by mu: metric primitives are atomic, and the
// state-derived callbacks registered in newServer take mu themselves
// at scrape time.
type server struct {
	mu   sync.Mutex
	cube *core.Cube // guarded by mu
	dims int

	reg *obs.Registry
	ins *core.Instruments
	log *slog.Logger

	// wal, when non-nil, makes the server durable: the cube's op sink
	// appends (and, under -fsync=always, fsyncs) every mutation before
	// it is applied, and checkpointEvery drives automatic snapshots.
	wal             *wal.Log // guarded by mu
	checkpointEvery int64    // guarded by mu

	// slow retains the worst query traces at or above its threshold;
	// recent is a ring of the last finished request traces regardless of
	// duration. Both carry their own locks, so they are deliberately
	// outside the mu contract — Observe/Add run after mu is released.
	slow   *trace.SlowLog
	recent *trace.Ring

	// ready flips to true once startup (snapshot load, WAL recovery) has
	// finished; /readyz answers 503 until then while /healthz stays a
	// pure liveness probe.
	ready atomic.Bool

	connSeq     atomic.Int64
	connections *obs.Gauge
	connTotal   *obs.Counter
	inflight    *obs.Gauge
	requests    map[string]*obs.Counter
	errors      map[string]*obs.Counter
}

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		dimsArg = flag.String("dims", "16,16", "comma-separated non-time dimension sizes")
		opArg   = flag.String("op", "sum", "aggregate operator: sum, count, avg")
		ooo     = flag.Bool("ooo", false, "buffer out-of-order updates instead of rejecting them")
		load    = flag.String("load", "", "resume from a snapshot written by the SAVE command")
		metrics = flag.String("metrics", "", "optional HTTP listen address serving /metrics and /healthz (e.g. :9090)")
		dataDir = flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); empty disables durability")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always, interval, never (with -data-dir)")
		ckptN   = flag.Int64("checkpoint-every", 10000, "checkpoint every N WAL records; 0 = only on CHECKPOINT/shutdown (with -data-dir)")
		slowThr = flag.Duration("slow-query-threshold", 10*time.Millisecond, "queries at or above this duration enter the slow-query log")
		slowCap = flag.Int("slowlog-size", 32, "worst traces retained by the slow-query log")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := newServer(*dimsArg, *opArg, *ooo)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	srv.log = logger
	srv.slow = trace.NewSlowLog(*slowCap, *slowThr)
	if *load != "" && *dataDir != "" {
		logger.Error("-load and -data-dir are mutually exclusive (the data directory has its own checkpoints)")
		os.Exit(1)
	}
	// The debug/metrics listener comes up before recovery so operators
	// can watch a long WAL replay: /healthz (liveness) answers during
	// it, /readyz answers 503 until markReady below.
	if *metrics != "" {
		mln, err := srv.serveMetrics(*metrics)
		if err != nil {
			logger.Error("metrics listener failed", "addr", *metrics, "err", err)
			os.Exit(1)
		}
		logger.Info("metrics listening", "addr", mln.Addr().String())
	}
	if *load != "" {
		if err := srv.loadSnapshot(*load); err != nil {
			logger.Error("loading snapshot failed", "path", *load, "err", err)
			os.Exit(1)
		}
		logger.Info("resumed from snapshot", "path", *load)
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			logger.Error("bad -fsync flag", "err", err)
			os.Exit(1)
		}
		res, err := srv.enableDurability(*dataDir, wal.Options{Sync: policy}, *ckptN)
		if err != nil {
			logger.Error("recovery failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		logger.Info("recovered",
			"dir", *dataDir, "fsync", policy.String(),
			"checkpoint_lsn", res.CheckpointLSN, "replayed", res.Replayed,
			"skipped_ops", res.SkippedOps, "torn_tail", res.TornTail,
			"checkpoints_skipped", res.CheckpointsSkipped)
	}
	srv.markReady()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// Graceful shutdown: the signal goroutine only closes the
	// listener; the accept loop then runs the actual shutdown on the
	// main goroutine and returns, so the process exits 0 strictly
	// after the final checkpoint and WAL fsync completed.
	var closing atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutdown signal received", "signal", s.String())
		closing.Store(true)
		_ = ln.Close() // unblocking Accept is the point; the error is uninteresting
	}()
	logger.Info("listening", "addr", ln.Addr().String(), "dims", srv.dims, "op", *opArg)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if closing.Load() {
				srv.shutdown()
				logger.Info("shutdown complete")
				return
			}
			logger.Error("accept failed", "err", err)
			os.Exit(1)
		}
		go srv.handle(conn)
	}
}

// enableDurability recovers the cube from dir and attaches the WAL:
// the recovered (or fresh) cube replaces the server's, its op sink
// appends to the log, and WAL metrics join the registry. The recovered
// cube's dimensions must match the -dims flag, which fixes the
// protocol's coordinate arity.
func (s *server) enableDurability(dir string, opts wal.Options, checkpointEvery int64) (wal.RecoverResult, error) {
	opts.Metrics = wal.NewMetrics(s.reg)
	s.mu.Lock()
	fresh := s.cube // still untouched; captured under mu so Recover's callback needs no lock
	s.mu.Unlock()
	cube, log, res, err := wal.Recover(dir, opts, func() (*core.Cube, error) {
		return fresh, nil
	})
	if err != nil {
		return res, err
	}
	shape := cube.Shape()
	if len(shape) != s.dims {
		_ = log.Close() // the dimension mismatch is the actionable error
		return res, fmt.Errorf("recovered cube has %d dimensions, -dims specifies %d", len(shape), s.dims)
	}
	cube.SetInstruments(s.ins)
	cube.SetOpSink(func(op core.Op) error {
		_, err := log.Append(op)
		return err
	})
	log.RegisterStateMetrics(s.reg)
	s.mu.Lock()
	s.cube = cube
	s.wal = log
	s.checkpointEvery = checkpointEvery
	s.mu.Unlock()
	return res, nil
}

// shutdown writes a final checkpoint and closes the WAL and cube. It
// holds mu throughout, so in-flight requests finish first and later
// ones fail cleanly on the closed log.
func (s *server) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		if lsn, err := s.wal.Checkpoint(s.cube.Save); err != nil {
			s.log.Error("final checkpoint failed", "err", err)
		} else {
			s.log.Info("final checkpoint written", "lsn", lsn)
		}
		if err := s.wal.Close(); err != nil {
			s.log.Error("closing WAL failed", "err", err)
		}
	}
	if err := s.cube.Close(); err != nil {
		s.log.Error("closing cube failed", "err", err)
	}
}

// maybeCheckpointLocked runs the every-N-records checkpoint policy;
// the caller holds mu. Checkpoint failures are logged, not fatal: the
// log keeps growing, so durability degrades to slower recovery rather
// than data loss.
func (s *server) maybeCheckpointLocked() {
	if s.wal == nil {
		return
	}
	ran, err := s.wal.MaybeCheckpoint(s.checkpointEvery, s.cube.Save)
	if err != nil {
		s.log.Error("checkpoint failed", "err", err)
	} else if ran {
		s.log.Info("checkpoint written", "lsn", s.wal.LastLSN())
	}
}

func newServer(dimsArg, opArg string, ooo bool) (*server, error) {
	var ds []core.Dim
	for i, part := range strings.Split(dimsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", part, err)
		}
		ds = append(ds, core.Dim{Name: fmt.Sprintf("d%d", i), Size: n})
	}
	var op agg.Operator
	switch opArg {
	case "sum":
		op = agg.Sum
	case "count":
		op = agg.Count
	case "avg":
		op = agg.Average
	default:
		return nil, fmt.Errorf("unknown operator %q", opArg)
	}
	cube, err := core.New(core.Config{Dims: ds, Operator: op, BufferOutOfOrder: ooo})
	if err != nil {
		return nil, err
	}
	s := &server{
		cube:   cube,
		dims:   len(ds),
		reg:    obs.NewRegistry(),
		log:    slog.Default(),
		slow:   trace.NewSlowLog(32, 10*time.Millisecond),
		recent: trace.NewRing(64),
	}
	s.ins = core.NewInstruments(s.reg)
	cube.SetInstruments(s.ins)
	core.RegisterStatsMetrics(s.reg, func() core.Stats {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cube.Stats()
	})
	s.connections = s.reg.NewGauge("histserve_connections", "Open client connections.")
	s.connTotal = s.reg.NewCounter("histserve_connections_total", "Client connections accepted since start.")
	s.inflight = s.reg.NewGauge("histserve_inflight_requests", "Requests currently being dispatched.")
	s.requests = make(map[string]*obs.Counter, len(commands))
	s.errors = make(map[string]*obs.Counter, len(commands))
	for _, cmd := range commands {
		s.requests[cmd] = s.reg.NewCounter("histserve_requests_total",
			"Requests dispatched, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
		s.errors[cmd] = s.reg.NewCounter("histserve_errors_total",
			"Requests answered with ERR, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
	}
	return s, nil
}

// serveMetrics starts the Prometheus-style HTTP listener. It returns
// the bound listener so callers (and tests) learn the resolved port.
func (s *server) serveMetrics(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.log.Error("metrics render failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness is distinct from liveness: during WAL replay the
	// process is alive but must not receive traffic yet.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, s.log, map[string]any{
			"threshold_ns": s.slow.Threshold().Nanoseconds(),
			"capacity":     s.slow.Cap(),
			"observed":     s.slow.Observed(),
			"admitted":     s.slow.Admitted(),
		}, s.slow.Entries())
	})
	mux.HandleFunc("/debug/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, s.log, map[string]any{
			"capacity": s.recent.Cap(),
		}, s.recent.Entries())
	})
	// pprof normally registers on http.DefaultServeMux at import; this
	// listener uses its own mux, so the handlers are wired explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !strings.Contains(err.Error(), "use of closed") {
			s.log.Error("metrics server stopped", "err", err)
		}
	}()
	return ln, nil
}

// handle serves one connection. Each connection gets a process-unique
// id for log correlation and its requests/errors are accounted both
// globally (metrics) and per connection (the close log line).
func (s *server) handle(conn net.Conn) {
	id := s.connSeq.Add(1)
	s.connections.Inc()
	s.connTotal.Inc()
	log := s.log.With("conn", id, "remote", conn.RemoteAddr().String())
	log.Info("connection opened")
	var reqs, errs int64
	defer func() {
		if err := conn.Close(); err != nil {
			log.Warn("closing connection failed", "err", err)
		}
		s.connections.Dec()
		log.Info("connection closed", "requests", reqs, "errors", errs)
	}()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		reqs++
		resp, quit := s.dispatch(line)
		if strings.HasPrefix(resp, "ERR") {
			errs++
			log.Warn("request failed", "line", line, "resp", resp)
		}
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// count records one dispatched request (and, for responses starting
// with ERR, one error) under the command's label.
func (s *server) count(cmd, resp string) {
	key := cmd
	if _, known := s.requests[key]; !known {
		key = "other"
	}
	s.requests[key].Inc()
	if strings.HasPrefix(resp, "ERR") {
		s.errors[key].Inc()
	}
}

func (s *server) dispatch(line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := "other"
	if len(fields) > 0 {
		cmd = strings.ToUpper(fields[0])
	}
	s.inflight.Inc()
	defer func() {
		s.inflight.Dec()
		s.count(cmd, resp)
	}()
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	switch cmd {
	case "QUIT":
		return "BYE", true
	case "STATS":
		s.mu.Lock()
		st := s.cube.Stats()
		s.mu.Unlock()
		return fmt.Sprintf("slices=%d incomplete=%d pending=%d appended=%d "+
			"ooo=%d conversions=%d conversions_query=%d conversions_append=%d "+
			"cells_touched=%d forced_copies=%d copy_ahead=%d "+
			"demoted=%d cache_accesses=%d store_accesses=%d",
			st.Slices, st.IncompleteSlices, st.PendingOutOfOrder, st.AppendedUpdates,
			st.OutOfOrderUpdates, st.ECubeConversions, st.ECubeConversionsQuery,
			st.ECubeConversionsAppend, st.ECubeCellsTouched,
			st.ForcedCopies, st.CopyAheadWork,
			st.TierDemotions, st.CacheAccesses, st.StoreAccesses), false
	case "SAVE":
		if len(fields) != 2 {
			return "ERR SAVE needs a file path", false
		}
		if err := s.saveSnapshot(fields[1]); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "CHECKPOINT":
		if len(fields) != 1 {
			return "ERR CHECKPOINT takes no arguments", false
		}
		return s.checkpointNow(), false
	case "INS", "DEL":
		// INS <time> <c1>..<cd> <value>
		if len(fields) != 1+1+s.dims+1 {
			return fmt.Sprintf("ERR %s needs time, %d coordinates and a value", cmd, s.dims), false
		}
		nums, err := parseInts(fields[1 : 1+1+s.dims])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return "ERR bad value: " + err.Error(), false
		}
		coords := make([]int, s.dims)
		for i := range coords {
			c, ok := dims.ToCoord(nums[1+i])
			if !ok {
				return fmt.Sprintf("ERR coordinate %d overflows", nums[1+i]), false
			}
			coords[i] = c
		}
		// One root span per mutation; the WAL-bytes delta is taken
		// under mu, where the op sink's appends are serialised, so the
		// attribution to this request is exact.
		var root *trace.Span
		if cmd == "INS" {
			root = trace.New("histserve.insert")
		} else {
			root = trace.New("histserve.delete")
		}
		ctx := trace.NewContext(context.Background(), root)
		s.mu.Lock()
		var walBefore int64
		if s.wal != nil {
			walBefore = s.wal.AppendedBytes()
		}
		if cmd == "INS" {
			err = s.cube.InsertCtx(ctx, nums[0], coords, val)
		} else {
			err = s.cube.DeleteCtx(ctx, nums[0], coords, val)
		}
		if s.wal != nil {
			root.Add(trace.WALBytes, s.wal.AppendedBytes()-walBefore)
		}
		if err == nil {
			s.maybeCheckpointLocked()
		}
		s.mu.Unlock()
		root.End()
		s.observe(line, root)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "QRY":
		rng, errResp := s.parseQueryRange(fields[1:])
		if errResp != "" {
			return errResp, false
		}
		v, _, err := s.runQuery(line, rng)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return strconv.FormatFloat(v, 'g', -1, 64), false
	case "EXPLAIN":
		if len(fields) < 2 || strings.ToUpper(fields[1]) != "QRY" {
			return "ERR EXPLAIN wraps a query: EXPLAIN QRY <tlo> <thi> <lo...> <hi...>", false
		}
		rng, errResp := s.parseQueryRange(fields[2:])
		if errResp != "" {
			return errResp, false
		}
		v, root, err := s.runQuery(line, rng)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		var b strings.Builder
		fmt.Fprintf(&b, "OK result=%s\n", strconv.FormatFloat(v, 'g', -1, 64))
		root.Render(&b)
		b.WriteString("totals")
		for c := trace.Counter(0); c < trace.NumCounters; c++ {
			fmt.Fprintf(&b, " %s=%d", c, root.Total(c))
		}
		b.WriteString("\nEND")
		return b.String(), false
	case "SLOWLOG":
		if len(fields) != 1 {
			return "ERR SLOWLOG takes no arguments", false
		}
		entries := s.slow.Entries()
		var b strings.Builder
		fmt.Fprintf(&b, "OK n=%d cap=%d threshold=%s observed=%d admitted=%d\n",
			len(entries), s.slow.Cap(), s.slow.Threshold(),
			s.slow.Observed(), s.slow.Admitted())
		for i, e := range entries {
			fmt.Fprintf(&b, "#%d dur=%s at=%s cells_touched=%d conversions=%d line=%q\n",
				i+1, e.Duration, e.At.UTC().Format(time.RFC3339Nano),
				e.Span.Total(trace.CellsTouched), e.Span.Total(trace.Conversions), e.Line)
		}
		b.WriteString("END")
		return b.String(), false
	default:
		return "ERR unknown command " + cmd, false
	}
}

// parseQueryRange parses the arguments of a QRY (after the verb):
// <tlo> <thi> <l1>..<ld> <u1>..<ud>. The second result is a non-empty
// ERR response on failure.
func (s *server) parseQueryRange(args []string) (core.Range, string) {
	if len(args) != 2+2*s.dims {
		return core.Range{}, fmt.Sprintf("ERR QRY needs tlo, thi and %d lo + %d hi coordinates", s.dims, s.dims)
	}
	nums, err := parseInts(args)
	if err != nil {
		return core.Range{}, "ERR " + err.Error()
	}
	lo := make([]int, s.dims)
	hi := make([]int, s.dims)
	for i := 0; i < s.dims; i++ {
		l, okl := dims.ToCoord(nums[2+i])
		h, okh := dims.ToCoord(nums[2+s.dims+i])
		if !okl || !okh {
			return core.Range{}, "ERR coordinate overflows"
		}
		lo[i] = l
		hi[i] = h
	}
	return core.Range{TimeLo: nums[0], TimeHi: nums[1], Lo: lo, Hi: hi}, ""
}

// runQuery executes one traced range query (shared by QRY and
// EXPLAIN) and retains the finished trace.
func (s *server) runQuery(line string, rng core.Range) (float64, *trace.Span, error) {
	root := trace.New("histserve.query")
	s.mu.Lock()
	v, err := s.cube.QueryTraced(root, rng)
	s.mu.Unlock()
	root.End()
	s.observe(line, root)
	return v, root, err
}

// observe retains one finished request trace: every request enters
// the recent ring; queries are additionally offered to the slow log.
func (s *server) observe(line string, root *trace.Span) {
	at := time.Now()
	d := root.Duration()
	s.recent.Add(line, at, d, root)
	if root.Name() == "histserve.query" {
		s.slow.Observe(line, at, d, root)
	}
}

// markReady flips /readyz to 200: startup (snapshot load, WAL
// recovery) has finished and the server is about to accept traffic.
func (s *server) markReady() { s.ready.Store(true) }

// writeEntriesJSON renders retained traces as a JSON document: the
// meta fields plus an "entries" array of {line, at, duration_ns,
// trace} objects.
func writeEntriesJSON(w http.ResponseWriter, log *slog.Logger, meta map[string]any, entries []trace.Entry) {
	type entryJSON struct {
		Line       string          `json:"line"`
		At         time.Time       `json:"at"`
		DurationNS int64           `json:"duration_ns"`
		Trace      *trace.SpanJSON `json:"trace"`
	}
	out := make([]entryJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, entryJSON{Line: e.Line, At: e.At, DurationNS: int64(e.Duration), Trace: e.Span.JSON()})
	}
	meta["entries"] = out
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		log.Error("trace JSON render failed", "err", err)
	}
}

// checkpointNow runs the CHECKPOINT command. It holds mu across the
// whole snapshot so the covered LSN is exact.
func (s *server) checkpointNow() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return "ERR no data directory configured (start with -data-dir)"
	}
	lsn, err := s.wal.Checkpoint(s.cube.Save)
	if err != nil {
		return "ERR " + err.Error()
	}
	return fmt.Sprintf("OK %d", lsn)
}

func (s *server) saveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	err = s.cube.Save(f)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *server) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Read-only: decode errors are the signal, the close result is not.
	defer func() { _ = f.Close() }()
	t := obs.NewTimer(s.ins.SnapshotLoad)
	cube, err := core.Load(f)
	if err != nil {
		return err
	}
	t.ObserveDuration()
	cube.SetInstruments(s.ins)
	s.mu.Lock()
	s.cube = cube
	s.mu.Unlock()
	return nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}
