// Command histserve exposes a histcube over TCP with a line-oriented
// text protocol, turning the append-only cube into a tiny aggregation
// service for streaming sources (the data-warehouse loading scenario
// of the paper's introduction).
//
// Usage:
//
//	histserve -addr :7070 -dims 16,16 -op sum [-ooo]
//
// Protocol (one request per line, one response per line):
//
//	INS <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	DEL <time> <c1> ... <cd> <value>   -> OK | ERR <msg>
//	QRY <tlo> <thi> <l1> ... <ld> <u1> ... <ud> -> <number> | ERR <msg>
//	STATS                              -> slices=<n> incomplete=<n> pending=<n>
//	SAVE <path>                        -> OK | ERR <msg> (cube snapshot)
//	QUIT                               -> BYE (closes the connection)
//
// Start with -load <path> to resume from a snapshot written by SAVE
// (the -dims and -op flags must match the snapshot's configuration).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"histcube/internal/agg"
	"histcube/internal/core"
)

type server struct {
	mu   sync.Mutex
	cube *core.Cube
	dims int
}

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		dimsArg = flag.String("dims", "16,16", "comma-separated non-time dimension sizes")
		opArg   = flag.String("op", "sum", "aggregate operator: sum, count, avg")
		ooo     = flag.Bool("ooo", false, "buffer out-of-order updates instead of rejecting them")
		load    = flag.String("load", "", "resume from a snapshot written by the SAVE command")
	)
	flag.Parse()

	srv, err := newServer(*dimsArg, *opArg, *ooo)
	if err != nil {
		log.Fatalf("histserve: %v", err)
	}
	if *load != "" {
		if err := srv.loadSnapshot(*load); err != nil {
			log.Fatalf("histserve: loading %s: %v", *load, err)
		}
		log.Printf("histserve: resumed from %s", *load)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("histserve: %v", err)
	}
	log.Printf("histserve: listening on %s (%d dims, %s)", ln.Addr(), srv.dims, *opArg)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("histserve: accept: %v", err)
			return
		}
		go srv.handle(conn)
	}
}

func newServer(dimsArg, opArg string, ooo bool) (*server, error) {
	var ds []core.Dim
	for i, part := range strings.Split(dimsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", part, err)
		}
		ds = append(ds, core.Dim{Name: fmt.Sprintf("d%d", i), Size: n})
	}
	var op agg.Operator
	switch opArg {
	case "sum":
		op = agg.Sum
	case "count":
		op = agg.Count
	case "avg":
		op = agg.Average
	default:
		return nil, fmt.Errorf("unknown operator %q", opArg)
	}
	cube, err := core.New(core.Config{Dims: ds, Operator: op, BufferOutOfOrder: ooo})
	if err != nil {
		return nil, err
	}
	return &server{cube: cube, dims: len(ds)}, nil
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp, quit := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

func (s *server) dispatch(line string) (string, bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "QUIT":
		return "BYE", true
	case "STATS":
		s.mu.Lock()
		st := s.cube.Stats()
		s.mu.Unlock()
		return fmt.Sprintf("slices=%d incomplete=%d pending=%d appended=%d",
			st.Slices, st.IncompleteSlices, st.PendingOutOfOrder, st.AppendedUpdates), false
	case "SAVE":
		if len(fields) != 2 {
			return "ERR SAVE needs a file path", false
		}
		if err := s.saveSnapshot(fields[1]); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "INS", "DEL":
		// INS <time> <c1>..<cd> <value>
		if len(fields) != 1+1+s.dims+1 {
			return fmt.Sprintf("ERR %s needs time, %d coordinates and a value", cmd, s.dims), false
		}
		nums, err := parseInts(fields[1 : 1+1+s.dims])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return "ERR bad value: " + err.Error(), false
		}
		coords := make([]int, s.dims)
		for i := range coords {
			coords[i] = int(nums[1+i])
		}
		s.mu.Lock()
		if cmd == "INS" {
			err = s.cube.Insert(nums[0], coords, val)
		} else {
			err = s.cube.Delete(nums[0], coords, val)
		}
		s.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "QRY":
		// QRY <tlo> <thi> <l1>..<ld> <u1>..<ud>
		if len(fields) != 1+2+2*s.dims {
			return fmt.Sprintf("ERR QRY needs tlo, thi and %d lo + %d hi coordinates", s.dims, s.dims), false
		}
		nums, err := parseInts(fields[1:])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		lo := make([]int, s.dims)
		hi := make([]int, s.dims)
		for i := 0; i < s.dims; i++ {
			lo[i] = int(nums[2+i])
			hi[i] = int(nums[2+s.dims+i])
		}
		s.mu.Lock()
		v, err := s.cube.Query(core.Range{TimeLo: nums[0], TimeHi: nums[1], Lo: lo, Hi: hi})
		s.mu.Unlock()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return strconv.FormatFloat(v, 'g', -1, 64), false
	default:
		return "ERR unknown command " + cmd, false
	}
}

func (s *server) saveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	err = s.cube.Save(f)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *server) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cube, err := core.Load(f)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cube = cube
	s.mu.Unlock()
	return nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}
