package main

// Tests for the per-command performance windows: the STATS win_*
// fields, the /debug/perf JSON feed and the histserve_cmd_latency_*
// gauges all read the same internal/perf sliding windows that
// dispatch feeds on every request.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStatsWindowFields drives a few requests and checks STATS grew
// the sliding-window digest fields with live values.
func TestStatsWindowFields(t *testing.T) {
	addr := startTestServer(t, false)
	c := dial(t, addr)
	for i := 1; i <= 5; i++ {
		if got := c.cmd(t, "INS 1 2 3 1"); got != "OK" {
			t.Fatalf("INS -> %q", got)
		}
	}
	if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "5" {
		t.Fatalf("QRY -> %q", got)
	}
	got := c.cmd(t, "STATS")
	for _, field := range []string{
		"win_s=10", "qry_ops=", "qry_p50_us=", "qry_p99_us=",
		"ins_ops=", "ins_p50_us=", "ins_p99_us=",
	} {
		if !strings.Contains(got, field) {
			t.Errorf("STATS missing %q: %q", field, got)
		}
	}
	// Five INS and one QRY are inside the window; their ops rates must
	// be non-zero, which the flat text shows as absence of "=0.0 ".
	if strings.Contains(got, "ins_ops=0.0 ") {
		t.Errorf("ins_ops stayed zero after 5 inserts: %q", got)
	}
}

// TestDebugPerfEndpoint checks the /debug/perf JSON feed: every
// protocol command appears, and commands that served requests report
// counts and quantiles.
func TestDebugPerfEndpoint(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	addr := serveOn(t, srv)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })

	c := dial(t, addr)
	for i := 0; i < 3; i++ {
		if got := c.cmd(t, "QRY 0 5 0 0 7 7"); got != "0" {
			t.Fatalf("QRY -> %q", got)
		}
	}

	resp, err := http.Get("http://" + mln.Addr().String() + "/debug/perf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/perf -> %d", resp.StatusCode)
	}
	var doc struct {
		WindowNS int64 `json:"window_ns"`
		Commands map[string]struct {
			Count     int64   `json:"count"`
			OpsPerSec float64 `json:"ops_per_sec"`
			P50       int64   `json:"p50_ns"`
			P99       int64   `json:"p99_ns"`
			Max       int64   `json:"max_ns"`
		} `json:"commands"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.WindowNS != (10e9) {
		t.Errorf("window_ns = %d, want 10s default", doc.WindowNS)
	}
	for _, cmd := range commands {
		if _, ok := doc.Commands[cmd]; !ok {
			t.Errorf("/debug/perf missing command %q", cmd)
		}
	}
	qry := doc.Commands["QRY"]
	if qry.Count != 3 {
		t.Errorf("QRY count = %d, want 3", qry.Count)
	}
	if qry.P50 <= 0 || qry.P99 < qry.P50 || qry.Max < qry.P99/2 {
		t.Errorf("implausible QRY digest: %+v", qry)
	}
	if ins := doc.Commands["INS"]; ins.Count != 0 {
		t.Errorf("INS count = %d, want 0 (none sent)", ins.Count)
	}
}

// TestCmdLatencyMetrics checks the histserve_cmd_latency_* series on
// /metrics: present for every command/stat pair and non-zero for a
// command that served traffic.
func TestCmdLatencyMetrics(t *testing.T) {
	srv := newQuietServer(t, "8,8", "sum", false)
	addr := serveOn(t, srv)
	mln, err := srv.serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })

	c := dial(t, addr)
	if got := c.cmd(t, "INS 1 2 3 4"); got != "OK" {
		t.Fatalf("INS -> %q", got)
	}

	resp, err := http.Get("http://" + mln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`histserve_cmd_latency_seconds{cmd="INS",stat="p50"}`,
		`histserve_cmd_latency_seconds{cmd="QRY",stat="p99"}`,
		`histserve_cmd_latency_seconds{cmd="EXPLAIN",stat="max"}`,
		`histserve_cmd_window_ops_per_sec{cmd="INS"}`,
		`histserve_cmd_window_count{cmd="INS"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, `histserve_cmd_latency_seconds{cmd="INS",stat="p50"} 0`+"\n") {
		t.Errorf("INS p50 gauge is zero after a served insert")
	}
}
