// Replication: WAL shipping between a primary histserve and its
// followers, and the follower half that applies the shipped stream.
//
// The protocol rides the same line-oriented TCP port as the client
// protocol. A follower opens a connection and sends
//
//	REPLICATE FROM <lsn>
//
// after which the connection is dedicated to replication. The primary
// answers with one of
//
//	OK from=<lsn>                     stream starts at <lsn>
//	SNAP lsn=<lsn> size=<bytes>       follower is behind the retention
//	                                  horizon; a cube snapshot covering
//	                                  <lsn> follows as base64 lines,
//	                                  terminated by ENDSNAP, then the
//	                                  stream restarts at <lsn>+1
//	ERR <msg>                         refused (diverged follower, no WAL)
//
// and then ships records and keepalives:
//
//	REC <lsn> <kind> <time> <c1> ... <cd> <value>
//	PING <lsn>                        idle keepalive carrying the frontier
//
// The follower answers every applied record with "ACK <lsn>"; the
// primary aggregates those in a replHub so mutations can wait for
// -repl-min-acks followers before acknowledging the client
// (semi-synchronous replication — the window in which an acked write
// exists only on the primary is closed).
//
// Only acknowledged appends are shipped (wal.Stream's frontier), and a
// follower applies a record only after durably appending it to its own
// log — so promotion (PROMOTE [<min_lsn>]) turns a follower into a
// primary whose log is a strict prefix of the failed primary's acked
// history, and the fence argument lets the proxy refuse to promote a
// replica that is missing acked writes.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histcube/internal/core"
	"histcube/internal/wal"
)

// snapChunk is the raw byte count per base64 snapshot line; the
// encoded line stays well under the follower's scanner buffer.
const snapChunk = 48 * 1024

// replPingEvery is the primary's idle keepalive cadence; it also
// bounds how stale a follower's view of the frontier can be.
const replPingEvery = time.Second

// replReadTimeout is how long a follower waits for the next line
// before declaring the link dead; several missed keepalives.
const replReadTimeout = 10 * time.Second

// replRedialDelay paces follower reconnection attempts.
const replRedialDelay = 200 * time.Millisecond

// replState is the follower side of replication: the link to the
// primary and the positions the rest of the server reports (STATS,
// ROLE, /readyz). It exists only when the server started with -follow.
type replState struct {
	primaryAddr string

	applied    atomic.Uint64 // last LSN durably applied locally
	primaryLSN atomic.Uint64 // newest frontier LSN the primary reported
	synced     atomic.Bool   // caught up to the primary's frontier at least once
	promoted   atomic.Bool   // PROMOTE turned this follower into a primary

	stop     chan struct{} // closed by promotion; ends the follow loop
	stopOnce sync.Once
}

// lag returns how many acked records the primary holds that this
// follower has not applied yet.
func (r *replState) lag() uint64 {
	applied, frontier := r.applied.Load(), r.primaryLSN.Load()
	if frontier <= applied {
		return 0
	}
	return frontier - applied
}

// noteFrontier folds a frontier report (REC or PING) into the
// replica's view and marks it synced once it has caught up — the
// one-time readiness transition /readyz gates on.
func (r *replState) noteFrontier(lsn uint64) {
	for {
		cur := r.primaryLSN.Load()
		if lsn <= cur || r.primaryLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	if r.applied.Load() >= r.primaryLSN.Load() {
		r.synced.Store(true)
	}
}

// isReplica reports whether the server is (still) a follower: started
// with -follow and not yet promoted.
func (s *server) isReplica() bool {
	r := s.repl
	return r != nil && !r.promoted.Load()
}

// replicaReject gates client mutations in follower mode: the replica's
// cube is written only by the shipped stream, never by clients —
// replica immutability is what makes hedged reads safe.
func (s *server) replicaReject() string {
	if s.isReplica() {
		return "ERR read-only replica: mutations go to the primary (" + s.repl.primaryAddr + ")"
	}
	return ""
}

// roleLine answers the ROLE command: which side of replication this
// server is on and how far its log extends — the probe a proxy uses to
// pick the most caught-up replica during failover.
func (s *server) roleLine() string {
	if s.isReplica() {
		r := s.repl
		return fmt.Sprintf("OK role=replica applied_lsn=%d lag_lsn=%d primary=%s",
			r.applied.Load(), r.lag(), r.primaryAddr)
	}
	return fmt.Sprintf("OK role=primary last_lsn=%d followers=%d", s.walLastLSN(), s.hub.Followers())
}

// promote answers PROMOTE [<min_lsn>]: flip this follower into a
// primary. minLSN is the fence — the highest applied LSN the caller
// observed anywhere in the replica set; a follower that has applied
// less is missing acked writes and must refuse, so a lagging replica
// can never be promoted over a more caught-up one. Promoting a server
// that already is a primary is an idempotent OK (a retrying proxy must
// not flap).
func (s *server) promote(minLSN uint64) string {
	if !s.isReplica() {
		return fmt.Sprintf("OK role=primary last_lsn=%d followers=%d", s.walLastLSN(), s.hub.Followers())
	}
	r := s.repl
	if applied := r.applied.Load(); applied < minLSN {
		return fmt.Sprintf("ERR promotion fenced: applied LSN %d is behind the required fence %d (another replica holds more acked history)",
			applied, minLSN)
	}
	if r.promoted.CompareAndSwap(false, true) {
		r.stopOnce.Do(func() { close(r.stop) })
		s.log.Warn("promoted to primary", "applied_lsn", r.applied.Load(), "fence", minLSN, "old_primary", r.primaryAddr)
	}
	return fmt.Sprintf("OK role=primary last_lsn=%d followers=%d", s.walLastLSN(), s.hub.Followers())
}

// walLastLSN reads the log's end under mu (0 without durability).
func (s *server) walLastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.LastLSN()
}

// ---------------------------------------------------------------------------
// Primary side: serving REPLICATE connections and aggregating ACKs.

// replHub tracks how far each connected follower has acknowledged the
// log and lets mutations wait for a quorum of acks (-repl-min-acks)
// before the client sees OK.
type replHub struct {
	mu      sync.Mutex
	nextID  int64            // guarded by mu
	acked   map[int64]uint64 // follower conn id -> highest acked LSN; guarded by mu
	waiters []*ackWaiter     // guarded by mu
}

// ackWaiter is one mutation parked until min followers ack lsn.
type ackWaiter struct {
	lsn uint64
	min int
	ch  chan struct{} // closed when satisfied
}

func newReplHub() *replHub { return &replHub{acked: make(map[int64]uint64)} }

// register admits one follower connection and returns its id.
func (h *replHub) register() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	id := h.nextID
	h.acked[id] = 0
	return id
}

// unregister drops a departed follower. Waiters counting on it will
// time out rather than hang.
func (h *replHub) unregister(id int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.acked, id)
}

// Followers returns the number of connected follower links.
func (h *replHub) Followers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.acked)
}

// ack records a follower acknowledgement and releases every waiter it
// satisfies.
func (h *replHub) ack(id int64, lsn uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur, ok := h.acked[id]
	if !ok || lsn <= cur {
		return
	}
	h.acked[id] = lsn
	kept := h.waiters[:0]
	for _, w := range h.waiters {
		if h.ackCountLocked(w.lsn) >= w.min {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	h.waiters = kept
}

// ackCountLocked counts followers whose acknowledged position covers
// lsn. The caller holds mu.
func (h *replHub) ackCountLocked(lsn uint64) int {
	n := 0
	for _, a := range h.acked {
		if a >= lsn {
			n++
		}
	}
	return n
}

// addWaiter registers a waiter for lsn reaching min acks, or returns
// nil when the threshold is already met.
func (h *replHub) addWaiter(lsn uint64, min int) *ackWaiter {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ackCountLocked(lsn) >= min {
		return nil
	}
	w := &ackWaiter{lsn: lsn, min: min, ch: make(chan struct{})}
	h.waiters = append(h.waiters, w)
	return w
}

// dropWaiter removes a timed-out waiter and returns the current ack
// count for its LSN, closing the race between the timer firing and the
// last ack arriving.
func (h *replHub) dropWaiter(w *ackWaiter, lsn uint64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, x := range h.waiters {
		if x == w {
			h.waiters = append(h.waiters[:i], h.waiters[i+1:]...)
			break
		}
	}
	return h.ackCountLocked(lsn)
}

// WaitAcked blocks until min followers have acknowledged lsn or the
// timeout passes. The returned error names the shortfall — the write
// is already durable and applied locally, so the client must treat it
// as indeterminate, not failed.
func (h *replHub) WaitAcked(lsn uint64, min int, timeout time.Duration) error {
	if min <= 0 {
		return nil
	}
	w := h.addWaiter(lsn, min)
	if w == nil {
		return nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-t.C:
	}
	if n := h.dropWaiter(w, lsn); n < min {
		return fmt.Errorf("replication timeout: record %d is durable on the primary but acknowledged by %d of %d required replicas within %s (treat the write as indeterminate)",
			lsn, n, min, timeout)
	}
	return nil // satisfied in the race between timer and lock
}

// serveReplication hijacks one client connection for WAL shipping
// after the handle loop saw its REPLICATE line. sc and w are the
// connection's existing scanner/writer; sc is handed to the ACK reader
// goroutine and must not be touched by the caller afterwards.
func (s *server) serveReplication(conn net.Conn, sc *bufio.Scanner, w *bufio.Writer, line string) {
	s.requests["REPLICATE"].Inc()
	fail := func(msg string) {
		s.errors["REPLICATE"].Inc()
		fmt.Fprintln(w, "ERR "+msg)
		s.setWriteDeadline(conn)
		_ = w.Flush() // refusal is best-effort; the connection is done either way
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || !strings.EqualFold(fields[1], "FROM") {
		fail("usage: REPLICATE FROM <lsn>")
		return
	}
	from, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		fail("bad LSN: " + err.Error())
		return
	}
	s.mu.Lock()
	wl := s.wal
	s.mu.Unlock()
	if wl == nil {
		fail("no data directory configured (start with -data-dir)")
		return
	}

	id := s.hub.register()
	defer s.hub.unregister(id)
	log := s.log.With("follower", conn.RemoteAddr().String(), "repl_id", id)

	// The follower's ACKs arrive on the same connection; a dedicated
	// reader feeds them to the hub and cancels the stream when the
	// follower goes away. Replication links carry keepalives instead of
	// client deadlines, so the idle read timeout comes off.
	_ = conn.SetReadDeadline(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer cancel()
		for sc.Scan() {
			f := strings.Fields(sc.Text())
			if len(f) == 2 && strings.EqualFold(f[0], "ACK") {
				if lsn, err := strconv.ParseUint(f[1], 10, 64); err == nil {
					s.hub.ack(id, lsn)
				}
			}
		}
	}()

	// Position the stream, bootstrapping the follower from a snapshot
	// when its position fell behind the checkpoint retention horizon.
	var sub *wal.Stream
	for {
		sub, err = wl.SubscribeFrom(from)
		if err == nil {
			break
		}
		if !errors.Is(err, wal.ErrTruncated) {
			fail(err.Error())
			log.Warn("replication subscribe refused", "from", from, "err", err)
			return
		}
		snapLSN, serr := s.sendSnapshot(conn, w)
		if serr != nil {
			log.Warn("snapshot ship failed", "err", serr)
			return
		}
		log.Info("snapshot shipped", "lsn", snapLSN)
		from = snapLSN + 1
	}
	fmt.Fprintf(w, "OK from=%d\n", from)
	s.setWriteDeadline(conn)
	if err := w.Flush(); err != nil {
		return
	}
	log.Info("replication stream started", "from", from)

	shipped := int64(0)
	defer func() { log.Info("replication stream ended", "shipped", shipped) }()
	for {
		nctx, ncancel := context.WithTimeout(ctx, replPingEvery)
		rec, err := sub.Next(nctx)
		ncancel()
		switch {
		case err == nil:
			writeRec(w, rec)
			shipped++
		case errors.Is(err, context.DeadlineExceeded):
			// Idle: keepalive carrying the frontier, so the follower can
			// tell "caught up" from "link dead".
			fmt.Fprintf(w, "PING %d\n", wl.ShippedLSN())
		case errors.Is(err, wal.ErrClosed), errors.Is(err, context.Canceled):
			return
		default:
			// E.g. a checkpoint pruned segments under a slow catch-up
			// (ErrTruncated): drop the link; the follower reconnects and
			// the new handshake ships a snapshot.
			log.Warn("replication stream broken", "err", err)
			fail(err.Error())
			return
		}
		s.setWriteDeadline(conn)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// writeRec serialises one shipped record. The value round-trips
// exactly ('g', -1 — shortest form that re-parses to the same float),
// so the follower's log is byte-for-byte replayable.
func writeRec(w *bufio.Writer, rec wal.StreamRecord) {
	fmt.Fprintf(w, "REC %d %d %d", rec.LSN, uint8(rec.Op.Kind), rec.Op.Time)
	for _, c := range rec.Op.Coords {
		fmt.Fprintf(w, " %d", c)
	}
	fmt.Fprintf(w, " %s\n", strconv.FormatFloat(rec.Op.Value, 'g', -1, 64))
}

// sendSnapshot ships the cube as of the log's end: SNAP header, base64
// chunks, ENDSNAP. Snapshot and LSN are taken under mu, so the pair is
// exact — replaying from lsn+1 on top of the snapshot reproduces the
// primary.
func (s *server) sendSnapshot(conn net.Conn, w *bufio.Writer) (uint64, error) {
	var buf bytes.Buffer
	s.mu.Lock()
	lsn := s.wal.LastLSN()
	err := s.cube.Save(&buf)
	s.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	data := buf.Bytes()
	fmt.Fprintf(w, "SNAP lsn=%d size=%d\n", lsn, len(data))
	for off := 0; off < len(data); off += snapChunk {
		end := min(off+snapChunk, len(data))
		fmt.Fprintln(w, base64.StdEncoding.EncodeToString(data[off:end]))
		s.setWriteDeadline(conn)
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	fmt.Fprintln(w, "ENDSNAP")
	s.setWriteDeadline(conn)
	return lsn, w.Flush()
}

// ---------------------------------------------------------------------------
// Follower side: tailing the primary and applying its stream.

// startFollower puts the server in follower mode and starts the
// replication loop. Called from main before the listener starts, so
// dispatch never observes a half-initialised repl field.
func (s *server) startFollower(primary string) {
	r := &replState{primaryAddr: primary, stop: make(chan struct{})}
	r.applied.Store(s.walLastLSN())
	s.repl = r
	go s.followLoop(r)
}

// followLoop keeps the replication link alive until promotion:
// dial, stream, and on any link failure redial after a short pause.
func (s *server) followLoop(r *replState) {
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		if err := s.followOnce(r); err != nil && !r.promoted.Load() {
			s.log.Warn("replication link lost", "primary", r.primaryAddr, "err", err)
		}
		select {
		case <-r.stop:
			return
		case <-time.After(replRedialDelay):
		}
	}
}

// followOnce runs one replication session: subscribe from the local
// log's end and apply the stream until the link breaks or the server
// is promoted.
func (s *server) followOnce(r *replState) error {
	conn, err := net.DialTimeout("tcp", r.primaryAddr, 2*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }() // double-close with the stop watcher is benign
	// Promotion must not wait out a blocked read: closing the
	// connection unblocks the scanner immediately.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.stop:
			_ = conn.Close() // unblocking the read is the point
		case <-done:
		}
	}()

	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "REPLICATE FROM %d\n", s.walLastLSN()+1)
	if err := w.Flush(); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	// Snapshot chunks are the longest lines: snapChunk raw bytes, 4/3
	// base64 expansion, plus slack.
	sc.Buffer(make([]byte, 0, 64*1024), 2*snapChunk)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(replReadTimeout))
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return err
			}
			return errors.New("primary closed the replication stream")
		}
		if r.promoted.Load() {
			return nil
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "REC":
			lsn, op, err := parseRec(fields, s.dims)
			if err != nil {
				return err
			}
			if err := s.applyShipped(r, lsn, op); err != nil {
				return err
			}
			r.noteFrontier(lsn)
			fmt.Fprintf(w, "ACK %d\n", lsn)
			if err := w.Flush(); err != nil {
				return err
			}
		case "PING":
			if len(fields) == 2 {
				if lsn, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					r.noteFrontier(lsn)
				}
			}
		case "SNAP":
			lsn, err := s.receiveSnapshot(r, fields, sc, conn)
			if err != nil {
				return err
			}
			s.log.Info("bootstrapped from shipped snapshot", "lsn", lsn, "primary", r.primaryAddr)
			r.noteFrontier(lsn)
		case "OK": // stream start marker; position already agreed
		case "ERR":
			return fmt.Errorf("primary refused replication: %s", strings.TrimSpace(sc.Text()))
		default:
			return fmt.Errorf("unexpected replication line %q", sc.Text())
		}
	}
}

// parseRec decodes "REC <lsn> <kind> <time> <coords...> <value>".
func parseRec(fields []string, dims int) (uint64, core.Op, error) {
	if len(fields) != 4+dims+1 {
		return 0, core.Op{}, fmt.Errorf("malformed REC line: %d fields, want %d", len(fields), 4+dims+1)
	}
	lsn, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, core.Op{}, fmt.Errorf("REC lsn: %w", err)
	}
	kind, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil {
		return 0, core.Op{}, fmt.Errorf("REC kind: %w", err)
	}
	t, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return 0, core.Op{}, fmt.Errorf("REC time: %w", err)
	}
	coords := make([]int, dims)
	for i := range coords {
		c, err := strconv.Atoi(fields[4+i])
		if err != nil {
			return 0, core.Op{}, fmt.Errorf("REC coordinate: %w", err)
		}
		coords[i] = c
	}
	val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		return 0, core.Op{}, fmt.Errorf("REC value: %w", err)
	}
	return lsn, core.Op{Kind: core.OpKind(kind), Time: t, Coords: coords, Value: val}, nil
}

// applyShipped appends one shipped record to the local log and applies
// it to the cube, under the same mu that serialises queries — readers
// always see a cube at an exact LSN boundary.
func (s *server) applyShipped(r *replState, lsn uint64, op core.Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("follower has no WAL attached")
	}
	skipped, err := s.wal.ApplyReplicated(s.cube, lsn, op)
	if err != nil {
		return err
	}
	if skipped {
		s.log.Warn("shipped op rejected by cube; skipped to match primary recovery semantics", "lsn", lsn)
	}
	r.applied.Store(lsn)
	s.maybeCheckpointLocked()
	return nil
}

// receiveSnapshot handles the SNAP bootstrap: collect the base64
// payload, replace the local log and cube with the shipped state, and
// resume the stream (the primary continues from lsn+1 on the same
// connection).
func (s *server) receiveSnapshot(r *replState, header []string, sc *bufio.Scanner, conn net.Conn) (uint64, error) {
	var lsn, size uint64
	var haveLSN, haveSize bool
	for _, f := range header[1:] {
		if v, ok := strings.CutPrefix(f, "lsn="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("SNAP lsn: %w", err)
			}
			lsn, haveLSN = n, true
		}
		if v, ok := strings.CutPrefix(f, "size="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("SNAP size: %w", err)
			}
			size, haveSize = n, true
		}
	}
	if !haveLSN || !haveSize {
		return 0, fmt.Errorf("malformed SNAP header %q", strings.Join(header, " "))
	}
	const maxSnapshot = 1 << 31 // pre-allocation sanity bound, not a protocol limit
	if size > maxSnapshot {
		return 0, fmt.Errorf("snapshot header claims %d bytes (limit %d)", size, uint64(maxSnapshot))
	}
	var data bytes.Buffer
	data.Grow(int(size))
	for {
		_ = conn.SetReadDeadline(time.Now().Add(replReadTimeout))
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return 0, errors.New("stream ended inside snapshot")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "ENDSNAP" {
			break
		}
		chunk, err := base64.StdEncoding.DecodeString(line)
		if err != nil {
			return 0, fmt.Errorf("snapshot chunk: %w", err)
		}
		data.Write(chunk)
	}
	if uint64(data.Len()) != size {
		return 0, fmt.Errorf("snapshot is %d bytes, header said %d", data.Len(), size)
	}
	if err := s.installSnapshot(lsn, data.Bytes()); err != nil {
		return 0, err
	}
	r.applied.Store(lsn)
	return lsn, nil
}

// installSnapshot replaces the follower's durable state with the
// shipped snapshot: close the local log, install the snapshot as the
// checkpoint covering lsn (wal.InstallCheckpoint also removes the
// stale segments whose implicit LSNs would otherwise mis-number later
// appends), and re-run recovery so the cube and log positions align
// with the primary's. Held under mu throughout — recovery after an
// install replays zero records, so the pause is one snapshot decode.
func (s *server) installSnapshot(lsn uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("follower has no WAL attached")
	}
	if err := s.wal.Close(); err != nil {
		s.log.Warn("closing log before snapshot install", "err", err)
	}
	if err := wal.InstallCheckpoint(s.walDir, lsn, bytes.NewReader(data)); err != nil {
		return fmt.Errorf("installing shipped checkpoint: %w", err)
	}
	cfg := s.cubeCfg
	cube, log, _, err := s.recoverWAL(func() (*core.Cube, error) { return core.New(cfg) })
	if err != nil {
		return fmt.Errorf("recovering from shipped checkpoint: %w", err)
	}
	if got := log.LastLSN(); got != lsn {
		_ = log.Close() // the position mismatch is the actionable error
		return fmt.Errorf("snapshot install landed at LSN %d, want %d", got, lsn)
	}
	s.attachRecoveredLocked(cube, log)
	return nil
}
