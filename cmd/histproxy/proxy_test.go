package main

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"encoding/json"

	"histcube/internal/shard"
	"histcube/internal/shardclient"
	"histcube/internal/trace"
)

// fakeShard is an in-process histserve stand-in: it keeps raw facts
// and answers QRY by brute-force summation, which makes the expected
// scatter-gather totals exact without booting real cubes. It records
// every received request line verbatim (TID= token included) so tests
// can assert what the proxy stamped on the wire.
type fakeShard struct {
	ln net.Listener

	mu      sync.Mutex
	facts   []fact
	lines   []string
	sealed  int64
	hasSeal bool
	conns   map[net.Conn]struct{}
}

type fact struct {
	t      int64
	coords []int
	v      float64
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeShard{ln: ln, conns: make(map[net.Conn]struct{})}
	go f.acceptLoop(ln)
	t.Cleanup(f.stop)
	return f
}

func (f *fakeShard) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns[conn] = struct{}{}
		f.mu.Unlock()
		go f.serve(conn)
	}
}

// restart brings the shard back on its previous address (rejoin).
func (f *fakeShard) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", f.addr())
	if err != nil {
		t.Fatalf("rebind %s: %v", f.addr(), err)
	}
	f.ln = ln
	go f.acceptLoop(ln)
	t.Cleanup(f.stop)
}

func (f *fakeShard) addr() string { return f.ln.Addr().String() }

// stop simulates a crash: the listener and every accepted connection
// (including ones sitting in the proxy's pool) die at once.
func (f *fakeShard) stop() {
	f.ln.Close()
	f.mu.Lock()
	for c := range f.conns {
		c.Close()
	}
	f.conns = make(map[net.Conn]struct{})
	f.mu.Unlock()
}

func (f *fakeShard) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		tid, stripped := trace.CutRequestID(line)
		f.mu.Lock()
		f.lines = append(f.lines, line)
		f.mu.Unlock()
		fields := strings.Fields(stripped)
		if len(fields) == 0 {
			continue
		}
		fmt.Fprint(conn, f.reply(tid, fields))
	}
}

// received returns every raw request line the shard has seen.
func (f *fakeShard) received() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.lines...)
}

func (f *fakeShard) reply(tid trace.ID, fields []string) string {
	switch strings.ToUpper(fields[0]) {
	case "VERSION":
		return "OK histserve rev=faketest dirty=false go=go0.0\n"
	case "SEAL":
		t, _ := strconv.ParseInt(fields[1], 10, 64)
		f.mu.Lock()
		if !f.hasSeal || t > f.sealed {
			f.sealed, f.hasSeal = t, true
		}
		v := f.sealed
		f.mu.Unlock()
		return fmt.Sprintf("OK sealed_through=%d\n", v)
	case "INS", "DEL":
		// INS <t> <c1> <c2> <v> (2-dim fixture)
		t, _ := strconv.ParseInt(fields[1], 10, 64)
		f.mu.Lock()
		if f.hasSeal && t <= f.sealed {
			f.mu.Unlock()
			return fmt.Sprintf("ERR sealed: time %d is in the sealed range\n", t)
		}
		v, _ := strconv.ParseFloat(fields[len(fields)-1], 64)
		if strings.ToUpper(fields[0]) == "DEL" {
			v = -v
		}
		c1, _ := strconv.Atoi(fields[2])
		c2, _ := strconv.Atoi(fields[3])
		f.facts = append(f.facts, fact{t: t, coords: []int{c1, c2}, v: v})
		f.mu.Unlock()
		return "OK\n"
	case "QRY":
		return strconv.FormatFloat(f.query(fields[1:]), 'g', -1, 64) + "\n"
	case "EXPLAIN":
		// The proxy always asks for the structured variant: EXPLAIN JSON
		// QRY .... Answer a real span tree (7 cells, 2 conversions per
		// shard) carrying the adopted trace ID, like histserve would.
		if len(fields) >= 3 && strings.ToUpper(fields[1]) == "JSON" {
			v := f.query(fields[3:])
			root := trace.New("histserve.query")
			root.SetTraceID(tid)
			child := root.StartChild("histcube.query")
			child.Add(trace.CellsTouched, 7)
			child.Add(trace.Conversions, 2)
			child.End()
			root.End()
			doc, err := json.Marshal(map[string]any{"result": v, "trace": root.JSON()})
			if err != nil {
				return "ERR fake shard: " + err.Error() + "\n"
			}
			return "OK " + string(doc) + "\n"
		}
		v := f.query(fields[2:])
		return fmt.Sprintf("OK result=%s\nhistserve.query dur=1us\ntotals cells_touched=7 conversions=2\nEND\n",
			strconv.FormatFloat(v, 'g', -1, 64))
	case "STATS":
		f.mu.Lock()
		n := len(f.facts)
		f.mu.Unlock()
		return fmt.Sprintf("slices=1 appended=%d win_s=10 qry_p99_us=%d.0 git_rev=faketest\n", n, n)
	case "QUIT":
		return "BYE\n"
	default:
		return "ERR unknown command " + fields[0] + "\n"
	}
}

func (f *fakeShard) query(args []string) float64 {
	tlo, _ := strconv.ParseInt(args[0], 10, 64)
	thi, _ := strconv.ParseInt(args[1], 10, 64)
	lo1, _ := strconv.Atoi(args[2])
	lo2, _ := strconv.Atoi(args[3])
	hi1, _ := strconv.Atoi(args[4])
	hi2, _ := strconv.Atoi(args[5])
	var sum float64
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fc := range f.facts {
		if fc.t >= tlo && fc.t <= thi &&
			fc.coords[0] >= lo1 && fc.coords[0] <= hi1 &&
			fc.coords[1] >= lo2 && fc.coords[1] <= hi2 {
			sum += fc.v
		}
	}
	return sum
}

// startProxy boots an in-process proxy over the given shard spec with
// a fast breaker so rejoin tests run in milliseconds.
func startProxy(t *testing.T, spec string) (addr string, p *proxy) {
	t.Helper()
	smap, err := shard.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p = newProxy(smap, 2, time.Hour, 0, shardclient.Options{
		OpTimeout:        time.Second,
		BreakerThreshold: 1,
		BreakerCooldown:  50 * time.Millisecond,
	})
	p.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	// Threshold 0 admits every fan-out query, so SLOWLOG assertions do
	// not depend on test-machine timing.
	p.slow = trace.NewSlowLog(32, 0)
	p.reqTimeout = 5 * time.Second
	p.ready.Store(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		for _, g := range p.groups {
			g.Close()
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.handle(conn)
		}
	}()
	return ln.Addr().String(), p
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

// multi reads an END-terminated response after the given command.
func (c *client) multi(t *testing.T, line string) []string {
	t.Helper()
	first := c.cmd(t, line)
	if strings.HasPrefix(first, "ERR") {
		return []string{first}
	}
	lines := []string{first}
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l = strings.TrimSpace(l)
		if l == "END" {
			return lines
		}
		lines = append(lines, l)
	}
}

func threeShards(t *testing.T) (spec string, shards []*fakeShard) {
	t.Helper()
	a, b, c := newFakeShard(t), newFakeShard(t), newFakeShard(t)
	spec = fmt.Sprintf("%s=0-99,%s=100-199,%s=200-", a.addr(), b.addr(), c.addr())
	return spec, []*fakeShard{a, b, c}
}

func TestProxyRoutesAndMerges(t *testing.T) {
	spec, shards := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)

	// Mutations land on the owner by timestamp.
	for _, ins := range []string{"INS 10 1 1 5", "INS 150 1 1 7", "INS 250 1 1 11", "INS 180 2 2 13"} {
		if got := c.cmd(t, ins); got != "OK" {
			t.Fatalf("%s -> %q", ins, got)
		}
	}
	counts := []int{1, 2, 1}
	for i, f := range shards {
		f.mu.Lock()
		n := len(f.facts)
		f.mu.Unlock()
		if n != counts[i] {
			t.Fatalf("shard %d holds %d facts, want %d", i, n, counts[i])
		}
	}

	// A query across all three shards merges to the full sum.
	if got := c.cmd(t, "QRY 0 300 0 0 7 7"); got != "36" {
		t.Fatalf("QRY full -> %q, want 36", got)
	}
	// Clamped: only the middle shard's range.
	if got := c.cmd(t, "QRY 100 199 0 0 7 7"); got != "20" {
		t.Fatalf("QRY middle -> %q, want 20", got)
	}
	// Box filtering forwarded intact.
	if got := c.cmd(t, "QRY 0 300 2 2 7 7"); got != "13" {
		t.Fatalf("QRY box -> %q, want 13", got)
	}
	// A range before the map covers no shard: the operator's zero.
	if got := c.cmd(t, "QRY 300 100 0 0 7 7"); got != "0" {
		t.Fatalf("inverted QRY -> %q, want 0", got)
	}
	if got := c.cmd(t, "DEL 150 1 1 7"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "QRY 0 300 0 0 7 7"); got != "29" {
		t.Fatalf("QRY after DEL -> %q, want 29", got)
	}
}

func TestProxyPartialOnDeadShardAndRejoin(t *testing.T) {
	spec, shards := threeShards(t)
	addr, p := startProxy(t, spec)
	c := dial(t, addr)

	for _, ins := range []string{"INS 10 1 1 5", "INS 150 1 1 7", "INS 250 1 1 11"} {
		if got := c.cmd(t, ins); got != "OK" {
			t.Fatalf("%s -> %q", ins, got)
		}
	}
	// Kill the middle (historic) shard.
	shards[1].stop()

	// Queries overlapping the dead range answer PARTIAL: live ranges
	// summed, hole named, no error, no hang.
	got := c.cmd(t, "QRY 0 300 0 0 7 7")
	want := fmt.Sprintf("PARTIAL 16 coverage=0.668 covered=0-99,200-300 missing=%s=100-199", shards[1].addr())
	if got != want {
		t.Fatalf("QRY over dead shard:\n got %q\nwant %q", got, want)
	}
	// Queries not touching the dead range stay complete.
	if got := c.cmd(t, "QRY 0 99 0 0 7 7"); got != "5" {
		t.Fatalf("QRY live-only -> %q, want 5", got)
	}
	// Mutations to the dead shard fail explicitly.
	if got := c.cmd(t, "INS 150 1 1 1"); !strings.HasPrefix(got, "ERR shard") {
		t.Fatalf("INS to dead shard -> %q, want ERR shard ... unavailable", got)
	}
	if p.partials.Value() == 0 {
		t.Fatal("histproxy_partial_answers_total not incremented")
	}

	// Rejoin: restart on the same address; after the breaker cooldown
	// the next query is complete again — no proxy restart.
	shards[1].restart(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got = c.cmd(t, "QRY 0 300 0 0 7 7")
		if got == "23" { // complete again: the fake kept its facts
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard rejoined but answers stayed partial: %q", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestProxyExplain(t *testing.T) {
	spec, _ := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 250 1 1 7")

	lines := c.multi(t, "EXPLAIN QRY 0 300 0 0 7 7")
	if lines[0] != "OK result=12" {
		t.Fatalf("EXPLAIN first line = %q", lines[0])
	}
	body := strings.Join(lines, "\n")
	if !strings.Contains(body, "proxy.query") {
		t.Fatalf("EXPLAIN missing proxy.query root:\n%s", body)
	}
	if got := strings.Count(body, "proxy.leg"); got != 3 {
		t.Fatalf("EXPLAIN has %d proxy.leg spans, want 3:\n%s", got, body)
	}
	// Every leg carries its shard's grafted span tree.
	if got := strings.Count(body, "histserve.query"); got != 3 {
		t.Fatalf("EXPLAIN has %d grafted shard trees, want 3:\n%s", got, body)
	}
	if got := strings.Count(body, "histcube.query"); got != 3 {
		t.Fatalf("EXPLAIN has %d grafted shard children, want 3:\n%s", got, body)
	}
	// Each fake leg reports cells_touched=7 conversions=2; three legs.
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "totals ") ||
		!strings.Contains(last, "cells_touched=21") || !strings.Contains(last, "conversions=6") {
		t.Fatalf("EXPLAIN totals = %q, want summed shard totals", last)
	}
}

func TestProxyExplainPartial(t *testing.T) {
	spec, shards := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	shards[2].stop()
	lines := c.multi(t, "EXPLAIN QRY 0 300 0 0 7 7")
	if !strings.HasPrefix(lines[0], "PARTIAL result=5 coverage=0.664 covered=0-199 missing=") {
		t.Fatalf("EXPLAIN over dead shard first line = %q", lines[0])
	}
}

// TestProxyExplainMergedTreeTotals pins the grafting invariant: the
// proxy's totals line is Total over the merged tree, which must equal
// the sum of the grafted shard subtrees' totals bit-exactly — and those
// are the only counters anywhere in the tree.
func TestProxyExplainMergedTreeTotals(t *testing.T) {
	spec, _ := threeShards(t)
	addr, p := startProxy(t, spec)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 250 1 1 7")

	line := "EXPLAIN QRY 0 300 0 0 7 7"
	lines := c.multi(t, line)
	last := lines[len(lines)-1]
	rest, ok := strings.CutPrefix(last, "totals ")
	if !ok {
		t.Fatalf("EXPLAIN last line = %q, want totals", last)
	}
	rendered := make(map[string]int64)
	for _, tok := range strings.Fields(rest) {
		k, v, _ := strings.Cut(tok, "=")
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("totals token %q: %v", tok, err)
		}
		rendered[k] = n
	}

	// The retained trace is the merged tree itself.
	var root *trace.Span
	for _, e := range p.recent.Entries() {
		if e.Line == line {
			root = e.Span
			break
		}
	}
	if root == nil || root.Name() != "proxy.query" {
		t.Fatalf("merged tree not retained in the recent ring")
	}
	grafted := make(map[trace.Counter]int64)
	legs := 0
	for _, leg := range root.Children() {
		if leg.Name() != "proxy.leg" {
			continue
		}
		legs++
		if len(leg.Children()) == 0 {
			t.Fatalf("proxy.leg span has no grafted shard tree")
		}
		for _, sub := range leg.Children() {
			for cn := trace.Counter(0); cn < trace.NumCounters; cn++ {
				grafted[cn] += sub.Total(cn)
			}
		}
	}
	if legs != 3 {
		t.Fatalf("merged tree has %d proxy.leg spans, want 3", legs)
	}
	for cn := trace.Counter(0); cn < trace.NumCounters; cn++ {
		if got := root.Total(cn); got != grafted[cn] {
			t.Errorf("counter %s: merged total %d != grafted sum %d", cn, got, grafted[cn])
		}
		if got := rendered[cn.String()]; got != grafted[cn] {
			t.Errorf("counter %s: rendered total %d != grafted sum %d", cn, got, grafted[cn])
		}
	}
}

// TestProxyExplainDeadShardKeepsSurvivors: a dead leg grafts nothing
// and is marked with an error attr, while the surviving shards' trees
// stay in the merged answer.
func TestProxyExplainDeadShardKeepsSurvivors(t *testing.T) {
	spec, shards := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 150 1 1 7")
	shards[2].stop()

	lines := c.multi(t, "EXPLAIN QRY 0 300 0 0 7 7")
	if !strings.HasPrefix(lines[0], "PARTIAL result=12 ") {
		t.Fatalf("EXPLAIN over dead shard first line = %q", lines[0])
	}
	body := strings.Join(lines, "\n")
	if got := strings.Count(body, "histserve.query"); got != 2 {
		t.Fatalf("want the 2 surviving grafted trees, got %d:\n%s", got, body)
	}
	if !strings.Contains(body, "error=") {
		t.Fatalf("dead leg's span carries no error attr:\n%s", body)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "cells_touched=14") || !strings.Contains(last, "conversions=4") {
		t.Fatalf("totals over survivors = %q, want 2 shards' worth", last)
	}
}

// TestProxyTraceIDPropagation: a client-supplied TID= token is adopted
// by the proxy root, stamped on every shard-bound line, and shows up in
// the proxy's SLOWLOG and recent-trace feed.
func TestProxyTraceIDPropagation(t *testing.T) {
	spec, shards := threeShards(t)
	addr, p := startProxy(t, spec)
	c := dial(t, addr)
	id := trace.NewID()
	tok := trace.FormatRequestID(id)

	if got := c.cmd(t, tok+"INS 10 1 1 5"); got != "OK" {
		t.Fatalf("INS with TID -> %q", got)
	}
	if got := c.cmd(t, tok+"QRY 0 300 0 0 7 7"); got != "5" {
		t.Fatalf("QRY with TID -> %q", got)
	}

	// The owner shard saw the routed mutation with the same token.
	var sawIns bool
	for _, ln := range shards[0].received() {
		if ln == tok+"INS 10 1 1 5" {
			sawIns = true
		}
	}
	if !sawIns {
		t.Fatalf("owner shard never received the TID-stamped mutation: %q", shards[0].received())
	}
	// Every shard's fan-out leg carried the token.
	for i, f := range shards {
		var sawQry bool
		for _, ln := range f.received() {
			if strings.HasPrefix(ln, tok+"QRY ") {
				sawQry = true
			}
		}
		if !sawQry {
			t.Errorf("shard %d never received a TID-stamped QRY leg: %q", i, f.received())
		}
	}

	// Proxy-side observability: SLOWLOG (threshold 0 in startProxy) and
	// the recent ring both carry the same trace_id.
	slowlog := strings.Join(c.multi(t, "SLOWLOG"), "\n")
	if !strings.Contains(slowlog, "trace_id="+id.String()) {
		t.Fatalf("proxy SLOWLOG missing trace_id=%s:\n%s", id, slowlog)
	}
	var found bool
	for _, e := range p.recent.Entries() {
		if e.Span.TraceID() == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("recent ring has no entry with trace_id=%s", id)
	}

	// Without a token the proxy generates its own ID and still stamps
	// the legs.
	if got := c.cmd(t, "QRY 0 300 0 0 7 7"); got != "5" {
		t.Fatalf("QRY -> %q", got)
	}
	var stamped bool
	for _, ln := range shards[0].received() {
		if strings.HasPrefix(ln, "TID=") && !strings.HasPrefix(ln, tok) && strings.Contains(ln, "QRY ") {
			stamped = true
		}
	}
	if !stamped {
		t.Fatalf("proxy-generated trace ID not stamped on shard legs: %q", shards[0].received())
	}
}

func TestProxyMergedStats(t *testing.T) {
	spec, _ := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	c.cmd(t, "INS 10 1 1 5")
	c.cmd(t, "INS 250 1 1 7")

	got := c.cmd(t, "STATS")
	if !strings.HasPrefix(got, "shards=3 shards_up=3 partial_answers_total=0") {
		t.Fatalf("STATS prefix: %q", got)
	}
	// appended sums across shards (1+0+1 facts, +2 STATS-counted... the
	// fake reports len(facts)): 1+0+1 = 2. slices sums to 3. win_s maxes
	// to 10. git_rev (non-numeric) is dropped.
	for _, want := range []string{" appended=2", " slices=3", " win_s=10"} {
		if !strings.Contains(got, want) {
			t.Fatalf("STATS missing %q: %q", want, got)
		}
	}
	if strings.Contains(got, "git_rev") {
		t.Fatalf("STATS carries non-numeric field: %q", got)
	}
}

func TestProxyProtocolErrors(t *testing.T) {
	spec, _ := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	cases := []struct{ line, prefix string }{
		{"QRY 0 300 0 0 7", "ERR QRY needs"},
		{"QRY 0 x 0 0 7 7", "ERR bad integer"},
		{"INS 10 1 1", "ERR INS needs"},
		{"INS x 1 1 5", "ERR bad integer"},
		{"DEL -50 1 1 5", "ERR no shard owns time -50"},
		{"EXPLAIN STATS", "ERR EXPLAIN wraps a query"},
		{"SAVE /tmp/x", "ERR SAVE is not proxied"},
		{"NOPE", "ERR unknown command"},
	}
	for _, tc := range cases {
		if got := c.cmd(t, tc.line); !strings.HasPrefix(got, tc.prefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.line, got, tc.prefix)
		}
	}
}

func TestProxyVersionAndShards(t *testing.T) {
	spec, shards := threeShards(t)
	addr, _ := startProxy(t, spec)
	c := dial(t, addr)
	if got := c.cmd(t, "VERSION"); !strings.HasPrefix(got, "OK histproxy rev=") || !strings.Contains(got, "shards=3") {
		t.Fatalf("VERSION -> %q", got)
	}
	lines := c.multi(t, "SHARDS")
	if lines[0] != "OK n=3 up=3" {
		t.Fatalf("SHARDS first line = %q", lines[0])
	}
	if len(lines) != 4 || !strings.Contains(lines[1], shards[0].addr()) || !strings.HasSuffix(lines[1], " up") {
		t.Fatalf("SHARDS body = %q", lines[1:])
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}

func TestProxySealHistoric(t *testing.T) {
	spec, shards := threeShards(t)
	_, p := startProxy(t, spec)
	p.sealHistoric()
	for i, f := range shards[:2] {
		f.mu.Lock()
		sealed, has := f.sealed, f.hasSeal
		f.mu.Unlock()
		want := []int64{99, 199}[i]
		if !has || sealed != want {
			t.Fatalf("historic shard %d sealed_through=%d (set=%t), want %d", i, sealed, has, want)
		}
	}
	shards[2].mu.Lock()
	hotSealed := shards[2].hasSeal
	shards[2].mu.Unlock()
	if hotSealed {
		t.Fatal("hot shard must not be sealed")
	}
}
