package main

// Replication-chaos harness: build the real histserve and histproxy
// binaries, run a replicated hot shard (semi-sync primary + WAL-
// shipping follower) behind the proxy, SIGKILL the primary mid-append
// under live write load and verify the failover contract — no acked
// write is ever lost (the final sum is bounded below by the OK count),
// reads keep answering exact non-PARTIAL totals from the replica
// throughout the outage, and the promoted replica accepts writes
// within the prober's failover interval. This is the `make replchaos`
// acceptance test wired into check.sh and CI; it builds and kills real
// processes and is skipped under -short.

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReplChaosPrimaryKillUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("replication chaos test builds and kills real processes")
	}
	serveBin := buildBinary(t, "histserve", "../histserve")
	proxyBin := buildBinary(t, "histproxy", ".")

	// One replicated hot shard. The primary is semi-sync (-repl-min-acks
	// 1): an INS is OK'd only after the follower has durably appended
	// AND applied it, so promotion can never lose an acked write.
	pdir := filepath.Join(t.TempDir(), "primary-data")
	rdir := filepath.Join(t.TempDir(), "replica-data")
	serveArgs := []string{"-addr", "127.0.0.1:0", "-dims", "8,8", "-op", "sum"}
	primary := startProc(t, serveBin, append(serveArgs,
		"-data-dir", pdir, "-fsync", "always",
		"-repl-min-acks", "1", "-repl-ack-timeout", "5s")...)
	replica := startProc(t, serveBin, append(serveArgs,
		"-data-dir", rdir, "-fsync", "always", "-follow", primary.addr)...)

	spec := fmt.Sprintf("%s|%s=0-", primary.addr, replica.addr)
	proxy := startProc(t, proxyBin,
		"-addr", "127.0.0.1:0", "-dims", "8,8", "-shards", spec,
		"-shard-timeout", "2s", "-request-timeout", "10s",
		"-breaker-threshold", "1", "-breaker-cooldown", "100ms",
		"-probe-every", "100ms", "-hedge-after", "20ms")
	c := chaosDial(t, proxy.addr)

	// Seed through the proxy. Every OK means the follower applied it.
	const seedN = 100
	for i := 0; i < seedN; i++ {
		if got := c.cmd(t, fmt.Sprintf("INS %d %d %d 1", i, i%8, (i/3)%8)); got != "OK" {
			t.Fatalf("seed INS %d -> %q", i, got)
		}
	}
	const qry = "QRY 0 1000000 0 0 7 7"
	if got := c.cmd(t, qry); got != strconv.Itoa(seedN) {
		t.Fatalf("seeded QRY -> %q, want %d", got, seedN)
	}

	// Background writer: hammer appends on its own connection, tallying
	// OKs (acked — must survive) and errors (indeterminate — each may or
	// may not have landed). It redials when a raced kill breaks the
	// connection and reports the first post-kill OK: the proof that a
	// promoted replica took over the write path.
	var (
		tallyMu  sync.Mutex
		okCount  int
		errCount int
	)
	killed := make(chan struct{})
	promotedOK := make(chan struct{})
	stopWriter := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", proxy.addr)
		if err != nil {
			writerDone <- err
			return
		}
		defer func() { conn.Close() }()
		r := bufio.NewReader(conn)
		sawKill, promoted := false, false
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				writerDone <- nil
				return
			default:
			}
			if !sawKill {
				select {
				case <-killed:
					sawKill = true
				default:
				}
			}
			ts := seedN + i
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			_, werr := fmt.Fprintf(conn, "INS %d %d %d 1\n", ts, ts%8, (ts/3)%8)
			var resp string
			rerr := werr
			if werr == nil {
				resp, rerr = r.ReadString('\n')
			}
			tallyMu.Lock()
			switch {
			case rerr != nil:
				// In-flight at the kill: indeterminate, and the proxy
				// connection itself may have raced the teardown — redial.
				errCount++
				tallyMu.Unlock()
				conn.Close()
				nc, derr := net.Dial("tcp", proxy.addr)
				if derr != nil {
					writerDone <- derr
					return
				}
				conn, r = nc, bufio.NewReader(nc)
				continue
			case strings.HasPrefix(strings.TrimSpace(resp), "OK"):
				okCount++
				if sawKill && !promoted {
					promoted = true
					close(promotedOK)
				}
			default:
				errCount++ // explicit shard-unavailable / timeout reply
			}
			tallyMu.Unlock()
		}
	}()

	// Let the writer get going, then SIGKILL the primary mid-append.
	time.Sleep(150 * time.Millisecond)
	primary.kill(t)
	close(killed)

	// Reads during the outage: the replica replays the primary's exact
	// op stream, so every answer must be a plain, complete number —
	// never PARTIAL, never an error, never a hang.
	for i := 0; i < 20; i++ {
		got := c.cmd(t, qry)
		if strings.HasPrefix(got, "PARTIAL") || strings.HasPrefix(got, "ERR") {
			t.Fatalf("QRY during outage -> %q; the replica must keep answers exact and complete", got)
		}
		if _, err := strconv.ParseFloat(got, 64); err != nil {
			t.Fatalf("QRY during outage -> non-numeric %q", got)
		}
	}

	// The promoted replica must take writes within the probe interval
	// (plus generous slack for the ROLE poll and PROMOTE round-trips).
	select {
	case <-promotedOK:
	case <-time.After(15 * time.Second):
		t.Fatal("no write succeeded after the primary SIGKILL: failover never re-pointed the write path")
	}
	close(stopWriter)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer connection: %v", err)
	}
	tallyMu.Lock()
	ok, errs := okCount, errCount
	tallyMu.Unlock()

	// Zero acked-write loss: every OK'd append must be in the final sum;
	// every errored one may or may not be (indeterminate), but nothing
	// else can appear.
	final := c.cmd(t, qry)
	sum, err := strconv.ParseFloat(final, 64)
	if err != nil {
		t.Fatalf("final QRY -> %q", final)
	}
	lo, hi := float64(seedN+ok), float64(seedN+ok+errs)
	if sum < lo || sum > hi {
		t.Fatalf("final SUM=%v outside [%v, %v] (ok=%d errs=%d): acked writes lost or phantoms appeared",
			sum, lo, hi, ok, errs)
	}

	// The shard map reflects the takeover: the old replica is primary.
	shards := c.cmd(t, "SHARDS")
	var body strings.Builder
	body.WriteString(shards)
	for !strings.HasSuffix(strings.TrimSpace(body.String()), "END") {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SHARDS body: %v", err)
		}
		body.WriteString(line)
	}
	if !strings.Contains(body.String(), replica.addr+":primary=") {
		t.Fatalf("SHARDS does not show the promoted replica as primary:\n%s", body.String())
	}
	t.Logf("outage: %d acked + %d indeterminate writes, final SUM=%v in [%v, %v]; replica promoted to primary",
		ok, errs, sum, lo, hi)
}
