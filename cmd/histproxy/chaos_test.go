package main

// Shard-chaos harness: build the real histserve and histproxy
// binaries, run a 3-shard topology, SIGKILL the middle (historic)
// shard mid-query-workload and verify the proxy's degradation
// contract — answers over the dead range come back PARTIAL with the
// exact live sum (never a wrong total presented as complete, never a
// hang), mutations to live shards keep working — and that restarting
// the shard on the same port and data directory restores complete
// answers without restarting the proxy. This is the `make shardchaos`
// acceptance test wired into check.sh and CI; it builds and kills
// real processes and is skipped under -short.

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var chaosListenRE = regexp.MustCompile(`msg=listening addr=([^ ]+)`)

// buildBinary compiles one command directory once per test.
func buildBinary(t *testing.T, name, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build chaos-test binaries")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// chaosProc is one running child process (shard or proxy).
type chaosProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr []string
	lines  chan string
}

// startProc launches a binary and waits for its "listening" log line.
func startProc(t *testing.T, bin string, args ...string) *chaosProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &chaosProc{cmd: cmd, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a full buffer
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() { p.cmd.Process.Kill(); p.cmd.Wait() })
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("%s exited before listening; stderr:\n%s", bin, strings.Join(p.stderr, "\n"))
			}
			p.stderr = append(p.stderr, line)
			if m := chaosListenRE.FindStringSubmatch(line); m != nil {
				p.addr = m[1]
				return p
			}
		case <-deadline:
			p.cmd.Process.Kill()
			t.Fatalf("%s did not report a listen address; stderr:\n%s", bin, strings.Join(p.stderr, "\n"))
		}
	}
}

// kill SIGKILLs the child and reaps it.
func (p *chaosProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	for range p.lines { // drain to EOF
	}
}

// chaosConn is a line-protocol client with a hang guard: every read
// carries a deadline, so a proxy that stalls fails the test instead of
// wedging it.
type chaosConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func chaosDial(t *testing.T, addr string) *chaosConn {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 50; i++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			t.Cleanup(func() { conn.Close() })
			return &chaosConn{conn: conn, r: bufio.NewReader(conn)}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("dialing %s: %v", addr, err)
	return nil
}

func (c *chaosConn) cmd(t *testing.T, line string) string {
	t.Helper()
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatalf("%s: write: %v", line, err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: read (a hang or dropped conn, both violate the degradation contract): %v", line, err)
	}
	return strings.TrimSpace(resp)
}

func TestShardChaosPartialAnswersAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test builds and kills real processes")
	}
	serveBin := buildBinary(t, "histserve", "../histserve")
	proxyBin := buildBinary(t, "histproxy", ".")

	// Three shards: two historic, one hot. The middle one is the victim;
	// it gets a data directory so its facts survive the SIGKILL.
	victimDir := filepath.Join(t.TempDir(), "victim-data")
	serveArgs := []string{"-addr", "127.0.0.1:0", "-dims", "8,8", "-op", "sum"}
	s0 := startProc(t, serveBin, serveArgs...)
	s1 := startProc(t, serveBin, append(serveArgs, "-data-dir", victimDir, "-fsync", "always")...)
	s2 := startProc(t, serveBin, serveArgs...)
	spec := fmt.Sprintf("%s=0-99,%s=100-199,%s=200-", s0.addr, s1.addr, s2.addr)

	proxy := startProc(t, proxyBin,
		"-addr", "127.0.0.1:0", "-dims", "8,8", "-shards", spec,
		"-shard-timeout", "500ms", "-request-timeout", "5s",
		"-breaker-threshold", "1", "-breaker-cooldown", "100ms",
		"-probe-every", "100ms")
	c := chaosDial(t, proxy.addr)

	// Seed 300 facts of value 1 through the proxy, 100 per shard: the
	// full-range SUM is 300 and the victim's contribution is 100.
	for i := 0; i < 300; i++ {
		if got := c.cmd(t, fmt.Sprintf("INS %d %d %d 1", i, i%8, (i/3)%8)); got != "OK" {
			t.Fatalf("seed INS %d -> %q", i, got)
		}
	}
	const full = "300"
	if got := c.cmd(t, "QRY 0 299 0 0 7 7"); got != full {
		t.Fatalf("seeded QRY -> %q, want %s", got, full)
	}
	wantPartial := fmt.Sprintf("PARTIAL 200 coverage=0.667 covered=0-99,200-299 missing=%s=100-199", s1.addr)

	// SIGKILL the historic shard mid-workload: from here on, every
	// answer must be either the exact full total (a leg that raced the
	// kill and still answered) or the exact PARTIAL — anything else is
	// a wrong total presented as complete.
	s1.kill(t)
	partials := 0
	for i := 0; i < 200 && partials < 5; i++ {
		got := c.cmd(t, "QRY 0 299 0 0 7 7")
		switch got {
		case full:
			// Allowed only before the breaker notices; keep going.
		case wantPartial:
			partials++
		default:
			t.Fatalf("QRY during outage -> %q, want %q or %q", got, full, wantPartial)
		}
	}
	if partials < 5 {
		t.Fatalf("dead shard never degraded the answer to PARTIAL (%d seen)", partials)
	}
	// Ranges not touching the victim stay complete.
	if got := c.cmd(t, "QRY 0 99 0 0 7 7"); got != "100" {
		t.Fatalf("live-range QRY during outage -> %q, want 100", got)
	}
	// Mutations still route to live shards; the victim rejects loudly.
	if got := c.cmd(t, "INS 300 0 0 1"); got != "OK" {
		t.Fatalf("hot-shard INS during outage -> %q", got)
	}
	if got := c.cmd(t, "INS 150 0 0 1"); !strings.HasPrefix(got, "ERR shard") {
		t.Fatalf("victim INS during outage -> %q, want ERR shard ... unavailable", got)
	}
	// STATS reflects the outage.
	if got := c.cmd(t, "STATS"); !strings.HasPrefix(got, "shards=3 shards_up=2") {
		t.Fatalf("STATS during outage -> %q, want shards=3 shards_up=2 prefix", got)
	}

	// Rejoin: restart the victim on the same port and data directory.
	// Recovery replays its WAL, the proxy's prober closes the breaker,
	// and complete answers return — the proxy is never restarted.
	port := s1.addr[strings.LastIndex(s1.addr, ":"):]
	s1b := startProc(t, serveBin, "-addr", "127.0.0.1"+port, "-dims", "8,8", "-op", "sum",
		"-data-dir", victimDir, "-fsync", "always")
	if s1b.addr != s1.addr {
		t.Fatalf("victim rebound on %s, want %s", s1b.addr, s1.addr)
	}
	const fullAfter = "301" // seed + the hot-shard INS during the outage
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := c.cmd(t, "QRY 0 300 0 0 7 7")
		if got == fullAfter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("answers stayed degraded after rejoin: %q", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := c.cmd(t, "STATS"); !strings.HasPrefix(got, "shards=3 shards_up=3") {
		t.Fatalf("STATS after rejoin -> %q, want shards=3 shards_up=3 prefix", got)
	}
	t.Logf("outage produced %d PARTIAL answers; rejoin restored SUM=%s without proxy restart", partials, fullAfter)
}
