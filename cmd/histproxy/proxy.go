// Command histproxy is the scatter-gather router in front of a
// time-range-sharded histserve fleet. It speaks the same line protocol
// on both sides — unmodified clients connect to it exactly as they
// would to a single histserve, and it talks plain histserve protocol
// to every shard — so sharding is a deployment decision, not a client
// change.
//
// Usage:
//
//	histproxy -addr :7071 -dims 16,16 \
//	    -shards "h1:7072=0-999,h2:7073=1000-1999,hot:7074=2000-" \
//	    [-metrics :9091] [-seal-historic]
//
// The -shards map assigns each backend an inclusive transaction-time
// range; ranges must be contiguous and exactly the last is open-ended
// (the hot shard taking appends). Each backend may be a '|'-separated
// replica set, primary first ("primary|replica=lo-hi"): the proxy
// routes writes to the primary and reads to any healthy member. Why this is correct — and cheap — is
// the paper's Sec. 2.2 reduction: a d-dimensional range query is
// answered by prefix differences along time, and SUM/COUNT are
// invertible, so the answer over [tlo, thi] is exactly the sum of the
// answers over the per-shard clamps of that interval. internal/shard
// computes the clamps (Route) and the deterministic merge (Merge).
//
// Request handling:
//
//	INS/DEL  routed to the single shard owning the timestamp (Locate);
//	         the shard's reply is relayed verbatim.
//	QRY      fanned out concurrently to every overlapped shard over
//	         pooled connections (internal/shardclient), partial sums
//	         merged by addition. All legs answered -> the plain number,
//	         bit-identical to a single cube holding all the data.
//	EXPLAIN  fanned out as EXPLAIN JSON QRY; each shard ships its whole
//	         span tree back as one JSON document and the proxy grafts it
//	         under the matching proxy.leg span, so the rendered tree is
//	         one merged trace (proxy.query root, one proxy.leg child per
//	         shard, the shard's own spans below) and the totals line is
//	         Total over that tree — bit-identical to summing the shards'
//	         flat totals, because counters travel as int64.
//	SLOWLOG  answered by the proxy itself from its own slow-query log
//	         (-slow-query-threshold / -slowlog-size), same line format
//	         as a shard's SLOWLOG.
//	STATS    fanned out; numeric fields are summed across shards
//	         (window and percentile fields take the max; sealed_through
//	         takes the max; non-numeric fields like git_rev are
//	         skipped), prefixed with proxy-level shards=/shards_up=.
//	VERSION  answered by the proxy itself (its own build revision).
//	SHARDS   the shard map with live health, END-terminated.
//
// Degraded answers instead of failures: when a shard is down, times
// out, or its circuit breaker is open (internal/shardclient trips it
// on consecutive transport failures), a read query is NOT an error and
// does NOT hang — the proxy answers
//
//	PARTIAL <value> coverage=<fraction> covered=<ranges> missing=<addr=lo-hi,...>
//
// carrying the exact sum over the live time ranges, the fraction of
// the asked time span that sum covers, and the names of the holes. A
// wrong total is never presented as complete. Mutations to a dead
// shard fail explicitly (a write cannot be partial). When the shard
// rejoins, the breaker's half-open probe (plus the background prober)
// restores complete answers without a proxy restart.
//
// Replication and failover: a shard declared as a replica set
// ("primary|replica=lo-hi") is one internal/shardclient.Group. Reads
// go to any healthy member — every member replays the primary's
// totally ordered WAL stream (histserve -follow), so members answer
// bit-identically — and a read still unanswered after -hedge-after is
// duplicated to the next member, first answer wins. Writes pin to the
// primary and are never retried (a duplicate mutation is a
// double-apply). When the primary stops answering — a failed write,
// or the background prober seeing its breaker open — the proxy polls
// every member's ROLE, adopts a member that is already primary, or
// promotes the most-caught-up replica with PROMOTE <fence> where the
// fence is the highest applied LSN observed across the set: a lagging
// replica can never be promoted over acked writes it missed. With
// semi-sync primaries (histserve -repl-min-acks 1) every acked write
// is applied on a replica before its OK, so promotion preserves every
// acked write.
//
// The hidden -fault-spec / -fault-seed flags arm the deterministic
// fault injector (internal/fault) at the proxy's shard-facing sites:
// "proxy.dial" before each backend dial and "proxy.conn.read" /
// "proxy.conn.write" around pooled-connection I/O — the chaos
// harness's hook for drops and stalls between proxy and shard.
//
// With -seal-historic the proxy demotes every closed-range shard at
// startup by issuing SEAL <hi> — a misrouted or replayed mutation
// cannot silently land in history another shard answers for.
//
// Distributed tracing: every request's root span carries a trace ID,
// generated at the proxy edge or adopted from a client's leading
// "TID=<16 hex>" token. The proxy stamps that ID on every shard-bound
// line — fan-out legs and routed mutations alike — so the shards' root
// spans adopt it too, and one identifier correlates a request across
// proxy and shard slog lines, both SLOWLOGs, and both sides'
// /debug/slowlog and /debug/trace/recent feeds.
//
// The proxy carries the same production treatment as histserve:
// per-command sliding-window latency recorders (internal/perf,
// histproxy_cmd_* gauges), histproxy_* request/error/partial counters
// and per-shard health gauges on -metrics (/metrics, /healthz,
// /readyz gated on the shard map being loaded, /debug/perf,
// /debug/slowlog, /debug/trace/recent, /debug/pprof/*), request
// timeouts, -max-conns
// and line-length governance, and per-request panic recovery.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"histcube/internal/fault"
	"histcube/internal/obs"
	"histcube/internal/perf"
	"histcube/internal/retry"
	"histcube/internal/shard"
	"histcube/internal/shardclient"
	"histcube/internal/trace"
)

// commands lists every protocol verb the proxy accounts, mirroring
// histserve's label discipline ("other" catches unknown verbs).
var commands = []string{"INS", "DEL", "QRY", "EXPLAIN", "SLOWLOG", "STATS", "VERSION", "SHARDS", "QUIT", "other"}

// errInternal is the client-visible face of a recovered panic.
var errInternal = errors.New("internal error (recovered panic; see proxy log)")

type proxy struct {
	smap   *shard.Map
	groups []*shardclient.Group // parallel to smap.Shards(); one replica-set client per shard
	dims   int

	// foBusy is the per-shard failover single-flight latch (parallel to
	// groups): the first trigger runs the ROLE poll + promotion, every
	// concurrent trigger returns immediately.
	foBusy []atomic.Bool

	reg    *obs.Registry
	log    *slog.Logger
	perf   *perf.Set
	recent *trace.Ring
	slow   *trace.SlowLog
	meta   perf.RunMeta

	// ready gates /readyz on the shard map being loaded and the client
	// layer built; flipped just before the listener starts.
	ready atomic.Bool

	// Governance, set from flags before serving (startup-only).
	reqTimeout  time.Duration
	readTimeout time.Duration
	maxLineLen  int
	maxConns    int64

	liveConns atomic.Int64
	connSeq   atomic.Int64

	connections *obs.Gauge
	connTotal   *obs.Counter
	inflight    *obs.Gauge
	requests    map[string]*obs.Counter
	errors      map[string]*obs.Counter
	partials    *obs.Counter
	failovers   *obs.Counter
	fanoutLegs  *obs.Counter
	legFailures *obs.Counter
	connRejects *obs.Counter
	panics      *obs.Counter
}

func main() {
	var (
		addr     = flag.String("addr", ":7071", "listen address")
		dimsArg  = flag.Int("dims-count", 0, "number of non-time dimensions (alternative to -dims)")
		dimsList = flag.String("dims", "", "comma-separated dimension sizes, as passed to the shards (only the count matters to the proxy)")
		shards   = flag.String("shards", "", "shard map: addr=lo-hi,...,addr=lo- (contiguous inclusive time ranges; the last is the open-ended hot shard)")
		metrics  = flag.String("metrics", "", "optional HTTP listen address serving /metrics, /healthz, /readyz (e.g. :9091)")
		reqTO    = flag.Duration("request-timeout", 10*time.Second, "per-request deadline; 0 disables")
		legTO    = flag.Duration("shard-timeout", 2*time.Second, "per-shard round-trip deadline inside a fan-out; keep well under -request-timeout so one dead shard degrades the answer instead of timing the request out")
		readTO   = flag.Duration("read-timeout", 5*time.Minute, "close client connections idle for this long; also bounds each response write; 0 disables")
		maxLine  = flag.Int("max-line-bytes", 1<<20, "largest accepted request line in bytes")
		maxConn  = flag.Int64("max-conns", 256, "open client connections accepted at once; 0 = unlimited")
		poolSize = flag.Int("pool-size", 4, "pooled connections kept per shard")
		brkN     = flag.Int("breaker-threshold", 3, "consecutive transport failures that open a shard's circuit breaker")
		brkCool  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker rejects before the half-open trial")
		probeIv  = flag.Duration("probe-every", 500*time.Millisecond, "background health-probe interval for unhealthy shards; 0 disables (rejoin then waits for client traffic, and failover waits for a failed write)")
		hedgeIv  = flag.Duration("hedge-after", 30*time.Millisecond, "duplicate a read to the next replica-set member after this long without an answer (single-member shards never hedge); 0 disables hedging")
		perfWin  = flag.Duration("perf-window", 10*time.Second, "sliding window for per-command latency/throughput digests")
		slowThr  = flag.Duration("slow-query-threshold", 10*time.Millisecond, "fan-out queries at or above this end-to-end duration enter the proxy's slow-query log")
		slowCap  = flag.Int("slowlog-size", 32, "worst traces retained by the proxy's slow-query log")
		sealHist = flag.Bool("seal-historic", false, "at startup, demote every closed-range shard with SEAL <hi> so misrouted mutations cannot land in owned history")
		rtEvery  = flag.Duration("runtime-metrics-every", 10*time.Second, "sampling interval for histcube_runtime_* gauges (GC pause, goroutines, scheduler latency); 0 disables the sampler")
		mutexPF  = flag.Int("mutex-profile-fraction", 0, "runtime mutex profile sampling fraction (1 samples every contention event, 0 disables); populates /debug/pprof/mutex and scales histcube_lock_contention_events_total")
		fspec    = flag.String("fault-spec", "", "fault-injection spec armed at the proxy's shard-facing sites (proxy.dial, proxy.conn.read, proxy.conn.write; see internal/fault); empty disables")
		fseed    = flag.Int64("fault-seed", 1, "seed for probabilistic -fault-spec rules")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *shards == "" {
		logger.Error("missing -shards: the proxy needs a shard map (addr=lo-hi,...,addr=lo-)")
		os.Exit(2)
	}
	dims := *dimsArg
	if dims == 0 && *dimsList != "" {
		dims = len(strings.Split(*dimsList, ","))
	}
	if dims <= 0 {
		logger.Error("missing dimension count: pass -dims (the shard fleet's sizes) or -dims-count")
		os.Exit(2)
	}
	smap, err := shard.Parse(*shards)
	if err != nil {
		logger.Error("bad -shards map", "err", err)
		os.Exit(2)
	}
	copts := shardclient.Options{
		PoolSize:         *poolSize,
		OpTimeout:        *legTO,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCool,
		DialRetry:        retry.Policy{Attempts: 2, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5},
	}
	var inj *fault.Injector
	if *fspec != "" {
		var err error
		inj, err = fault.Parse(*fspec, *fseed)
		if err != nil {
			logger.Error("bad -fault-spec", "err", err)
			os.Exit(2)
		}
		copts.DialFault = func() error { return inj.Check("proxy.dial").Err }
		copts.WrapConn = func(c net.Conn) net.Conn { return inj.WrapConn("proxy.conn", c) }
		logger.Warn("fault injection armed", "fault", inj.String())
	}
	p := newProxy(smap, dims, *perfWin, *hedgeIv, copts)
	if inj != nil {
		inj.RegisterMetrics(p.reg)
	}
	p.log = logger
	p.slow = trace.NewSlowLog(*slowCap, *slowThr)
	if *mutexPF > 0 {
		runtime.SetMutexProfileFraction(*mutexPF)
	}
	if *rtEvery > 0 {
		rc := obs.NewRuntimeCollector(p.reg)
		defer rc.Start(*rtEvery)()
	}
	p.reqTimeout = *reqTO
	p.readTimeout = *readTO
	p.maxLineLen = *maxLine
	p.maxConns = *maxConn

	if *metrics != "" {
		mln, err := p.serveMetrics(*metrics)
		if err != nil {
			logger.Error("metrics listener failed", "addr", *metrics, "err", err)
			os.Exit(1)
		}
		logger.Info("metrics listening", "addr", mln.Addr().String())
	}
	if *sealHist {
		go p.sealHistoric()
	}
	if *probeIv > 0 {
		go p.probeLoop(*probeIv)
	}
	p.ready.Store(true)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	var closing atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("shutdown signal received", "signal", s.String())
		closing.Store(true)
		_ = ln.Close() // unblocking Accept is the point
	}()
	logger.Info("listening", "addr", ln.Addr().String(), "shards", smap.String(), "dims", dims)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if closing.Load() {
				for _, g := range p.groups {
					g.Close()
				}
				logger.Info("shutdown complete")
				return
			}
			logger.Error("accept failed", "err", err)
			os.Exit(1)
		}
		go p.handle(conn)
	}
}

func newProxy(smap *shard.Map, dims int, perfWindow, hedgeAfter time.Duration, copts shardclient.Options) *proxy {
	if perfWindow <= 0 {
		perfWindow = 10 * time.Second
	}
	p := &proxy{
		smap:       smap,
		dims:       dims,
		foBusy:     make([]atomic.Bool, smap.Len()),
		reg:        obs.NewRegistry(),
		log:        slog.Default(),
		perf:       perf.NewSet(perfWindow, commands...),
		recent:     trace.NewRing(64),
		slow:       trace.NewSlowLog(32, 10*time.Millisecond),
		meta:       perf.CollectMeta("histproxy"),
		maxLineLen: 1 << 20,
	}
	for _, s := range smap.Shards() {
		p.groups = append(p.groups, shardclient.NewGroup(s.Members(), hedgeAfter, copts))
	}
	p.perf.RegisterProxy(p.reg)
	p.connections = p.reg.NewGauge("histproxy_connections", "Open client connections.")
	p.connTotal = p.reg.NewCounter("histproxy_connections_total", "Client connections accepted since start.")
	p.inflight = p.reg.NewGauge("histproxy_inflight_requests", "Requests currently being dispatched.")
	p.requests = make(map[string]*obs.Counter, len(commands))
	p.errors = make(map[string]*obs.Counter, len(commands))
	for _, cmd := range commands {
		p.requests[cmd] = p.reg.NewCounter("histproxy_requests_total",
			"Requests dispatched, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
		p.errors[cmd] = p.reg.NewCounter("histproxy_errors_total",
			"Requests answered with ERR, by protocol command.", obs.Label{Key: "cmd", Value: cmd})
	}
	p.partials = p.reg.NewCounter("histproxy_partial_answers_total",
		"Read queries answered PARTIAL because at least one shard leg failed.")
	p.failovers = p.reg.NewCounter("histproxy_failovers_total",
		"Primary failovers executed: a replica promoted or an already-promoted member adopted.")
	p.fanoutLegs = p.reg.NewCounter("histproxy_fanout_legs_total",
		"Shard legs dispatched across all fan-outs.")
	p.legFailures = p.reg.NewCounter("histproxy_leg_failures_total",
		"Shard legs that failed (transport error, timeout, or open breaker).")
	p.connRejects = p.reg.NewCounter("histproxy_connections_rejected_total",
		"Connections rejected at the -max-conns cap.")
	p.panics = p.reg.NewCounter("histproxy_panics_recovered_total",
		"Request panics recovered into ERR internal responses.")
	for i, s := range smap.Shards() {
		g := p.groups[i]
		p.reg.NewGaugeFunc("histproxy_shard_up",
			"1 while at least one replica-set member's breaker is closed, 0 while every member is unreachable.",
			func() float64 {
				if g.Healthy() {
					return 1
				}
				return 0
			}, obs.Label{Key: "shard", Value: s.Addr})
		p.reg.NewGaugeFunc("histproxy_hedged_reads",
			"Hedged duplicate reads launched against the shard's replica set (monotone).",
			func() float64 { return float64(g.Hedged()) },
			obs.Label{Key: "shard", Value: s.Addr})
	}
	return p
}

// sealHistoric demotes every closed-range shard by sealing its range's
// upper bound: the shard keeps serving reads but rejects mutations into
// the history this map says it owns. Every replica-set member is sealed
// — a promoted replica must inherit the demotion. Best-effort at
// startup: a member that is down right now logs a warning and stays
// unsealed until an operator (or a restart) seals it.
func (p *proxy) sealHistoric() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, s := range p.smap.Shards() {
		if s.Range.Hi == shard.Open {
			continue // the hot shard stays writable
		}
		g := p.groups[i]
		for j, member := range s.Members() {
			resp, err := g.Member(j).Do(ctx, fmt.Sprintf("SEAL %d", s.Range.Hi), false)
			if err != nil || !strings.HasPrefix(resp, "OK") {
				p.log.Warn("sealing historic shard failed", "shard", member, "resp", resp, "err", err)
				continue
			}
			p.log.Info("sealed historic shard", "shard", member, "through", s.Range.Hi)
		}
	}
}

// probeLoop keeps probing unhealthy replica-set members so a rejoining
// member's breaker closes from the background, not only from client
// traffic — and it is the standing failover trigger: a shard whose
// current primary is unreachable while another member is alive gets a
// promotion attempt every interval until one sticks.
func (p *proxy) probeLoop(every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for range tick.C {
		for i, g := range p.groups {
			members := p.smap.Shards()[i].Members()
			for j := 0; j < g.Len(); j++ {
				c := g.Member(j)
				if c.Healthy() {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), every)
				err := c.Probe(ctx)
				cancel()
				if err == nil {
					p.log.Info("shard member rejoined", "member", members[j])
				}
			}
			if !g.Primary().Healthy() && g.Healthy() {
				go p.maybeFailover(i)
			}
		}
	}
}

// failoverTimeout bounds one failover round: the ROLE poll across the
// replica set plus the PROMOTE round-trip.
const failoverTimeout = 2 * time.Second

// roleInfo is one member's parsed ROLE reply.
type roleInfo struct {
	ok      bool
	primary bool
	lsn     uint64 // applied_lsn (replica) or last_lsn (primary)
}

// parseRole decodes a histserve ROLE reply ("OK role=... k=v ...").
func parseRole(resp string) roleInfo {
	body, ok := strings.CutPrefix(resp, "OK ")
	if !ok {
		return roleInfo{}
	}
	info := roleInfo{ok: true}
	for _, tok := range strings.Fields(body) {
		k, v, found := strings.Cut(tok, "=")
		if !found {
			continue
		}
		switch k {
		case "role":
			info.primary = v == "primary"
		case "applied_lsn", "last_lsn":
			if n, err := strconv.ParseUint(v, 10, 64); err == nil {
				info.lsn = n
			}
		}
	}
	return info
}

// pollRoles asks every member of g for its ROLE concurrently; a member
// that fails the round-trip stays ok=false.
func (p *proxy) pollRoles(ctx context.Context, g *shardclient.Group) []roleInfo {
	infos := make([]roleInfo, g.Len())
	var wg sync.WaitGroup
	for j := 0; j < g.Len(); j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := g.Member(j).Do(ctx, "ROLE", true)
			if err == nil {
				infos[j] = parseRole(resp)
			}
		}()
	}
	wg.Wait()
	return infos
}

// maybeFailover re-points writes for shard i after its primary stopped
// answering: poll every member's ROLE, adopt a member that already
// calls itself primary (an operator or a competing trigger promoted
// it), else promote the most-caught-up replica — fenced at the highest
// applied LSN observed across the set, so a lagging replica can never
// be promoted over acked writes it missed. Single-flight per shard;
// concurrent triggers return immediately.
func (p *proxy) maybeFailover(i int) {
	if !p.foBusy[i].CompareAndSwap(false, true) {
		return
	}
	defer p.foBusy[i].Store(false)
	g := p.groups[i]
	if g.Len() < 2 {
		return // nothing to promote
	}
	ctx, cancel := context.WithTimeout(context.Background(), failoverTimeout)
	defer cancel()
	infos := p.pollRoles(ctx, g)
	cur := g.PrimaryIndex()
	if infos[cur].ok && infos[cur].primary {
		return // the primary answered after all: spurious trigger
	}
	members := p.smap.Shards()[i].Members()
	best := -1
	var fence uint64
	for j, inf := range infos {
		if !inf.ok {
			continue
		}
		if inf.primary {
			// Already promoted elsewhere: adopt, don't re-promote.
			g.SetPrimary(j)
			p.failovers.Inc()
			p.log.Warn("adopted promoted primary", "shard", members[0], "new_primary", members[j])
			return
		}
		if inf.lsn > fence {
			fence = inf.lsn
		}
		if best == -1 || inf.lsn > infos[best].lsn {
			best = j
		}
	}
	if best < 0 {
		p.log.Warn("failover found no live member", "shard", members[0])
		return
	}
	resp, err := g.Member(best).Do(ctx, fmt.Sprintf("PROMOTE %d", fence), false)
	if err != nil || !strings.HasPrefix(resp, "OK") {
		p.log.Warn("promotion failed", "shard", members[0], "member", members[best], "resp", resp, "err", err)
		return
	}
	g.SetPrimary(best)
	p.failovers.Inc()
	p.log.Warn("promoted replica after primary failure",
		"shard", members[0], "new_primary", members[best], "fence", fence)
}

func (p *proxy) serveMetrics(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.reg.WritePrometheus(w); err != nil {
			p.log.Error("metrics render failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !p.ready.Load() {
			http.Error(w, "loading shard map", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok shards=%d up=%d\n", p.smap.Len(), p.shardsUp())
	})
	mux.HandleFunc("/debug/perf", func(w http.ResponseWriter, r *http.Request) {
		byCmd := make(map[string]perf.Snapshot, len(commands))
		for _, cmd := range p.perf.Names() {
			byCmd[cmd] = p.perf.Snapshot(cmd)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"window_ns": p.perf.Window().Nanoseconds(),
			"commands":  byCmd,
		}); err != nil {
			p.log.Error("perf JSON render failed", "err", err)
		}
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, p.log, map[string]any{
			"threshold_ns": p.slow.Threshold().Nanoseconds(),
			"capacity":     p.slow.Cap(),
			"observed":     p.slow.Observed(),
			"admitted":     p.slow.Admitted(),
		}, p.slow.Entries())
	})
	mux.HandleFunc("/debug/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		writeEntriesJSON(w, p.log, map[string]any{"capacity": p.recent.Cap()}, p.recent.Entries())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil && !strings.Contains(err.Error(), "use of closed") {
			p.log.Error("metrics server stopped", "err", err)
		}
	}()
	return ln, nil
}

func (p *proxy) shardsUp() int {
	up := 0
	for _, g := range p.groups {
		if g.Healthy() {
			up++
		}
	}
	return up
}

// handle serves one client connection; structurally the same loop as
// histserve's (max-conns fast reject, bounded scanner, write deadlines
// on every flush).
func (p *proxy) handle(conn net.Conn) {
	if p.maxConns > 0 && p.liveConns.Add(1) > p.maxConns {
		p.liveConns.Add(-1)
		p.connRejects.Inc()
		p.log.Warn("connection rejected at -max-conns cap",
			"remote", conn.RemoteAddr().String(), "max", p.maxConns)
		p.setWriteDeadline(conn)
		fmt.Fprintln(conn, "ERR server busy: connection limit reached, retry later")
		_ = conn.Close() // the reject line is best-effort
		return
	}
	id := p.connSeq.Add(1)
	p.connections.Inc()
	p.connTotal.Inc()
	log := p.log.With("conn", id, "remote", conn.RemoteAddr().String())
	log.Info("connection opened")
	var reqs, errs int64
	defer func() {
		if err := conn.Close(); err != nil {
			log.Warn("closing connection failed", "err", err)
		}
		p.connections.Dec()
		if p.maxConns > 0 {
			p.liveConns.Add(-1)
		}
		log.Info("connection closed", "requests", reqs, "errors", errs)
	}()
	sc := bufio.NewScanner(conn)
	if p.maxLineLen > 0 {
		sc.Buffer(make([]byte, 0, min(4096, p.maxLineLen)), p.maxLineLen)
	}
	w := bufio.NewWriter(conn)
	for {
		if p.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(p.readTimeout))
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		reqs++
		tid, stripped := trace.CutRequestID(line)
		resp, quit := p.safeDispatch(tid, stripped)
		if strings.HasPrefix(resp, "ERR") {
			errs++
			if tid != 0 {
				log.Warn("request failed", "trace_id", tid.String(), "line", stripped, "resp", resp)
			} else {
				log.Warn("request failed", "line", stripped, "resp", resp)
			}
		}
		fmt.Fprintln(w, resp)
		p.setWriteDeadline(conn)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
	switch err := sc.Err(); {
	case err == nil: // clean EOF
	case errors.Is(err, bufio.ErrTooLong):
		fmt.Fprintf(w, "ERR line too long (max %d bytes)\n", p.maxLineLen)
		p.setWriteDeadline(conn)
		_ = w.Flush() // best-effort farewell
		log.Warn("connection closed: line exceeds -max-line-bytes", "max", p.maxLineLen)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			log.Info("connection closed: idle past -read-timeout", "timeout", p.readTimeout)
		} else {
			log.Warn("connection read failed", "err", err)
		}
	}
}

func (p *proxy) setWriteDeadline(conn net.Conn) {
	if p.readTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(p.readTimeout))
	}
}

func (p *proxy) safeDispatch(tid trace.ID, line string) (resp string, quit bool) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Inc()
			p.log.Error("panic recovered in dispatch",
				"line", line, "panic", fmt.Sprint(r), "stack", string(debug.Stack()))
			resp, quit = "ERR "+errInternal.Error(), false
		}
	}()
	return p.dispatch(tid, line)
}

func (p *proxy) finish(cmd, resp string, start time.Time) {
	key := cmd
	if _, known := p.requests[key]; !known {
		key = "other"
	}
	p.requests[key].Inc()
	if strings.HasPrefix(resp, "ERR") {
		p.errors[key].Inc()
	}
	p.perf.Record(key, time.Since(start))
}

func (p *proxy) requestCtx() (context.Context, context.CancelFunc) {
	if p.reqTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), p.reqTimeout)
}

// dispatch answers one request line (already stripped of any TID=
// token; tid is the adopted trace ID, zero when the client sent none).
func (p *proxy) dispatch(tid trace.ID, line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := "other"
	if len(fields) > 0 {
		cmd = strings.ToUpper(fields[0])
	}
	start := time.Now()
	p.inflight.Inc()
	defer func() {
		p.inflight.Dec()
		p.finish(cmd, resp, start)
	}()
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	switch cmd {
	case "QUIT":
		return "BYE", true
	case "VERSION":
		if len(fields) != 1 {
			return "ERR VERSION takes no arguments", false
		}
		return fmt.Sprintf("OK histproxy rev=%s dirty=%t go=%s shards=%d",
			p.meta.GitRev, p.meta.GitDirty, p.meta.GoVersion, p.smap.Len()), false
	case "SHARDS":
		if len(fields) != 1 {
			return "ERR SHARDS takes no arguments", false
		}
		shards := p.smap.Shards()
		var b strings.Builder
		fmt.Fprintf(&b, "OK n=%d up=%d\n", len(shards), p.shardsUp())
		for i, s := range shards {
			g := p.groups[i]
			state := "up"
			if !g.Healthy() {
				state = "down"
			}
			fmt.Fprintf(&b, "%s range=%s %s", s.Addr, s.Range, state)
			if g.Len() > 1 {
				// Replica sets also report per-member role and health;
				// single-member shards keep the historical line format.
				parts := make([]string, g.Len())
				for j, m := range s.Members() {
					role := "replica"
					if j == g.PrimaryIndex() {
						role = "primary"
					}
					health := "up"
					if !g.Member(j).Healthy() {
						health = "down"
					}
					parts[j] = fmt.Sprintf("%s:%s=%s", m, role, health)
				}
				fmt.Fprintf(&b, " members=%s", strings.Join(parts, ","))
			}
			b.WriteByte('\n')
		}
		b.WriteString("END")
		return b.String(), false
	case "INS", "DEL":
		return p.routeMutation(tid, cmd, line, fields), false
	case "QRY":
		return p.scatterQuery(tid, line, fields[1:], false), false
	case "EXPLAIN":
		if len(fields) < 2 || strings.ToUpper(fields[1]) != "QRY" {
			return "ERR EXPLAIN wraps a query: EXPLAIN QRY <tlo> <thi> <lo...> <hi...>", false
		}
		return p.scatterQuery(tid, line, fields[2:], true), false
	case "STATS":
		if len(fields) != 1 {
			return "ERR STATS takes no arguments", false
		}
		return p.mergedStats(), false
	case "SLOWLOG":
		if len(fields) != 1 {
			return "ERR SLOWLOG takes no arguments", false
		}
		entries := p.slow.Entries()
		var b strings.Builder
		fmt.Fprintf(&b, "OK n=%d cap=%d threshold=%s observed=%d admitted=%d\n",
			len(entries), p.slow.Cap(), p.slow.Threshold(),
			p.slow.Observed(), p.slow.Admitted())
		for i, e := range entries {
			fmt.Fprintf(&b, "#%d dur=%s at=%s cells_touched=%d conversions=%d trace_id=%s line=%q\n",
				i+1, e.Duration, e.At.UTC().Format(time.RFC3339Nano),
				e.Span.Total(trace.CellsTouched), e.Span.Total(trace.Conversions),
				e.Span.TraceID(), e.Line)
		}
		b.WriteString("END")
		return b.String(), false
	case "SAVE", "CHECKPOINT", "SEAL":
		return "ERR " + cmd + " is not proxied: connect to a shard directly (see SHARDS)", false
	default:
		return "ERR unknown command " + cmd, false
	}
}

// routeMutation forwards one INS/DEL to the shard owning its
// timestamp. A write cannot be partial: a dead owner is an explicit
// error, never a silent drop.
func (p *proxy) routeMutation(tid trace.ID, cmd, line string, fields []string) string {
	if len(fields) != 1+1+p.dims+1 {
		return fmt.Sprintf("ERR %s needs time, %d coordinates and a value", cmd, p.dims)
	}
	t, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Sprintf("ERR bad integer %q", fields[1])
	}
	owner, ok := p.smap.Locate(t)
	if !ok {
		return fmt.Sprintf("ERR no shard owns time %d (the shard map starts at %d)", t, p.smap.Shards()[0].Range.Lo)
	}
	idx := p.shardIndex(owner.Addr)
	var root *trace.Span
	if cmd == "INS" {
		root = trace.New("proxy.insert")
	} else {
		root = trace.New("proxy.delete")
	}
	root.SetTraceID(tid)
	root.SetStr("shard", owner.Addr)
	ctx, cancel := p.requestCtx()
	defer cancel()
	// The owner shard's root span adopts the same trace ID via the TID=
	// token, so the mutation is correlatable end to end.
	resp, err := p.groups[idx].Write(ctx, trace.FormatRequestID(root.TraceID())+line)
	root.End()
	p.observe(line, root)
	if err != nil {
		// The write may or may not have reached the dead primary, so it
		// is never retried here (a duplicate mutation is a double-apply)
		// — the client gets the explicit error and a failover kicks off
		// in the background so its retry finds a promoted primary.
		go p.maybeFailover(idx)
		return fmt.Sprintf("ERR shard %s unavailable: %v", owner.Addr, err)
	}
	if strings.HasPrefix(resp, "ERR read-only replica") {
		// The proxy's notion of the primary is stale (a promotion it did
		// not perform): re-poll roles so the next write lands right.
		go p.maybeFailover(idx)
	}
	return resp
}

// legResult is one shard's reply to a fanned-out read. EXPLAIN legs
// carry no payload beyond the value: the shard's span tree is grafted
// directly under the leg's span as it arrives.
type legResult struct {
	leg    shard.Leg
	value  float64
	appErr string // non-empty: the shard answered ERR (application error)
	err    error  // transport/timeout/breaker failure
}

// scatterQuery fans a read query out to every overlapped shard and
// merges the partial sums. explain selects the EXPLAIN variant (span
// tree + summed totals). The query arguments are validated as
// integers here so a malformed request fails once at the proxy instead
// of N times at the shards.
func (p *proxy) scatterQuery(tid trace.ID, line string, args []string, explain bool) string {
	if len(args) != 2+2*p.dims {
		return fmt.Sprintf("ERR QRY needs tlo, thi and %d lo + %d hi coordinates", p.dims, p.dims)
	}
	nums := make([]int64, len(args))
	for i, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return fmt.Sprintf("ERR bad integer %q", a)
		}
		nums[i] = v
	}
	coords := strings.Join(args[2:], " ")
	legs := p.smap.Route(nums[0], nums[1])

	root := trace.New("proxy.query")
	root.SetTraceID(tid)
	root.SetInt("legs", int64(len(legs)))
	results := p.fanOut(root, legs, coords, explain)
	root.End()
	p.observe(line, root)

	// A deterministic application error from any shard (bad
	// coordinates, wrong arity) would be the same from every shard:
	// relay the first one in map order rather than calling it PARTIAL.
	for _, r := range results {
		if r.appErr != "" {
			return r.appErr
		}
	}
	parts := make([]shard.Partial, len(results))
	for i, r := range results {
		parts[i] = shard.Partial{Leg: r.leg, Value: r.value, Err: r.err}
	}
	merged := shard.Merge(parts)
	if !merged.Complete {
		p.partials.Inc()
	}

	value := strconv.FormatFloat(merged.Value, 'g', -1, 64)
	if !explain {
		if merged.Complete {
			return value
		}
		return fmt.Sprintf("PARTIAL %s coverage=%.3f covered=%s missing=%s",
			value, merged.Coverage(), shard.FormatRanges(merged.Covered), shard.FormatMissing(merged.Missing))
	}

	var b strings.Builder
	if merged.Complete {
		fmt.Fprintf(&b, "OK result=%s\n", value)
	} else {
		fmt.Fprintf(&b, "PARTIAL result=%s coverage=%.3f covered=%s missing=%s\n",
			value, merged.Coverage(), shard.FormatRanges(merged.Covered), shard.FormatMissing(merged.Missing))
	}
	root.Render(&b)
	// Total over the merged tree: the only counters anywhere in it are
	// the ones the grafted shard trees brought, so this sum is
	// bit-identical to adding up the shards' own flat totals lines.
	b.WriteString("totals")
	for c := trace.Counter(0); c < trace.NumCounters; c++ {
		fmt.Fprintf(&b, " %s=%d", c, root.Total(c))
	}
	b.WriteString("\nEND")
	return b.String()
}

// fanOut dispatches one leg per overlapped shard concurrently. Child
// spans are created serially before the goroutines start (trace.Span
// is not concurrency-safe; each goroutine owns exactly one child) and
// joined by the WaitGroup before anyone reads the tree.
func (p *proxy) fanOut(root *trace.Span, legs []shard.Leg, coords string, explain bool) []legResult {
	ctx, cancel := p.requestCtx()
	defer cancel()
	tidPrefix := trace.FormatRequestID(root.TraceID())
	results := make([]legResult, len(legs))
	spans := make([]*trace.Span, len(legs))
	for i, leg := range legs {
		spans[i] = root.StartChild("proxy.leg")
		spans[i].SetStr("shard", leg.Addr)
		spans[i].SetInt("tlo", leg.TimeLo)
		spans[i].SetInt("thi", leg.TimeHi)
	}
	var wg sync.WaitGroup
	for i, leg := range legs {
		i, leg := i, leg
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer spans[i].End()
			p.fanoutLegs.Inc()
			results[i] = p.queryLeg(ctx, spans[i], tidPrefix, leg, coords, explain)
			if results[i].err != nil {
				p.legFailures.Inc()
				// A failed leg grafts nothing: the surviving shard trees
				// stay in the rendered answer, and the hole is marked on
				// the leg's own span.
				spans[i].SetStr("error", results[i].err.Error())
			} else {
				spans[i].SetFloat("value", results[i].value)
			}
		}()
	}
	wg.Wait()
	return results
}

// queryLeg performs one shard round-trip for its clamped time range.
// tidPrefix is the request's "TID=<hex> " token, stamped on every
// shard-bound line so the shard's spans join this trace. The EXPLAIN
// variant asks for the structured reply (EXPLAIN JSON, one line) and
// grafts the shard's decoded span tree under the leg's span.
func (p *proxy) queryLeg(ctx context.Context, sp *trace.Span, tidPrefix string, leg shard.Leg, coords string, explain bool) legResult {
	res := legResult{leg: leg}
	g := p.groups[leg.Index]
	qry := fmt.Sprintf("QRY %d %d %s", leg.TimeLo, leg.TimeHi, coords)
	if explain {
		reply, err := g.Read(ctx, tidPrefix+"EXPLAIN JSON "+qry)
		if err != nil {
			res.err = err
			return res
		}
		if strings.HasPrefix(reply, "ERR") {
			return classifyShardErr(res, reply)
		}
		body, ok := strings.CutPrefix(reply, "OK ")
		if !ok {
			res.err = fmt.Errorf("shard %s: unexpected EXPLAIN reply %q", leg.Addr, reply)
			return res
		}
		var doc struct {
			Result float64         `json:"result"`
			Trace  *trace.SpanJSON `json:"trace"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			res.err = fmt.Errorf("shard %s: bad EXPLAIN JSON reply: %w", leg.Addr, err)
			return res
		}
		res.value = doc.Result
		sp.Graft(doc.Trace.Span())
		return res
	}
	reply, err := g.Read(ctx, tidPrefix+qry)
	if err != nil {
		res.err = err
		return res
	}
	if strings.HasPrefix(reply, "ERR") {
		return classifyShardErr(res, reply)
	}
	v, err := strconv.ParseFloat(reply, 64)
	if err != nil {
		res.err = fmt.Errorf("shard %s: non-numeric QRY reply %q", leg.Addr, reply)
		return res
	}
	res.value = v
	return res
}

// classifyShardErr splits a shard's ERR reply: timeouts and
// cancellations are leg failures (the shard is slow or dying — degrade
// to PARTIAL), everything else is a deterministic application error
// relayed to the client as-is.
func classifyShardErr(res legResult, reply string) legResult {
	if strings.HasPrefix(reply, "ERR timeout") || strings.HasPrefix(reply, "ERR canceled") {
		res.err = errors.New(reply)
	} else {
		res.appErr = reply
	}
	return res
}

// statsMaxKeys are STATS fields where summing across shards is wrong:
// window length and percentile digests take the max (worst case), and
// sealed_through is a boundary, not a quantity.
func statsMaxKey(k string) bool {
	return k == "win_s" || k == "sealed_through" || k == "degraded" ||
		strings.HasSuffix(k, "_p50_us") || strings.HasSuffix(k, "_p99_us")
}

// mergedStats fans STATS out to every shard and merges the numeric
// fields: sums by default, max for statsMaxKey fields, non-numeric
// tokens (git_rev) skipped. Field order follows the first responding
// shard so the output stays stable and diffable.
func (p *proxy) mergedStats() string {
	ctx, cancel := p.requestCtx()
	defer cancel()
	type statsReply struct {
		idx  int
		resp string
		err  error
	}
	replies := make([]statsReply, len(p.groups))
	var wg sync.WaitGroup
	for i, g := range p.groups {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := g.Read(ctx, "STATS")
			replies[i] = statsReply{idx: i, resp: resp, err: err}
		}()
	}
	wg.Wait()

	merged := make(map[string]float64)
	sawMax := make(map[string]bool)
	var order []string
	up := 0
	for _, r := range replies {
		if r.err != nil || strings.HasPrefix(r.resp, "ERR") {
			continue
		}
		up++
		for _, tok := range strings.Fields(r.resp) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				continue
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue // non-numeric (git_rev)
			}
			if _, seen := merged[k]; !seen {
				order = append(order, k)
			}
			if statsMaxKey(k) {
				if !sawMax[k] || f > merged[k] {
					merged[k] = f
				}
				sawMax[k] = true
			} else {
				merged[k] += f
			}
		}
	}
	if up == 0 {
		return "ERR no shard reachable for STATS"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards=%d shards_up=%d partial_answers_total=%d",
		p.smap.Len(), up, p.partials.Value())
	for _, k := range order {
		v := merged[k]
		//histlint:ignore nofloateq exact integrality check choosing the render format, not a value comparison
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, " %s=%d", k, int64(v))
		} else {
			fmt.Fprintf(&b, " %s=%.1f", k, v)
		}
	}
	return b.String()
}

// shardIndex maps an address back to its map position.
func (p *proxy) shardIndex(addr string) int {
	for j, s := range p.smap.Shards() {
		if s.Addr == addr {
			return j
		}
	}
	return len(p.groups) - 1 // unreachable with a valid map; fall back to hot
}

// observe retains one finished request trace in the recent ring and,
// for fan-out queries at or above the threshold, the slow-query log.
func (p *proxy) observe(line string, root *trace.Span) {
	at := time.Now()
	d := root.Duration()
	p.recent.Add(line, at, d, root)
	if root.Name() == "proxy.query" {
		if p.slow.Observe(line, at, d, root) {
			p.log.Warn("slow query", "trace_id", root.TraceID().String(), "dur", d, "line", line)
		}
	}
}

// writeEntriesJSON renders a trace feed (slowlog or recent ring) as
// JSON — the same shape histserve serves, so fleet-wide trace_id
// correlation works with one jq expression on either side.
func writeEntriesJSON(w http.ResponseWriter, log *slog.Logger, meta map[string]any, entries []trace.Entry) {
	meta["entries"] = trace.EntriesJSON(entries)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		log.Error("trace JSON render failed", "err", err)
	}
}
