// Command histgen generates the paper's synthetic data sets (Table 3)
// as CSV update streams, for inspection or for loading into other
// systems.
//
// Usage:
//
//	histgen -dataset weather4|weather6|gauss3|uniform -scale 0.01 -out file.csv
//
// The CSV format is one header line "# name=... slice=AxBxC time=N"
// followed by "time,c1,...,cd,delta" per update, in transaction-time
// order.
//
// -skew S (S > 1) replaces the data set's spatial placement with a
// Zipf(S) draw per coordinate: low coordinates become hot spots, the
// standard imbalance model for exercising histproxy shard topologies.
package main

import (
	"flag"
	"fmt"
	"os"

	"histcube/internal/dims"
	"histcube/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "gauss3", "data set: weather4, weather6, gauss3, uniform")
		scale   = flag.Float64("scale", 0.01, "geometry scale factor (1 = paper scale)")
		out     = flag.String("out", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 0, "override the spec's RNG seed (0 = keep)")
		skew    = flag.Float64("skew", 0, "Zipf exponent for coordinate hot spots (0 = spec placement; otherwise must be > 1)")
	)
	flag.Parse()

	if *skew < 0 || (*skew > 0 && *skew <= 1) {
		fmt.Fprintf(os.Stderr, "histgen: -skew %g must be > 1 (the Zipf exponent) or 0 to disable\n", *skew)
		os.Exit(2)
	}

	var spec workload.Spec
	switch *dataset {
	case "weather4":
		spec = workload.Weather4Spec
	case "weather6":
		spec = workload.Weather6Spec
	case "gauss3":
		spec = workload.Gauss3Spec
	case "uniform":
		spec = workload.Spec{
			Name:       "uniform",
			SliceShape: dims.Shape{64, 64},
			TimeSize:   256,
			Points:     100000,
			Seed:       7,
		}
	default:
		fmt.Fprintf(os.Stderr, "histgen: unknown data set %q\n", *dataset)
		os.Exit(2)
	}
	spec = spec.Scaled(*scale)
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *skew > 1 {
		spec.Skew = *skew
		spec.Name += fmt.Sprintf("+zipf%g", *skew)
	}

	ds := workload.Generate(spec)
	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histgen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "histgen: %v\n", err)
		os.Exit(1)
	}
	if f != nil {
		// Close before reporting success: on a full disk the flush
		// behind Close is where the write error surfaces.
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "histgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "histgen: wrote %d updates (%s, %d non-empty cells, density %.4f)\n",
		len(ds.Updates), ds.Name, ds.NonEmpty(), ds.Density())
}
