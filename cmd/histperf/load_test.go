package main

// Unit tests for the load engine's pure pieces plus the end-to-end
// smoke: build the real histserve binary, run a short two-mix load
// against it and check the emitted report is internally consistent —
// including the paper-unit convergence drop the benchmark exists to
// demonstrate.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseShape(t *testing.T) {
	good := map[string][]int{
		"16,16":  {16, 16},
		"8":      {8},
		" 4, 2 ": {4, 2},
	}
	for in, want := range good {
		got, err := parseShape(in)
		if err != nil {
			t.Fatalf("parseShape(%q): %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseShape(%q) = %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parseShape(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"", "0", "-3,4", "a,b", "16,,16"} {
		if _, err := parseShape(in); err == nil {
			t.Errorf("parseShape(%q) accepted", in)
		}
	}
}

func TestBounds(t *testing.T) {
	// 16x16: DDC (2·log₂16)² = 64, PS 2² = 4 — the paper's Fig. 10/11
	// regime endpoints for a 2-d cube.
	if got := ddcBound([]int{16, 16}); math.Abs(got-64) > 1e-9 {
		t.Errorf("ddcBound(16,16) = %g, want 64", got)
	}
	if got := psBound([]int{16, 16}); got != 4 {
		t.Errorf("psBound(16,16) = %g, want 4", got)
	}
}

// TestQueryGeneration checks every generated line stays inside the
// region and the cube's domains.
func TestQueryGeneration(t *testing.T) {
	shape := []int{16, 8}
	w := &worker{
		eng:      &engine{shape: shape},
		rng:      rand.New(rand.NewSource(42)),
		regionLo: 100,
		regionHi: 114,
	}
	for i := 0; i < 2000; i++ {
		fields := strings.Fields(w.randomQuery())
		if fields[0] != "QRY" || len(fields) != 1+2+2*len(shape) {
			t.Fatalf("malformed query %q", fields)
		}
		nums := make([]int, 0, len(fields)-1)
		for _, f := range fields[1:] {
			var n int
			if _, err := jsonNumber(f, &n); err != nil {
				t.Fatalf("bad number %q in %q", f, fields)
			}
			nums = append(nums, n)
		}
		tlo, thi := nums[0], nums[1]
		if tlo < 100 || thi > 114 || tlo > thi {
			t.Fatalf("time range [%d,%d] outside region", tlo, thi)
		}
		for d, n := range shape {
			lo, hi := nums[2+d], nums[2+len(shape)+d]
			if lo < 0 || hi >= n || lo > hi {
				t.Fatalf("dim %d box [%d,%d] outside [0,%d)", d, lo, hi, n)
			}
		}
	}
}

// jsonNumber parses one integer field (strconv via json keeps the
// test free of a second parser idiom).
func jsonNumber(s string, into *int) (int, error) {
	err := json.Unmarshal([]byte(s), into)
	return *into, err
}

func TestBuildPool(t *testing.T) {
	pool := buildPool(mixSpecs["convergence"], []int{16, 16}, 0, 14)
	if len(pool) != mixSpecs["convergence"].fixedPool {
		t.Fatalf("pool size %d", len(pool))
	}
	for _, q := range pool {
		fields := strings.Fields(q)
		if fields[0] != "QRY" || len(fields) != 7 {
			t.Fatalf("malformed pool query %q", q)
		}
		if fields[2] != "14" || fields[3] != "1" || fields[4] != "1" || fields[5] != "14" || fields[6] != "14" {
			t.Fatalf("pool query %q is not an interior-box historic query", q)
		}
	}
	if pool[0] == pool[len(pool)-1] {
		t.Errorf("pool queries do not stagger start times: %q", pool)
	}
	if buildPool(mixSpecs["read"], []int{16}, 0, 10) != nil {
		t.Errorf("non-convergence mix got a pool")
	}
}

func TestInsLine(t *testing.T) {
	if got := insLine(7, []int{3, 12}, 1); got != "INS 7 3 12 1" {
		t.Errorf("insLine = %q", got)
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	got, err := nextBenchPath(dir)
	if err != nil || got != "BENCH_0001.json" {
		t.Fatalf("empty dir -> %q, %v", got, err)
	}
	for _, f := range []string{"BENCH_0001.json", "BENCH_0007.json", "BENCH_smoke.json"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, err = nextBenchPath(dir); err != nil || got != "BENCH_0008.json" {
		t.Fatalf("seeded dir -> %q, %v", got, err)
	}
}

// buildServer compiles the real histserve binary for the smoke test.
func buildServer(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build histserve")
	}
	bin := filepath.Join(t.TempDir(), "histserve")
	out, err := exec.Command("go", "build", "-o", bin, "histcube/cmd/histserve").CombinedOutput()
	if err != nil {
		t.Fatalf("building histserve: %v\n%s", err, out)
	}
	return bin
}

// TestEndToEndSmoke runs a short real load — read + convergence mixes
// against a freshly launched server — and checks the report: sane
// throughput and latency, server-side request deltas consistent with
// the client's op counts, and a convergence probe whose per-query
// cell cost dropped towards the PS floor.
func TestEndToEndSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real-binary load smoke in -short mode")
	}
	bin := buildServer(t)
	profDir := filepath.Join(t.TempDir(), "profiles")
	var progress bytes.Buffer
	report, err := runLoad(loadConfig{
		Bin:        bin,
		Dims:       "16,16",
		Mode:       "closed",
		Conns:      2,
		Duration:   1500 * time.Millisecond,
		Warmup:     200 * time.Millisecond,
		Seed:       1,
		Mixes:      []string{"read", "convergence"},
		ProfileDir: profDir,
		Log:        &progress,
	})
	if err != nil {
		t.Fatalf("runLoad: %v\nprogress:\n%s", err, progress.String())
	}

	for _, name := range []string{"read", "convergence"} {
		m := report.Mixes[name]
		if m == nil {
			t.Fatalf("mix %s missing from report", name)
		}
		if m.Ops < 100 {
			t.Errorf("mix %s: only %d ops in 1.5s", name, m.Ops)
		}
		if m.Errors != 0 {
			t.Errorf("mix %s: %d protocol errors", name, m.Errors)
		}
		lat := m.Latency
		if lat.Count != m.Ops || lat.P50US <= 0 || lat.P99US < lat.P50US || lat.MaxUS < lat.P99US/2 {
			t.Errorf("mix %s: implausible latency digest %+v", name, lat)
		}
		// Client ops and the server's scraped request deltas must agree:
		// everything the client counted hit the server during the timed
		// phase (the delta may exceed it by in-flight warmup stragglers,
		// never undercount by more than the connection count).
		reqDelta := m.ServerDeltas["requests_qry"] + m.ServerDeltas["requests_ins"]
		if reqDelta < float64(m.Ops) {
			t.Errorf("mix %s: server saw %.0f requests, client recorded %d", name, reqDelta, m.Ops)
		}
	}

	u := report.Mixes["convergence"].PaperUnits
	if u == nil {
		t.Fatal("convergence mix carries no paper units")
	}
	if u.FirstCellsTouched <= 0 {
		t.Fatalf("first probe touched %d cells", u.FirstCellsTouched)
	}
	if u.LastCellsTouched >= u.FirstCellsTouched {
		t.Errorf("no DDC->PS drop: %d -> %d cells", u.FirstCellsTouched, u.LastCellsTouched)
	}
	if u.DDCBound != 64 || u.PSBound != 4 {
		t.Errorf("bounds = %g/%g, want 64/4 for 16,16", u.DDCBound, u.PSBound)
	}
	if u.ConversionsDelta <= 0 {
		t.Errorf("convergence mix persisted %d DDC->PS conversions, want > 0", u.ConversionsDelta)
	}
	if report.Mixes["read"].PaperUnits != nil {
		t.Errorf("read mix unexpectedly carries paper units")
	}

	if report.Meta.Tool != "histperf" || report.Meta.GoVersion == "" || report.Meta.GOMAXPROCS < 1 {
		t.Errorf("bad meta: %+v", report.Meta)
	}

	// Profiles were captured for the timed phases and the run end.
	for _, f := range []string{"cpu_read.pprof", "cpu_convergence.pprof", "heap.pprof", "mutex.pprof", "block.pprof"} {
		fi, err := os.Stat(filepath.Join(profDir, f))
		if err != nil {
			t.Errorf("profile %s: %v", f, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}

	// The report round-trips through the compare gate against itself.
	dir := t.TempDir()
	path := filepath.Join(dir, "smoke.json")
	if _, err := writeReport(report, path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := compareReports(path, path, 0.1, &out); code != 0 {
		t.Errorf("self-compare failed:\n%s", out.String())
	}
}

// buildProxy compiles the real histproxy binary for topology tests.
func buildProxy(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build histproxy")
	}
	bin := filepath.Join(t.TempDir(), "histproxy")
	out, err := exec.Command("go", "build", "-o", bin, "histcube/cmd/histproxy").CombinedOutput()
	if err != nil {
		t.Fatalf("building histproxy: %v\n%s", err, out)
	}
	return bin
}

// TestTopologySmoke drives a short skewed read/write load through a
// real 3-shard histproxy topology and checks the report: the proxy
// self-reports its build, the config block records the topology, the
// scraped proxy deltas show real scatter-gather fan-out, and no query
// degraded to PARTIAL (all shards stayed up).
func TestTopologySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real-binary topology smoke in -short mode")
	}
	report, err := runLoad(loadConfig{
		Bin:        buildServer(t),
		ProxyBin:   buildProxy(t),
		ShardCount: 3,
		Dims:       "8,8",
		Mode:       "closed",
		Conns:      2,
		Duration:   time.Second,
		Warmup:     100 * time.Millisecond,
		Seed:       3,
		Skew:       1.5,
		Mixes:      []string{"read", "write"},
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if report.Config.ShardCount != 3 || report.Config.Skew != 1.5 {
		t.Errorf("config block lost the topology: %+v", report.Config)
	}
	if !strings.HasPrefix(report.ServerVersion, "histproxy rev=") {
		t.Errorf("server_version = %q, want the proxy's VERSION reply", report.ServerVersion)
	}
	for _, name := range []string{"read", "write"} {
		m := report.Mixes[name]
		if m == nil {
			t.Fatalf("mix %s missing from report", name)
		}
		if m.Ops < 100 {
			t.Errorf("mix %s: only %d ops", name, m.Ops)
		}
		if m.Errors != 0 {
			t.Errorf("mix %s: %d protocol errors", name, m.Errors)
		}
		if m.ServerDeltas["partials"] != 0 {
			t.Errorf("mix %s: %v PARTIAL answers with every shard up", name, m.ServerDeltas["partials"])
		}
	}
	// The read mix's queries span the seeded region, which the shard
	// map partitions: legs must outnumber queries (real fan-out).
	read := report.Mixes["read"]
	if legs, qrys := read.ServerDeltas["fanout_legs"], read.ServerDeltas["requests_qry"]; legs <= qrys {
		t.Errorf("read mix: %v fan-out legs for %v queries, want scatter-gather > 1 leg/query", legs, qrys)
	}
	if read.ServerDeltas["leg_failures"] != 0 {
		t.Errorf("read mix: %v leg failures with every shard up", read.ServerDeltas["leg_failures"])
	}
}

// TestOpenLoopSmoke runs a brief paced load and checks the measured
// rate lands near the configured arrival rate (closed-loop saturation
// would be far higher).
func TestOpenLoopSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping real-binary load smoke in -short mode")
	}
	bin := buildServer(t)
	report, err := runLoad(loadConfig{
		Bin:      bin,
		Dims:     "8,8",
		Mode:     "open",
		Conns:    2,
		Rate:     400,
		Duration: time.Second,
		Warmup:   100 * time.Millisecond,
		Seed:     2,
		Mixes:    []string{"mixed"},
	})
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	m := report.Mixes["mixed"]
	if m.OpsPerSec < 150 || m.OpsPerSec > 900 {
		t.Errorf("open loop at 400 ops/sec measured %.0f ops/sec", m.OpsPerSec)
	}
}
