package main

// The regression verdict: `histperf -compare old.json new.json
// -tolerance P` holds a new report against a baseline and exits
// nonzero on regression, so check.sh and CI can gate on it.

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
)

// Error-rate slack: wire benchmarks produce occasional stray errors;
// only a rate jump beyond this absolute fraction fails the gate.
const errorRateSlack = 0.05

// compareReports prints a per-mix verdict and returns the exit code:
// 0 pass, 1 regression, 2 usage or input error.
//
// Throughput and latency are machine-dependent, so they get the full
// tolerance in the generous direction only (slower ops/sec, fatter
// p99). Paper units (cells touched by the convergence probe) are
// machine-independent, so they are held to the same tolerance around
// an exact counter — and a new report whose convergence mix no longer
// converges (last > first) fails regardless of tolerance.
func compareReports(oldPath, newPath string, tol float64, out io.Writer) int {
	if tol < 0 || tol >= 1 {
		fmt.Fprintf(out, "histperf: -tolerance %g outside [0, 1)\n", tol)
		return 2
	}
	oldR, err := readReport(oldPath)
	if err != nil {
		reportReadError(out, "baseline", oldPath, err)
		return 2
	}
	newR, err := readReport(newPath)
	if err != nil {
		reportReadError(out, "candidate", newPath, err)
		return 2
	}

	names := sortedMixNames(oldR)
	regressions := 0
	fail := func(mix, format string, args ...any) {
		regressions++
		fmt.Fprintf(out, "FAIL %-12s %s\n", mix, fmt.Sprintf(format, args...))
	}
	for _, name := range names {
		o := oldR.Mixes[name]
		n, ok := newR.Mixes[name]
		if !ok {
			fail(name, "mix present in %s but missing from %s", oldPath, newPath)
			continue
		}
		if floor := o.OpsPerSec * (1 - tol); n.OpsPerSec < floor {
			fail(name, "ops/sec %.1f below %.1f (old %.1f, tolerance %g)",
				n.OpsPerSec, floor, o.OpsPerSec, tol)
		}
		if ceil := o.Latency.P99US / (1 - tol); o.Latency.P99US > 0 && n.Latency.P99US > ceil {
			fail(name, "p99 %.1fus above %.1fus (old %.1fus, tolerance %g)",
				n.Latency.P99US, ceil, o.Latency.P99US, tol)
		}
		oldRate := errorRate(o)
		newRate := errorRate(n)
		if newRate > oldRate+errorRateSlack {
			fail(name, "error rate %.3f above old %.3f + %.2f slack", newRate, oldRate, errorRateSlack)
		}
		if o.PaperUnits != nil && n.PaperUnits != nil {
			op, np := o.PaperUnits, n.PaperUnits
			if np.LastCellsTouched > np.FirstCellsTouched {
				fail(name, "no convergence: cells per probe grew %d -> %d (DDC->PS regression)",
					np.FirstCellsTouched, np.LastCellsTouched)
			}
			if ceil := float64(op.LastCellsTouched) * (1 + tol); float64(np.LastCellsTouched) > ceil {
				fail(name, "converged cost %d cells above %.0f (old %d, tolerance %g)",
					np.LastCellsTouched, ceil, op.LastCellsTouched, tol)
			}
		}
	}
	for _, name := range sortedMixNames(newR) {
		if _, ok := oldR.Mixes[name]; !ok {
			fmt.Fprintf(out, "NOTE %-12s new mix, no baseline\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(out, "histperf: %d regression(s) vs %s (tolerance %g)\n", regressions, oldPath, tol)
		return 1
	}
	fmt.Fprintf(out, "histperf: %d mix(es) within tolerance %g of %s\n", len(names), tol, oldPath)
	return 0
}

// reportReadError renders a compare input failure as a usage error:
// which role the file played, what went wrong, and — for the common
// case of a baseline that was simply never recorded — how to produce
// one.
func reportReadError(out io.Writer, role, path string, err error) {
	fmt.Fprintf(out, "histperf: %s report %s: %v\n", role, path, err)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(out, "hint: no such file — record it first with: histperf -serve-bin ./bin/histserve -out %s\n", path)
	}
}

func errorRate(m *MixResult) float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Errors) / float64(m.Ops)
}

// summarize prints the human-readable run table.
func summarize(r *Report, out io.Writer) {
	fmt.Fprintf(out, "histperf %s (%s, go %s, GOMAXPROCS=%d)\n",
		r.Meta.GitRev, r.Meta.Date, r.Meta.GoVersion, r.Meta.GOMAXPROCS)
	names := make([]string, 0, len(r.Mixes))
	for n := range r.Mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.Mixes[name]
		fmt.Fprintf(out, "  %-12s %8.0f ops/sec  p50 %7.1fus  p95 %7.1fus  p99 %7.1fus  errors %d\n",
			name, m.OpsPerSec, m.Latency.P50US, m.Latency.P95US, m.Latency.P99US, m.Errors)
		if u := m.PaperUnits; u != nil {
			fmt.Fprintf(out, "  %-12s cells/probe %d -> %d (ratio %.3f; DDC bound %.0f, PS bound %.0f), conversions %d\n",
				"", u.FirstCellsTouched, u.LastCellsTouched, u.CellsRatio, u.DDCBound, u.PSBound, u.ConversionsDelta)
		}
		if rt := m.Runtime; rt != nil {
			fmt.Fprintf(out, "  %-12s lock wait %.3fs over %.0f contention events, gc p99 %.1fms, %.0f goroutines\n",
				"", rt.LockWaitSecondsDelta, rt.LockContentionEventsDelta, rt.GCPauseP99Seconds*1e3, rt.Goroutines)
		}
	}
}
