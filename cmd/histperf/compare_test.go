package main

// Compare-gate tests: the regression verdict must exit nonzero on a
// synthetically degraded copy of a baseline and zero on an identical
// one. These run on canned reports, no server needed.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"histcube/internal/perf"
)

// canned returns a plausible two-mix baseline report.
func canned() *Report {
	return &Report{
		Format: reportFormat,
		Meta:   perf.RunMeta{Tool: "histperf", GitRev: "test", GoVersion: "gotest", GOMAXPROCS: 1},
		Config: RunConfig{Mode: "closed", Conns: 4, DurationSeconds: 5, Dims: "16,16", Seed: 1},
		Mixes: map[string]*MixResult{
			"read": {
				Ops: 50000, OpsPerSec: 10000,
				Latency: LatencyDigest{Count: 50000, MeanUS: 90, P50US: 80, P95US: 150, P99US: 240, MaxUS: 900},
			},
			"convergence": {
				Ops: 40000, OpsPerSec: 8000,
				Latency: LatencyDigest{Count: 40000, MeanUS: 110, P50US: 95, P95US: 180, P99US: 300, MaxUS: 1200},
				PaperUnits: &PaperUnits{
					FirstCellsTouched: 900, LastCellsTouched: 60, CellsRatio: 60.0 / 900,
					ConversionsDelta: 14, DDCBound: 64, PSBound: 4,
				},
			},
		},
	}
}

// writeTemp marshals a report into dir and returns its path.
func writeTemp(t *testing.T, dir, name string, r *Report) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareIdentical passes a report against itself.
func TestCompareIdentical(t *testing.T) {
	dir := t.TempDir()
	old := writeTemp(t, dir, "old.json", canned())
	var out bytes.Buffer
	if code := compareReports(old, old, 0.1, &out); code != 0 {
		t.Fatalf("identical reports -> exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Errorf("missing pass summary: %q", out.String())
	}
}

// TestCompareDegraded checks every regression axis fails the gate:
// slower throughput, fatter p99, an error-rate jump, a convergence
// probe that stopped converging, and a lost mix.
func TestCompareDegraded(t *testing.T) {
	degrade := map[string]func(r *Report){
		"ops_per_sec": func(r *Report) { r.Mixes["read"].OpsPerSec = 10000 * 0.5 },
		"p99": func(r *Report) {
			r.Mixes["read"].Latency.P99US = 240 * 3
		},
		"error_rate": func(r *Report) { r.Mixes["read"].Errors = r.Mixes["read"].Ops / 2 },
		"no_convergence": func(r *Report) {
			u := r.Mixes["convergence"].PaperUnits
			u.FirstCellsTouched, u.LastCellsTouched = 60, 900
		},
		"converged_cost": func(r *Report) { r.Mixes["convergence"].PaperUnits.LastCellsTouched = 600 },
		"missing_mix":    func(r *Report) { delete(r.Mixes, "convergence") },
	}
	for name, mutate := range degrade {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			old := writeTemp(t, dir, "old.json", canned())
			bad := canned()
			mutate(bad)
			next := writeTemp(t, dir, "new.json", bad)
			var out bytes.Buffer
			if code := compareReports(old, next, 0.25, &out); code != 1 {
				t.Fatalf("degraded %s -> exit %d, want 1; output:\n%s", name, code, out.String())
			}
			if !strings.Contains(out.String(), "FAIL") {
				t.Errorf("no FAIL line for %s: %q", name, out.String())
			}
		})
	}
}

// TestCompareWithinTolerance allows a mild slowdown through.
func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	old := writeTemp(t, dir, "old.json", canned())
	slower := canned()
	slower.Mixes["read"].OpsPerSec = 10000 * 0.85
	slower.Mixes["read"].Latency.P99US = 240 * 1.1
	next := writeTemp(t, dir, "new.json", slower)
	var out bytes.Buffer
	if code := compareReports(old, next, 0.25, &out); code != 0 {
		t.Fatalf("15%% slowdown under 25%% tolerance -> exit %d; output:\n%s", code, out.String())
	}
}

// TestCompareUsageErrors exercises the exit-2 paths.
func TestCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeTemp(t, dir, "good.json", canned())
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	wrongFormat := canned()
	wrongFormat.Format = "histperf/v999"
	wrong := writeTemp(t, dir, "wrong.json", wrongFormat)

	var out bytes.Buffer
	for _, tc := range [][2]string{
		{good, junk},
		{junk, good},
		{good, wrong},
		{good, filepath.Join(dir, "absent.json")},
	} {
		if code := compareReports(tc[0], tc[1], 0.1, &out); code != 2 {
			t.Errorf("compare(%s, %s) -> exit %d, want 2", tc[0], tc[1], code)
		}
	}
	if code := compareReports(good, good, 1.5, &out); code != 2 {
		t.Errorf("tolerance 1.5 accepted")
	}
}

// TestCompareMissingBaselineHint: a baseline that was never recorded
// is a usage error (exit 2) with an actionable hint, not a bare file
// error — and the hint flows through the real -compare flag surface.
func TestCompareMissingBaselineHint(t *testing.T) {
	dir := t.TempDir()
	good := writeTemp(t, dir, "good.json", canned())
	absent := filepath.Join(dir, "BENCH_baseline.json")

	var out bytes.Buffer
	if code := compareReports(absent, good, 0.25, &out); code != 2 {
		t.Fatalf("missing baseline -> exit %d, want 2; output:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "baseline report "+absent) {
		t.Errorf("output does not name the baseline file: %q", got)
	}
	if !strings.Contains(got, "hint:") || !strings.Contains(got, "record it first") {
		t.Errorf("output carries no record-a-baseline hint: %q", got)
	}

	// Unreadable (malformed) baseline: still exit 2, no bogus hint.
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := compareReports(junk, good, 0.25, &out); code != 2 {
		t.Fatalf("malformed baseline -> exit %d, want 2", code)
	}
	if strings.Contains(out.String(), "hint:") {
		t.Errorf("malformed (existing) baseline should not suggest recording one: %q", out.String())
	}

	// Through the flag surface.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", absent, good}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-compare missing-baseline) -> %d, want 2", code)
	}
	if !strings.Contains(stdout.String(), "hint:") {
		t.Errorf("run path lost the hint: stdout=%q stderr=%q", stdout.String(), stderr.String())
	}
}

// TestCompareViaRun drives the verdict through the real flag surface:
// `histperf -compare old new` must propagate the nonzero exit.
func TestCompareViaRun(t *testing.T) {
	dir := t.TempDir()
	old := writeTemp(t, dir, "old.json", canned())
	bad := canned()
	bad.Mixes["read"].OpsPerSec = 100
	next := writeTemp(t, dir, "new.json", bad)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-compare", "-tolerance", "0.25", old, next}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-compare degraded) -> %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"-compare", old, old}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-compare identical) -> %d, want 0\nstdout: %s", code, stdout.String())
	}
	if code := run([]string{"-compare", old}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-compare one-arg) -> %d, want 2", code)
	}
}

// TestRunFlagValidation covers the run-mode usage errors.
func TestRunFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{},                                            // neither -serve-bin nor -addr
		{"-serve-bin", "x", "-addr", "y"},             // both
		{"-addr", "y", "-mode", "sideways"},           // bad mode
		{"-addr", "y", "-conns", "0"},                 // bad conns
		{"-addr", "y", "-duration", "0s"},             // bad duration
		{"-addr", "y", "-mode", "open", "-rate", "0"}, // bad rate
		{"-addr", "y", "stray"},                       // stray args
		{"-addr", "y", "-skew", "0.5"},                // Zipf exponent must be > 1
		{"-serve-bin", "x", "-shard-count", "1"},      // topology needs >= 2 shards
		{"-serve-bin", "x", "-shard-count", "4"},      // topology without -proxy-bin
		{"-addr", "y", "-proxy-bin", "p"},             // -proxy-bin without -shard-count
	}
	for _, argv := range cases {
		if code := run(argv, &stdout, &stderr); code != 2 {
			t.Errorf("run(%q) -> %d, want 2", argv, code)
		}
	}
}
