package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"histcube/internal/perf"
)

// reportFormat versions the BENCH_*.json schema; compare refuses to
// mix formats it does not understand.
const reportFormat = "histperf/v1"

// Report is the canonical BENCH_<seq>.json record: one load run,
// attributable to a build (Meta), reproducible from its knobs
// (Config), with one result block per workload mix. The committed
// BENCH_0001.json baseline and every CI BENCH_smoke.json follow this
// schema, and `histperf -compare` consumes it.
type Report struct {
	Format string       `json:"format"`
	Meta   perf.RunMeta `json:"meta"`
	Config RunConfig    `json:"config"`
	// ServerVersion is the target's own VERSION reply (histserve or
	// histproxy self-reporting its git revision), so the record proves
	// which binary it actually hit. Empty when the target predates the
	// VERSION command.
	ServerVersion string `json:"server_version,omitempty"`
	// Mixes is keyed by mix name (read, write, mixed, convergence).
	Mixes map[string]*MixResult `json:"mixes"`
}

// RunConfig records the knobs that shaped the run.
type RunConfig struct {
	Mode            string  `json:"mode"` // closed | open
	Conns           int     `json:"conns"`
	Rate            float64 `json:"rate_ops_per_sec,omitempty"` // open loop only
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	Dims            string  `json:"dims"`
	Seed            int64   `json:"seed"`
	// Skew is the Zipf exponent of the coordinate hot-spot generator
	// (0 = uniform).
	Skew float64 `json:"skew,omitempty"`
	// ShardCount > 1 marks a topology run: that many histserve shards
	// behind a histproxy, with the load driven through the proxy.
	ShardCount int `json:"shard_count,omitempty"`
	// Replicas is the WAL-shipping follower count per shard in a
	// replicated topology run (0 = unreplicated shards).
	Replicas int `json:"replicas,omitempty"`
}

// LatencyDigest is the standard client-side latency block, in
// microseconds (the natural unit of a local round-trip).
type LatencyDigest struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// digest renders a perf.Hist as a LatencyDigest.
func digest(h *perf.Hist) LatencyDigest {
	return LatencyDigest{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.5)),
		P95US:  us(h.Quantile(0.95)),
		P99US:  us(h.Quantile(0.99)),
		MaxUS:  us(h.Max()),
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// MixResult is one workload mix's outcome.
type MixResult struct {
	Ops       int64         `json:"ops"`
	Errors    int64         `json:"errors"`
	OpsPerSec float64       `json:"ops_per_sec"`
	Latency   LatencyDigest `json:"latency"`
	// PerCmd splits the digest by protocol command (QRY, INS).
	PerCmd map[string]LatencyDigest `json:"per_cmd,omitempty"`
	// ServerDeltas holds scraped /metrics counter deltas across the
	// timed phase (absent when the target exposes no metrics
	// listener): requests/errors by command and the paper's
	// conversion counters split by trigger.
	ServerDeltas map[string]float64 `json:"server_deltas,omitempty"`
	// PaperUnits carries the hardware-independent EXPLAIN cost
	// numbers for the convergence mix.
	PaperUnits *PaperUnits `json:"paper_units,omitempty"`
	// Runtime digests the target's histcube_runtime_*/histcube_lock_*
	// telemetry around the timed phase (absent when the target predates
	// the runtime collector or exposes no metrics listener).
	Runtime *RuntimeStats `json:"runtime,omitempty"`
}

// RuntimeStats is the runtime/contention block of one mix: gauges read
// from the scrape at the end of the timed phase, monotonic counters as
// deltas across it. Lock fields quantify the single-mutex serving
// bottleneck under this mix's load; contention events are sampled
// (histperf launches servers with -mutex-profile-fraction 100).
type RuntimeStats struct {
	Goroutines                float64 `json:"goroutines"`
	HeapBytes                 float64 `json:"heap_bytes"`
	GCPauseP99Seconds         float64 `json:"gc_pause_p99_seconds"`
	SchedLatencyP99Seconds    float64 `json:"sched_latency_p99_seconds"`
	GCCyclesDelta             float64 `json:"gc_cycles_delta"`
	LockWaitSecondsDelta      float64 `json:"lock_wait_seconds_delta"`
	LockContentionEventsDelta float64 `json:"lock_contention_events_delta"`
}

// PaperUnits captures the paper's own cost model around a mix: the
// per-query cell cost of an identical historic query before and after
// the load, next to the closed-form DDC and PS bounds (Figures 10/11:
// repeated queries converge from (2·log₂N)^(d-1) towards 2^(d-1)).
// Unlike ops/sec these are machine-independent, so -compare can hold
// them to a tight tolerance across hardware.
type PaperUnits struct {
	FirstCellsTouched int64   `json:"first_cells_touched"`
	LastCellsTouched  int64   `json:"last_cells_touched"`
	CellsRatio        float64 `json:"cells_ratio"` // last/first, < 1 once converged
	ConversionsDelta  int64   `json:"conversions_delta"`
	DDCBound          float64 `json:"ddc_bound"`
	PSBound           float64 `json:"ps_bound"`
}

// writeReport marshals the report to path ("-" = stdout); "auto"
// picks the next free BENCH_<seq>.json in the working directory.
func writeReport(r *Report, path string) (string, error) {
	if path == "auto" {
		next, err := nextBenchPath(".")
		if err != nil {
			return "", err
		}
		path = next
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return path, err
	}
	return path, os.WriteFile(path, b, 0o644)
}

// nextBenchPath scans dir for BENCH_<seq>.json trajectory points and
// returns the next sequence number's path.
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	seq := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > seq {
			seq = n
		}
	}
	return fmt.Sprintf("BENCH_%04d.json", seq+1), nil
}

// readReport loads and validates one report file.
func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Format != reportFormat {
		return nil, fmt.Errorf("%s: format %q, want %q", path, r.Format, reportFormat)
	}
	if len(r.Mixes) == 0 {
		return nil, fmt.Errorf("%s: no mixes", path)
	}
	return &r, nil
}

// sortedMixNames returns the mix keys of a report in stable order.
func sortedMixNames(r *Report) []string {
	names := make([]string, 0, len(r.Mixes))
	for n := range r.Mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
