package main

// Server-process and wire plumbing for the load driver: launching the
// real histserve binary and parsing its listen addresses from the
// structured log, a minimal line-protocol client, the /metrics
// scraper, and /debug/pprof profile capture.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

var (
	listenRE     = regexp.MustCompile(`msg=listening addr=([^ ]+)`)
	metricsRE    = regexp.MustCompile(`msg="metrics listening" addr=([^ ]+)`)
	launchWaitTO = 30 * time.Second
)

// serverProc is a histserve child process launched for the run.
type serverProc struct {
	cmd         *exec.Cmd
	addr        string
	metricsAddr string
	stderr      []string
}

// launchServer starts bin with ephemeral protocol and metrics ports
// plus -ooo (concurrent writers interleave times; rejections would
// pollute the error counts) and waits for both listen addresses. The
// runtime sampler runs at 1s so 5s mixes get fresh gauges, and mutex
// profiling is on (fraction 100: ~1% of contention events) so the
// BENCH record's lock_contention_events_delta is populated.
func launchServer(bin, dims string, extraArgs []string) (*serverProc, error) {
	return launchProc(bin, append([]string{
		"-addr", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-dims", dims,
		"-ooo",
		"-runtime-metrics-every", "1s",
		"-mutex-profile-fraction", "100",
	}, extraArgs...))
}

// launchProc starts any line-protocol server binary (histserve or
// histproxy — both log `listening addr=` and `metrics listening
// addr=` through slog) and waits for its listen addresses.
func launchProc(bin string, args []string) (*serverProc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	p := &serverProc{cmd: cmd}
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // never block the child on a full buffer
			}
		}
		close(lines)
	}()
	deadline := time.After(launchWaitTO)
	for p.addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				p.stop()
				return nil, fmt.Errorf("%s exited before listening; stderr:\n%s", bin, strings.Join(p.stderr, "\n"))
			}
			p.stderr = append(p.stderr, line)
			if m := metricsRE.FindStringSubmatch(line); m != nil {
				p.metricsAddr = m[1]
			}
			// The metrics listener logs before the protocol listener, so
			// once this matches both addresses are known.
			if m := listenRE.FindStringSubmatch(line); m != nil {
				p.addr = m[1]
			}
		case <-deadline:
			p.stop()
			return nil, fmt.Errorf("%s did not listen within %s", bin, launchWaitTO)
		}
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for range lines {
		}
	}()
	return p, nil
}

// topology is a sharded fleet: N histserve shards (each optionally a
// primary/replica set kept in sync by WAL shipping) behind a histproxy.
type topology struct {
	shards   []*serverProc // primaries, in shard-map order
	replicas []*serverProc // followers across all shards
	proxy    *serverProc
	dirs     []string // temp data directories, removed on stop
}

func (t *topology) stop() {
	if t == nil {
		return
	}
	t.proxy.stop()
	for _, s := range t.shards {
		s.stop()
	}
	for _, r := range t.replicas {
		r.stop()
	}
	for _, d := range t.dirs {
		_ = os.RemoveAll(d)
	}
}

// launchTopology starts shardCount histserve shards and a histproxy
// routing over them. The shard map partitions [0, timeSpan) — the
// first mix's seeded time region — evenly, with the last shard
// open-ended so it also absorbs the hot append frontier; a read mix
// over the seeded region therefore fans across every shard. replicas >
// 0 gives every shard that many WAL-shipping followers (primary and
// followers each get a private temp data directory — replication
// streams from the primary's log), and the proxy's shard map carries
// the full "primary|replica" member sets so reads hedge across them.
func launchTopology(serveBin, proxyBin, dims string, shardCount, replicas, timeSpan int) (*topology, error) {
	if shardCount > timeSpan {
		return nil, fmt.Errorf("-shard-count %d exceeds the %d seeded time slices: shards would own empty ranges", shardCount, timeSpan)
	}
	topo := &topology{}
	tempDir := func() (string, error) {
		d, err := os.MkdirTemp("", "histperf-shard-")
		if err == nil {
			topo.dirs = append(topo.dirs, d)
		}
		return d, err
	}
	var spec strings.Builder
	for i := 0; i < shardCount; i++ {
		var extra []string
		if replicas > 0 {
			dir, err := tempDir()
			if err != nil {
				topo.stop()
				return nil, err
			}
			extra = []string{"-data-dir", dir}
		}
		sh, err := launchServer(serveBin, dims, extra)
		if err != nil {
			topo.stop()
			return nil, fmt.Errorf("launching shard %d/%d: %w", i+1, shardCount, err)
		}
		topo.shards = append(topo.shards, sh)
		members := sh.addr
		for r := 0; r < replicas; r++ {
			dir, err := tempDir()
			if err != nil {
				topo.stop()
				return nil, err
			}
			rep, err := launchServer(serveBin, dims, []string{"-data-dir", dir, "-follow", sh.addr})
			if err != nil {
				topo.stop()
				return nil, fmt.Errorf("launching replica %d of shard %d/%d: %w", r+1, i+1, shardCount, err)
			}
			topo.replicas = append(topo.replicas, rep)
			members += "|" + rep.addr
		}
		lo := i * timeSpan / shardCount
		if i > 0 {
			spec.WriteByte(',')
		}
		if i == shardCount-1 {
			fmt.Fprintf(&spec, "%s=%d-", members, lo)
		} else {
			hi := (i+1)*timeSpan/shardCount - 1
			fmt.Fprintf(&spec, "%s=%d-%d", members, lo, hi)
		}
	}
	proxy, err := launchProc(proxyBin, []string{
		"-addr", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-dims", dims,
		"-shards", spec.String(),
		"-runtime-metrics-every", "1s",
		"-mutex-profile-fraction", "100",
	})
	if err != nil {
		topo.stop()
		return nil, fmt.Errorf("launching histproxy: %w", err)
	}
	topo.proxy = proxy
	return topo, nil
}

// stop kills and reaps the child; benchmark servers hold no durable
// state worth a graceful shutdown.
func (p *serverProc) stop() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait()
}

// wireConn is one client connection speaking the line protocol.
type wireConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// opTimeout bounds one round-trip so a wedged server fails the run
// instead of hanging it.
const opTimeout = 30 * time.Second

func dialWire(addr string) (*wireConn, error) {
	c, err := net.DialTimeout("tcp", addr, opTimeout)
	if err != nil {
		return nil, err
	}
	return &wireConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

func (w *wireConn) Close() { _ = w.c.Close() }

// do sends one request line and reads the single response line.
func (w *wireConn) do(line string) (string, error) {
	if err := w.send(line); err != nil {
		return "", err
	}
	return w.readLine()
}

// doMulti sends one request and reads a multi-line response
// terminated by "END" (EXPLAIN, SLOWLOG). A leading ERR line is the
// whole response.
func (w *wireConn) doMulti(line string) ([]string, error) {
	if err := w.send(line); err != nil {
		return nil, err
	}
	var out []string
	for {
		l, err := w.readLine()
		if err != nil {
			return out, err
		}
		out = append(out, l)
		if l == "END" || (len(out) == 1 && strings.HasPrefix(l, "ERR")) {
			return out, nil
		}
	}
}

func (w *wireConn) send(line string) error {
	if err := w.c.SetDeadline(time.Now().Add(opTimeout)); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *wireConn) readLine() (string, error) {
	l, err := w.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(l, "\r\n"), nil
}

// scrapeMetrics fetches and parses the Prometheus text exposition,
// keyed by the full series name including labels.
func scrapeMetrics(metricsAddr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// serverDeltaKeys maps the scraped series histperf reports on to the
// friendly keys used in MixResult.ServerDeltas.
var serverDeltaKeys = map[string]string{
	`histserve_requests_total{cmd="QRY"}`:                "requests_qry",
	`histserve_requests_total{cmd="INS"}`:                "requests_ins",
	`histserve_errors_total{cmd="QRY"}`:                  "errors_qry",
	`histserve_errors_total{cmd="INS"}`:                  "errors_ins",
	`histcube_ecube_conversions_total{trigger="query"}`:  "conversions_query",
	`histcube_ecube_conversions_total{trigger="append"}`: "conversions_append",
	// Topology runs scrape the proxy instead of a shard: the same
	// request/error series under the histproxy_ prefix, plus the
	// scatter-gather health counters. Only the series present in the
	// scrape are reported, so single-node and topology runs never mix.
	`histproxy_requests_total{cmd="QRY"}`: "requests_qry",
	`histproxy_requests_total{cmd="INS"}`: "requests_ins",
	`histproxy_errors_total{cmd="QRY"}`:   "errors_qry",
	`histproxy_errors_total{cmd="INS"}`:   "errors_ins",
	`histproxy_partial_answers_total`:     "partials",
	`histproxy_fanout_legs_total`:         "fanout_legs",
	`histproxy_leg_failures_total`:        "leg_failures",
	`histproxy_failovers_total`:           "failovers",
}

// runtimeStats digests the runtime/contention series of a scrape pair;
// nil when the target does not expose the runtime collector (older
// binary or no metrics listener), so old BENCH records stay comparable.
func runtimeStats(before, after map[string]float64) *RuntimeStats {
	if after == nil {
		return nil
	}
	if _, ok := after["histcube_runtime_goroutines"]; !ok {
		return nil
	}
	return &RuntimeStats{
		Goroutines:                after["histcube_runtime_goroutines"],
		HeapBytes:                 after["histcube_runtime_heap_bytes"],
		GCPauseP99Seconds:         after["histcube_runtime_gc_pause_p99_seconds"],
		SchedLatencyP99Seconds:    after["histcube_runtime_sched_latency_p99_seconds"],
		GCCyclesDelta:             after["histcube_runtime_gc_cycles_total"] - before["histcube_runtime_gc_cycles_total"],
		LockWaitSecondsDelta:      after["histcube_lock_wait_seconds_total"] - before["histcube_lock_wait_seconds_total"],
		LockContentionEventsDelta: after["histcube_lock_contention_events_total"] - before["histcube_lock_contention_events_total"],
	}
}

// metricsDelta reports after-before for the series of interest.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	if after == nil {
		return nil
	}
	out := make(map[string]float64, len(serverDeltaKeys))
	for raw, friendly := range serverDeltaKeys {
		if v, ok := after[raw]; ok {
			out[friendly] = v - before[raw]
		}
	}
	return out
}

// captureProfile fetches one /debug/pprof profile into dir. seconds >
// 0 requests a timed (CPU) profile.
func captureProfile(metricsAddr, name, dir, file string, seconds int) error {
	url := fmt.Sprintf("http://%s/debug/pprof/%s", metricsAddr, name)
	if seconds > 0 {
		url += fmt.Sprintf("?seconds=%d", seconds)
	}
	client := &http.Client{Timeout: time.Duration(seconds+60) * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pprof %s: HTTP %d", name, resp.StatusCode)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if _, err := io.Copy(f, resp.Body); err != nil {
		return err
	}
	return f.Close()
}
