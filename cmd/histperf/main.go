// Command histperf is histcube's load driver and performance gate: it
// drives the real histserve binary over the wire with configurable
// workload mixes, collects client-side latency histograms
// (internal/perf) next to scraped server metrics and the paper's own
// cost counters, and emits a canonical BENCH_<seq>.json record that
// `histperf -compare` can hold future runs against.
//
// Run mode (default):
//
//	histperf -serve-bin ./bin/histserve -dims 16,16 \
//	    -mixes read,write,mixed,convergence \
//	    -conns 4 -duration 5s -warmup 1s -out auto
//
// Either -serve-bin launches a private server on ephemeral ports
// (with -ooo and a metrics listener), or -addr/-metrics-addr attach
// to a running one, which is assumed to start empty. Each mix first
// seeds a fresh region of historic time slices, then runs a warmup
// and a timed phase over -conns connections. -mode selects closed-
// loop (back-to-back requests per connection) or open-loop (a pacer
// schedules arrivals at -rate ops/sec and queueing delay counts
// toward latency). -profile-dir captures CPU profiles per mix plus
// heap/mutex/block profiles at the end via /debug/pprof.
//
// The convergence mix replays a fixed pool of identical historic
// queries and brackets the run with EXPLAIN probes, recording
// cells-touched per query before and after: the paper's DDC->PS
// regime transition (Figures 10/11) in hardware-independent units.
//
// Topology mode:
//
//	histperf -serve-bin ./bin/histserve -proxy-bin ./bin/histproxy \
//	    -shard-count 4 -dims 16,16 -mixes read -out auto
//
// launches N histserve shards partitioning the first mix's seeded
// time region evenly (last shard open-ended for the hot frontier),
// fronts them with a histproxy, and drives the load through the proxy
// — the scatter-gather scaling curve in the same BENCH format, with
// shard_count recorded in the config block. -skew S (Zipf, S > 1)
// concentrates seed/write coordinates into hot spots for imbalance
// experiments.
//
// Compare mode:
//
//	histperf -compare old.json new.json -tolerance 0.25
//
// exits 0 when every mix of new.json is within tolerance of old.json,
// 1 on regression (slower ops/sec, fatter p99, error-rate jump, or a
// convergence probe that stopped converging), 2 on bad input — so CI
// can gate merges on a committed baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, for tests.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		compareMode = fs.Bool("compare", false, "compare two report files (old new) instead of running load")
		tolerance   = fs.Float64("tolerance", 0.25, "with -compare: allowed fractional degradation")

		serveBin    = fs.String("serve-bin", "", "histserve binary to launch for the run (ephemeral ports, -ooo)")
		addr        = fs.String("addr", "", "attach to a running histserve at this address instead of launching one")
		metricsAddr = fs.String("metrics-addr", "", "with -addr: the server's metrics address for /metrics deltas and profiles")
		dims        = fs.String("dims", "16,16", "cube shape; must match the target server")
		mode        = fs.String("mode", "closed", "load generation: closed (back-to-back) or open (paced arrivals)")
		conns       = fs.Int("conns", 4, "concurrent client connections")
		rate        = fs.Float64("rate", 2000, "open loop: aggregate arrival rate in ops/sec")
		duration    = fs.Duration("duration", 5*time.Second, "timed phase per mix")
		warmup      = fs.Duration("warmup", time.Second, "warmup per mix (unrecorded)")
		seed        = fs.Int64("seed", 1, "workload generator seed")
		skew        = fs.Float64("skew", 0, "Zipf exponent for seed/write coordinate hot spots (0 = uniform; otherwise must be > 1)")
		shardCount  = fs.Int("shard-count", 0, "launch a sharded topology: this many histserve shards behind a histproxy (requires -serve-bin and -proxy-bin)")
		replicas    = fs.Int("replicas", 0, "topology mode: WAL-shipping follower replicas per shard (each shard becomes a primary|replica set; reads hedge across members)")
		proxyBin    = fs.String("proxy-bin", "", "histproxy binary for the -shard-count topology")
		mixesArg    = fs.String("mixes", "read,write,mixed,convergence", "comma-separated mixes to run")
		profileDir  = fs.String("profile-dir", "", "capture pprof profiles (cpu per mix, heap/mutex/block) into this directory")
		out         = fs.String("out", "-", `report destination: a path, "-" for stdout, or "auto" for the next BENCH_<seq>.json`)
		quiet       = fs.Bool("quiet", false, "suppress progress and summary output")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *compareMode {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "usage: histperf -compare [-tolerance P] old.json new.json")
			return 2
		}
		return compareReports(fs.Arg(0), fs.Arg(1), *tolerance, stdout)
	}

	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "histperf: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if (*serveBin == "") == (*addr == "") {
		fmt.Fprintln(stderr, "histperf: exactly one of -serve-bin or -addr is required")
		return 2
	}
	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(stderr, "histperf: -mode %q is neither closed nor open\n", *mode)
		return 2
	}
	if *conns < 1 || *duration <= 0 || (*mode == "open" && *rate <= 0) {
		fmt.Fprintln(stderr, "histperf: -conns, -duration and (open mode) -rate must be positive")
		return 2
	}
	if *skew < 0 || (*skew > 0 && *skew <= 1) {
		fmt.Fprintf(stderr, "histperf: -skew %g must be > 1 (the Zipf exponent) or 0 for uniform\n", *skew)
		return 2
	}
	if *shardCount != 0 {
		if *shardCount < 2 {
			fmt.Fprintf(stderr, "histperf: -shard-count %d: a topology needs at least 2 shards\n", *shardCount)
			return 2
		}
		if *serveBin == "" || *proxyBin == "" {
			fmt.Fprintln(stderr, "histperf: -shard-count needs both -serve-bin (the shards) and -proxy-bin (the router)")
			return 2
		}
	} else if *proxyBin != "" {
		fmt.Fprintln(stderr, "histperf: -proxy-bin without -shard-count does nothing; pass -shard-count N")
		return 2
	}
	if *replicas < 0 || (*replicas > 0 && *shardCount == 0) {
		fmt.Fprintln(stderr, "histperf: -replicas needs a -shard-count topology and must be non-negative")
		return 2
	}

	cfg := loadConfig{
		Bin:         *serveBin,
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		Dims:        *dims,
		Mode:        *mode,
		Conns:       *conns,
		Rate:        *rate,
		Duration:    *duration,
		Warmup:      *warmup,
		Seed:        *seed,
		Skew:        *skew,
		ShardCount:  *shardCount,
		Replicas:    *replicas,
		ProxyBin:    *proxyBin,
		Mixes:       splitMixes(*mixesArg),
		ProfileDir:  *profileDir,
	}
	if *mode == "closed" {
		cfg.Rate = 0 // not meaningful; keep the report honest
	}
	if !*quiet {
		cfg.Log = stderr
	}

	report, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "histperf: %v\n", err)
		return 1
	}
	path, err := writeReport(report, *out)
	if err != nil {
		fmt.Fprintf(stderr, "histperf: writing report: %v\n", err)
		return 1
	}
	if !*quiet {
		summarize(report, stderr)
		if path != "-" {
			fmt.Fprintf(stderr, "histperf: wrote %s\n", path)
		}
	}
	return 0
}

func splitMixes(arg string) []string {
	var out []string
	for _, m := range strings.Split(arg, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}
