package main

// The load engine: workload mixes, cube seeding, open- and closed-loop
// workers, paper-unit capture via EXPLAIN, and assembly of the final
// Report.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histcube/internal/dims"
	"histcube/internal/perf"
	"histcube/internal/workload"
)

// loadConfig holds everything one run needs. Exactly one of Bin
// (launch the binary) or Addr (attach to a running server) is set.
type loadConfig struct {
	Bin         string
	Addr        string
	MetricsAddr string // with Addr only; Bin launches its own
	Dims        string
	Mode        string // closed | open
	Conns       int
	Rate        float64 // open loop: aggregate target ops/sec
	Duration    time.Duration
	Warmup      time.Duration
	Seed        int64
	// Skew > 1 draws seed/write coordinates from a Zipf distribution
	// with that exponent (hot spots on low coordinates); 0 = uniform.
	Skew float64
	// ShardCount > 1 launches that many Bin shards behind a ProxyBin
	// histproxy and drives the load through the proxy.
	ShardCount int
	// Replicas gives every shard that many WAL-shipping followers; the
	// proxy's map carries the full member sets.
	Replicas   int
	ProxyBin   string
	Mixes      []string
	ProfileDir string
	Log        io.Writer // progress lines; nil silences
}

// mixSpec shapes one workload mix.
type mixSpec struct {
	name    string
	readPct int // percentage of operations that are queries
	// fixedPool > 0 draws every query from a pool of that many
	// identical historic queries — the paper's repeated-query
	// convergence scenario (DDC -> PS) — and captures paper units.
	fixedPool int
}

// mixSpecs is the mix catalogue; -mixes selects from it by name.
var mixSpecs = map[string]mixSpec{
	"read":        {name: "read", readPct: 90},
	"write":       {name: "write", readPct: 10},
	"mixed":       {name: "mixed", readPct: 50},
	"convergence": {name: "convergence", readPct: 100, fixedPool: 4},
}

// Seeding shape: each mix gets seedSlices fresh time slices with
// seedCells random upserts per slice before its clock starts, so
// historic queries always have unconverted DDC-regime slices to hit.
const (
	seedSlices = 16
	seedCells  = 48
)

// runLoad executes every configured mix against one server and
// returns the canonical report.
func runLoad(cfg loadConfig) (*Report, error) {
	shape, err := parseShape(cfg.Dims)
	if err != nil {
		return nil, err
	}
	spec := make([]mixSpec, 0, len(cfg.Mixes))
	for _, name := range cfg.Mixes {
		m, ok := mixSpecs[name]
		if !ok {
			return nil, fmt.Errorf("unknown mix %q (have read, write, mixed, convergence)", name)
		}
		spec = append(spec, m)
	}
	if len(spec) == 0 {
		return nil, fmt.Errorf("no mixes selected")
	}

	addr, metricsAddr := cfg.Addr, cfg.MetricsAddr
	switch {
	case cfg.ShardCount > 1:
		topo, err := launchTopology(cfg.Bin, cfg.ProxyBin, cfg.Dims, cfg.ShardCount, cfg.Replicas, seedSlices)
		if err != nil {
			return nil, err
		}
		defer topo.stop()
		addr, metricsAddr = topo.proxy.addr, topo.proxy.metricsAddr
	case cfg.Bin != "":
		proc, err := launchServer(cfg.Bin, cfg.Dims, nil)
		if err != nil {
			return nil, err
		}
		defer proc.stop()
		addr, metricsAddr = proc.addr, proc.metricsAddr
	}

	eng := &engine{cfg: cfg, shape: shape, addr: addr, metricsAddr: metricsAddr}
	report := &Report{
		Format: reportFormat,
		Meta:   perf.CollectMeta("histperf"),
		Config: RunConfig{
			Mode:            cfg.Mode,
			Conns:           cfg.Conns,
			Rate:            cfg.Rate,
			DurationSeconds: cfg.Duration.Seconds(),
			WarmupSeconds:   cfg.Warmup.Seconds(),
			Dims:            cfg.Dims,
			Seed:            cfg.Seed,
			Skew:            cfg.Skew,
			ShardCount:      cfg.ShardCount,
			Replicas:        cfg.Replicas,
		},
		Mixes: make(map[string]*MixResult, len(spec)),
	}
	// The target self-reports its build (VERSION is new in this
	// protocol revision; older binaries answer ERR and the field stays
	// empty), so the BENCH record can verify which binary it hit.
	if ctl, err := dialWire(addr); err == nil {
		if v, err := ctl.do("VERSION"); err == nil {
			if rest, ok := strings.CutPrefix(v, "OK "); ok {
				report.ServerVersion = rest
			}
		}
		ctl.Close()
	}
	for i, m := range spec {
		eng.logf("mix %s: seeding %d slices x %d cells", m.name, seedSlices, seedCells)
		res, err := eng.runMix(m, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.name, err)
		}
		report.Mixes[m.name] = res
		eng.logf("mix %s: %d ops, %.0f ops/sec, p50 %.0fus p99 %.0fus, %d errors",
			m.name, res.Ops, res.OpsPerSec, res.Latency.P50US, res.Latency.P99US, res.Errors)
	}
	if cfg.ProfileDir != "" && metricsAddr != "" {
		for _, prof := range []string{"heap", "mutex", "block"} {
			if err := captureProfile(metricsAddr, prof, cfg.ProfileDir, prof+".pprof", 0); err != nil {
				eng.logf("profile %s: %v", prof, err)
			}
		}
	}
	return report, nil
}

// engine is the per-run state shared across mixes: the time cursor
// advances monotonically so every mix seeds and queries a fresh,
// previously untouched time region.
type engine struct {
	cfg         loadConfig
	shape       []int
	addr        string
	metricsAddr string
	cursor      atomic.Int64 // next hot time unit
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Log != nil {
		fmt.Fprintf(e.cfg.Log, "histperf: "+format+"\n", args...)
	}
}

// runMix seeds a fresh region, captures the first paper-unit sample,
// warms up, runs the timed phase, and digests the results.
func (e *engine) runMix(m mixSpec, seed int64) (*MixResult, error) {
	ctl, err := dialWire(e.addr)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()

	regionLo, regionHi, err := e.seedRegion(ctl, seed)
	if err != nil {
		return nil, err
	}

	pool := buildPool(m, e.shape, regionLo, regionHi)
	var units *PaperUnits
	var convBefore float64
	if m.fixedPool > 0 {
		units = &PaperUnits{DDCBound: ddcBound(e.shape), PSBound: psBound(e.shape)}
		if e.metricsAddr != "" {
			// The conversions delta brackets the whole mix (probes,
			// warmup and timed phase): converting is front-loaded work
			// that mostly happens before the timed window starts.
			raw, err := scrapeMetrics(e.metricsAddr)
			if err != nil {
				return nil, fmt.Errorf("scraping /metrics: %w", err)
			}
			convBefore = raw[`histcube_ecube_conversions_total{trigger="query"}`]
		}
		totals, err := e.explainTotals(ctl, pool[0])
		if err != nil {
			return nil, err
		}
		units.FirstCellsTouched = totals["cells_touched"]
	}

	workers, err := e.dialWorkers(m, seed, regionLo, regionHi, pool)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()

	if e.cfg.Warmup > 0 {
		if err := e.runPhase(workers, e.cfg.Warmup, false); err != nil {
			return nil, err
		}
	}

	var before map[string]float64
	if e.metricsAddr != "" {
		if before, err = scrapeMetrics(e.metricsAddr); err != nil {
			return nil, fmt.Errorf("scraping /metrics: %w", err)
		}
	}
	var profErr error
	var profDone chan struct{}
	if e.cfg.ProfileDir != "" && e.metricsAddr != "" {
		secs := int(e.cfg.Duration.Seconds())
		if secs < 1 {
			secs = 1
		}
		profDone = make(chan struct{})
		go func() {
			defer close(profDone)
			profErr = captureProfile(e.metricsAddr, "profile", e.cfg.ProfileDir, "cpu_"+m.name+".pprof", secs)
		}()
	}

	started := time.Now()
	if err := e.runPhase(workers, e.cfg.Duration, true); err != nil {
		return nil, err
	}
	elapsed := time.Since(started)

	if profDone != nil {
		<-profDone
		if profErr != nil {
			e.logf("cpu profile (%s): %v", m.name, profErr)
		}
	}

	res := &MixResult{}
	if e.metricsAddr != "" {
		after, err := scrapeMetrics(e.metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("scraping /metrics: %w", err)
		}
		res.ServerDeltas = metricsDelta(before, after)
		res.Runtime = runtimeStats(before, after)
	}
	if units != nil {
		totals, err := e.explainTotals(ctl, pool[0])
		if err != nil {
			return nil, err
		}
		units.LastCellsTouched = totals["cells_touched"]
		if units.FirstCellsTouched > 0 {
			units.CellsRatio = float64(units.LastCellsTouched) / float64(units.FirstCellsTouched)
		}
		if e.metricsAddr != "" {
			raw, err := scrapeMetrics(e.metricsAddr)
			if err != nil {
				return nil, fmt.Errorf("scraping /metrics: %w", err)
			}
			units.ConversionsDelta = int64(raw[`histcube_ecube_conversions_total{trigger="query"}`] - convBefore)
		}
		res.PaperUnits = units
	}

	all := perf.NewHist()
	byCmd := map[string]*perf.Hist{"QRY": perf.NewHist(), "INS": perf.NewHist()}
	for _, w := range workers {
		res.Ops += w.ops
		res.Errors += w.errs
		all.Merge(w.all)
		byCmd["QRY"].Merge(w.qry)
		byCmd["INS"].Merge(w.ins)
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.Latency = digest(all)
	res.PerCmd = make(map[string]LatencyDigest, 2)
	for cmd, h := range byCmd {
		if h.Count() > 0 {
			res.PerCmd[cmd] = digest(h)
		}
	}
	return res, nil
}

// seedRegion appends seedSlices fresh slices at the time cursor and
// returns the queryable historic sub-range (the last seeded slice
// stays hot until a later insert seals it, so it is excluded).
func (e *engine) seedRegion(ctl *wireConn, seed int64) (lo, hi int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	gen := workload.CoordGen(rng, dims.Shape(e.shape), e.cfg.Skew)
	base := e.cursor.Load()
	for t := base; t < base+seedSlices; t++ {
		for k := 0; k < seedCells; k++ {
			line := insLine(t, gen(), 1)
			resp, err := ctl.do(line)
			if err != nil {
				return 0, 0, err
			}
			if strings.HasPrefix(resp, "ERR") {
				return 0, 0, fmt.Errorf("seed insert rejected: %s", resp)
			}
		}
	}
	e.cursor.Store(base + seedSlices)
	return base, base + seedSlices - 2, nil
}

// explainTotals runs EXPLAIN over one query and parses the totals
// line into counter values.
func (e *engine) explainTotals(ctl *wireConn, qry string) (map[string]int64, error) {
	lines, err := ctl.doMulti("EXPLAIN " + qry)
	if err != nil {
		return nil, err
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "totals ") {
			continue
		}
		out := make(map[string]int64)
		for _, f := range strings.Fields(l)[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				continue
			}
			out[k] = n
		}
		return out, nil
	}
	return nil, fmt.Errorf("EXPLAIN response carried no totals line: %q", lines)
}

// dialWorkers opens one connection per configured conn, each with its
// own deterministic generator and local histograms.
func (e *engine) dialWorkers(m mixSpec, seed, regionLo, regionHi int64, pool []string) ([]*worker, error) {
	workers := make([]*worker, e.cfg.Conns)
	for i := range workers {
		conn, err := dialWire(e.addr)
		if err != nil {
			for _, w := range workers[:i] {
				w.conn.Close()
			}
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*104729))
		workers[i] = &worker{
			eng:      e,
			mix:      m,
			conn:     conn,
			rng:      rng,
			coords:   workload.CoordGen(rng, dims.Shape(e.shape), e.cfg.Skew),
			pool:     pool,
			regionLo: regionLo,
			regionHi: regionHi,
			all:      perf.NewHist(),
			qry:      perf.NewHist(),
			ins:      perf.NewHist(),
		}
	}
	return workers, nil
}

// runPhase drives all workers for d. record selects whether samples
// count (warmup runs with record=false). Closed loop: every worker
// issues back-to-back requests. Open loop: a central pacer emits
// scheduled arrival times at cfg.Rate and latency is measured from
// the scheduled arrival, so queueing delay counts against the server.
func (e *engine) runPhase(workers []*worker, d time.Duration, record bool) error {
	var stop atomic.Bool
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()

	var arrivals chan time.Time
	if e.cfg.Mode == "open" {
		// The buffer absorbs bursts; a full buffer blocks the pacer,
		// bounding memory at the cost of strict open-loop fidelity
		// during sustained overload.
		arrivals = make(chan time.Time, 64*1024)
		interval := time.Duration(float64(time.Second) / e.cfg.Rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			next := time.Now()
			for !stop.Load() {
				arrivals <- next
				next = next.Add(interval)
				if sleep := time.Until(next); sleep > 0 {
					time.Sleep(sleep)
				}
			}
			close(arrivals)
		}()
	}

	errs := make(chan error, len(workers))
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			errs <- w.loop(&stop, arrivals, record)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker is one load connection with its private generator and
// histograms (merged after the run — nothing here is shared, so the
// hot loop takes no locks).
type worker struct {
	eng      *engine
	mix      mixSpec
	conn     *wireConn
	rng      *rand.Rand
	coords   func() []int // seed/write coordinate generator (uniform or Zipf)
	pool     []string
	regionLo int64
	regionHi int64

	ops  int64
	errs int64
	all  *perf.Hist
	qry  *perf.Hist
	ins  *perf.Hist
}

// loop issues requests until stop flips (closed) or arrivals closes
// (open).
func (w *worker) loop(stop *atomic.Bool, arrivals chan time.Time, record bool) error {
	for {
		var scheduled time.Time
		if arrivals != nil {
			t, ok := <-arrivals
			if !ok {
				return nil
			}
			scheduled = t
		} else {
			if stop.Load() {
				return nil
			}
			scheduled = time.Now()
		}
		if err := w.oneOp(scheduled, record); err != nil {
			return err
		}
	}
}

// oneOp generates, sends and accounts a single operation. Latency is
// measured from the scheduled arrival (equal to "now" in closed
// mode).
func (w *worker) oneOp(scheduled time.Time, record bool) error {
	var line string
	isRead := w.rng.Intn(100) < w.mix.readPct
	if isRead {
		if len(w.pool) > 0 {
			line = w.pool[w.rng.Intn(len(w.pool))]
		} else {
			line = w.randomQuery()
		}
	} else {
		// Writes land on the hot frontier; a slow random walk forward
		// seals slices so later mixes always find history behind them.
		if w.rng.Intn(256) == 0 {
			w.eng.cursor.Add(1)
		}
		line = insLine(w.eng.cursor.Load(), w.coords(), 1)
	}
	resp, err := w.conn.do(line)
	lat := time.Since(scheduled)
	if err != nil {
		return fmt.Errorf("wire error on %q: %w", line, err)
	}
	if !record {
		return nil
	}
	w.ops++
	if strings.HasPrefix(resp, "ERR") {
		w.errs++
	}
	w.all.Record(lat)
	if isRead {
		w.qry.Record(lat)
	} else {
		w.ins.Record(lat)
	}
	return nil
}

// randomQuery builds a historic range query: a random time sub-range
// of the mix's seeded region and a random box in every coordinate.
func (w *worker) randomQuery() string {
	span := w.regionHi - w.regionLo
	tlo := w.regionLo + w.rng.Int63n(span+1)
	thi := tlo + w.rng.Int63n(w.regionHi-tlo+1)
	var b strings.Builder
	fmt.Fprintf(&b, "QRY %d %d", tlo, thi)
	his := make([]int, len(w.eng.shape))
	for i, n := range w.eng.shape {
		lo := w.rng.Intn(n)
		his[i] = lo + w.rng.Intn(n-lo)
		fmt.Fprintf(&b, " %d", lo)
	}
	for _, hi := range his {
		fmt.Fprintf(&b, " %d", hi)
	}
	return b.String()
}

// buildPool returns the convergence mix's fixed query pool: interior
// boxes over staggered time sub-ranges of the region, so the same few
// queries hit the same historic slices over and over. The boxes stay
// off the cube's lower faces deliberately: a box touching coordinate
// 0 drops the corresponding corner terms of the PS reduction (they
// evaluate to zero without touching cells), which would hide the DDC
// cost the convergence probe exists to measure.
func buildPool(m mixSpec, shape []int, regionLo, regionHi int64) []string {
	if m.fixedPool <= 0 {
		return nil
	}
	pool := make([]string, m.fixedPool)
	span := regionHi - regionLo
	for i := range pool {
		tlo := regionLo + int64(i)*span/int64(len(pool)+1)
		var b strings.Builder
		fmt.Fprintf(&b, "QRY %d %d", tlo, regionHi)
		for _, n := range shape {
			lo := 1
			if n < 3 {
				lo = 0
			}
			fmt.Fprintf(&b, " %d", lo)
		}
		for _, n := range shape {
			hi := n - 2
			if hi < 1 {
				hi = n - 1
			}
			fmt.Fprintf(&b, " %d", hi)
		}
		pool[i] = b.String()
	}
	return pool
}

// insLine renders one INS request.
func insLine(t int64, coords []int, v float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INS %d", t)
	for _, c := range coords {
		fmt.Fprintf(&b, " %d", c)
	}
	fmt.Fprintf(&b, " %g", v)
	return b.String()
}

// parseShape parses the -dims argument ("16,16") into sizes.
func parseShape(dims string) ([]int, error) {
	parts := strings.Split(dims, ",")
	shape := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -dims %q: each size must be a positive integer", dims)
		}
		shape = append(shape, n)
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("bad -dims %q: empty", dims)
	}
	return shape, nil
}

// ddcBound is the paper's per-query cell cost in the DDC regime,
// prod_i(2·log₂ nᵢ); psBound the converged PS floor, 2^d.
func ddcBound(shape []int) float64 {
	cost := 1.0
	for _, n := range shape {
		if n > 1 {
			cost *= 2 * math.Log2(float64(n))
		}
	}
	return cost
}

func psBound(shape []int) float64 {
	return math.Pow(2, float64(len(shape)))
}
