// Package histcube is a from-scratch Go implementation of "Efficient
// Integration and Aggregation of Historical Information" (Riedewald,
// Agrawal, El Abbadi — ACM SIGMOD 2002): append-only data cubes whose
// range-aggregate query and update costs are independent of the length
// of the recorded history.
//
// The public entry point is internal/core (the Cube facade); the
// paper's framework, MOLAP instantiation (eCube, lazy copy,
// copy-ahead), baselines and experiment drivers live in the other
// internal packages. See README.md for the architecture overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results.
package histcube
