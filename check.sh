#!/bin/sh
# Tier-1 verification gate: the exact checks CI runs (see
# .github/workflows/ci.yml), runnable locally as `./check.sh` or
# `make check`.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./... =="
go test -race ./...

echo "== crash-injection durability test =="
# Runs inside the suite above too; re-run by name so a durability
# regression is impossible to miss in the gate output.
go test -race -count=1 -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

echo "== ok =="
