#!/bin/sh
# Tier-1 verification gate: the exact checks CI runs (see
# .github/workflows/ci.yml), runnable locally as `./check.sh` or
# `make check`.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== histlint ./... (with lock-graph export) =="
# Project-specific invariants (see DESIGN.md "Static analysis"):
# lock discipline (guarded fields, release-on-all-paths, read-path
# purity, acquisition-order cycles, atomic all-or-nothing, ctx
# polling), log-before-apply, metric naming, guarded narrowing, error
# wrapping, float equality. The lock-acquisition graph lands in
# lockgraph.dot (CI uploads it as an artifact); a cycle is a finding
# and fails this step.
go run ./cmd/histlint -lockgraph lockgraph.dot ./...

echo "== go test -race -shuffle=on ./... =="
go test -race -shuffle=on ./...

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/wal/
go test -run='^$' -fuzz=FuzzCSVWorkload -fuzztime=10s ./internal/workload/
go test -run='^$' -fuzz=FuzzShardMapParse -fuzztime=10s ./internal/shard/
go test -run='^$' -fuzz=FuzzSpanJSON -fuzztime=10s ./internal/trace/

echo "== crash-injection durability test =="
# Runs inside the suite above too; re-run by name so a durability
# regression is impossible to miss in the gate output.
go test -race -count=1 -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

echo "== seeded chaos suite (fault injection) =="
# Deterministic fixed seeds plus one randomized seed (logged for
# repro): no acknowledged write lost, no panic escapes, the server
# always answers or cleanly rejects.
go test -race -count=1 -run 'TestChaos' ./cmd/histserve/

echo "== multi-shard chaos (histproxy scatter-gather degradation) =="
# SIGKILL one historic shard behind a live proxy mid-workload: every
# answer over the dead range must be an exact PARTIAL (never a wrong
# total presented as complete, never a hang), and the shard rejoining
# on the same port restores complete answers without a proxy restart.
go test -race -count=1 -run TestShardChaosPartialAnswersAndRejoin ./cmd/histproxy/

echo "== replication chaos (primary SIGKILL, failover, zero acked-write loss) =="
# SIGKILL a semi-sync primary mid-append under live proxy write load:
# the final sum must contain every acked write (and nothing phantom),
# reads must keep answering exact non-PARTIAL totals via the WAL-
# shipped replica, and the promoted replica must accept writes within
# the prober's failover interval.
go test -race -count=1 -run TestReplChaosPrimaryKillUnderLoad ./cmd/histproxy/

echo "== disabled-tracer overhead guard (<= 5 ns/op) =="
# Without -race on purpose: the guard benchmarks the nil-span hot path
# and race instrumentation distorts timings (the test self-skips under
# -race, so the suite above does not cover it).
go test -count=1 -run TestDisabledTracerOverhead ./internal/trace/

echo "== perf-recorder overhead guard (nil <= 5 ns, enabled <= 150 ns, 0 allocs) =="
# Same regime as the tracer guard: un-instrumented timings only.
go test -count=1 -run TestRecorderOverhead ./internal/perf/

echo "== EXPLAIN smoke (real binary) =="
go test -race -count=1 -run TestExplainSmokeRealBinary ./cmd/histserve/

echo "== bench smoke (histperf vs committed baseline) =="
# A short real-binary load run producing BENCH_smoke.json, gated
# against the committed BENCH_0001.json baseline with a generous
# tolerance: ops/sec and p99 vary across machines, but a large
# throughput collapse, an error storm, or a convergence probe that
# stopped converging (the paper-unit DDC->PS drop, which is
# hardware-independent) fails the gate.
go build -o /tmp/histserve.bench ./cmd/histserve
go run ./cmd/histperf -serve-bin /tmp/histserve.bench \
    -mixes read,write,mixed,convergence \
    -conns 2 -duration 2s -warmup 500ms -quiet -out BENCH_smoke.json
go run ./cmd/histperf -compare -tolerance 0.9 BENCH_0001.json BENCH_smoke.json

echo "== ok =="
