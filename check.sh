#!/bin/sh
# Tier-1 verification gate: the exact checks CI runs (see
# .github/workflows/ci.yml), runnable locally as `./check.sh` or
# `make check`.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== histlint ./... =="
# Project-specific invariants (see DESIGN.md "Static analysis"):
# lock discipline, log-before-apply, metric naming, guarded
# narrowing, error wrapping, float equality.
go run ./cmd/histlint ./...

echo "== go test -race -shuffle=on ./... =="
go test -race -shuffle=on ./...

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/wal/
go test -run='^$' -fuzz=FuzzCSVWorkload -fuzztime=10s ./internal/workload/

echo "== crash-injection durability test =="
# Runs inside the suite above too; re-run by name so a durability
# regression is impossible to miss in the gate output.
go test -race -count=1 -run TestCrashRecoveryNoAcknowledgedLoss ./cmd/histserve/

echo "== seeded chaos suite (fault injection) =="
# Deterministic fixed seeds plus one randomized seed (logged for
# repro): no acknowledged write lost, no panic escapes, the server
# always answers or cleanly rejects.
go test -race -count=1 -run 'TestChaos' ./cmd/histserve/

echo "== disabled-tracer overhead guard (<= 5 ns/op) =="
# Without -race on purpose: the guard benchmarks the nil-span hot path
# and race instrumentation distorts timings (the test self-skips under
# -race, so the suite above does not cover it).
go test -count=1 -run TestDisabledTracerOverhead ./internal/trace/

echo "== EXPLAIN smoke (real binary) =="
go test -race -count=1 -run TestExplainSmokeRealBinary ./cmd/histserve/

echo "== ok =="
