// Quickstart: create an append-only cube, stream a few sales events
// into it, and run historical range aggregates whose cost does not
// depend on how much history has accumulated.
package main

import (
	"fmt"
	"log"

	"histcube/internal/agg"
	"histcube/internal/core"
)

func main() {
	// A 2-d cube over 8 stores x 16 products, plus transaction time.
	cube, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "store", Size: 8}, {Name: "product", Size: 16}},
		Operator: agg.Sum,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sales arrive in commit order: (day, store, product, amount).
	sales := []struct {
		day            int64
		store, product int
		amount         float64
	}{
		{1, 0, 3, 120.0},
		{1, 2, 5, 80.0},
		{2, 0, 3, 60.5},
		{2, 1, 7, 45.0},
		{3, 2, 5, 99.5},
		{3, 0, 9, 10.0},
	}
	for _, s := range sales {
		if err := cube.Insert(s.day, []int{s.store, s.product}, s.amount); err != nil {
			log.Fatal(err)
		}
	}

	// Revenue of store 0 over all products, days 1-2.
	v, err := cube.Query(core.Range{
		TimeLo: 1, TimeHi: 2,
		Lo: []int{0, 0}, Hi: []int{0, 15},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store 0 revenue, days 1-2: %.1f\n", v)

	// Revenue of all stores for product 5, full history.
	v, err = cube.Query(core.Range{
		TimeLo: 1, TimeHi: 3,
		Lo: []int{0, 5}, Hi: []int{7, 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product 5 revenue, days 1-3: %.1f\n", v)

	st := cube.Stats()
	fmt.Printf("cube holds %d time slices; %d incompletely copied\n", st.Slices, st.IncompleteSlices)
}
