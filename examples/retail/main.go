// Retail warehouse example: the paper's motivating analysis queries —
// revenue per month, month-over-month comparison, and the same month
// across years — over an append-only sales cube with AVERAGE support.
//
// Dimensions: region (4) x category (8); time is a month index
// (year*12 + month).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histcube/internal/agg"
	"histcube/internal/core"
)

func monthIndex(year, month int) int64 { return int64(year*12 + month - 1) }

func main() {
	revenue, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "region", Size: 4}, {Name: "category", Size: 8}},
		Operator: agg.Sum,
	})
	if err != nil {
		log.Fatal(err)
	}
	ticket, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "region", Size: 4}, {Name: "category", Size: 8}},
		Operator: agg.Average,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three years of synthetic sales, arriving month by month (the
	// append-only load path of a warehouse): volume has a December
	// peak, and category 3 grows year over year.
	r := rand.New(rand.NewSource(2002))
	for year := 2020; year <= 2022; year++ {
		for month := 1; month <= 12; month++ {
			t := monthIndex(year, month)
			sales := 200 + 40*seasonality(month)
			for i := 0; i < sales; i++ {
				region := r.Intn(4)
				cat := r.Intn(8)
				amount := 20 + r.Float64()*80
				if cat == 3 {
					amount *= 1 + 0.5*float64(year-2020)
				}
				if err := revenue.Insert(t, []int{region, cat}, amount); err != nil {
					log.Fatal(err)
				}
				if err := ticket.Insert(t, []int{region, cat}, amount); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	all := func(c *core.Cube, tLo, tHi int64, lo, hi []int) float64 {
		v, err := c.Query(core.Range{TimeLo: tLo, TimeHi: tHi, Lo: lo, Hi: hi})
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	fullLo := []int{0, 0}
	fullHi := []int{3, 7}

	fmt.Println("revenue per month, 2022:")
	for month := 1; month <= 12; month++ {
		t := monthIndex(2022, month)
		fmt.Printf("  2022-%02d  %10.0f\n", month, all(revenue, t, t, fullLo, fullHi))
	}

	fmt.Println("\nmonth-over-month, Q4 2022:")
	for month := 10; month <= 12; month++ {
		cur := all(revenue, monthIndex(2022, month), monthIndex(2022, month), fullLo, fullHi)
		prev := all(revenue, monthIndex(2022, month-1), monthIndex(2022, month-1), fullLo, fullHi)
		fmt.Printf("  2022-%02d vs 2022-%02d: %+.1f%%\n", month, month-1, 100*(cur-prev)/prev)
	}

	fmt.Println("\nDecember across years (category 3 only — the growing line):")
	for year := 2020; year <= 2022; year++ {
		t := monthIndex(year, 12)
		v := all(revenue, t, t, []int{0, 3}, []int{3, 3})
		a := all(ticket, t, t, []int{0, 3}, []int{3, 3})
		fmt.Printf("  %d-12: revenue %9.0f, avg ticket %6.1f\n", year, v, a)
	}

	// Roll-up: whole history by region (a collection of range queries,
	// as the paper describes roll-up/drill-down).
	fmt.Println("\nroll-up: total revenue by region, 2020-2022:")
	for region := 0; region < 4; region++ {
		v := all(revenue, monthIndex(2020, 1), monthIndex(2022, 12), []int{region, 0}, []int{region, 7})
		fmt.Printf("  region %d: %11.0f\n", region, v)
	}
}

func seasonality(month int) int {
	switch month {
	case 12:
		return 5
	case 11:
		return 3
	case 7, 8:
		return 2
	default:
		return 1
	}
}
