// Roll-up example: dimension hierarchies over a live cube — the
// "collections of related range queries" view of roll-up and
// drill-down from the paper's introduction, using the hierarchy
// package with named-dimension queries.
//
// Scenario: 24 cities grouped into 6 states grouped into 2 regions;
// daily sales rolled up monthly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/hierarchy"
)

func main() {
	cube, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "city", Size: 24}, {Name: "category", Size: 5}},
		Operator: agg.Sum,
	})
	if err != nil {
		log.Fatal(err)
	}

	geo, err := hierarchy.New("city", 24)
	if err != nil {
		log.Fatal(err)
	}
	if err := geo.AddUniformLevel("state", 4); err != nil { // 6 states
		log.Fatal(err)
	}
	if err := geo.AddUniformLevel("region", 3); err != nil { // 2 regions
		log.Fatal(err)
	}

	// Ninety days of sales; western cities (region 1) sell more.
	r := rand.New(rand.NewSource(12))
	for day := int64(0); day < 90; day++ {
		for n := 0; n < 120; n++ {
			city := r.Intn(24)
			amount := 10 + r.Float64()*40
			if city >= 12 {
				amount *= 1.6
			}
			if err := cube.Insert(day, []int{city, r.Intn(5)}, amount); err != nil {
				log.Fatal(err)
			}
		}
	}

	q := func(lo, hi []int) (float64, error) {
		return cube.Query(core.Range{TimeLo: 0, TimeHi: 89, Lo: lo, Hi: hi})
	}

	fmt.Println("roll-up: revenue by region (90 days):")
	vals, aggs, err := hierarchy.GroupBy(q, []int{0, 0}, []int{23, 4}, 0, geo, "region")
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range vals {
		fmt.Printf("  region %d: %12.0f\n", v, aggs[i])
	}

	fmt.Println("\ndrill-down into region 1 by state:")
	lo, hi, err := geo.Range("region", 1)
	if err != nil {
		log.Fatal(err)
	}
	vals, aggs, err = hierarchy.GroupBy(q, []int{lo, 0}, []int{hi, 4}, 0, geo, "state")
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range vals {
		fmt.Printf("  state %d: %12.0f\n", v, aggs[i])
	}

	fmt.Println("\nmonthly revenue (time buckets of 30 days):")
	starts, sums, err := hierarchy.TimeBuckets(func(tLo, tHi int64) (float64, error) {
		return cube.Query(core.Range{TimeLo: tLo, TimeHi: tHi, Lo: []int{0, 0}, Hi: []int{23, 4}})
	}, 0, 89, 30)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range starts {
		fmt.Printf("  days %2d-%2d: %12.0f\n", s, s+29, sums[i])
	}

	// Named-dimension sugar: category 2 in the top state of region 1.
	v, err := cube.QueryNamed(0, 89, map[string]core.Constraint{
		"city":     core.Span(12, 15),
		"category": core.Point(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate 3, category 2, full quarter: %.0f\n", v)
}
