// Interval example: objects with an extent in the transaction-time
// dimension (Section 2.4 of the paper) — user sessions with a start
// and end time plus a server coordinate. The C/B instance pair
// answers "how many sessions were active during/at ..." with three
// fixed-cost structure queries; the endpoint family answers
// containment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histcube/internal/dims"
	"histcube/internal/extent"
	"histcube/internal/framework"
	"histcube/internal/molap"
)

const servers = 16

func main() {
	tracker, err := extent.NewTracker(extent.Config{
		Fresh: func() framework.Cloneable { return framework.NewBTreeStructure() },
		FreshEndpoint: func() framework.Cloneable {
			a, err := molap.New(dims.Shape{1024, servers}, []molap.Technique{molap.Raw{}, molap.Raw{}})
			if err != nil {
				log.Fatal(err)
			}
			return framework.NewArrayStructure(a)
		},
		StartToCoord: func(s int64) int {
			if s < 0 {
				return 0
			}
			if s > 1023 {
				return 1023
			}
			return int(s)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sessions arrive ordered by start time; durations are skewed
	// (most short, some long-lived).
	r := rand.New(rand.NewSource(9))
	start := int64(0)
	for i := 0; i < 2000; i++ {
		start += int64(r.Intn(2))
		dur := int64(1 + r.Intn(10))
		if r.Intn(20) == 0 {
			dur = int64(50 + r.Intn(100)) // long-lived session
		}
		if err := tracker.Add(extent.Interval{
			Start:  start,
			End:    start + dur,
			Coords: []int{r.Intn(servers)},
			Value:  1,
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tracked %d sessions (%d still open at the end of the stream)\n",
		tracker.Len(), tracker.Pending())

	allServers := dims.NewBox([]int{0}, []int{servers - 1})

	// Stab queries: concurrent sessions at single instants.
	for _, at := range []int64{100, 500, 900} {
		v, err := tracker.StabQuery(at, allServers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sessions active at t=%3d: %3.0f\n", at, v)
	}

	// Intersection: sessions overlapping a maintenance window, only on
	// servers 0-3.
	v, err := tracker.IntersectQuery(600, 650, dims.NewBox([]int{0}, []int{3}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions on servers 0-3 overlapping window [600,650]: %.0f\n", v)

	// Containment: sessions that started and ended within the window.
	v, err = tracker.ContainedQuery(600, 700, allServers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions fully inside [600,700]: %.0f\n", v)
}
