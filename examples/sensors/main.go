// Sensor stream example: environmental measurements (the paper's
// weather-data scenario) ingested as an append-only stream with
// occasional late, out-of-order corrections, on a disk-backed cube.
//
// Dimensions: a 12x24 latitude x longitude grid; the measure is a
// COUNT of observations (the weather4 semantics). Out-of-order
// reports are buffered in the R*-tree G_d and remain queryable; the
// example also drains a few via the data-aging path.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histcube/internal/agg"
	"histcube/internal/core"
)

func main() {
	cube, err := core.New(core.Config{
		Dims:             []core.Dim{{Name: "lat", Size: 12}, {Name: "lon", Size: 24}},
		Operator:         agg.Count,
		Storage:          core.Storage{Kind: core.Disk}, // simulated 8K-page disk
		BufferOutOfOrder: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A day of observations per tick, 96 ticks; stations cluster in
	// two bands; 2% of reports arrive a few ticks late.
	r := rand.New(rand.NewSource(7))
	late := 0
	for tick := int64(0); tick < 96; tick++ {
		for n := 0; n < 150; n++ {
			lat := clamp(int(6+r.NormFloat64()*2), 0, 11)
			lon := r.Intn(24)
			t := tick
			if tick > 4 && r.Float64() < 0.02 {
				t = tick - int64(1+r.Intn(4)) // late report
				late++
			}
			if err := cube.Insert(t, []int{lat, lon}, 1); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := cube.Stats()
	fmt.Printf("ingested %d in-order + %d late reports into %d slices (disk page I/Os: %d)\n",
		st.AppendedUpdates, st.OutOfOrderUpdates, st.Slices, st.StoreAccesses)
	// A report stamped "late" can still match the cube's latest
	// occurring time (when the current tick has no report yet) and
	// then appends in order, so buffered <= late.
	fmt.Printf("late reports buffered in G_d: %d of %d stamped late\n", st.PendingOutOfOrder, late)
	if st.OutOfOrderUpdates > int64(late) {
		log.Fatalf("bookkeeping mismatch: %d late vs %d buffered", late, st.OutOfOrderUpdates)
	}

	// Observation counts over the northern band for three windows —
	// late reports are transparently included.
	for _, w := range [][2]int64{{0, 23}, {24, 47}, {48, 95}} {
		v, err := cube.Query(core.Range{
			TimeLo: w[0], TimeHi: w[1],
			Lo: []int{6, 0}, Hi: []int{11, 23},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observations in ticks %2d-%2d, northern band: %.0f\n", w[0], w[1], v)
	}

	// Whole-grid total must equal every report ingested.
	total, err := cube.Query(core.Range{TimeLo: 0, TimeHi: 95, Lo: []int{0, 0}, Hi: []int{11, 23}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total observations: %.0f (expected %d)\n", total, 96*150)

	// Data aging: force-complete historic slices so they could move to
	// cold storage with their aggregates intact.
	if err := cube.Retire(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after retirement: %d incomplete slices\n", cube.Stats().IncompleteSlices)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
