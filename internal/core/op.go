package core

import (
	"context"
	"fmt"

	"histcube/internal/agg"
)

// OpKind enumerates the facade's replayable mutations. The paper's
// framework is deliberately append-only — updates only ever touch the
// latest instance R_{d-1}(t) (Section 2.2) — so the full cube state is
// a deterministic function of this op stream: exactly the property a
// write-ahead log (internal/wal) serialises for free.
type OpKind uint8

const (
	// OpInsert is Cube.Insert: one data point appended (or buffered
	// out of order).
	OpInsert OpKind = iota + 1
	// OpDelete is Cube.Delete: the inverse contribution of a point.
	OpDelete
	// OpAddDelta is Cube.AddDelta: a raw sum adjustment (SUM only).
	OpAddDelta
)

// String names the op kind for logs and errors.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpAddDelta:
		return "adddelta"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one mutation of the cube in replayable form. Replaying the ops
// in order against a cube with the same configuration reproduces the
// same state (including the out-of-order buffer).
type Op struct {
	Kind   OpKind
	Time   int64
	Coords []int
	Value  float64
}

// SetOpSink installs fn as the cube's write-ahead hook: every Insert,
// Delete and AddDelta passes its op to fn *before* applying it, and
// aborts (returning fn's error) if fn fails. A durable sink therefore
// sees every mutation the caller may be told succeeded — an op is only
// acknowledged after both the sink and the apply succeed. fn must not
// retain the coords slice. nil detaches the sink. Replay via ApplyOp
// bypasses the sink.
func (c *Cube) SetOpSink(fn func(Op) error) { c.sink = fn }

// logOp feeds the sink, if any.
func (c *Cube) logOp(op Op) error {
	if c.sink == nil {
		return nil
	}
	return c.sink(op)
}

// ApplyOp applies a previously logged op without notifying the sink —
// the recovery replay path. Validation is the same as for the live
// calls, so an op that failed to apply when first logged fails
// identically on replay.
func (c *Cube) ApplyOp(op Op) error {
	switch op.Kind {
	case OpInsert:
		return c.apply(context.Background(), nil, op.Time, op.Coords, agg.Point(c.cfg.Operator, op.Value))
	case OpDelete:
		return c.apply(context.Background(), nil, op.Time, op.Coords, agg.Point(c.cfg.Operator, op.Value).Neg())
	case OpAddDelta:
		return c.applyDelta(nil, op.Time, op.Coords, op.Value)
	default:
		return fmt.Errorf("core: unknown op kind %d", op.Kind)
	}
}
