package core

import (
	"context"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/trace"
)

func traceTestCube(t *testing.T) *Cube {
	t.Helper()
	c, err := New(Config{
		Dims:     []Dim{{Name: "x", Size: 8}, {Name: "y", Size: 8}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tm := int64(1); tm <= 3; tm++ {
		for i := 0; i < 8; i++ {
			if err := c.Insert(tm, []int{i, (i * 3) % 8}, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestQueryCtxSpanTree(t *testing.T) {
	c := traceTestCube(t)
	root := trace.New("histserve.query")
	ctx := trace.NewContext(context.Background(), root)
	// Historic range: both framework prefixes resolve to slices
	// (floor(3)=slice 2 is the cache, floor(1)=slice 0 is historic).
	v, err := c.QueryCtx(ctx, Range{TimeLo: 2, TimeHi: 3, Lo: []int{0, 0}, Hi: []int{7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 16 { // 8 points in each of slices 2 and 3's deltas
		t.Fatalf("query = %v, want 16", v)
	}
	root.End()

	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "histcube.query" {
		t.Fatalf("root children = %v, want one histcube.query", kids)
	}
	q := kids[0]
	var prefixes []*trace.Span
	for _, ch := range q.Children() {
		if ch.Name() == "histcube.prefix" {
			prefixes = append(prefixes, ch)
		}
	}
	if len(prefixes) != 2 {
		t.Fatalf("got %d histcube.prefix spans, want 2 (the framework reduction)", len(prefixes))
	}
	if got := q.Total(trace.Instances); got != 2 {
		t.Fatalf("instances consulted = %d, want 2", got)
	}
	if q.Total(trace.CellsTouched) == 0 {
		t.Fatal("historic prefix must touch cells")
	}
	if q.Total(trace.CacheAccesses) == 0 {
		t.Fatal("cache prefix must access cache cells")
	}
	for _, p := range prefixes {
		if p.Duration() <= 0 {
			t.Fatal("prefix spans must be ended")
		}
	}
}

func TestInsertCtxSpanCounters(t *testing.T) {
	c := traceTestCube(t)
	root := trace.New("histserve.insert")
	ctx := trace.NewContext(context.Background(), root)
	if err := c.InsertCtx(ctx, 4, []int{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	root.End()
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "histcube.insert" {
		t.Fatalf("root children = %v, want one histcube.insert", kids)
	}
	in := kids[0]
	if in.Total(trace.CacheAccesses) == 0 {
		t.Fatal("insert must touch cache cells")
	}
	// Opening time 4 creates a slice, so the update forces lazy copies
	// of overwritten cells (Fig. 8 step 3).
	if in.Total(trace.ForcedCopies) == 0 {
		t.Fatal("new-slice insert must record forced copies")
	}
}

func TestConversionTriggerSplit(t *testing.T) {
	c := traceTestCube(t)
	st0 := c.Stats()
	if st0.ECubeConversions != 0 || st0.ECubeConversionsQuery != 0 || st0.ECubeConversionsAppend != 0 {
		t.Fatalf("appends alone must not convert: %+v", st0)
	}
	// A historic query triggers lazy DDC->PS conversion.
	r := Range{TimeLo: 1, TimeHi: 1, Lo: []int{1, 1}, Hi: []int{6, 6}}
	if _, err := c.Query(r); err != nil {
		t.Fatal(err)
	}
	st1 := c.Stats()
	if st1.ECubeConversionsQuery == 0 {
		t.Fatal("historic query must register query-triggered conversions")
	}
	if st1.ECubeConversionsAppend != 0 {
		t.Fatalf("append leg = %d, want 0 (appends never run the eCube algorithm)", st1.ECubeConversionsAppend)
	}
	if st1.ECubeConversionsQuery+st1.ECubeConversionsAppend != st1.ECubeConversions {
		t.Fatalf("split legs %d+%d do not sum to total %d",
			st1.ECubeConversionsQuery, st1.ECubeConversionsAppend, st1.ECubeConversions)
	}
	// More appends after the query: the query leg must not move.
	for i := 0; i < 8; i++ {
		if err := c.Insert(9, []int{i, i}, 1); err != nil {
			t.Fatal(err)
		}
	}
	st2 := c.Stats()
	if st2.ECubeConversionsQuery != st1.ECubeConversionsQuery {
		t.Fatal("appends moved the query-triggered conversion counter")
	}
	if st2.ECubeConversionsAppend != 0 {
		t.Fatalf("append leg moved to %d", st2.ECubeConversionsAppend)
	}
}

func TestDiskQuerySpanPagerCounters(t *testing.T) {
	// Disk-backed historic slices: a traced historic query must
	// attribute its page faults (and store accesses) to the span.
	c, err := New(Config{
		Dims:     []Dim{{Name: "x", Size: 8}, {Name: "y", Size: 8}},
		Operator: agg.Sum,
		Storage:  Storage{Kind: Disk, PageSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for tm := int64(1); tm <= 3; tm++ {
		for i := 0; i < 8; i++ {
			if err := c.Insert(tm, []int{i, i}, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	root := trace.New("histserve.query")
	v, err := c.QueryTraced(root, Range{TimeLo: 1, TimeHi: 1, Lo: []int{0, 0}, Hi: []int{7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if v != 8 {
		t.Fatalf("query = %v, want 8", v)
	}
	if got := root.Total(trace.StoreAccesses); got == 0 {
		t.Fatal("disk-backed historic query recorded no store accesses")
	}
	if got := root.Total(trace.PagerReads); got == 0 {
		t.Fatal("disk-backed historic query recorded no pager reads")
	}
}

func TestUntracedPathsUnchanged(t *testing.T) {
	// Query/QueryCtx with a bare context must agree with each other
	// and leave no trace side effects.
	c := traceTestCube(t)
	r := Range{TimeLo: 1, TimeHi: 2, Lo: []int{0, 0}, Hi: []int{7, 7}}
	v1, err := c.Query(r)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.QueryCtx(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	//histlint:ignore nofloateq identical query plans over identical state must agree bitwise
	if v1 != v2 {
		t.Fatalf("Query=%v QueryCtx=%v, want identical", v1, v2)
	}
}
