package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/obs"
)

func newTestCube(t *testing.T) *Cube {
	t.Helper()
	c, err := New(Config{
		Dims:     []Dim{{Name: "x", Size: 8}, {Name: "y", Size: 8}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStatsCumulativeCounters(t *testing.T) {
	c := newTestCube(t)
	for i := 0; i < 40; i++ {
		if err := c.Insert(int64(i/4), []int{i % 8, (i * 3) % 8}, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Historic query: forces eCube loads and conversions.
	if _, err := c.Query(Range{TimeLo: 0, TimeHi: 3, Lo: []int{0, 0}, Hi: []int{7, 7}}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ECubeCellsTouched == 0 {
		t.Error("ECubeCellsTouched = 0 after historic query")
	}
	if st.ECubeConversions == 0 {
		t.Error("ECubeConversions = 0 after historic query")
	}
	if st.ForcedCopies == 0 && st.CopyAheadWork == 0 {
		t.Error("no copy progress recorded across 10 slices")
	}
	// Conversions are monotone: another historic query cannot shrink
	// them, and a repeat touches cells without reconverting them all.
	if _, err := c.Query(Range{TimeLo: 0, TimeHi: 3, Lo: []int{0, 0}, Hi: []int{7, 7}}); err != nil {
		t.Fatal(err)
	}
	st2 := c.Stats()
	if st2.ECubeConversions < st.ECubeConversions {
		t.Errorf("conversions shrank: %d -> %d", st.ECubeConversions, st2.ECubeConversions)
	}
	if st2.ECubeCellsTouched <= st.ECubeCellsTouched {
		t.Errorf("cells touched did not grow: %d -> %d", st.ECubeCellsTouched, st2.ECubeCellsTouched)
	}
}

func TestStatsTierDemotions(t *testing.T) {
	c, err := New(Config{
		Dims:     []Dim{{Size: 4}, {Size: 4}},
		Operator: agg.Sum,
		Storage:  Storage{Kind: Tiered},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := c.Insert(int64(i), []int{i % 4, i % 4}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Age(3); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().TierDemotions; got != 3 {
		t.Errorf("TierDemotions = %d, want 3", got)
	}
}

func TestInstrumentsAndStatsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ins := NewInstruments(reg)
	c := newTestCube(t)
	c.SetInstruments(ins)

	var mu sync.Mutex
	RegisterStatsMetrics(reg, func() Stats {
		mu.Lock()
		defer mu.Unlock()
		return c.Stats()
	})

	for i := 0; i < 20; i++ {
		if err := c.Insert(int64(i), []int{i % 8, i % 8}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(19, []int{3, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(Range{TimeLo: 0, TimeHi: 10, Lo: []int{0, 0}, Hi: []int{7, 7}}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := c.Save(&snap); err != nil {
		t.Fatal(err)
	}

	if ins.Insert.Count() != 20 {
		t.Errorf("insert observations = %d, want 20", ins.Insert.Count())
	}
	if ins.Delete.Count() != 1 {
		t.Errorf("delete observations = %d, want 1", ins.Delete.Count())
	}
	if ins.Query.Count() != 1 {
		t.Errorf("query observations = %d, want 1", ins.Query.Count())
	}
	if ins.SnapshotSave.Count() != 1 {
		t.Errorf("save observations = %d, want 1", ins.SnapshotSave.Count())
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE histcube_query_duration_seconds histogram",
		"histcube_query_duration_seconds_count 1",
		"# TYPE histcube_slices gauge",
		"histcube_slices 20",
		"# TYPE histcube_appended_updates_total counter",
		"histcube_appended_updates_total 21",
		"# TYPE histcube_ecube_conversions_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Detaching stops observation.
	c.SetInstruments(nil)
	if err := c.Insert(20, []int{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if ins.Insert.Count() != 20 {
		t.Errorf("detached cube still observed: %d", ins.Insert.Count())
	}
}
