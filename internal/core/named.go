package core

import "fmt"

// Constraint restricts one named dimension to the closed range
// [Lo, Hi]. Point constraints use Lo == Hi.
type Constraint struct {
	Lo, Hi int
}

// Point returns a point constraint.
func Point(v int) Constraint { return Constraint{Lo: v, Hi: v} }

// Span returns a range constraint.
func Span(lo, hi int) Constraint { return Constraint{Lo: lo, Hi: hi} }

// QueryNamed aggregates over the closed time range with per-dimension
// constraints addressed by name; unconstrained dimensions cover their
// whole domain. It is sugar over Query for ad-hoc analysis:
//
//	cube.QueryNamed(jan, mar, map[string]core.Constraint{
//	    "store":   core.Point(3),
//	    "product": core.Span(10, 19),
//	})
func (c *Cube) QueryNamed(timeLo, timeHi int64, constraints map[string]Constraint) (float64, error) {
	lo := make([]int, len(c.shape))
	hi := make([]int, len(c.shape))
	for i, n := range c.shape {
		hi[i] = n - 1
	}
	for name, cons := range constraints {
		i, ok := c.byName[name]
		if !ok {
			return 0, fmt.Errorf("core: unknown dimension %q", name)
		}
		lo[i] = cons.Lo
		hi[i] = cons.Hi
	}
	return c.Query(Range{TimeLo: timeLo, TimeHi: timeHi, Lo: lo, Hi: hi})
}
