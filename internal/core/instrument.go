package core

import (
	"histcube/internal/obs"
)

// Instruments bundles the cube's latency histograms. A cube with
// instruments attached (SetInstruments) observes the wall-clock
// duration of every Insert, Delete, Query and Save; SnapshotLoad is
// observed by the caller around core.Load, which constructs the cube
// it would be attached to. Instruments outlive any one cube, so a
// server that swaps cubes (snapshot resume) re-attaches the same set.
//
// Metric names here (and in RegisterStatsMetrics) are spelled out as
// literals at each registration site: the histlint metricname analyzer
// checks the naming contract per call, and dashboards grep for the
// literal strings.
type Instruments struct {
	Insert       *obs.Histogram
	Delete       *obs.Histogram
	Query        *obs.Histogram
	SnapshotSave *obs.Histogram
	SnapshotLoad *obs.Histogram
}

// NewInstruments registers the cube latency histograms on reg under
// the histcube_ prefix.
func NewInstruments(reg *obs.Registry) *Instruments {
	return &Instruments{
		Insert:       reg.NewHistogram("histcube_insert_duration_seconds", "Latency of cube inserts.", nil),
		Delete:       reg.NewHistogram("histcube_delete_duration_seconds", "Latency of cube deletes.", nil),
		Query:        reg.NewHistogram("histcube_query_duration_seconds", "Latency of cube range queries.", nil),
		SnapshotSave: reg.NewHistogram("histcube_snapshot_save_duration_seconds", "Duration of cube snapshot saves.", nil),
		SnapshotLoad: reg.NewHistogram("histcube_snapshot_load_duration_seconds", "Duration of cube snapshot loads.", nil),
	}
}

// SetInstruments attaches (or, with nil, detaches) latency
// instruments. The non-instrumented hot path stays a single nil check.
func (c *Cube) SetInstruments(ins *Instruments) { c.ins = ins }

// RegisterStatsMetrics registers the cube's state gauges and
// cumulative cost counters on reg, reading them from snapshot at
// scrape time. snapshot must be safe to call from the scrape
// goroutine — callers that mutate the cube concurrently pass a closure
// taking the same lock that guards the cube (see cmd/histserve). Going
// through a snapshot function rather than a captured *Cube also keeps
// the metrics correct when the caller swaps cubes on snapshot resume.
func RegisterStatsMetrics(reg *obs.Registry, snapshot func() Stats) {
	reg.NewGaugeFunc("histcube_slices",
		"Occurring time slices (time directory entries).",
		func() float64 { return float64(snapshot().Slices) })
	reg.NewGaugeFunc("histcube_incomplete_slices",
		"Historic slices not yet completely copied (Table 4's measurement).",
		func() float64 { return float64(snapshot().IncompleteSlices) })
	reg.NewGaugeFunc("histcube_ooo_pending",
		"Out-of-order updates buffered in the R*-tree (Section 2.5's G_d).",
		func() float64 { return float64(snapshot().PendingOutOfOrder) })
	reg.NewCounterFunc("histcube_appended_updates_total",
		"Updates appended in time order.",
		func() int64 { return snapshot().AppendedUpdates })
	reg.NewCounterFunc("histcube_ooo_updates_total",
		"Updates routed to the out-of-order buffer.",
		func() int64 { return snapshot().OutOfOrderUpdates })
	// One labelled series per conversion trigger, registered in a loop
	// so the literal name has a single registration site (the histlint
	// metricname contract). Queries drive the Fig. 10/11 convergence;
	// the append leg is structurally zero today and measured to stay so.
	for _, trigger := range []struct {
		name string
		read func(Stats) int64
	}{
		{"query", func(st Stats) int64 { return st.ECubeConversionsQuery }},
		{"append", func(st Stats) int64 { return st.ECubeConversionsAppend }},
	} {
		read := trigger.read
		reg.NewCounterFunc("histcube_ecube_conversions_total",
			"Historic cells lazily converted from DDC to PS, by trigger (the Fig. 10/11 convergence signal).",
			func() int64 { return read(snapshot()) },
			obs.Label{Key: "trigger", Value: trigger.name})
	}
	reg.NewCounterFunc("histcube_ecube_cells_touched_total",
		"Historic-slice cells loaded by the eCube query algorithm.",
		func() int64 { return snapshot().ECubeCellsTouched })
	reg.NewCounterFunc("histcube_cache_accesses_total",
		"Cache cell reads and writes (the paper's in-memory cost unit).",
		func() int64 { return snapshot().CacheAccesses })
	reg.NewCounterFunc("histcube_store_accesses_total",
		"Historic store accesses in the store's native unit (cells in memory, page I/Os on disk).",
		func() int64 { return snapshot().StoreAccesses })
	reg.NewCounterFunc("histcube_copy_forced_total",
		"Forced lazy copies of overwritten cache cells (Fig. 8 step 3).",
		func() int64 { return snapshot().ForcedCopies })
	reg.NewCounterFunc("histcube_copy_ahead_total",
		"Copy-ahead work riding on updates (Fig. 8 step 4).",
		func() int64 { return snapshot().CopyAheadWork })
	reg.NewCounterFunc("histcube_tier_demotions_total",
		"Slices aged from hot to cold storage.",
		func() int64 { return snapshot().TierDemotions })
}
