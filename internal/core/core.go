// Package core is histcube's public facade: a d-dimensional
// append-only data cube for historical range aggregation, implementing
// the SIGMOD 2002 construction of Riedewald, Agrawal and El Abbadi
// end to end. One dimension is transaction time (values must arrive in
// non-decreasing time order); the remaining dimensions are dense
// integer coordinates. Queries aggregate over a closed time range and
// a coordinate box at a cost independent of the length of the recorded
// history.
//
// The cube supports the invertible operators SUM, COUNT and AVERAGE
// (maintained as SUM and COUNT), in-memory or disk-backed historic
// storage, and optional buffering of out-of-order updates in an
// R*-tree (Section 2.5's G_d) so late corrections degrade performance
// gracefully instead of failing.
package core

import (
	"context"
	"errors"
	"fmt"

	"histcube/internal/agg"
	"histcube/internal/appendcube"
	"histcube/internal/dims"
	"histcube/internal/obs"
	"histcube/internal/pager"
	"histcube/internal/rstar"
	"histcube/internal/trace"
)

// Dim names one non-time dimension and fixes its domain size;
// coordinates are integers in [0, Size).
type Dim struct {
	Name string
	Size int
}

// StorageKind selects where historic time slices live.
type StorageKind int

const (
	// Memory keeps historic slices in RAM (the Section 3.3/3.4
	// algorithms, with eCube conversion).
	Memory StorageKind = iota
	// Disk keeps historic slices on paged storage (the Section 3.5
	// external-memory algorithm with page-wise copy-ahead).
	Disk
	// Tiered keeps recent slices in RAM and lets Age retire old,
	// completely copied slices to paged cold storage — the data-aging
	// scheme of the paper's conclusion.
	Tiered
)

// Storage configures the historic slice store.
type Storage struct {
	Kind StorageKind
	// Path backs Disk storage with a real file; empty uses an
	// in-memory page store with identical I/O accounting.
	Path string
	// PageSize for Disk storage; 0 selects the paper's 8 KiB.
	PageSize int
}

// Config configures a Cube.
type Config struct {
	// Dims are the non-time dimensions (at least one).
	Dims []Dim
	// Operator is the aggregate operator; it must be invertible
	// (SUM, COUNT or AVERAGE).
	Operator agg.Operator
	// Storage defaults to Memory.
	Storage Storage
	// BufferOutOfOrder routes updates with historic time coordinates
	// into an R*-tree buffer instead of rejecting them.
	BufferOutOfOrder bool
}

// Range is a query region: a closed time range and a closed
// coordinate box.
type Range struct {
	TimeLo, TimeHi int64
	Lo, Hi         []int
}

// Stats is a snapshot of cube state and cost counters.
type Stats struct {
	Slices             int
	IncompleteSlices   int
	CacheAccesses      int64
	StoreAccesses      int64
	PendingOutOfOrder  int
	AppendedUpdates    int64
	OutOfOrderUpdates  int64
	LastUpdateCost     int
	LastUpdateCopyWork int

	// ECubeConversions is the cumulative number of historic cells the
	// eCube query algorithm rewrote from DDC to PS form — the live
	// counterpart of the paper's Figure 10/11 convergence curves.
	ECubeConversions int64
	// ECubeConversionsQuery and ECubeConversionsAppend split
	// ECubeConversions by trigger: conversions performed while
	// answering range queries vs. while applying appends (structurally
	// zero today — the append path never runs the eCube algorithm —
	// but measured, not assumed, so a future code path that converts
	// on append shows up attributed rather than silently lumped in).
	ECubeConversionsQuery  int64
	ECubeConversionsAppend int64
	// ECubeCellsTouched is the cumulative number of historic-slice
	// cells loaded by queries.
	ECubeCellsTouched int64
	// ForcedCopies and CopyAheadWork are the cumulative lazy-copy
	// progress of Section 3.3 (the live view of Figures 12/13).
	ForcedCopies  int64
	CopyAheadWork int64
	// TierDemotions counts slices aged to cold storage (Tiered only).
	TierDemotions int64
}

// Cube is the append-only historical data cube.
type Cube struct {
	cfg    Config
	shape  dims.Shape
	byName map[string]int

	sum *appendcube.Cube
	cnt *appendcube.Cube // only for Average
	gd  *rstar.Gd
	cgd *rstar.Gd // count buffer, only for Average

	appended   int64
	outOfOrder int64
	lastRes    appendcube.UpdateResult

	// convQuery and convAppend attribute eCube conversions to their
	// trigger by before/after deltas of the engine counters around the
	// query and apply paths; exact because the cube is single-threaded
	// by contract (callers serialise, e.g. histserve's mutex).
	convQuery  int64
	convAppend int64

	// ins, when non-nil, receives per-operation latency observations
	// (see instrument.go).
	ins *Instruments

	// sink, when non-nil, receives every mutation before it is applied
	// — the write-ahead hook (see op.go).
	sink func(Op) error
}

// New returns an empty cube.
func New(cfg Config) (*Cube, error) {
	if err := cfg.Operator.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Dims) == 0 {
		return nil, fmt.Errorf("core: at least one non-time dimension is required")
	}
	shape := make(dims.Shape, len(cfg.Dims))
	byName := make(map[string]int, len(cfg.Dims))
	for i, d := range cfg.Dims {
		if d.Size <= 0 {
			return nil, fmt.Errorf("core: dimension %q has non-positive size %d", d.Name, d.Size)
		}
		if d.Name != "" {
			if _, dup := byName[d.Name]; dup {
				return nil, fmt.Errorf("core: duplicate dimension name %q", d.Name)
			}
			byName[d.Name] = i
		}
		shape[i] = d.Size
	}
	c := &Cube{cfg: cfg, shape: shape, byName: byName}
	var err error
	c.sum, err = newInner(cfg, shape)
	if err != nil {
		return nil, err
	}
	if cfg.Operator == agg.Average {
		c.cnt, err = newInner(cfg, shape)
		if err != nil {
			return nil, err
		}
	}
	if cfg.BufferOutOfOrder {
		c.gd, err = rstar.NewGd(len(shape))
		if err != nil {
			return nil, err
		}
		if cfg.Operator == agg.Average {
			c.cgd, err = rstar.NewGd(len(shape))
			if err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func newInner(cfg Config, shape dims.Shape) (*appendcube.Cube, error) {
	acfg := appendcube.Config{SliceShape: shape}
	if cfg.Storage.Kind == Disk || cfg.Storage.Kind == Tiered {
		pageSize := cfg.Storage.PageSize
		if pageSize == 0 {
			pageSize = pager.DefaultPageSize
		}
		var backend pager.Backend
		if cfg.Storage.Path != "" {
			fb, err := pager.NewFileBackend(cfg.Storage.Path, pageSize)
			if err != nil {
				return nil, err
			}
			backend = fb
		} else {
			backend = pager.NewMemBackend(pageSize)
		}
		pg, err := pager.New(backend, pageSize)
		if err != nil {
			return nil, err
		}
		disk := appendcube.NewDiskStore(shape.Size(), pg)
		if cfg.Storage.Kind == Tiered {
			acfg.Store = appendcube.NewTieredStore(shape.Size(), disk)
		} else {
			acfg.Store = disk
		}
	}
	return appendcube.New(acfg)
}

// DimIndex returns the index of a named dimension.
func (c *Cube) DimIndex(name string) (int, bool) {
	i, ok := c.byName[name]
	return i, ok
}

// Shape returns the non-time dimension sizes.
func (c *Cube) Shape() []int { return append([]int(nil), c.shape...) }

// Insert records one data point: at transaction time t, the cell at
// coords gains measure value v. Under COUNT semantics v is ignored and
// the point counts 1; AVERAGE accumulates both. Out-of-order times are
// buffered when configured, rejected with appendcube.ErrOutOfOrder
// otherwise.
func (c *Cube) Insert(t int64, coords []int, v float64) error {
	return c.insertTraced(context.Background(), nil, t, coords, v)
}

// InsertCtx is Insert with request scoping: when ctx carries a trace
// span (trace.NewContext), the insert records a histcube.insert child
// span with its cache/copy cost counters; when ctx has a deadline, it
// is checked once *before* the op is logged (a mutation is atomic with
// respect to cancellation — once it reaches the WAL it always
// completes, because aborting between log and apply would diverge the
// log from the state) and then bounds only the amortised copy-ahead
// work. A bare context costs one branch.
func (c *Cube) InsertCtx(ctx context.Context, t int64, coords []int, v float64) error {
	return c.insertTraced(ctx, trace.FromContext(ctx), t, coords, v)
}

// ctxErr is the single pre-log cancellation check of the mutation
// paths. The ctx.Done() == nil fast path keeps the Background case at
// one comparison, preserving the trace-overhead guarantee.
func ctxErr(ctx context.Context, what string) error {
	if ctx.Done() == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s canceled before logging: %w", what, err)
	}
	return nil
}

func (c *Cube) insertTraced(ctx context.Context, sp *trace.Span, t int64, coords []int, v float64) error {
	if c.ins != nil {
		defer obs.NewTimer(c.ins.Insert).ObserveDuration()
	}
	op := sp.StartChild("histcube.insert")
	defer op.End()
	if err := ctxErr(ctx, "insert"); err != nil {
		return err
	}
	if err := c.logOp(Op{Kind: OpInsert, Time: t, Coords: coords, Value: v}); err != nil {
		return err
	}
	val := agg.Point(c.cfg.Operator, v)
	return c.apply(ctx, op, t, coords, val)
}

// Delete removes a previously inserted point by applying the inverse
// contribution — the paper's translation of deletes into updates.
func (c *Cube) Delete(t int64, coords []int, v float64) error {
	return c.deleteTraced(context.Background(), nil, t, coords, v)
}

// DeleteCtx is Delete with request scoping (see InsertCtx for the
// cancellation contract).
func (c *Cube) DeleteCtx(ctx context.Context, t int64, coords []int, v float64) error {
	return c.deleteTraced(ctx, trace.FromContext(ctx), t, coords, v)
}

func (c *Cube) deleteTraced(ctx context.Context, sp *trace.Span, t int64, coords []int, v float64) error {
	if c.ins != nil {
		defer obs.NewTimer(c.ins.Delete).ObserveDuration()
	}
	op := sp.StartChild("histcube.delete")
	defer op.End()
	if err := ctxErr(ctx, "delete"); err != nil {
		return err
	}
	if err := c.logOp(Op{Kind: OpDelete, Time: t, Coords: coords, Value: v}); err != nil {
		return err
	}
	val := agg.Point(c.cfg.Operator, v).Neg()
	return c.apply(ctx, op, t, coords, val)
}

// AddDelta adjusts the raw sum component directly (SUM cubes only):
// the measure at coords changes by delta at time t.
func (c *Cube) AddDelta(t int64, coords []int, delta float64) error {
	if err := c.logOp(Op{Kind: OpAddDelta, Time: t, Coords: coords, Value: delta}); err != nil {
		return err
	}
	return c.applyDelta(nil, t, coords, delta)
}

func (c *Cube) applyDelta(sp *trace.Span, t int64, coords []int, delta float64) error {
	if c.cfg.Operator != agg.Sum {
		return fmt.Errorf("core: AddDelta requires the SUM operator, cube uses %s", c.cfg.Operator)
	}
	return c.apply(context.Background(), sp, t, coords, agg.Value{Sum: delta})
}

func (c *Cube) apply(ctx context.Context, sp *trace.Span, t int64, coords []int, val agg.Value) error {
	// Attribute any eCube conversions this append causes to the append
	// trigger (none today — appends never run the eCube algorithm —
	// but measured, not assumed).
	convBefore := c.engineConversions()
	defer func() { c.convAppend += c.engineConversions() - convBefore }()
	res, err := c.sum.UpdateCtx(ctx, t, coords, val.Sum)
	switch {
	case err == nil:
		c.lastRes = res
		c.appended++
		sp.Add(trace.CacheAccesses, int64(res.CacheCells))
		sp.Add(trace.ForcedCopies, int64(res.ForcedCopies))
		sp.Add(trace.CopyAheadWork, int64(res.CopyAhead))
		if res.NewSlice {
			sp.SetBool("new_slice", true)
		}
		if c.cnt != nil {
			if _, err := c.cnt.UpdateCtx(ctx, t, coords, val.Count); err != nil {
				return err
			}
		}
		return nil
	case errors.Is(err, appendcube.ErrOutOfOrder) && c.gd != nil:
		c.gd.Insert(t, coords, val.Sum)
		if c.cgd != nil {
			c.cgd.Insert(t, coords, val.Count)
		}
		c.outOfOrder++
		sp.SetBool("out_of_order", true)
		return nil
	default:
		return err
	}
}

// engineConversions reads the cumulative eCube conversion count over
// both components, the quantity the query/append trigger split deltas.
func (c *Cube) engineConversions() int64 {
	n := c.sum.Conversions()
	if c.cnt != nil {
		n += c.cnt.Conversions()
	}
	return n
}

// Query aggregates over the range and finalises per the operator
// (AVERAGE divides the summed measures by the count).
func (c *Cube) Query(r Range) (float64, error) {
	return c.QueryTraced(nil, r)
}

// QueryCtx is Query with request scoping: when ctx carries a trace
// span, the query attributes its full cost breakdown — the two
// framework prefix queries, cells touched, DDC->PS conversions,
// instances consulted, store and pager I/O — to a histcube.query
// child span; when ctx has a deadline, the eCube evaluation polls it
// and abandons the query with ctx's error. A bare context costs one
// branch.
func (c *Cube) QueryCtx(ctx context.Context, r Range) (float64, error) {
	return c.queryCtxTraced(ctx, trace.FromContext(ctx), r)
}

// QueryTraced is QueryCtx for callers that already hold the span.
func (c *Cube) QueryTraced(sp *trace.Span, r Range) (float64, error) {
	return c.queryCtxTraced(context.Background(), sp, r)
}

func (c *Cube) queryCtxTraced(ctx context.Context, sp *trace.Span, r Range) (float64, error) {
	if c.ins != nil {
		defer obs.NewTimer(c.ins.Query).ObserveDuration()
	}
	q := sp.StartChild("histcube.query")
	defer q.End()
	q.SetInt("time_lo", r.TimeLo)
	q.SetInt("time_hi", r.TimeHi)
	v, err := c.partial(ctx, q, r)
	if err != nil {
		return 0, err
	}
	return agg.Finalize(c.cfg.Operator, v), nil
}

func (c *Cube) partial(ctx context.Context, sp *trace.Span, r Range) (agg.Value, error) {
	convBefore := c.engineConversions()
	out, err := c.partialInner(ctx, sp, r)
	c.convQuery += c.engineConversions() - convBefore
	return out, err
}

func (c *Cube) partialInner(ctx context.Context, sp *trace.Span, r Range) (agg.Value, error) {
	box := dims.Box{Lo: r.Lo, Hi: r.Hi}
	s, err := c.sum.QueryCtx(ctx, sp, r.TimeLo, r.TimeHi, box)
	if err != nil {
		return agg.Value{}, err
	}
	out := agg.Value{Sum: s, Count: s}
	if c.cnt != nil {
		cq := sp.StartChild("histcube.count_cube")
		n, err := c.cnt.QueryCtx(ctx, cq, r.TimeLo, r.TimeHi, box)
		cq.End()
		if err != nil {
			return agg.Value{}, err
		}
		out.Count = n
	}
	if c.gd != nil {
		gq := sp.StartChild("histcube.ooo_buffer")
		gq.SetInt("pending", int64(c.gd.Len()))
		g, err := c.gd.Query(r.TimeLo, r.TimeHi, box)
		if err != nil {
			gq.End()
			return agg.Value{}, err
		}
		out.Sum += g
		if c.cgd != nil {
			gn, err := c.cgd.Query(r.TimeLo, r.TimeHi, box)
			if err != nil {
				gq.End()
				return agg.Value{}, err
			}
			out.Count += gn
		} else {
			out.Count += g
		}
		gq.End()
	}
	return out, nil
}

// Stats returns a snapshot of counters. For AVERAGE cubes the
// cumulative cost counters sum the SUM and COUNT components.
func (c *Cube) Stats() Stats {
	st := Stats{
		Slices:                 c.sum.NumSlices(),
		IncompleteSlices:       c.sum.Incomplete(),
		CacheAccesses:          c.sum.CacheAccesses,
		StoreAccesses:          c.sum.Store().Accesses(),
		AppendedUpdates:        c.appended,
		OutOfOrderUpdates:      c.outOfOrder,
		LastUpdateCost:         c.lastRes.Cost(),
		LastUpdateCopyWork:     c.lastRes.ForcedCopies + c.lastRes.CopyAhead,
		ECubeConversions:       c.sum.Conversions(),
		ECubeCellsTouched:      c.sum.CellsTouched(),
		ECubeConversionsQuery:  c.convQuery,
		ECubeConversionsAppend: c.convAppend,
		TierDemotions:          c.sum.Demotions(),
	}
	st.ForcedCopies, st.CopyAheadWork = c.sum.CopyProgress()
	if c.cnt != nil {
		st.CacheAccesses += c.cnt.CacheAccesses
		st.StoreAccesses += c.cnt.Store().Accesses()
		st.ECubeConversions += c.cnt.Conversions()
		st.ECubeCellsTouched += c.cnt.CellsTouched()
		st.TierDemotions += c.cnt.Demotions()
		f, a := c.cnt.CopyProgress()
		st.ForcedCopies += f
		st.CopyAheadWork += a
	}
	if c.gd != nil {
		st.PendingOutOfOrder = c.gd.Len()
	}
	return st
}

// Times returns the occurring time values in ascending order.
func (c *Cube) Times() []int64 { return c.sum.Times() }

// Retire materialises every historic slice completely — the data-aging
// hook the paper's conclusion describes: once slices are complete they
// can move to colder storage with their aggregates intact.
func (c *Cube) Retire() error {
	if err := c.sum.ForceComplete(); err != nil {
		return err
	}
	if c.cnt != nil {
		return c.cnt.ForceComplete()
	}
	return nil
}

// Close releases storage resources: disk-backed historic stores flush
// their page buffer, fsync and close the page file, propagating any
// error. Memory-backed cubes close trivially. The cube must not be
// used after Close.
func (c *Cube) Close() error {
	err := closeStore(c.sum.Store())
	if c.cnt != nil {
		if cerr := closeStore(c.cnt.Store()); err == nil {
			err = cerr
		}
	}
	return err
}

func closeStore(s appendcube.SliceStore) error {
	switch st := s.(type) {
	case *appendcube.DiskStore:
		return st.Pager().Close()
	case *appendcube.TieredStore:
		return closeStore(st.Cold())
	default:
		return nil
	}
}

// Age retires the oldest n historic slices to cold storage (Tiered
// storage only): each is completed and demoted, its cumulative
// aggregates retained at no extra cost. It returns the number of
// slices demoted.
func (c *Cube) Age(n int) (int, error) {
	demoted, err := c.sum.Age(n)
	if err != nil {
		return demoted, err
	}
	if c.cnt != nil {
		if _, err := c.cnt.Age(n); err != nil {
			return demoted, err
		}
	}
	return demoted, nil
}
