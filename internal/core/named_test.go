package core

import (
	"math/rand"
	"sync"
	"testing"

	"histcube/internal/agg"
)

func TestQueryNamed(t *testing.T) {
	c, err := New(Config{
		Dims:     []Dim{{Name: "store", Size: 6}, {Name: "product", Size: 10}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(1, []int{2, 5}, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(2, []int{3, 5}, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(2, []int{2, 9}, 3); err != nil {
		t.Fatal(err)
	}

	got, err := c.QueryNamed(0, 10, map[string]Constraint{"store": Point(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 13 {
		t.Errorf("store=2 -> %v, want 13", got)
	}
	got, err = c.QueryNamed(0, 10, map[string]Constraint{"product": Span(0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Errorf("product 0-8 -> %v, want 17", got)
	}
	got, err = c.QueryNamed(0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("unconstrained -> %v, want 20", got)
	}
	if _, err := c.QueryNamed(0, 10, map[string]Constraint{"nope": Point(0)}); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := c.QueryNamed(0, 10, map[string]Constraint{"store": Span(2, 99)}); err == nil {
		t.Error("out-of-domain constraint accepted")
	}
}

func TestSafeCubeConcurrentUse(t *testing.T) {
	inner, err := New(Config{
		Dims:     []Dim{{Name: "x", Size: 16}, {Name: "y", Size: 16}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSafe(inner)

	// One writer advancing time, several readers; run under -race in
	// CI to catch unsynchronised access.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			if err := s.Insert(int64(i/50), []int{r.Intn(16), r.Intn(16)}, 1); err != nil {
				t.Error(err)
				break
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := []int{r.Intn(16), r.Intn(16)}
				hi := []int{lo[0] + r.Intn(16-lo[0]), lo[1] + r.Intn(16-lo[1])}
				tLo := int64(r.Intn(45))
				if _, err := s.Query(Range{TimeLo: tLo, TimeHi: tLo + 5, Lo: lo, Hi: hi}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.QueryNamed(0, 100, map[string]Constraint{"x": Point(r.Intn(16))}); err != nil {
					t.Error(err)
					return
				}
				_ = s.Stats()
			}
		}(int64(g + 2))
	}
	wg.Wait()

	// Final total must equal everything the writer inserted.
	got, err := s.Query(Range{TimeLo: 0, TimeHi: 100, Lo: []int{0, 0}, Hi: []int{15, 15}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2000 {
		t.Errorf("total = %v, want 2000", got)
	}
	if err := s.Retire(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Age(1); err == nil {
		t.Error("Age on non-tiered safe cube accepted")
	}
	if err := s.Delete(100, []int{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDelta(100, []int{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
}
