package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/agg"
)

func TestSaveLoadRoundTripSum(t *testing.T) {
	c, err := New(Config{
		Dims:             []Dim{{Name: "a", Size: 6}, {Name: "b", Size: 5}},
		Operator:         agg.Sum,
		BufferOutOfOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(71))
	var sh coreShadow
	now := int64(1)
	for i := 0; i < 300; i++ {
		var tv int64
		if r.Intn(8) == 0 {
			tv = int64(r.Intn(int(now)))
		} else {
			if r.Intn(3) == 0 {
				now++
			}
			tv = now
		}
		p := corePoint{t: tv, x: []int{r.Intn(6), r.Intn(5)}, v: float64(r.Intn(9) + 1)}
		if err := c.Insert(p.t, p.x, p.v); err != nil {
			t.Fatal(err)
		}
		sh = append(sh, p)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Restored cube answers identically, including buffered
	// out-of-order updates.
	for q := 0; q < 100; q++ {
		lo := []int{r.Intn(6), r.Intn(5)}
		hi := []int{lo[0] + r.Intn(6-lo[0]), lo[1] + r.Intn(5-lo[1])}
		tLo := int64(r.Intn(int(now) + 2))
		rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
		want, err := c.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("restored query %+v = %v, want %v", rng, got, want)
		}
		if naive := sh.eval(agg.Sum, rng); got != naive {
			t.Fatalf("restored query %+v = %v, shadow %v", rng, got, naive)
		}
	}
	st, bst := c.Stats(), back.Stats()
	if bst.Slices != st.Slices || bst.PendingOutOfOrder != st.PendingOutOfOrder ||
		bst.AppendedUpdates != st.AppendedUpdates || bst.OutOfOrderUpdates != st.OutOfOrderUpdates {
		t.Errorf("stats differ: %+v vs %+v", bst, st)
	}
}

func TestSaveLoadContinuesIngest(t *testing.T) {
	// A restored cube must accept further appends seamlessly (the
	// copy-ahead state survives the round trip).
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 8}}, Operator: agg.Sum})
	for i := 0; i < 200; i++ {
		if err := c.Insert(int64(i/20), []int{i % 8}, 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 400; i++ {
		if err := back.Insert(int64(i/20), []int{i % 8}, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(int64(i/20), []int{i % 8}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for q := int64(0); q < 20; q++ {
		rng := Range{TimeLo: q, TimeHi: q + 3, Lo: []int{0}, Hi: []int{7}}
		a, _ := c.Query(rng)
		b, _ := back.Query(rng)
		if a != b {
			t.Fatalf("diverged after restore at window %d: %v vs %v", q, a, b)
		}
	}
}

func TestSaveLoadAverage(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 8}}, Operator: agg.Average, BufferOutOfOrder: true})
	ins := []corePoint{{10, []int{1}, 4}, {20, []int{1}, 8}, {15, []int{2}, 6}}
	for _, p := range ins {
		if err := c.Insert(p.t, p.x, p.v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := Range{TimeLo: 0, TimeHi: 30, Lo: []int{0}, Hi: []int{7}}
	want, _ := c.Query(rng)
	got, err := back.Query(rng)
	if err != nil || got != want || got != 6 {
		t.Fatalf("restored avg = %v (%v), want %v", got, err, want)
	}
}

// TestSaveLoadOutOfOrderBuffers pins the snapshot round trip for
// cubes with non-empty G_d buffers: an AVERAGE cube keeps *two*
// R*-trees (sum and count), and both must survive Save/Load with
// query equivalence across windows that do and do not overlap the
// buffered points.
func TestSaveLoadOutOfOrderBuffers(t *testing.T) {
	for _, op := range []agg.Operator{agg.Sum, agg.Count, agg.Average} {
		t.Run(op.String(), func(t *testing.T) {
			c, err := New(Config{
				Dims:             []Dim{{Name: "a", Size: 5}, {Name: "b", Size: 4}},
				Operator:         op,
				BufferOutOfOrder: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(int64(op) + 100))
			now := int64(1)
			buffered := 0
			for i := 0; i < 250; i++ {
				var tv int64
				if i > 10 && r.Intn(3) == 0 {
					tv = int64(r.Intn(int(now))) // historic: lands in G_d
					buffered++
				} else {
					if r.Intn(3) == 0 {
						now++
					}
					tv = now
				}
				if err := c.Insert(tv, []int{r.Intn(5), r.Intn(4)}, float64(r.Intn(7)+1)); err != nil {
					t.Fatal(err)
				}
			}
			if n := c.Stats().PendingOutOfOrder; n == 0 || n != buffered {
				t.Fatalf("pending out-of-order = %d, want %d (test must exercise G_d)", n, buffered)
			}

			var buf bytes.Buffer
			if err := c.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := back.Stats().PendingOutOfOrder; got != buffered {
				t.Fatalf("restored pending out-of-order = %d, want %d", got, buffered)
			}
			for q := 0; q < 120; q++ {
				lo := []int{r.Intn(5), r.Intn(4)}
				hi := []int{lo[0] + r.Intn(5-lo[0]), lo[1] + r.Intn(4-lo[1])}
				tLo := int64(r.Intn(int(now) + 2))
				rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
				want, err := c.Query(rng)
				if err != nil {
					t.Fatal(err)
				}
				got, err := back.Query(rng)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("restored %s query %+v = %v, want %v", op, rng, got, want)
				}
			}
			// The restored buffers must also absorb further
			// out-of-order updates identically.
			for i := 0; i < 40; i++ {
				tv := int64(r.Intn(int(now)))
				coords := []int{r.Intn(5), r.Intn(4)}
				v := float64(r.Intn(7) + 1)
				if err := c.Insert(tv, coords, v); err != nil {
					t.Fatal(err)
				}
				if err := back.Insert(tv, coords, v); err != nil {
					t.Fatal(err)
				}
			}
			rng := Range{TimeLo: 0, TimeHi: now + 1, Lo: []int{0, 0}, Hi: []int{4, 3}}
			want, _ := c.Query(rng)
			got, _ := back.Query(rng)
			if want != got {
				t.Fatalf("post-restore ingest diverged: %v vs %v", got, want)
			}
		})
	}
}

func TestSaveRejectsDiskCube(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 8}}, Operator: agg.Sum, Storage: Storage{Kind: Disk}})
	if err := c.Insert(1, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err == nil {
		t.Error("disk-backed cube snapshot accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewBuffer(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: save/load is lossless for random cubes and operators.
func TestSnapshotLosslessProperty(t *testing.T) {
	ops := []agg.Operator{agg.Sum, agg.Count, agg.Average}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(Config{
			Dims:     []Dim{{Name: "x", Size: r.Intn(6) + 2}, {Name: "y", Size: r.Intn(6) + 2}},
			Operator: ops[r.Intn(len(ops))],
		})
		if err != nil {
			return false
		}
		shape := c.Shape()
		now := int64(0)
		for i := 0; i < 120; i++ {
			if r.Intn(3) == 0 {
				now++
			}
			if c.Insert(now, []int{r.Intn(shape[0]), r.Intn(shape[1])}, float64(r.Intn(20)+1)) != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if c.Save(&buf) != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil {
			return false
		}
		for q := 0; q < 25; q++ {
			lo := []int{r.Intn(shape[0]), r.Intn(shape[1])}
			hi := []int{lo[0] + r.Intn(shape[0]-lo[0]), lo[1] + r.Intn(shape[1]-lo[1])}
			tLo := int64(r.Intn(int(now) + 2))
			rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
			a, e1 := c.Query(rng)
			b, e2 := back.Query(rng)
			if e1 != nil || e2 != nil || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
