package core

import (
	"errors"
	"math/rand"
	"testing"

	"histcube/internal/agg"
)

func TestOpSinkSeesEveryMutation(t *testing.T) {
	c, err := New(Config{Dims: []Dim{{Name: "x", Size: 8}}, Operator: agg.Sum, BufferOutOfOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []Op
	c.SetOpSink(func(op Op) error {
		// The sink must be able to keep the op without aliasing the
		// caller's coords slice.
		op.Coords = append([]int(nil), op.Coords...)
		got = append(got, op)
		return nil
	})
	if err := c.Insert(1, []int{2}, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(1, []int{2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDelta(2, []int{4}, -1.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(1, []int{0}, 7); err != nil { // out of order: buffered, still logged
		t.Fatal(err)
	}
	want := []Op{
		{Kind: OpInsert, Time: 1, Coords: []int{2}, Value: 5},
		{Kind: OpDelete, Time: 1, Coords: []int{2}, Value: 3},
		{Kind: OpAddDelta, Time: 2, Coords: []int{4}, Value: -1.5},
		{Kind: OpInsert, Time: 1, Coords: []int{0}, Value: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("sink saw %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Time != want[i].Time ||
			got[i].Value != want[i].Value || got[i].Coords[0] != want[i].Coords[0] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestOpSinkErrorAborts(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 8}}, Operator: agg.Sum})
	sinkErr := errors.New("disk full")
	c.SetOpSink(func(Op) error { return sinkErr })
	if err := c.Insert(1, []int{0}, 1); !errors.Is(err, sinkErr) {
		t.Fatalf("Insert error = %v, want sink error", err)
	}
	// The mutation must not have been applied: detach the sink and
	// check the cube is still empty.
	c.SetOpSink(nil)
	if st := c.Stats(); st.AppendedUpdates != 0 || st.Slices != 0 {
		t.Fatalf("aborted insert mutated the cube: %+v", st)
	}
}

func TestApplyOpReplayEquivalence(t *testing.T) {
	mk := func() *Cube {
		c, err := New(Config{
			Dims:             []Dim{{Name: "x", Size: 6}, {Name: "y", Size: 5}},
			Operator:         agg.Average,
			BufferOutOfOrder: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	live, replayed := mk(), mk()
	var stream []Op
	live.SetOpSink(func(op Op) error {
		op.Coords = append([]int(nil), op.Coords...)
		stream = append(stream, op)
		return nil
	})
	r := rand.New(rand.NewSource(21))
	now := int64(1)
	for i := 0; i < 300; i++ {
		var tv int64
		if r.Intn(7) == 0 && now > 1 {
			tv = int64(r.Intn(int(now)))
		} else {
			if r.Intn(3) == 0 {
				now++
			}
			tv = now
		}
		coords := []int{r.Intn(6), r.Intn(5)}
		v := float64(r.Intn(9) + 1)
		var err error
		if r.Intn(6) == 0 {
			err = live.Delete(tv, coords, v)
		} else {
			err = live.Insert(tv, coords, v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// ApplyOp must bypass the sink: attach a tripwire to the replay
	// target.
	replayed.SetOpSink(func(Op) error {
		t.Fatal("replay re-entered the sink")
		return nil
	})
	for _, op := range stream {
		if err := replayed.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 80; q++ {
		lo := []int{r.Intn(6), r.Intn(5)}
		hi := []int{lo[0] + r.Intn(6-lo[0]), lo[1] + r.Intn(5-lo[1])}
		tLo := int64(r.Intn(int(now) + 2))
		rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
		a, e1 := live.Query(rng)
		b, e2 := replayed.Query(rng)
		if e1 != nil || e2 != nil || a != b {
			t.Fatalf("query %+v: live %v (%v), replayed %v (%v)", rng, a, e1, b, e2)
		}
	}
}

func TestApplyOpUnknownKind(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 4}}, Operator: agg.Sum})
	if err := c.ApplyOp(Op{Kind: 99, Time: 1, Coords: []int{0}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	if OpKind(99).String() == "" || OpInsert.String() != "insert" {
		t.Fatal("OpKind.String misbehaves")
	}
}
