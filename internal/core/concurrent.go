package core

import "sync"

// SafeCube wraps a Cube for concurrent use: queries take a write lock
// too, because historic reads mutate state (the eCube conversion
// rewrites cells and the read path touches shared counters) — the
// structure trades that interior mutability for its convergence
// property, so a plain RWMutex read lock would race. All methods are
// safe to call from multiple goroutines.
type SafeCube struct {
	mu sync.Mutex
	c  *Cube // guarded by mu
}

// NewSafe wraps an existing cube. The caller must stop using the inner
// cube directly.
func NewSafe(c *Cube) *SafeCube { return &SafeCube{c: c} }

// Insert is the synchronised Cube.Insert.
func (s *SafeCube) Insert(t int64, coords []int, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Insert(t, coords, v)
}

// Delete is the synchronised Cube.Delete.
func (s *SafeCube) Delete(t int64, coords []int, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Delete(t, coords, v)
}

// AddDelta is the synchronised Cube.AddDelta.
func (s *SafeCube) AddDelta(t int64, coords []int, delta float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.AddDelta(t, coords, delta)
}

// Query is the synchronised Cube.Query.
func (s *SafeCube) Query(r Range) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Query(r)
}

// QueryNamed is the synchronised Cube.QueryNamed.
func (s *SafeCube) QueryNamed(timeLo, timeHi int64, constraints map[string]Constraint) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.QueryNamed(timeLo, timeHi, constraints)
}

// Stats is the synchronised Cube.Stats.
func (s *SafeCube) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Stats()
}

// Age is the synchronised Cube.Age.
func (s *SafeCube) Age(n int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Age(n)
}

// Retire is the synchronised Cube.Retire.
func (s *SafeCube) Retire() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Retire()
}
