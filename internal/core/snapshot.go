package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"histcube/internal/agg"
	"histcube/internal/appendcube"
	"histcube/internal/obs"
	"histcube/internal/rstar"
)

// header is the serialised facade state around the inner cube
// snapshots.
type header struct {
	Version  int
	Operator int
	DimNames []string
	DimSizes []int
	HasCount bool
	HasGd    bool

	Appended   int64
	OutOfOrder int64

	// Buffered out-of-order updates (flattened from the R*-trees).
	// The count buffer is serialised with its own coordinates: the two
	// trees hold the same points but walk in structural order.
	GdTimes     []int64
	GdCoords    [][]int
	GdSum       []float64
	GdCntTimes  []int64
	GdCntCoords [][]int
	GdCount     []float64
}

const coreSnapshotVersion = 1

// Save serialises the cube so Load can reconstruct it: configuration,
// the inner append-only cubes, and any buffered out-of-order updates.
// Only memory-backed storage is supported (disk-backed cubes persist
// through their page file).
func (c *Cube) Save(w io.Writer) error {
	if c.ins != nil {
		defer obs.NewTimer(c.ins.SnapshotSave).ObserveDuration()
	}
	h := header{
		Version:    coreSnapshotVersion,
		Operator:   int(c.cfg.Operator),
		HasCount:   c.cnt != nil,
		HasGd:      c.gd != nil,
		Appended:   c.appended,
		OutOfOrder: c.outOfOrder,
	}
	for _, d := range c.cfg.Dims {
		h.DimNames = append(h.DimNames, d.Name)
		h.DimSizes = append(h.DimSizes, d.Size)
	}
	if c.gd != nil {
		c.gd.Tree().Walk(func(e rstar.Entry) bool {
			h.GdTimes = append(h.GdTimes, int64(e.Coords[0]))
			h.GdCoords = append(h.GdCoords, append([]int(nil), e.Coords[1:]...))
			h.GdSum = append(h.GdSum, e.Value)
			return true
		})
		if c.cgd != nil {
			c.cgd.Tree().Walk(func(e rstar.Entry) bool {
				h.GdCntTimes = append(h.GdCntTimes, int64(e.Coords[0]))
				h.GdCntCoords = append(h.GdCntCoords, append([]int(nil), e.Coords[1:]...))
				h.GdCount = append(h.GdCount, e.Value)
				return true
			})
		}
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&h); err != nil {
		return err
	}
	if err := c.sum.EncodeSnapshot(enc); err != nil {
		return err
	}
	if c.cnt != nil {
		return c.cnt.EncodeSnapshot(enc)
	}
	return nil
}

// Load reconstructs a cube written by Save.
func Load(r io.Reader) (*Cube, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot header: %w", err)
	}
	if h.Version != coreSnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d not supported", h.Version)
	}
	cfg := Config{Operator: agg.Operator(h.Operator), BufferOutOfOrder: h.HasGd}
	for i := range h.DimSizes {
		cfg.Dims = append(cfg.Dims, Dim{Name: h.DimNames[i], Size: h.DimSizes[i]})
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	c.appended = h.Appended
	c.outOfOrder = h.OutOfOrder
	c.sum, err = appendcube.DecodeSnapshot(dec)
	if err != nil {
		return nil, err
	}
	if h.HasCount {
		c.cnt, err = appendcube.DecodeSnapshot(dec)
		if err != nil {
			return nil, err
		}
	} else {
		c.cnt = nil
	}
	if h.HasGd {
		for i := range h.GdTimes {
			c.gd.Insert(h.GdTimes[i], h.GdCoords[i], h.GdSum[i])
		}
		if c.cgd != nil {
			for i := range h.GdCntTimes {
				c.cgd.Insert(h.GdCntTimes[i], h.GdCntCoords[i], h.GdCount[i])
			}
		}
	}
	return c, nil
}
