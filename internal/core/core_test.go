package core

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"histcube/internal/agg"
)

type corePoint struct {
	t int64
	x []int
	v float64
}

type coreShadow []corePoint

func (s coreShadow) eval(op agg.Operator, r Range) float64 {
	var acc agg.Value
	for _, p := range s {
		if p.t < r.TimeLo || p.t > r.TimeHi {
			continue
		}
		in := true
		for i := range p.x {
			if p.x[i] < r.Lo[i] || p.x[i] > r.Hi[i] {
				in = false
				break
			}
		}
		if in {
			acc = acc.Add(agg.Point(op, p.v))
		}
	}
	return agg.Finalize(op, acc)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Operator: agg.Sum}); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := New(Config{Dims: []Dim{{"x", 0}}, Operator: agg.Sum}); err == nil {
		t.Error("zero-size dim accepted")
	}
	if _, err := New(Config{Dims: []Dim{{"x", 4}, {"x", 5}}, Operator: agg.Sum}); err == nil {
		t.Error("duplicate dim name accepted")
	}
	if _, err := New(Config{Dims: []Dim{{"x", 4}}, Operator: agg.Min}); err == nil {
		t.Error("non-invertible operator accepted")
	}
}

func TestDimIndex(t *testing.T) {
	c, err := New(Config{Dims: []Dim{{"store", 10}, {"product", 20}}, Operator: agg.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := c.DimIndex("product"); !ok || i != 1 {
		t.Errorf("DimIndex(product) = %d,%v", i, ok)
	}
	if _, ok := c.DimIndex("nope"); ok {
		t.Error("unknown name resolved")
	}
	if got := c.Shape(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("Shape = %v", got)
	}
}

func TestSumInsertDeleteQuery(t *testing.T) {
	c, err := New(Config{Dims: []Dim{{"loc", 8}}, Operator: agg.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(1, []int{3}, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(2, []int{4}, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(2, []int{4}, 7); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(Range{TimeLo: 0, TimeHi: 10, Lo: []int{0}, Hi: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("query = %v, want 5 (delete is the inverse update)", got)
	}
}

func TestAddDeltaOnlyForSum(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{"x", 4}}, Operator: agg.Count})
	if err := c.AddDelta(1, []int{0}, 2); err == nil {
		t.Error("AddDelta accepted on COUNT cube")
	}
	s, _ := New(Config{Dims: []Dim{{"x", 4}}, Operator: agg.Sum})
	if err := s.AddDelta(1, []int{0}, 2.5); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Query(Range{TimeLo: 1, TimeHi: 1, Lo: []int{0}, Hi: []int{0}})
	if got != 2.5 {
		t.Errorf("AddDelta query = %v", got)
	}
}

func TestOperatorsMatchShadow(t *testing.T) {
	for _, op := range []agg.Operator{agg.Sum, agg.Count, agg.Average} {
		t.Run(op.String(), func(t *testing.T) {
			c, err := New(Config{Dims: []Dim{{"a", 6}, {"b", 5}}, Operator: op})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(31))
			var sh coreShadow
			now := int64(0)
			for i := 0; i < 300; i++ {
				if r.Intn(3) == 0 {
					now++
				}
				p := corePoint{t: now, x: []int{r.Intn(6), r.Intn(5)}, v: float64(r.Intn(20) + 1)}
				if err := c.Insert(p.t, p.x, p.v); err != nil {
					t.Fatal(err)
				}
				sh = append(sh, p)
			}
			for q := 0; q < 150; q++ {
				lo := []int{r.Intn(6), r.Intn(5)}
				hi := []int{lo[0] + r.Intn(6-lo[0]), lo[1] + r.Intn(5-lo[1])}
				tLo := int64(r.Intn(int(now) + 2))
				rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
				got, err := c.Query(rng)
				if err != nil {
					t.Fatal(err)
				}
				want := sh.eval(op, rng)
				if diff := got - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s query %+v = %v, want %v", op, rng, got, want)
				}
			}
		})
	}
}

func TestOutOfOrderBuffering(t *testing.T) {
	c, err := New(Config{Dims: []Dim{{"x", 8}}, Operator: agg.Sum, BufferOutOfOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	var sh coreShadow
	ins := func(tv int64, x int, v float64) {
		t.Helper()
		if err := c.Insert(tv, []int{x}, v); err != nil {
			t.Fatal(err)
		}
		sh = append(sh, corePoint{t: tv, x: []int{x}, v: v})
	}
	ins(10, 1, 5)
	ins(20, 2, 3)
	ins(12, 3, 7) // late correction
	ins(5, 4, 2)  // very late
	st := c.Stats()
	if st.PendingOutOfOrder != 2 || st.OutOfOrderUpdates != 2 || st.AppendedUpdates != 2 {
		t.Fatalf("stats = %+v", st)
	}
	for _, q := range [][2]int64{{0, 30}, {11, 13}, {5, 10}, {13, 30}} {
		rng := Range{TimeLo: q[0], TimeHi: q[1], Lo: []int{0}, Hi: []int{7}}
		got, err := c.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.eval(agg.Sum, rng); got != want {
			t.Fatalf("query [%d,%d] = %v, want %v", q[0], q[1], got, want)
		}
	}
}

func TestOutOfOrderRejectedWithoutBuffer(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{"x", 8}}, Operator: agg.Sum})
	if err := c.Insert(10, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(5, []int{1}, 1); err == nil {
		t.Error("out-of-order insert accepted without buffer")
	}
}

func TestAverageOutOfOrder(t *testing.T) {
	c, err := New(Config{Dims: []Dim{{"x", 8}}, Operator: agg.Average, BufferOutOfOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	var sh coreShadow
	for _, p := range []corePoint{
		{10, []int{1}, 4}, {20, []int{1}, 8}, {15, []int{1}, 6},
	} {
		if err := c.Insert(p.t, p.x, p.v); err != nil {
			t.Fatal(err)
		}
		sh = append(sh, p)
	}
	rng := Range{TimeLo: 0, TimeHi: 30, Lo: []int{0}, Hi: []int{7}}
	got, err := c.Query(rng)
	if err != nil {
		t.Fatal(err)
	}
	if want := sh.eval(agg.Average, rng); got != want {
		t.Errorf("avg = %v, want %v", got, want)
	}
}

func TestDiskBackedCube(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slices.dat")
	c, err := New(Config{
		Dims:     []Dim{{"x", 8}, {"y", 8}},
		Operator: agg.Sum,
		Storage:  Storage{Kind: Disk, Path: path, PageSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(32))
	var sh coreShadow
	now := int64(0)
	for i := 0; i < 200; i++ {
		if r.Intn(4) == 0 {
			now++
		}
		p := corePoint{t: now, x: []int{r.Intn(8), r.Intn(8)}, v: float64(r.Intn(9) + 1)}
		if err := c.Insert(p.t, p.x, p.v); err != nil {
			t.Fatal(err)
		}
		sh = append(sh, p)
	}
	for q := 0; q < 60; q++ {
		lo := []int{r.Intn(8), r.Intn(8)}
		hi := []int{lo[0] + r.Intn(8-lo[0]), lo[1] + r.Intn(8-lo[1])}
		tLo := int64(r.Intn(int(now) + 2))
		rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
		got, err := c.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.eval(agg.Sum, rng); got != want {
			t.Fatalf("disk query %+v = %v, want %v", rng, got, want)
		}
	}
	if c.Stats().StoreAccesses == 0 {
		t.Error("disk cube reports zero store accesses")
	}
}

func TestRetire(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{"x", 16}}, Operator: agg.Average})
	for i := 0; i < 100; i++ {
		if err := c.Insert(int64(i/10), []int{i % 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Retire(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.IncompleteSlices != 0 {
		t.Errorf("incomplete after Retire = %d", st.IncompleteSlices)
	}
}

// Property: SUM cubes with buffered out-of-order updates match the
// shadow under random mixed streams.
func TestMixedStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(Config{
			Dims:             []Dim{{"x", 5}, {"y", 4}},
			Operator:         agg.Sum,
			BufferOutOfOrder: true,
		})
		if err != nil {
			return false
		}
		var sh coreShadow
		now := int64(1)
		for i := 0; i < 100; i++ {
			var tv int64
			if r.Intn(8) == 0 {
				tv = int64(r.Intn(int(now)))
			} else {
				if r.Intn(3) == 0 {
					now++
				}
				tv = now
			}
			p := corePoint{t: tv, x: []int{r.Intn(5), r.Intn(4)}, v: float64(r.Intn(9) - 4)}
			if err := c.Insert(p.t, p.x, p.v); err != nil {
				return false
			}
			sh = append(sh, p)
			if i%5 == 0 {
				lo := []int{r.Intn(5), r.Intn(4)}
				hi := []int{lo[0] + r.Intn(5-lo[0]), lo[1] + r.Intn(4-lo[1])}
				tLo := int64(r.Intn(int(now) + 2))
				rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
				got, err := c.Query(rng)
				if err != nil || got != sh.eval(agg.Sum, rng) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTieredStorageAging(t *testing.T) {
	c, err := New(Config{
		Dims:     []Dim{{Name: "x", Size: 8}, {Name: "y", Size: 6}},
		Operator: agg.Average,
		Storage:  Storage{Kind: Tiered, PageSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(33))
	var sh coreShadow
	now := int64(0)
	for i := 0; i < 300; i++ {
		if r.Intn(4) == 0 {
			now++
		}
		p := corePoint{t: now, x: []int{r.Intn(8), r.Intn(6)}, v: float64(r.Intn(20) + 1)}
		if err := c.Insert(p.t, p.x, p.v); err != nil {
			t.Fatal(err)
		}
		sh = append(sh, p)
	}
	demoted, err := c.Age(c.Stats().Slices / 2)
	if err != nil {
		t.Fatal(err)
	}
	if demoted == 0 {
		t.Fatal("nothing demoted")
	}
	for q := 0; q < 120; q++ {
		lo := []int{r.Intn(8), r.Intn(6)}
		hi := []int{lo[0] + r.Intn(8-lo[0]), lo[1] + r.Intn(6-lo[1])}
		tLo := int64(r.Intn(int(now) + 2))
		rng := Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(int(now)+2)), Lo: lo, Hi: hi}
		got, err := c.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		want := sh.eval(agg.Average, rng)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("aged avg query %+v = %v, want %v", rng, got, want)
		}
	}
}

func TestAgeWithoutTieredStorage(t *testing.T) {
	c, _ := New(Config{Dims: []Dim{{Name: "x", Size: 4}}, Operator: agg.Sum})
	if _, err := c.Age(1); err == nil {
		t.Error("Age on non-tiered cube accepted")
	}
}
