package dims

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestShapeValidate(t *testing.T) {
	cases := []struct {
		name  string
		shape Shape
		ok    bool
	}{
		{"empty", Shape{}, false},
		{"nil", nil, false},
		{"one dim", Shape{4}, true},
		{"multi dim", Shape{4, 8, 2}, true},
		{"zero size", Shape{4, 0}, false},
		{"negative", Shape{-1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.shape.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%v) = %v, want ok=%v", c.shape, err, c.ok)
			}
		})
	}
}

func TestShapeSize(t *testing.T) {
	if got := (Shape{}).Size(); got != 0 {
		t.Errorf("empty shape size = %d, want 0", got)
	}
	if got := (Shape{7}).Size(); got != 7 {
		t.Errorf("size = %d, want 7", got)
	}
	if got := (Shape{3, 4, 5}).Size(); got != 60 {
		t.Errorf("size = %d, want 60", got)
	}
}

func TestShapeDrop(t *testing.T) {
	s := Shape{2, 3, 4}
	if got := s.Drop(0); !reflect.DeepEqual(got, Shape{3, 4}) {
		t.Errorf("Drop(0) = %v", got)
	}
	if got := s.Drop(1); !reflect.DeepEqual(got, Shape{2, 4}) {
		t.Errorf("Drop(1) = %v", got)
	}
	if got := s.Drop(2); !reflect.DeepEqual(got, Shape{2, 3}) {
		t.Errorf("Drop(2) = %v", got)
	}
	if !reflect.DeepEqual(s, Shape{2, 3, 4}) {
		t.Errorf("Drop mutated receiver: %v", s)
	}
}

func TestShapeCloneIndependence(t *testing.T) {
	s := Shape{2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 2 {
		t.Errorf("Clone shares backing array")
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	s := Shape{3, 4, 5}
	seen := map[int]bool{}
	FullBox(s).Iter(func(x []int) {
		off := s.Flatten(x)
		if off < 0 || off >= s.Size() {
			t.Fatalf("Flatten(%v) = %d out of range", x, off)
		}
		if seen[off] {
			t.Fatalf("Flatten(%v) = %d already produced", x, off)
		}
		seen[off] = true
		back := s.Unflatten(off, nil)
		if !reflect.DeepEqual(back, x) {
			t.Fatalf("Unflatten(Flatten(%v)) = %v", x, back)
		}
	})
	if len(seen) != s.Size() {
		t.Fatalf("iterated %d cells, want %d", len(seen), s.Size())
	}
}

func TestFlattenRowMajorOrder(t *testing.T) {
	// The last dimension must vary fastest.
	s := Shape{2, 3}
	want := 0
	FullBox(s).Iter(func(x []int) {
		if got := s.Flatten(x); got != want {
			t.Fatalf("Flatten(%v) = %d, want %d", x, got, want)
		}
		want++
	})
}

func TestStridesMatchFlatten(t *testing.T) {
	s := Shape{4, 2, 6}
	st := s.Strides()
	FullBox(s).Iter(func(x []int) {
		manual := 0
		for i := range x {
			manual += x[i] * st[i]
		}
		if manual != s.Flatten(x) {
			t.Fatalf("strides disagree with Flatten at %v", x)
		}
	})
}

func TestFlattenPanics(t *testing.T) {
	s := Shape{2, 2}
	for _, x := range [][]int{{0}, {0, 2}, {-1, 0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Flatten(%v) did not panic", x)
				}
			}()
			s.Flatten(x)
		}()
	}
}

func TestShapeContains(t *testing.T) {
	s := Shape{2, 3}
	if !s.Contains([]int{1, 2}) {
		t.Error("Contains([1,2]) = false")
	}
	if s.Contains([]int{2, 0}) || s.Contains([]int{0, -1}) || s.Contains([]int{0}) {
		t.Error("Contains accepted out-of-bounds coordinate")
	}
}

func TestBoxValidate(t *testing.T) {
	s := Shape{4, 4}
	cases := []struct {
		name string
		box  Box
		ok   bool
	}{
		{"full", FullBox(s), true},
		{"point", NewBox([]int{1, 2}, []int{1, 2}), true},
		{"inverted", NewBox([]int{2, 0}, []int{1, 3}), false},
		{"out of range hi", NewBox([]int{0, 0}, []int{0, 4}), false},
		{"negative lo", NewBox([]int{-1, 0}, []int{0, 0}), false},
		{"wrong arity", NewBox([]int{0}, []int{0}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.box.Validate(s)
			if (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestBoxSizeAndIterAgree(t *testing.T) {
	b := NewBox([]int{1, 0, 2}, []int{2, 1, 4})
	count := 0
	b.Iter(func(x []int) {
		if !b.Contains(x) {
			t.Fatalf("Iter produced %v outside box", x)
		}
		count++
	})
	if count != b.Size() {
		t.Fatalf("Iter visited %d cells, Size() = %d", count, b.Size())
	}
}

func TestBoxCloneIndependence(t *testing.T) {
	b := NewBox([]int{1, 2}, []int{3, 4})
	c := b.Clone()
	c.Lo[0] = 99
	if b.Lo[0] != 1 {
		t.Error("Clone shares Lo backing array")
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox([]int{1, 2}, []int{3, 4})
	if got := b.String(); got != "{[1..3], [2..4]}" {
		t.Errorf("String() = %q", got)
	}
}

func TestCrossProduct(t *testing.T) {
	var got [][]int
	CrossProduct([][]int{{1, 2}, {10, 20, 30}}, func(combo []int) {
		c := make([]int, len(combo))
		copy(c, combo)
		got = append(got, c)
	})
	want := [][]int{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CrossProduct = %v, want %v", got, want)
	}
}

func TestCrossProductEmptySetProducesNothing(t *testing.T) {
	called := false
	CrossProduct([][]int{{1}, {}}, func([]int) { called = true })
	if called {
		t.Error("CrossProduct with an empty set called fn")
	}
	CrossProduct(nil, func([]int) { called = true })
	if called {
		t.Error("CrossProduct with no sets called fn")
	}
}

// Property: Flatten is a bijection between coordinates and [0, Size).
func TestFlattenBijectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(a, b, c uint8) bool {
		s := Shape{int(a%5) + 1, int(b%5) + 1, int(c%5) + 1}
		x := []int{rng.Intn(s[0]), rng.Intn(s[1]), rng.Intn(s[2])}
		off := s.Flatten(x)
		back := s.Unflatten(off, nil)
		return reflect.DeepEqual(back, x) && off >= 0 && off < s.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: box size equals the number of coordinates Iter yields, for
// random valid boxes.
func TestBoxIterCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(3) + 1
		s := make(Shape, d)
		lo := make([]int, d)
		hi := make([]int, d)
		for i := range s {
			s[i] = r.Intn(6) + 1
			lo[i] = r.Intn(s[i])
			hi[i] = lo[i] + r.Intn(s[i]-lo[i])
		}
		b := NewBox(lo, hi)
		if err := b.Validate(s); err != nil {
			return false
		}
		n := 0
		b.Iter(func([]int) { n++ })
		return n == b.Size()
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
