// Package dims provides the dimension and index algebra shared by all
// array-based aggregation techniques in histcube: mixed-radix
// linearisation of multidimensional cell coordinates, iteration over
// hyper-rectangular boxes, and validation helpers.
//
// Every MOLAP structure in this repository (prefix-sum arrays, DDC
// arrays, eCubes, the append-only cube) stores a d-dimensional array in
// a single flat slice in row-major order; this package is the single
// source of truth for how coordinates map to flat offsets.
package dims

import (
	"errors"
	"fmt"
	"math"
)

// Shape describes the domain sizes of a d-dimensional array. Shape[i]
// is the number of distinct coordinate values in dimension i; all
// coordinates are dense integers in [0, Shape[i]).
type Shape []int

// ErrEmptyShape is returned when a Shape with zero dimensions is used
// where at least one dimension is required.
var ErrEmptyShape = errors.New("dims: shape must have at least one dimension")

// Validate returns an error if the shape has no dimensions or any
// non-positive domain size.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return ErrEmptyShape
	}
	for i, n := range s {
		if n <= 0 {
			return fmt.Errorf("dims: dimension %d has non-positive size %d", i, n)
		}
	}
	return nil
}

// Size returns the total number of cells, i.e. the product of all
// domain sizes. An empty shape has size 0.
func (s Shape) Size() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions.
func (s Shape) Dims() int { return len(s) }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Drop returns the shape with dimension i removed. It is used to
// obtain the geometry of a (d-1)-dimensional time slice from a
// d-dimensional cube whose dimension i is the TT-dimension.
func (s Shape) Drop(i int) Shape {
	c := make(Shape, 0, len(s)-1)
	c = append(c, s[:i]...)
	c = append(c, s[i+1:]...)
	return c
}

// Contains reports whether the coordinate vector x is inside the
// shape's bounds. It returns false when the arity differs.
func (s Shape) Contains(x []int) bool {
	if len(x) != len(s) {
		return false
	}
	for i, v := range x {
		if v < 0 || v >= s[i] {
			return false
		}
	}
	return true
}

// Strides returns the row-major strides of the shape: the flat offset
// of coordinate x is sum_i x[i]*strides[i], with the last dimension
// varying fastest.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Flatten converts the coordinate vector x to its row-major flat
// offset. It panics if x is out of bounds; use Contains first when the
// input is untrusted.
func (s Shape) Flatten(x []int) int {
	if len(x) != len(s) {
		panic(fmt.Sprintf("dims: coordinate arity %d does not match shape arity %d", len(x), len(s)))
	}
	off := 0
	for i, v := range x {
		if v < 0 || v >= s[i] {
			panic(fmt.Sprintf("dims: coordinate %d out of range [0,%d) in dimension %d", v, s[i], i))
		}
		off = off*s[i] + v
	}
	return off
}

// Unflatten converts a row-major flat offset back into a coordinate
// vector, writing into dst (which must have length len(s)) and
// returning it. If dst is nil a fresh vector is allocated.
func (s Shape) Unflatten(off int, dst []int) []int {
	if dst == nil {
		dst = make([]int, len(s))
	}
	if len(dst) != len(s) {
		panic("dims: dst arity does not match shape arity")
	}
	for i := len(s) - 1; i >= 0; i-- {
		dst[i] = off % s[i]
		off /= s[i]
	}
	return dst
}

// Box is a closed hyper-rectangle: it selects all coordinates x with
// Lo[i] <= x[i] <= Hi[i] in every dimension i, matching the paper's
// range-query semantics (boundaries included).
type Box struct {
	Lo, Hi []int
}

// NewBox copies lo and hi into a Box.
func NewBox(lo, hi []int) Box {
	b := Box{Lo: make([]int, len(lo)), Hi: make([]int, len(hi))}
	copy(b.Lo, lo)
	copy(b.Hi, hi)
	return b
}

// FullBox returns the box selecting the entire domain of shape s.
func FullBox(s Shape) Box {
	b := Box{Lo: make([]int, len(s)), Hi: make([]int, len(s))}
	for i, n := range s {
		b.Hi[i] = n - 1
	}
	return b
}

// Validate checks that the box has the same arity as the shape, lies
// within bounds and is non-inverted in every dimension.
func (b Box) Validate(s Shape) error {
	if len(b.Lo) != len(s) || len(b.Hi) != len(s) {
		return fmt.Errorf("dims: box arity (%d,%d) does not match shape arity %d", len(b.Lo), len(b.Hi), len(s))
	}
	for i := range s {
		if b.Lo[i] < 0 || b.Hi[i] >= s[i] {
			return fmt.Errorf("dims: box [%d,%d] out of domain [0,%d) in dimension %d", b.Lo[i], b.Hi[i], s[i], i)
		}
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("dims: box inverted in dimension %d: lo %d > hi %d", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Size returns the number of cells the box selects.
func (b Box) Size() int {
	n := 1
	for i := range b.Lo {
		n *= b.Hi[i] - b.Lo[i] + 1
	}
	return n
}

// Contains reports whether coordinate x lies inside the box.
func (b Box) Contains(x []int) bool {
	if len(x) != len(b.Lo) {
		return false
	}
	for i, v := range x {
		if v < b.Lo[i] || v > b.Hi[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the box.
func (b Box) Clone() Box { return NewBox(b.Lo, b.Hi) }

// String renders the box as [lo..hi] per dimension.
func (b Box) String() string {
	out := "{"
	for i := range b.Lo {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("[%d..%d]", b.Lo[i], b.Hi[i])
	}
	return out + "}"
}

// Iter calls fn with every coordinate vector inside the box, in
// row-major order. The slice passed to fn is reused between calls; fn
// must copy it if it needs to retain it.
func (b Box) Iter(fn func(x []int)) {
	d := len(b.Lo)
	if d == 0 {
		return
	}
	x := make([]int, d)
	copy(x, b.Lo)
	for {
		fn(x)
		i := d - 1
		for i >= 0 {
			x[i]++
			if x[i] <= b.Hi[i] {
				break
			}
			x[i] = b.Lo[i]
			i--
		}
		if i < 0 {
			return
		}
	}
}

// CrossProduct enumerates the cross product of per-dimension index
// sets, calling fn with each combination. The combination slice is
// reused between calls. It is the combination step of Section 3.1 of
// the paper: per-dimension pre-aggregation index sets are combined by
// generating the cross product over all result sets.
func CrossProduct(sets [][]int, fn func(combo []int)) {
	d := len(sets)
	if d == 0 {
		return
	}
	for _, s := range sets {
		if len(s) == 0 {
			return
		}
	}
	idx := make([]int, d)
	combo := make([]int, d)
	for {
		for i := range combo {
			combo[i] = sets[i][idx[i]]
		}
		fn(combo)
		i := d - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(sets[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// ToCoord narrows an int64 (the type coordinates travel as on the
// wire, in WAL records and in workload streams) to an in-memory cell
// coordinate. Coordinates are bounded to int32 range — every real
// dimension is far smaller — so the explicit check keeps a plain
// int(...) conversion from silently truncating, and possibly wrapping
// back into the valid domain, on 32-bit platforms.
func ToCoord(v int64) (int, bool) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, false
	}
	return int(v), true
}
