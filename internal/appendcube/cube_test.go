package appendcube

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/pager"
)

// shadowPoint is one applied update in the naive reference.
type shadowPoint struct {
	t int64
	x []int
	v float64
}

type shadow struct {
	points []shadowPoint
	shape  dims.Shape
}

func (s *shadow) add(t int64, x []int, v float64) {
	cx := append([]int(nil), x...)
	s.points = append(s.points, shadowPoint{t: t, x: cx, v: v})
}

func (s *shadow) query(tLo, tHi int64, b dims.Box) float64 {
	total := 0.0
	for _, p := range s.points {
		if p.t < tLo || p.t > tHi {
			continue
		}
		if b.Contains(p.x) {
			total += p.v
		}
	}
	return total
}

func randBox(r *rand.Rand, s dims.Shape) dims.Box {
	lo := make([]int, len(s))
	hi := make([]int, len(s))
	for i, n := range s {
		lo[i] = r.Intn(n)
		hi[i] = lo[i] + r.Intn(n-lo[i])
	}
	return dims.Box{Lo: lo, Hi: hi}
}

func newDiskCube(t testing.TB, shape dims.Shape, pageSize int) *Cube {
	t.Helper()
	pg, err := pager.New(pager.NewMemBackend(pageSize), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{SliceShape: shape, Store: NewDiskStore(shape.Size(), pg)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEmptyCubeQueriesZero(t *testing.T) {
	c, err := New(Config{SliceShape: dims.Shape{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(0, 100, dims.FullBox(c.SliceShape()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty cube query = %v", got)
	}
	if c.NumSlices() != 0 || c.Incomplete() != 0 {
		t.Error("empty cube state wrong")
	}
}

func TestRejectsBadConfigAndArgs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with empty shape succeeded")
	}
	c, _ := New(Config{SliceShape: dims.Shape{4}})
	if _, err := c.Update(1, []int{4}, 1); err == nil {
		t.Error("out-of-shape update accepted")
	}
	if _, err := c.Query(5, 2, dims.FullBox(c.SliceShape())); err == nil {
		t.Error("inverted time range accepted")
	}
	if _, err := c.Query(0, 1, dims.NewBox([]int{0}, []int{9})); err == nil {
		t.Error("out-of-range box accepted")
	}
	if _, err := c.SliceQuery(0, dims.FullBox(c.SliceShape())); err == nil {
		t.Error("slice query on empty cube accepted")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	c, _ := New(Config{SliceShape: dims.Shape{4}})
	if _, err := c.Update(10, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	_, err := c.Update(9, []int{1}, 1)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("past-time update error = %v, want ErrOutOfOrder", err)
	}
	// Equal time is fine (same slice).
	if _, err := c.Update(10, []int{2}, 1); err != nil {
		t.Errorf("same-time update rejected: %v", err)
	}
}

func TestPaperSection22Scenario(t *testing.T) {
	// The two-dimensional time x location walkthrough of Section 2.2:
	// a range query [2..4] in time is answered as the prefix query at
	// the greatest occurring time <= 4 minus the prefix at the
	// greatest occurring time <= 1.
	c, _ := New(Config{SliceShape: dims.Shape{8}})
	updates := []struct {
		t   int64
		loc int
		v   float64
	}{
		{1, 3, 3}, {1, 5, 4}, {3, 4, 2}, {3, 3, 1}, {4, 5, 3},
	}
	sh := &shadow{shape: dims.Shape{8}}
	for _, u := range updates {
		if _, err := c.Update(u.t, []int{u.loc}, u.v); err != nil {
			t.Fatal(err)
		}
		sh.add(u.t, []int{u.loc}, u.v)
	}
	box := dims.NewBox([]int{3}, []int{5})
	got, err := c.Query(2, 4, box)
	if err != nil {
		t.Fatal(err)
	}
	if want := sh.query(2, 4, box); got != want {
		t.Fatalf("query = %v, want %v", got, want)
	}
	// Prefix time query semantics: t between occurring times uses the
	// greatest occurring time below it.
	p2, err := c.PrefixTimeQuery(2, box)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.PrefixTimeQuery(1, box)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Errorf("prefix at non-occurring time 2 = %v, want prefix at 1 = %v", p2, p1)
	}
	// Prefix before all data is zero.
	p0, _ := c.PrefixTimeQuery(0, box)
	if p0 != 0 {
		t.Errorf("prefix before first time = %v", p0)
	}
}

func TestQueriesMatchShadowMemory(t *testing.T) {
	testQueriesMatchShadow(t, func(shape dims.Shape) *Cube {
		c, err := New(Config{SliceShape: shape})
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestQueriesMatchShadowMemoryNoConversion(t *testing.T) {
	testQueriesMatchShadow(t, func(shape dims.Shape) *Cube {
		c, err := New(Config{SliceShape: shape, DisableConversion: true})
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestQueriesMatchShadowMemoryNoCopyAhead(t *testing.T) {
	testQueriesMatchShadow(t, func(shape dims.Shape) *Cube {
		c, err := New(Config{SliceShape: shape, CopyAheadThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestQueriesMatchShadowDisk(t *testing.T) {
	testQueriesMatchShadow(t, func(shape dims.Shape) *Cube {
		return newDiskCube(t, shape, 64) // 16 cells/page: forces page churn
	})
}

func testQueriesMatchShadow(t *testing.T, mk func(dims.Shape) *Cube) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	shape := dims.Shape{7, 5}
	c := mk(shape)
	sh := &shadow{shape: shape}
	now := int64(0)
	for i := 0; i < 400; i++ {
		if r.Intn(3) == 0 {
			now += int64(r.Intn(3) + 1)
		}
		x := []int{r.Intn(shape[0]), r.Intn(shape[1])}
		v := float64(r.Intn(9) - 4)
		if _, err := c.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		sh.add(now, x, v)
		if i%7 == 0 {
			b := randBox(r, shape)
			tLo := int64(r.Intn(int(now) + 2))
			tHi := tLo + int64(r.Intn(int(now)+2))
			got, err := c.Query(tLo, tHi, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := sh.query(tLo, tHi, b); got != want {
				t.Fatalf("op %d: query [%d,%d] %v = %v, want %v", i, tLo, tHi, b, got, want)
			}
		}
	}
	// Repeat a batch of queries after the stream ends (exercises
	// historic-slice conversion on settled data).
	for q := 0; q < 200; q++ {
		b := randBox(r, shape)
		tLo := int64(r.Intn(int(now) + 2))
		tHi := tLo + int64(r.Intn(int(now)+2))
		got, err := c.Query(tLo, tHi, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tLo, tHi, b); got != want {
			t.Fatalf("post query %d: [%d,%d] %v = %v, want %v", q, tLo, tHi, b, got, want)
		}
	}
}

func TestIncompleteTracking(t *testing.T) {
	// With copy-ahead disabled, incomplete slices accumulate; the
	// tracked count must match a brute-force recount, and
	// ForceComplete must clear it.
	r := rand.New(rand.NewSource(9))
	shape := dims.Shape{6, 6}
	c, _ := New(Config{SliceShape: shape, CopyAheadThreshold: -1})
	for i := 0; i < 200; i++ {
		tv := int64(i / 4)
		x := []int{r.Intn(6), r.Intn(6)}
		res, err := c.Update(tv, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: a historic slice s is incomplete iff some cache
		// cell has ts <= s.
		minTS := int32(1 << 30)
		for _, cell := range c.cache {
			if cell.ts < minTS {
				minTS = cell.ts
			}
		}
		want := c.dir.Len() - 1 - int(minTS)
		if want < 0 {
			want = 0
		}
		if res.Incomplete != want || c.Incomplete() != want {
			t.Fatalf("op %d: Incomplete = %d/%d, brute force %d", i, res.Incomplete, c.Incomplete(), want)
		}
	}
	if err := c.ForceComplete(); err != nil {
		t.Fatal(err)
	}
	if c.Incomplete() != 0 {
		t.Errorf("Incomplete after ForceComplete = %d", c.Incomplete())
	}
	// Every historic cell must now be materialised.
	ms := c.store.(*MemStore)
	for s := 0; s < c.NumSlices()-1; s++ {
		for off := range ms.flags[s] {
			if Flag(ms.flags[s][off]) == Unmaterialized {
				t.Fatalf("slice %d cell %d unmaterialised after ForceComplete", s, off)
			}
		}
	}
}

func TestLazyCopyInvariant(t *testing.T) {
	// Invariant of Section 3.3: whenever a cache cell's timestamp is
	// > s, slice s holds a materialised value for that cell.
	r := rand.New(rand.NewSource(10))
	shape := dims.Shape{5, 4}
	c, _ := New(Config{SliceShape: shape, CopyAheadThreshold: 6})
	now := int64(0)
	for i := 0; i < 300; i++ {
		if r.Intn(4) == 0 {
			now++
		}
		if _, err := c.Update(now, []int{r.Intn(5), r.Intn(4)}, 1); err != nil {
			t.Fatal(err)
		}
		ms := c.store.(*MemStore)
		for off, cell := range c.cache {
			for s := 0; s < int(cell.ts); s++ {
				if Flag(ms.flags[s][off]) == Unmaterialized {
					t.Fatalf("op %d: cache ts %d but slice %d cell %d unmaterialised", i, cell.ts, s, off)
				}
			}
		}
	}
}

func TestUpdateCostBounds(t *testing.T) {
	shape := dims.Shape{32, 32}
	c, _ := New(Config{SliceShape: shape})
	bound := (ddc.MaxChainLen(32) + 1) * (ddc.MaxChainLen(32) + 1)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		res, err := c.Update(int64(i/10), []int{r.Intn(32), r.Intn(32)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheCells > bound {
			t.Fatalf("update touched %d cache cells, bound %d", res.CacheCells, bound)
		}
		if res.Cost() != res.CacheCells+res.ForcedCopies+res.CopyAhead {
			t.Error("Cost() inconsistent")
		}
		if res.CostNoCopy() != res.CacheCells {
			t.Error("CostNoCopy() inconsistent")
		}
	}
}

func TestCopyAheadBoundsIncomplete(t *testing.T) {
	// With the default threshold and a workload of several updates per
	// slice, the number of incomplete historic instances must stay
	// small (the paper's Table 4 observes 0-2 for the weather sets).
	r := rand.New(rand.NewSource(12))
	shape := dims.Shape{16, 16}
	c, _ := New(Config{SliceShape: shape})
	maxInc := 0
	for i := 0; i < 4000; i++ {
		tv := int64(i / 40) // 40 updates per slice; density 40/256
		res, err := c.Update(tv, []int{r.Intn(16), r.Intn(16)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete > maxInc {
			maxInc = res.Incomplete
		}
	}
	if maxInc > 4 {
		t.Errorf("max incomplete instances = %d, want small (paper: 0-2)", maxInc)
	}
}

func TestDiskCopyAheadOnePagePerUpdate(t *testing.T) {
	// The paper's disk experiment: one page access per update is
	// enough to keep at most one historic instance incomplete.
	r := rand.New(rand.NewSource(13))
	shape := dims.Shape{16, 16} // 256 cells; page of 64 bytes = 16 cells
	c := newDiskCube(t, shape, 64)
	for i := 0; i < 3000; i++ {
		tv := int64(i / 30)
		res, err := c.Update(tv, []int{r.Intn(16), r.Intn(16)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete > 1 {
			t.Fatalf("op %d: %d incomplete instances on disk, want <= 1", i, res.Incomplete)
		}
	}
}

func TestQueryCostIndependentOfHistoryLength(t *testing.T) {
	// The framework's headline property: querying a fixed-width time
	// range must not get more expensive as history grows.
	shape := dims.Shape{16, 16}
	c, _ := New(Config{SliceShape: shape})
	r := rand.New(rand.NewSource(14))
	box := dims.NewBox([]int{2, 3}, []int{10, 12})
	var early, late int64
	for epoch := 0; epoch < 2; epoch++ {
		slices := 50
		for i := 0; i < slices*20; i++ {
			tv := int64(epoch*1000 + i/20)
			if _, err := c.Update(tv, []int{r.Intn(16), r.Intn(16)}, 1); err != nil {
				t.Fatal(err)
			}
		}
		before := c.Accesses()
		for q := 0; q < 20; q++ {
			tv := int64(epoch * 1000)
			if _, err := c.Query(tv+5, tv+25, box); err != nil {
				t.Fatal(err)
			}
		}
		cost := c.Accesses() - before
		if epoch == 0 {
			early = cost
		} else {
			late = cost
		}
	}
	if late > early*3 {
		t.Errorf("query cost grew with history: early %d, late %d", early, late)
	}
}

func TestConversionSpeedsUpRepeatQueries(t *testing.T) {
	shape := dims.Shape{32, 32}
	c, _ := New(Config{SliceShape: shape})
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 2000; i++ {
		if _, err := c.Update(int64(i/100), []int{r.Intn(32), r.Intn(32)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	box := dims.NewBox([]int{4, 4}, []int{20, 25})
	before := c.Accesses()
	if _, err := c.Query(3, 12, box); err != nil {
		t.Fatal(err)
	}
	first := c.Accesses() - before
	before = c.Accesses()
	if _, err := c.Query(3, 12, box); err != nil {
		t.Fatal(err)
	}
	second := c.Accesses() - before
	if second > first {
		t.Errorf("repeat query cost %d > first %d; conversion not helping", second, first)
	}
	// Fully converted prefix corners cost at most 2 loads per corner:
	// 2^(d-1) per prefix, two prefixes, d-1=2 dims -> <= 8... plus the
	// unmaterialised fallbacks (2 accesses each): allow 2x slack.
	if second > 16 {
		t.Errorf("converged query cost %d, want <= 16", second)
	}
}

// Property: random streams with random slice shapes, stores and
// thresholds always match the naive shadow.
func TestShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(6) + 1, r.Intn(6) + 1}
		var c *Cube
		var err error
		switch r.Intn(3) {
		case 0:
			c, err = New(Config{SliceShape: shape, CopyAheadThreshold: r.Intn(20) - 5})
		case 1:
			c, err = New(Config{SliceShape: shape, DisableConversion: true})
		default:
			pg, perr := pager.New(pager.NewMemBackend(32), 32)
			if perr != nil {
				return false
			}
			c, err = New(Config{SliceShape: shape, Store: NewDiskStore(shape.Size(), pg)})
		}
		if err != nil {
			return false
		}
		sh := &shadow{shape: shape}
		now := int64(0)
		for i := 0; i < 120; i++ {
			if r.Intn(3) == 0 {
				now += int64(r.Intn(2) + 1)
			}
			x := []int{r.Intn(shape[0]), r.Intn(shape[1])}
			v := float64(r.Intn(7) - 3)
			if _, err := c.Update(now, x, v); err != nil {
				return false
			}
			sh.add(now, x, v)
			if i%5 == 0 {
				b := randBox(r, shape)
				tLo := int64(r.Intn(int(now) + 2))
				tHi := tLo + int64(r.Intn(int(now)+2))
				got, err := c.Query(tLo, tHi, b)
				if err != nil {
					return false
				}
				if got != sh.query(tLo, tHi, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: 3-d slices (4-d cubes) match the shadow too.
func TestShadowProperty3D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1}
		c, err := New(Config{SliceShape: shape})
		if err != nil {
			return false
		}
		sh := &shadow{shape: shape}
		now := int64(0)
		for i := 0; i < 80; i++ {
			if r.Intn(4) == 0 {
				now++
			}
			x := []int{r.Intn(shape[0]), r.Intn(shape[1]), r.Intn(shape[2])}
			v := float64(r.Intn(5))
			if _, err := c.Update(now, x, v); err != nil {
				return false
			}
			sh.add(now, x, v)
			if i%6 == 0 {
				b := randBox(r, shape)
				tLo := int64(r.Intn(int(now) + 2))
				tHi := tLo + int64(r.Intn(int(now)+2))
				got, err := c.Query(tLo, tHi, b)
				if err != nil || got != sh.query(tLo, tHi, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDefaultThresholdPositive(t *testing.T) {
	for _, shape := range []dims.Shape{{2}, {16, 16}, {180, 360, 9}} {
		if got := DefaultThreshold(shape); got <= 0 {
			t.Errorf("DefaultThreshold(%v) = %d", shape, got)
		}
	}
}

func TestQueryAtInt64Extremes(t *testing.T) {
	c, _ := New(Config{SliceShape: dims.Shape{4}})
	if _, err := c.Update(0, []int{1}, 5); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(math.MinInt64, math.MaxInt64, dims.FullBox(c.SliceShape()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("extreme-range query = %v, want 5 (timeLo-1 must not wrap)", got)
	}
}
