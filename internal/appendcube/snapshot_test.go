package appendcube

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"histcube/internal/dims"
	"histcube/internal/pager"
)

func TestSnapshotRoundTripMidStream(t *testing.T) {
	shape := dims.Shape{9, 7}
	c, err := New(Config{SliceShape: shape})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(81))
	sh := &shadow{shape: shape}
	now := int64(0)
	apply := func(cube *Cube, record bool, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				now++
			}
			x := []int{r.Intn(9), r.Intn(7)}
			v := float64(r.Intn(9) - 4)
			if _, err := cube.Update(now, x, v); err != nil {
				t.Fatal(err)
			}
			if record {
				sh.add(now, x, v)
			}
		}
	}
	apply(c, true, 250)
	// Convert some historic cells before snapshotting, so PS flags
	// round-trip too.
	for q := 0; q < 30; q++ {
		b := randBox(r, shape)
		if _, err := c.Query(int64(r.Intn(int(now))), now, b); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSlices() != c.NumSlices() || back.Incomplete() != c.Incomplete() {
		t.Fatalf("state mismatch: slices %d/%d incomplete %d/%d",
			back.NumSlices(), c.NumSlices(), back.Incomplete(), c.Incomplete())
	}
	// Continue the same stream on both; they must stay identical.
	r2 := rand.New(rand.NewSource(82))
	for i := 0; i < 200; i++ {
		if r2.Intn(3) == 0 {
			now++
		}
		x := []int{r2.Intn(9), r2.Intn(7)}
		v := float64(r2.Intn(9) - 4)
		if _, err := c.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		if _, err := back.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		sh.add(now, x, v)
	}
	for q := 0; q < 120; q++ {
		b := randBox(r, shape)
		tLo := int64(r.Intn(int(now) + 2))
		tHi := tLo + int64(r.Intn(int(now)+2))
		want := sh.query(tLo, tHi, b)
		g1, err1 := c.Query(tLo, tHi, b)
		g2, err2 := back.Query(tLo, tHi, b)
		if err1 != nil || err2 != nil || g1 != want || g2 != want {
			t.Fatalf("q%d [%d,%d] %v: orig %v restored %v want %v", q, tLo, tHi, b, g1, g2, want)
		}
	}
}

func TestSnapshotEmptyCube(t *testing.T) {
	c, _ := New(Config{SliceShape: dims.Shape{4}})
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSlices() != 0 {
		t.Errorf("restored empty cube has %d slices", back.NumSlices())
	}
	if _, err := back.Update(1, []int{0}, 1); err != nil {
		t.Errorf("restored empty cube rejects updates: %v", err)
	}
}

func TestSnapshotDiskUnsupported(t *testing.T) {
	pg, _ := pager.New(pager.NewMemBackend(64), 64)
	c, _ := New(Config{SliceShape: dims.Shape{4}, Store: NewDiskStore(4, pg)})
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage accepted")
	}
}
