package appendcube

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"histcube/internal/dims"
)

// ErrSnapshotUnsupported reports a snapshot of a cube whose historic
// store is not the in-memory store (disk-backed cubes already persist
// through their pager file).
var ErrSnapshotUnsupported = errors.New("appendcube: snapshots support memory-backed cubes only")

// snapshot is the serialised cube state. All cost counters restart at
// zero on restore; they are measurements, not state.
type snapshot struct {
	Version    int
	Shape      []int
	Times      []int64
	CacheVals  []float64
	CacheTS    []int32
	SliceVals  [][]float64
	SliceFlags [][]uint8

	Threshold    int
	Adaptive     bool
	TotalUpdates int
	SliceUpds    int
	EstPerSlice  float64
	Cursor       int
	Convert      bool
}

const snapshotVersion = 1

// WriteSnapshot serialises the cube (gob encoding). Only memory-backed
// cubes are supported.
func (c *Cube) WriteSnapshot(w io.Writer) error {
	return c.EncodeSnapshot(gob.NewEncoder(w))
}

// EncodeSnapshot writes the cube into an existing gob stream, so a
// caller can frame it with its own metadata (gob decoders read ahead,
// so one stream must use one encoder/decoder pair end to end).
func (c *Cube) EncodeSnapshot(enc *gob.Encoder) error {
	ms, ok := c.store.(*MemStore)
	if !ok {
		return ErrSnapshotUnsupported
	}
	s := snapshot{
		Version:      snapshotVersion,
		Shape:        c.shape,
		Times:        c.dir.Times(),
		CacheVals:    make([]float64, len(c.cache)),
		CacheTS:      make([]int32, len(c.cache)),
		SliceVals:    ms.vals,
		SliceFlags:   ms.flags,
		Threshold:    c.threshold,
		Adaptive:     c.adaptive,
		TotalUpdates: c.totalUpdates,
		SliceUpds:    c.sliceUpds,
		EstPerSlice:  c.estPerSlice,
		Cursor:       c.z,
		Convert:      c.convert,
	}
	for i, cell := range c.cache {
		s.CacheVals[i] = cell.val
		s.CacheTS[i] = cell.ts
	}
	return enc.Encode(&s)
}

// ReadSnapshot deserialises a cube written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Cube, error) {
	return DecodeSnapshot(gob.NewDecoder(r))
}

// DecodeSnapshot reads a cube from an existing gob stream (the
// counterpart of EncodeSnapshot).
func DecodeSnapshot(dec *gob.Decoder) (*Cube, error) {
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("appendcube: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("appendcube: snapshot version %d not supported (want %d)", s.Version, snapshotVersion)
	}
	shape := dims.Shape(s.Shape)
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("appendcube: snapshot shape: %w", err)
	}
	size := shape.Size()
	if len(s.CacheVals) != size || len(s.CacheTS) != size {
		return nil, fmt.Errorf("appendcube: snapshot cache length %d does not match shape size %d", len(s.CacheVals), size)
	}
	if len(s.SliceVals) != len(s.Times) || len(s.SliceFlags) != len(s.Times) {
		return nil, fmt.Errorf("appendcube: snapshot has %d slices for %d times", len(s.SliceVals), len(s.Times))
	}
	for i := range s.SliceVals {
		if len(s.SliceVals[i]) != size || len(s.SliceFlags[i]) != size {
			return nil, fmt.Errorf("appendcube: snapshot slice %d has wrong size", i)
		}
	}
	threshold := s.Threshold
	if s.Adaptive {
		threshold = 0
	} else if threshold == 0 {
		threshold = -1
	}
	c, err := New(Config{SliceShape: shape, CopyAheadThreshold: threshold, DisableConversion: !s.Convert})
	if err != nil {
		return nil, err
	}
	ms := c.store.(*MemStore)
	ms.vals = s.SliceVals
	ms.flags = s.SliceFlags
	// Rebuild the time directory; Append rejects non-increasing times,
	// so a corrupted snapshot fails here instead of corrupting lookups.
	for _, t := range s.Times {
		if _, err := c.dir.Append(t); err != nil {
			return nil, fmt.Errorf("appendcube: snapshot times: %w", err)
		}
	}
	c.totalUpdates = s.TotalUpdates
	c.sliceUpds = s.SliceUpds
	c.estPerSlice = s.EstPerSlice
	c.z = s.Cursor
	// Rebuild cache and the incomplete-tracking state (slot 0 exists
	// even before the first slice: fresh caches carry timestamp 0).
	n := len(s.Times)
	if n == 0 {
		n = 1
	}
	c.tsCount = make([]int, n)
	latest := len(s.Times) - 1
	for i := range c.cache {
		ts := s.CacheTS[i]
		if int(ts) > latest && latest >= 0 {
			return nil, fmt.Errorf("appendcube: snapshot cache timestamp %d beyond latest slice %d", ts, latest)
		}
		c.cache[i] = cacheCell{val: s.CacheVals[i], ts: ts}
		c.tsCount[ts]++
	}
	c.minTS = 0
	for c.minTS < latest && c.tsCount[c.minTS] == 0 {
		c.minTS++
	}
	return c, nil
}
