package appendcube

import (
	"errors"
	"testing"

	"histcube/internal/dims"
	"histcube/internal/pager"
)

// faultBackend fails every page operation after a fuse burns,
// simulating a dying disk.
type faultBackend struct {
	inner pager.Backend
	fuse  int
	err   error
}

func (f *faultBackend) tick() error {
	if f.fuse <= 0 {
		return f.err
	}
	f.fuse--
	return nil
}

func (f *faultBackend) Load(id int, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Load(id, buf)
}

func (f *faultBackend) Store(id int, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Store(id, buf)
}

func (f *faultBackend) Sync() error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultBackend) Close() error { return f.inner.Close() }

var errDiskDied = errors.New("simulated disk failure")

// TestDiskFaultsPropagate burns the fuse at several points of a
// disk-backed cube's life; the I/O error must surface from Update (or
// a later operation) rather than being swallowed.
func TestDiskFaultsPropagate(t *testing.T) {
	for _, fuse := range []int{0, 1, 3, 10, 40} {
		fb := &faultBackend{inner: pager.NewMemBackend(64), fuse: fuse, err: errDiskDied}
		pg, err := pager.New(fb, 64)
		if err != nil {
			t.Fatal(err)
		}
		shape := dims.Shape{8, 8}
		c, err := New(Config{SliceShape: shape, Store: NewDiskStore(shape.Size(), pg)})
		if err != nil {
			t.Fatal(err)
		}
		sawErr := false
		for i := 0; i < 200 && !sawErr; i++ {
			if _, err := c.Update(int64(i/10), []int{i % 8, (i / 8) % 8}, 1); err != nil {
				if !errors.Is(err, errDiskDied) {
					t.Fatalf("fuse %d: unexpected error %v", fuse, err)
				}
				sawErr = true
			}
		}
		if !sawErr {
			// Updates may have stayed within the page buffer; a query
			// or flush must surface the failure instead.
			if _, err := c.Query(0, 100, dims.FullBox(shape)); err == nil {
				if err := pg.Flush(); err == nil {
					t.Fatalf("fuse %d: no operation surfaced the disk failure", fuse)
				}
			}
		}
	}
}

// TestDiskFaultDuringForceComplete exercises the bulk-copy error path.
func TestDiskFaultDuringForceComplete(t *testing.T) {
	fb := &faultBackend{inner: pager.NewMemBackend(64), fuse: 1 << 30, err: errDiskDied}
	pg, err := pager.New(fb, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Two updates per 256-cell slice (16 pages): the one-page-per-update
	// sweep cannot keep up, so ForceComplete has real copying left.
	shape := dims.Shape{16, 16}
	c, err := New(Config{SliceShape: shape, Store: NewDiskStore(shape.Size(), pg)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Update(int64(i/2), []int{i % 16, (i / 16) % 16}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Incomplete() == 0 {
		t.Fatal("test setup: no incomplete slices to copy")
	}
	fb.fuse = 0 // disk dies now
	if err := c.ForceComplete(); !errors.Is(err, errDiskDied) {
		t.Errorf("ForceComplete err = %v, want the disk failure", err)
	}
}
