// Package appendcube implements the paper's headline data structure
// (Section 3): a d-dimensional append-only MOLAP cube maintained as a
// cache of the latest cumulative time slice (DDC-aggregated in the
// non-time dimensions, with per-cell timestamps) plus lazily
// materialised historic time slices that the eCube query algorithm
// gradually converts from DDC to PS form.
//
// The transaction-time dimension is handled by the framework reduction
// of Section 2: cumulative slices make any time range answerable from
// two slices, so query and update cost are independent of the length
// of the recorded history. Lazy copying with copy-ahead (Section 3.3)
// amortises the cost of snapshotting a slice over the updates that
// share it.
package appendcube

import (
	"context"
	"errors"
	"fmt"
	"math"

	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/directory"
	"histcube/internal/ecube"
	"histcube/internal/molap"
	"histcube/internal/pager"
	"histcube/internal/trace"
)

// ErrOutOfOrder reports an update whose time coordinate precedes the
// latest time slice. The append-only cube rejects such updates; the
// framework layer (internal/framework) buffers them in a general
// d-dimensional structure instead (Section 2.5).
var ErrOutOfOrder = errors.New("appendcube: update time precedes the latest time slice")

// ErrNoData reports a query against an empty cube.
var ErrNoData = errors.New("appendcube: cube holds no data")

// Config configures a Cube.
type Config struct {
	// SliceShape is the geometry of one time slice: the d-1 non-time
	// dimensions.
	SliceShape dims.Shape
	// Store holds the historic slices. Defaults to an in-memory store.
	Store SliceStore
	// CopyAheadThreshold is the per-update total work budget (cache
	// cells + forced copies + copy-ahead steps) for the in-memory
	// cell-wise copy-ahead of Section 3.3. Zero (the default) selects
	// the adaptive budget: roughly 2/θ copy steps per update, where θ
	// is the observed density (updates per slice / slice size) — the
	// paper's analysis shows 1/θ copies per update keep the cache
	// current, with the constant-bounded amortised overhead 1/θ_min.
	// A positive value fixes the budget instead; negative disables
	// copy-ahead entirely (lazy copies only), exposed for the ablation
	// benchmarks.
	CopyAheadThreshold int
	// CopyPages is the number of pages the page-wise copy-ahead of the
	// disk algorithm (Section 3.5) may write per update. Zero selects
	// the paper's setting of 1.
	CopyPages int
	// DisableConversion turns off the eCube DDC->PS conversion in
	// historic slices (ablation: plain DDC reads via the timestamp
	// rule).
	DisableConversion bool
}

// DefaultThreshold returns a fixed copy-ahead work budget for a slice
// shape: roughly twice a typical DDC update footprint. It is exported
// for the ablation benchmarks; the cube's default is the adaptive
// density-tracking budget (see Config.CopyAheadThreshold).
func DefaultThreshold(shape dims.Shape) int {
	t := 1
	for _, n := range shape {
		t *= (ddc.MaxChainLen(n)+3)/2 + 1
	}
	return t
}

// UpdateResult reports the cost breakdown of one update, in cell
// accesses (the in-memory metric). For disk-backed cubes the page I/O
// cost is available via the store's counters.
type UpdateResult struct {
	// NewSlice is true when the update opened a new time slice.
	NewSlice bool
	// CacheCells is the number of cache cells the DDC update touched —
	// the "ideal" cost if copies were free and instantaneous.
	CacheCells int
	// ForcedCopies is the number of cell values copied to historic
	// slices because the update overwrote them (step 3 of Fig. 8).
	ForcedCopies int
	// CopyAhead is the work done by the copy-ahead loop (step 4):
	// copies plus cursor advances.
	CopyAhead int
	// Incomplete is the number of historic slices not yet completely
	// copied after this update (the Table 4 measurement).
	Incomplete int
}

// Cost returns the total update cost including copy work.
func (r UpdateResult) Cost() int { return r.CacheCells + r.ForcedCopies + r.CopyAhead }

// CostNoCopy returns the update cost if copies were free — the ideal
// curve of Figures 12 and 13.
func (r UpdateResult) CostNoCopy() int { return r.CacheCells }

type cacheCell struct {
	val float64
	ts  int32 // index of the first slice this value is current for
}

// Cube is the append-only MOLAP cube.
type Cube struct {
	shape   dims.Shape
	strides []int
	store   SliceStore
	engine  *ecube.Engine

	cache []cacheCell
	// dir is the time directory of Section 2.3: occurring time values
	// mapped to dense slice indices, with O(1) latest and O(log n)
	// Floor lookups.
	dir *directory.Array

	// Copy-ahead state.
	threshold    int  // fixed budget; 0 with adaptive=true
	adaptive     bool // density-tracking budget (the default)
	totalUpdates int
	sliceUpds    int     // updates into the current slice
	estPerSlice  float64 // EWMA of updates per slice (0 until first close)
	copyPages    int
	z            int         // cell-wise cursor (Fig. 8's Z)
	pageCur      map[int]int // per-slice page cursor for the disk policy

	// Incomplete-slice tracking: tsCount[i] counts cache cells with
	// timestamp i; minTS is the smallest index with a non-zero count.
	tsCount []int
	minTS   int

	convert bool

	// CacheAccesses counts reads/writes of cache cells; historic-slice
	// accesses are counted by the store in its own unit.
	CacheAccesses int64

	// Cumulative lazy-copy progress across all updates (the live view
	// of Figures 12/13's copy work): forcedTotal counts step-3 forced
	// copies, aheadTotal counts step-4 copy-ahead work.
	forcedTotal int64
	aheadTotal  int64

	// scratch
	updateSets [][]int
}

// New returns an empty cube.
func New(cfg Config) (*Cube, error) {
	if err := cfg.SliceShape.Validate(); err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		store = NewMemStore(cfg.SliceShape.Size())
	}
	engine, err := ecube.NewEngine(cfg.SliceShape)
	if err != nil {
		return nil, err
	}
	threshold := cfg.CopyAheadThreshold
	adaptive := threshold == 0
	if adaptive {
		threshold = 0
	}
	copyPages := cfg.CopyPages
	if copyPages == 0 {
		copyPages = 1
	}
	size := cfg.SliceShape.Size()
	c := &Cube{
		shape:      cfg.SliceShape.Clone(),
		strides:    cfg.SliceShape.Strides(),
		store:      store,
		engine:     engine,
		cache:      make([]cacheCell, size),
		dir:        directory.NewArray(),
		threshold:  threshold,
		adaptive:   adaptive,
		copyPages:  copyPages,
		pageCur:    make(map[int]int),
		tsCount:    []int{size},
		minTS:      0,
		convert:    !cfg.DisableConversion && store.Flags(),
		updateSets: make([][]int, len(cfg.SliceShape)),
	}
	return c, nil
}

// SliceShape returns the slice geometry.
func (c *Cube) SliceShape() dims.Shape { return c.shape }

// Store returns the historic slice store.
func (c *Cube) Store() SliceStore { return c.store }

// Times returns the occurring time values in ascending order.
func (c *Cube) Times() []int64 { return c.dir.Times() }

// NumSlices returns the number of occurring time values.
func (c *Cube) NumSlices() int { return c.dir.Len() }

// Incomplete returns the number of historic slices that are not yet
// completely copied (Table 4's measurement): slices s with
// minTS <= s < latest.
func (c *Cube) Incomplete() int {
	latest := c.dir.Len() - 1
	if latest < 0 || c.minTS >= latest {
		return 0
	}
	return latest - c.minTS
}

func (c *Cube) moveTS(off int, to int32) {
	from := c.cache[off].ts
	c.tsCount[from]--
	c.tsCount[to]++
	c.cache[off].ts = to
	latest := c.dir.Len() - 1
	for c.minTS < latest && c.tsCount[c.minTS] == 0 {
		c.minTS++
	}
}

// Update applies update_D(X^d, delta): timeVal is the coordinate in
// the TT-dimension, x the coordinates in the remaining dimensions. It
// implements the complete algorithm of Fig. 8: forced lazy copies for
// overwritten cache cells, then copy-ahead within the work budget.
func (c *Cube) Update(timeVal int64, x []int, delta float64) (UpdateResult, error) {
	return c.UpdateCtx(context.Background(), timeVal, x, delta)
}

// UpdateCtx is Update with a context that bounds only the amortised
// background work: once the mutation itself (steps 1-3 of Fig. 8) has
// started it always completes — the op is already in the WAL, and
// aborting between log and apply would diverge the log from the state
// — but the copy-ahead loop of step 4 stops early when the context is
// done. Copy-ahead is pure amortisation: stopping it early never loses
// data, it only shifts copy work to later updates, so the early stop
// is silent (no error).
func (c *Cube) UpdateCtx(ctx context.Context, timeVal int64, x []int, delta float64) (UpdateResult, error) {
	var res UpdateResult
	if !c.shape.Contains(x) {
		return res, fmt.Errorf("appendcube: update coordinate %v outside slice shape %v", x, c.shape)
	}
	// Step 1: open a new time slice if needed. The directory's O(1)
	// latest pointer (Section 2.3) decides between "same slice" and
	// "new slice"; equal times share a slice, smaller ones are
	// out of order.
	_, lastT, hasSlices := c.dir.Latest()
	if !hasSlices || timeVal > lastT {
		if err := c.store.Reserve(c.dir.Len()); err != nil {
			return res, err
		}
		if hasSlices {
			// Fold the closing slice's update count into the density
			// estimate the adaptive copy-ahead budget tracks.
			//histlint:ignore nofloateq zero is the "no estimate yet" sentinel; the estimate itself is never exactly zero once seeded
			if c.estPerSlice == 0 {
				c.estPerSlice = float64(c.sliceUpds)
			} else {
				c.estPerSlice = 0.7*c.estPerSlice + 0.3*float64(c.sliceUpds)
			}
		}
		c.sliceUpds = 0
		if _, err := c.dir.Append(timeVal); err != nil {
			return res, fmt.Errorf("appendcube: registering time %d: %w", timeVal, err)
		}
		c.tsCount = append(c.tsCount, 0)
		res.NewSlice = true
	} else if timeVal < lastT {
		return res, fmt.Errorf("%w: got %d, latest is %d", ErrOutOfOrder, timeVal, lastT)
	}
	latest := int32(c.dir.Len() - 1)

	// Step 2: cells of cache affected by the DDC update.
	for d := range c.shape {
		c.updateSets[d] = ddc.DDC{}.UpdateCells(c.updateSets[d][:0], c.shape[d], x[d])
	}

	// Step 3: per affected cell, lazily copy the old version before
	// overwriting.
	var err error
	dims.CrossProduct(c.updateSets, func(combo []int) {
		if err != nil {
			return
		}
		off := 0
		for i, v := range combo {
			off += v * c.strides[i]
		}
		cell := &c.cache[off]
		c.CacheAccesses++
		res.CacheCells++
		if cell.ts < latest {
			for s := cell.ts; s < latest; s++ {
				if werr := c.store.Write(int(s), off, cell.val, DDCValue); werr != nil {
					err = werr
					return
				}
				res.ForcedCopies++
			}
			c.moveTS(off, latest)
		}
		cell.val += delta
	})
	if err != nil {
		return res, err
	}

	// Step 4: copy-ahead within the remaining budget.
	c.totalUpdates++
	c.sliceUpds++
	if _, disk := c.store.(*DiskStore); disk {
		res.CopyAhead, err = c.copyAheadPages(ctx)
	} else if budget := c.budget(); budget > 0 {
		res.CopyAhead, err = c.copyAheadCells(ctx, res.CacheCells+res.ForcedCopies, budget)
	}
	if err != nil {
		return res, err
	}
	c.forcedTotal += int64(res.ForcedCopies)
	c.aheadTotal += int64(res.CopyAhead)
	res.Incomplete = c.Incomplete()
	return res, nil
}

// CopyProgress returns the cumulative lazy-copy work across all
// updates: forced copies (step 3 of Fig. 8) and copy-ahead steps
// (step 4).
func (c *Cube) CopyProgress() (forced, ahead int64) {
	return c.forcedTotal, c.aheadTotal
}

// Conversions returns the cumulative number of historic cells the
// eCube query algorithm has converted from DDC to PS form.
func (c *Cube) Conversions() int64 { return c.engine.Converts() }

// CellsTouched returns the cumulative number of historic-slice cells
// the eCube query algorithm has loaded.
func (c *Cube) CellsTouched() int64 { return c.engine.Loads() }

// Demotions returns the number of slices aged to cold storage (0 for
// non-tiered stores).
func (c *Cube) Demotions() int64 {
	if ts, ok := c.store.(*TieredStore); ok {
		return ts.Demotions()
	}
	return 0
}

// budget returns the copy-ahead work budget for the current update:
// the fixed threshold, or the adaptive budget of about 2/θ steps,
// with θ the recent density (EWMA of updates per slice over the slice
// size). The paper's amortisation argument needs 1/θ copies per
// update; the factor 2 covers the cursor advances interleaved with
// copies, and the backlog term reacts to per-slice density variance
// (sparse stretches would otherwise let incomplete slices accumulate,
// the effect the paper's Table 4 discussion attributes to gauss3's
// clusters).
func (c *Cube) budget() int {
	if !c.adaptive {
		return c.threshold
	}
	est := c.estPerSlice
	if est < 1 {
		est = 1
	}
	base := float64(len(c.cache)) / est
	backlog := float64(c.Incomplete())
	return int((2+backlog)*base) + 8
}

// copyAheadDone reports whether the copy-ahead loop should stop
// because the request's context is done (done == nil, the Background
// case, short-circuits to one comparison). A done context stops the
// loop without error: copy-ahead is amortisation, not correctness, so
// a request running out of deadline simply leaves the remaining copy
// work to later updates.
func copyAheadDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// copyAheadCells is the in-memory policy of Fig. 8 step 4: while the
// operation's total cost is below the budget, copy the value of the
// cursor cell one slice ahead, or advance the cursor if the cell is
// current. Cursor advances count as work (one cache inspection).
func (c *Cube) copyAheadCells(ctx context.Context, used, budget int) (int, error) {
	latest := int32(c.dir.Len() - 1)
	done := ctx.Done()
	work := 0
	for used+work < budget && c.minTS < int(latest) {
		// Poll every 64 cell steps; each step is a handful of memory
		// accesses, so a finer poll would dominate the loop.
		if work&63 == 0 && copyAheadDone(done) {
			return work, nil
		}
		cell := &c.cache[c.z]
		c.CacheAccesses++
		work++
		if cell.ts < latest {
			if err := c.store.Write(int(cell.ts), c.z, cell.val, DDCValue); err != nil {
				return work, err
			}
			c.moveTS(c.z, cell.ts+1)
		} else {
			c.z++
			if c.z == len(c.cache) {
				c.z = 0
			}
		}
	}
	return work, nil
}

// copyAheadPages is the disk policy of Section 3.5: copy at most
// CopyPages pages of the oldest incomplete slice per update. One page
// write moves up to CellsPerPage cells (2048 for 8 KiB pages), which
// the paper found keeps at most one historic instance incomplete.
func (c *Cube) copyAheadPages(ctx context.Context) (int, error) {
	ds := c.store.(*DiskStore)
	latest := c.dir.Len() - 1
	done := ctx.Done()
	work := 0
	for page := 0; page < c.copyPages; page++ {
		s := c.minTS
		// Poll per page: one iteration moves up to a whole page of
		// cells (2048 at the default page size).
		if s >= latest || copyAheadDone(done) {
			return work, nil
		}
		per := ds.CellsPerPage()
		firstPage := (s * c.shape.Size()) / per
		p, ok := c.pageCur[s]
		if !ok {
			p = firstPage
		}
		lo, hi := ds.PageSpan(s, p)
		for off := lo; off < hi; off++ {
			cell := &c.cache[off]
			if int(cell.ts) == s {
				if err := ds.Write(s, off, cell.val, DDCValue); err != nil {
					return work, err
				}
				c.moveTS(off, cell.ts+1)
				work++
			}
		}
		p++
		lastPage := ((s+1)*c.shape.Size() - 1) / per
		if p > lastPage {
			delete(c.pageCur, s)
		} else {
			c.pageCur[s] = p
		}
	}
	return work, nil
}

// ForceComplete drains all pending copies, materialising every
// historic slice completely. Tests and the data-aging path use it.
func (c *Cube) ForceComplete() error {
	latest := int32(c.dir.Len() - 1)
	if latest < 0 {
		return nil
	}
	for off := range c.cache {
		cell := &c.cache[off]
		for s := cell.ts; s < latest; s++ {
			if err := c.store.Write(int(s), off, cell.val, DDCValue); err != nil {
				return err
			}
		}
		if cell.ts < latest {
			c.moveTS(off, latest)
		}
	}
	return nil
}

// sliceView adapts one historic slice to the eCube CellStore
// interface, applying the read rule of Section 3.3.
type sliceView struct {
	c *Cube
	s int
}

// Load implements ecube.CellStore.
func (v sliceView) Load(off int) (float64, bool) {
	c := v.c
	if c.store.Flags() {
		// Flagged store: one slice read answers materialised cells
		// (including PS conversions); unmaterialised cells fall back
		// to cache, which the lazy-copy invariant proves current.
		val, flag, _ := c.store.Read(v.s, off)
		if flag != Unmaterialized {
			return val, flag == PSValue
		}
		c.CacheAccesses++
		return c.cache[off].val, false
	}
	// Unflagged (disk) store: the paper's timestamp rule. One cache
	// access for the timestamp; the slice is consulted only when the
	// cache value is newer than the queried slice.
	c.CacheAccesses++
	cell := c.cache[off]
	if int(cell.ts) <= v.s {
		return cell.val, false
	}
	val, _, _ := c.store.Read(v.s, off)
	return val, false
}

// StorePS implements ecube.CellStore.
func (v sliceView) StorePS(off int, val float64) bool {
	if !v.c.convert {
		return false
	}
	ok, err := v.c.store.Convert(v.s, off, val)
	return ok && err == nil
}

// Query computes the aggregate over the closed time range
// [timeLo, timeHi] and the slice-dimension box: the framework
// reduction q_u - q_l over the two relevant cumulative slices.
func (c *Cube) Query(timeLo, timeHi int64, box dims.Box) (float64, error) {
	return c.QueryTraced(nil, timeLo, timeHi, box)
}

// QueryTraced is Query with per-request cost attribution: each of the
// (at most two) prefix time queries of the framework reduction becomes
// a histcube.prefix child span under sp, carrying the directory
// lookup result and the consulted instance's cost counters. A nil
// span records nothing and costs a few branches.
func (c *Cube) QueryTraced(sp *trace.Span, timeLo, timeHi int64, box dims.Box) (float64, error) {
	return c.QueryCtx(context.Background(), sp, timeLo, timeHi, box)
}

// QueryCtx is QueryTraced with cooperative cancellation: the eCube
// evaluations under it poll ctx and abandon the query (returning ctx's
// error) once it is done. Queries are read-mostly — the only state
// they write is the DDC->PS convergence, which the engine refuses to
// persist for abandoned evaluations — so cancelling one is always
// safe.
func (c *Cube) QueryCtx(ctx context.Context, sp *trace.Span, timeLo, timeHi int64, box dims.Box) (float64, error) {
	if err := box.Validate(c.shape); err != nil {
		return 0, err
	}
	if timeLo > timeHi {
		return 0, fmt.Errorf("appendcube: inverted time range [%d, %d]", timeLo, timeHi)
	}
	if c.dir.Len() == 0 {
		return 0, nil
	}
	qu, err := c.prefixTimeQuery(ctx, sp, timeHi, box)
	if err != nil {
		return 0, err
	}
	if timeLo == math.MinInt64 {
		// timeLo-1 would wrap around; nothing precedes the range.
		return qu, nil
	}
	ql, err := c.prefixTimeQuery(ctx, sp, timeLo-1, box)
	if err != nil {
		return 0, err
	}
	return qu - ql, nil
}

// PrefixTimeQuery answers the half-open range "all points with time
// coordinate <= t" restricted to the box — the prefix time query the
// framework reduces everything to.
func (c *Cube) PrefixTimeQuery(t int64, box dims.Box) (float64, error) {
	if err := box.Validate(c.shape); err != nil {
		return 0, err
	}
	return c.prefixTimeQuery(context.Background(), nil, t, box)
}

func (c *Cube) prefixTimeQuery(ctx context.Context, sp *trace.Span, t int64, box dims.Box) (float64, error) {
	ps := sp.StartChild("histcube.prefix")
	defer ps.End()
	ps.SetInt("t", t)
	// Directory lookup: greatest occurring time <= t.
	idx, ok := c.dir.Floor(t)
	if !ok {
		ps.SetStr("slice", "none")
		return 0, nil
	}
	ps.SetInt("slice", int64(idx))
	return c.sliceQuery(ctx, ps, idx, box)
}

// SliceQuery aggregates the box over the cumulative slice with index
// s. The latest slice is answered by the DDC algorithm on cache;
// historic slices by the eCube algorithm over the store.
func (c *Cube) SliceQuery(s int, box dims.Box) (float64, error) {
	return c.sliceQuery(context.Background(), nil, s, box)
}

// sliceQuery runs one instance query, attributing its cost to a
// histcube.slice_query child span when sp is non-nil: cells touched
// and conversions from the eCube engine, cache/store access deltas,
// and — for disk-backed stores — pager read/write deltas. The deltas
// are exact because the cube serialises all calls (the server's
// single-mutex contract).
func (c *Cube) sliceQuery(ctx context.Context, sp *trace.Span, s int, box dims.Box) (float64, error) {
	if s < 0 || s >= c.dir.Len() {
		return 0, fmt.Errorf("appendcube: slice index %d out of range [0, %d)", s, c.dir.Len())
	}
	if err := box.Validate(c.shape); err != nil {
		return 0, err
	}
	if s == c.dir.Len()-1 {
		if sp == nil {
			return c.cacheQuery(box), nil
		}
		qs := sp.StartChild("histcube.slice_query")
		qs.SetInt("slice", int64(s))
		qs.SetStr("form", "cache")
		qs.Add(trace.Instances, 1)
		cacheBefore := c.CacheAccesses
		v := c.cacheQuery(box)
		qs.Add(trace.CacheAccesses, c.CacheAccesses-cacheBefore)
		qs.End()
		return v, nil
	}
	if sp == nil {
		return c.engine.RangeCtx(ctx, nil, sliceView{c: c, s: s}, box)
	}
	qs := sp.StartChild("histcube.slice_query")
	qs.SetInt("slice", int64(s))
	qs.SetStr("form", "historic")
	qs.Add(trace.Instances, 1)
	cacheBefore := c.CacheAccesses
	storeBefore := c.store.Accesses()
	var readsBefore, writesBefore int64
	pg := storePager(c.store)
	if pg != nil {
		readsBefore, writesBefore = pg.Reads, pg.Writes
	}
	v, err := c.engine.RangeCtx(ctx, qs, sliceView{c: c, s: s}, box)
	qs.Add(trace.CacheAccesses, c.CacheAccesses-cacheBefore)
	qs.Add(trace.StoreAccesses, c.store.Accesses()-storeBefore)
	if pg != nil {
		qs.Add(trace.PagerReads, pg.Reads-readsBefore)
		qs.Add(trace.PagerWrites, pg.Writes-writesBefore)
	}
	qs.End()
	return v, err
}

// storePager unwraps the pager behind a disk-backed (or tiered) store,
// nil for pure in-memory stores.
func storePager(s SliceStore) *pager.Pager {
	switch st := s.(type) {
	case *DiskStore:
		return st.Pager()
	case *TieredStore:
		return storePager(st.Cold())
	default:
		return nil
	}
}

// cacheQuery runs the direct DDC range algorithm against the cache.
func (c *Cube) cacheQuery(box dims.Box) float64 {
	sets := make([][]molap.Term, len(c.shape))
	for d := range c.shape {
		sets[d] = ddc.DDC{}.QueryTerms(nil, c.shape[d], box.Lo[d], box.Hi[d])
	}
	idx := make([][]int, len(sets))
	for d, s := range sets {
		ii := make([]int, len(s))
		for i := range s {
			ii[i] = i
		}
		idx[d] = ii
	}
	total := 0.0
	dims.CrossProduct(idx, func(combo []int) {
		off := 0
		f := 1.0
		for d, i := range combo {
			t := sets[d][i]
			off += t.Index * c.strides[d]
			f *= t.Factor
		}
		total += f * c.cache[off].val
		c.CacheAccesses++
	})
	return total
}

// Accesses returns the combined access count: cache cell accesses plus
// the store's native accesses. For in-memory cubes both units are
// cells; for disk cubes use CacheAccesses and Store().Accesses()
// separately.
func (c *Cube) Accesses() int64 { return c.CacheAccesses + c.store.Accesses() }
