package appendcube

import (
	"fmt"

	"histcube/internal/pager"
)

// Flag describes the state of one cell of one historic time slice.
type Flag uint8

const (
	// Unmaterialized means the cell was never copied from cache: its
	// value for this slice is the cache value (the cache timestamp is
	// <= the slice index, by the lazy-copy invariant).
	Unmaterialized Flag = iota
	// DDCValue means the cell holds a DDC-aggregated cumulative value
	// copied from cache.
	DDCValue
	// PSValue means the cell was converted to a prefix-sum value by
	// the eCube query algorithm.
	PSValue
)

// SliceStore stores the historic time slices of an append-only cube.
// Slice indices are dense and reserved in increasing order. The store
// counts its accesses in its native cost unit: cells for the
// in-memory store, page I/Os for the disk store.
type SliceStore interface {
	// Flags reports whether the store keeps per-cell flags. A store
	// without flags cannot distinguish materialised from unmaterialised
	// cells, so the cube falls back to the paper's timestamp rule and
	// skips eCube conversion.
	Flags() bool
	// Reserve allocates (but does not fill) space for slice s. It is
	// called with s = 0, 1, 2, ... in order.
	Reserve(s int) error
	// Read returns the value and flag of cell off of slice s.
	Read(s, off int) (float64, Flag, error)
	// Write materialises cell off of slice s.
	Write(s, off int, v float64, f Flag) error
	// Convert stores a PS value for cell off of slice s, if the store
	// supports it. Conversion is free (not counted): the paper notes
	// the transformation adds no access overhead since only cells the
	// query already holds are rewritten.
	Convert(s, off int, v float64) (bool, error)
	// Accesses returns the cumulative counted accesses.
	Accesses() int64
	// NumSlices returns the number of reserved slices.
	NumSlices() int
}

// MemStore keeps historic slices in main memory, one value and one
// flag byte per cell. It is the store behind the paper's in-memory
// algorithm (Figures 8 and 9).
type MemStore struct {
	size     int
	vals     [][]float64
	flags    [][]uint8
	accesses int64
}

// NewMemStore returns an empty in-memory store for slices of the
// given cell count.
func NewMemStore(sliceSize int) *MemStore {
	return &MemStore{size: sliceSize}
}

// Flags implements SliceStore.
func (m *MemStore) Flags() bool { return true }

// Reserve implements SliceStore. The allocation itself is not counted:
// the paper's algorithm only marks the memory block as reserved.
func (m *MemStore) Reserve(s int) error {
	if s != len(m.vals) {
		return fmt.Errorf("appendcube: reserve slice %d out of order (have %d)", s, len(m.vals))
	}
	m.vals = append(m.vals, make([]float64, m.size))
	m.flags = append(m.flags, make([]uint8, m.size))
	return nil
}

// Read implements SliceStore.
func (m *MemStore) Read(s, off int) (float64, Flag, error) {
	m.accesses++
	return m.vals[s][off], Flag(m.flags[s][off]), nil
}

// Write implements SliceStore.
func (m *MemStore) Write(s, off int, v float64, f Flag) error {
	m.accesses++
	m.vals[s][off] = v
	m.flags[s][off] = uint8(f)
	return nil
}

// Convert implements SliceStore (free rewrite to a PS value).
func (m *MemStore) Convert(s, off int, v float64) (bool, error) {
	m.vals[s][off] = v
	m.flags[s][off] = uint8(PSValue)
	return true, nil
}

// Accesses implements SliceStore (unit: cells).
func (m *MemStore) Accesses() int64 { return m.accesses }

// NumSlices implements SliceStore.
func (m *MemStore) NumSlices() int { return len(m.vals) }

// DiskStore keeps historic slices on paged secondary storage
// (Section 3.5): 4-byte cells, slice-major layout, page-granular cost
// accounting through the pager's single-page buffer. It keeps no
// per-cell flags; the cube uses the timestamp rule for reads and the
// page-wise copy-ahead policy.
type DiskStore struct {
	size int
	pg   *pager.Pager
	n    int
}

// NewDiskStore returns a store over the given pager for slices of the
// given cell count.
func NewDiskStore(sliceSize int, pg *pager.Pager) *DiskStore {
	return &DiskStore{size: sliceSize, pg: pg}
}

// Flags implements SliceStore.
func (d *DiskStore) Flags() bool { return false }

// Reserve implements SliceStore: disk pages materialise on first
// write, so reserving is free (the paper likewise only reserves the
// address range).
func (d *DiskStore) Reserve(s int) error {
	if s != d.n {
		return fmt.Errorf("appendcube: reserve slice %d out of order (have %d)", s, d.n)
	}
	d.n++
	return nil
}

// Read implements SliceStore. The flag is always DDCValue: without
// flags the cube must only read cells the timestamp rule proves
// materialised, and the disk store never holds PS conversions.
func (d *DiskStore) Read(s, off int) (float64, Flag, error) {
	v, err := d.pg.ReadCell(s*d.size + off)
	return v, DDCValue, err
}

// Write implements SliceStore.
func (d *DiskStore) Write(s, off int, v float64, f Flag) error {
	return d.pg.WriteCell(s*d.size+off, v)
}

// Convert implements SliceStore: not supported on disk.
func (d *DiskStore) Convert(int, int, float64) (bool, error) { return false, nil }

// Accesses implements SliceStore (unit: page I/Os).
func (d *DiskStore) Accesses() int64 { return d.pg.IOs() }

// NumSlices implements SliceStore.
func (d *DiskStore) NumSlices() int { return d.n }

// Pager exposes the underlying pager (for flushing and I/O stats).
func (d *DiskStore) Pager() *pager.Pager { return d.pg }

// CellsPerPage returns the page capacity, which the page-wise
// copy-ahead policy copies per update.
func (d *DiskStore) CellsPerPage() int { return d.pg.CellsPerPage() }

// PageSpan returns the global cell index range [lo, hi) of page p
// clipped to slice s.
func (d *DiskStore) PageSpan(s, p int) (lo, hi int) {
	per := d.pg.CellsPerPage()
	base := s * d.size
	lo = p * per
	hi = lo + per
	if lo < base {
		lo = base
	}
	if hi > base+d.size {
		hi = base + d.size
	}
	return lo - base, hi - base
}
