package appendcube

import (
	"errors"
	"math/rand"
	"testing"

	"histcube/internal/dims"
	"histcube/internal/pager"
)

func newTieredCube(t testing.TB, shape dims.Shape) (*Cube, *TieredStore) {
	t.Helper()
	pg, err := pager.New(pager.NewMemBackend(64), 64)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTieredStore(shape.Size(), NewDiskStore(shape.Size(), pg))
	c, err := New(Config{SliceShape: shape, Store: ts})
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func TestAgeRequiresTieredStore(t *testing.T) {
	c, _ := New(Config{SliceShape: dims.Shape{4}})
	if _, err := c.Age(1); !errors.Is(err, ErrNotTiered) {
		t.Errorf("err = %v", err)
	}
}

func TestAgeMovesSlicesAndKeepsAnswersExact(t *testing.T) {
	shape := dims.Shape{6, 5}
	c, ts := newTieredCube(t, shape)
	r := rand.New(rand.NewSource(91))
	sh := &shadow{shape: shape}
	now := int64(0)
	for i := 0; i < 400; i++ {
		if r.Intn(4) == 0 {
			now++
		}
		x := []int{r.Intn(6), r.Intn(5)}
		v := float64(r.Intn(9) - 4)
		if _, err := c.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		sh.add(now, x, v)
	}
	half := c.NumSlices() / 2
	demoted, err := c.Age(half)
	if err != nil {
		t.Fatal(err)
	}
	if demoted != half {
		t.Fatalf("demoted %d, want %d", demoted, half)
	}
	if ts.Boundary() != half {
		t.Fatalf("boundary = %d", ts.Boundary())
	}
	// Hot storage for retired slices is freed.
	for s := 0; s < half; s++ {
		if ts.hot.vals[s] != nil {
			t.Fatalf("slice %d still resident after retirement", s)
		}
	}
	// Queries across the hot/cold boundary stay exact.
	for q := 0; q < 200; q++ {
		b := randBox(r, shape)
		tLo := int64(r.Intn(int(now) + 2))
		tHi := tLo + int64(r.Intn(int(now)+2))
		got, err := c.Query(tLo, tHi, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tLo, tHi, b); got != want {
			t.Fatalf("query [%d,%d] %v = %v, want %v", tLo, tHi, b, got, want)
		}
	}
	// Ingest continues after aging; queries still exact.
	for i := 0; i < 200; i++ {
		if r.Intn(4) == 0 {
			now++
		}
		x := []int{r.Intn(6), r.Intn(5)}
		v := float64(r.Intn(9) - 4)
		if _, err := c.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		sh.add(now, x, v)
	}
	for q := 0; q < 100; q++ {
		b := randBox(r, shape)
		tLo := int64(r.Intn(int(now) + 2))
		tHi := tLo + int64(r.Intn(int(now)+2))
		got, err := c.Query(tLo, tHi, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tLo, tHi, b); got != want {
			t.Fatalf("post-age query = %v, want %v", got, want)
		}
	}
}

func TestAgeNeverRetiresLatest(t *testing.T) {
	shape := dims.Shape{4}
	c, ts := newTieredCube(t, shape)
	for i := 0; i < 30; i++ {
		if _, err := c.Update(int64(i/10), []int{i % 4}, 1); err != nil {
			t.Fatal(err)
		}
	}
	demoted, err := c.Age(100)
	if err != nil {
		t.Fatal(err)
	}
	if demoted != c.NumSlices()-1 {
		t.Fatalf("demoted %d of %d slices", demoted, c.NumSlices())
	}
	if ts.Boundary() != c.NumSlices()-1 {
		t.Fatalf("boundary %d reached the latest slice", ts.Boundary())
	}
	// Aging again is a no-op until new slices appear.
	demoted, err = c.Age(5)
	if err != nil || demoted != 0 {
		t.Fatalf("re-age: %d, %v", demoted, err)
	}
	if _, err := c.Update(100, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	demoted, err = c.Age(5)
	if err != nil || demoted != 1 {
		t.Fatalf("age after new slice: %d, %v", demoted, err)
	}
}

func TestTieredWriteToRetiredSliceFails(t *testing.T) {
	shape := dims.Shape{4}
	c, ts := newTieredCube(t, shape)
	for i := 0; i < 20; i++ {
		if _, err := c.Update(int64(i/5), []int{i % 4}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Age(1); err != nil {
		t.Fatal(err)
	}
	if err := ts.Write(0, 0, 1, DDCValue); err == nil {
		t.Error("write to retired slice accepted")
	}
}
