package appendcube

import (
	"errors"
	"fmt"
)

// TieredStore implements the data-aging scheme the paper's conclusion
// describes: "an aging process moves old detail data to (slower) mass
// storage ... aggregates of retired detail data can be retained
// without additional computation costs at the time of the retirement."
// Because the cube clusters data by time coordinate, aging is just a
// slice-granular demotion: complete historic slices move from the hot
// in-memory store to a cold (typically disk) store; their cumulative
// pre-aggregated values are already the retained aggregates.
//
// Slices with index < boundary live in the cold store; queries route
// transparently. Cold slices lose their PS-conversion flags (the cold
// store keeps plain values), so reads report DDC values — still
// correct, at DDC query cost.
type TieredStore struct {
	hot       *MemStore
	cold      SliceStore
	boundary  int   // slices < boundary are cold
	demotions int64 // slices demoted so far (tier-promotion progress)
}

// NewTieredStore layers a hot in-memory store over a cold store.
func NewTieredStore(sliceSize int, cold SliceStore) *TieredStore {
	return &TieredStore{hot: NewMemStore(sliceSize), cold: cold}
}

// Cold exposes the cold store (for flushing and closing its backing
// resources).
func (t *TieredStore) Cold() SliceStore { return t.cold }

// Flags implements SliceStore: hot slices carry flags; cold reads
// report materialised DDC values, which the flag-based read rule
// handles (a demoted slice is complete, so no cell falls back to
// cache through the Unmaterialized path).
func (t *TieredStore) Flags() bool { return true }

// Reserve implements SliceStore.
func (t *TieredStore) Reserve(s int) error {
	if err := t.cold.Reserve(s); err != nil {
		return err
	}
	return t.hot.Reserve(s)
}

// Read implements SliceStore.
func (t *TieredStore) Read(s, off int) (float64, Flag, error) {
	if s < t.boundary {
		v, _, err := t.cold.Read(s, off)
		return v, DDCValue, err
	}
	return t.hot.Read(s, off)
}

// Write implements SliceStore. Writes to cold slices indicate a bug:
// only complete slices are demoted and complete slices receive no
// further copies.
func (t *TieredStore) Write(s, off int, v float64, f Flag) error {
	if s < t.boundary {
		return fmt.Errorf("appendcube: write to retired slice %d", s)
	}
	return t.hot.Write(s, off, v, f)
}

// Convert implements SliceStore: hot slices convert; cold ones
// decline.
func (t *TieredStore) Convert(s, off int, v float64) (bool, error) {
	if s < t.boundary {
		return false, nil
	}
	return t.hot.Convert(s, off, v)
}

// Accesses implements SliceStore (hot cells + cold accesses in the
// cold store's unit).
func (t *TieredStore) Accesses() int64 { return t.hot.Accesses() + t.cold.Accesses() }

// NumSlices implements SliceStore.
func (t *TieredStore) NumSlices() int { return t.hot.NumSlices() }

// Boundary returns the first hot slice index.
func (t *TieredStore) Boundary() int { return t.boundary }

// ErrNotTiered reports an aging request on a cube without a
// TieredStore.
var ErrNotTiered = errors.New("appendcube: cube store is not tiered; configure a TieredStore to age slices")

// ErrIncompleteSlice reports a demotion of a slice that is not
// completely copied yet.
var ErrIncompleteSlice = errors.New("appendcube: cannot retire an incompletely copied slice")

// demote moves slice s (which must be the current boundary and
// complete) to the cold store and frees its hot storage.
func (t *TieredStore) demote(s int) error {
	if s != t.boundary {
		return fmt.Errorf("appendcube: demote slice %d out of order (boundary %d)", s, t.boundary)
	}
	vals := t.hot.vals[s]
	flags := t.hot.flags[s]
	for off, f := range flags {
		if Flag(f) == Unmaterialized {
			return fmt.Errorf("%w: slice %d cell %d", ErrIncompleteSlice, s, off)
		}
		if err := t.cold.Write(s, off, vals[off], DDCValue); err != nil {
			return err
		}
	}
	t.hot.vals[s] = nil
	t.hot.flags[s] = nil
	t.boundary = s + 1
	t.demotions++
	return nil
}

// Demotions returns how many slices have been demoted to the cold
// store since the process started.
func (t *TieredStore) Demotions() int64 { return t.demotions }

// Age retires the oldest n historic slices of the cube to the cold
// store: they are force-completed first (retaining their cumulative
// aggregates costs nothing extra, per the paper), then demoted. The
// latest slice never retires. It returns the number of slices
// actually demoted.
func (c *Cube) Age(n int) (int, error) {
	ts, ok := c.store.(*TieredStore)
	if !ok {
		return 0, ErrNotTiered
	}
	latest := c.dir.Len() - 1
	demoted := 0
	for i := 0; i < n; i++ {
		s := ts.boundary
		if s >= latest {
			break
		}
		// Complete the slice: copy every cache cell still covering it.
		for off := range c.cache {
			cell := &c.cache[off]
			if int(cell.ts) <= s {
				for v := cell.ts; int(v) <= s; v++ {
					if err := c.store.Write(int(v), off, cell.val, DDCValue); err != nil {
						return demoted, err
					}
				}
				c.moveTS(off, int32(s+1))
			}
		}
		if err := ts.demote(s); err != nil {
			return demoted, err
		}
		demoted++
	}
	return demoted, nil
}
