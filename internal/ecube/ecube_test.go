package ecube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/prefix"
)

// TestFigure6Example replays the paper's Figure 6 trace: a 4x8 time
// slice of ones in DDC form; the prefix query PS(2,6) converts exactly
// the cells the trace lists, with the values the trace computes.
func TestFigure6Example(t *testing.T) {
	shape := dims.Shape{4, 8}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = 1
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got := a.PrefixQuery([]int{2, 6})
	if got != 21 {
		t.Fatalf("PS(2,6) = %v, want 21", got)
	}
	// The trace converts: (1,3)=8, (1,5)=12, (1,6)=14, (2,3)=12,
	// (2,5)=18, (2,6)=21.
	wantPS := map[[2]int]float64{
		{1, 3}: 8, {1, 5}: 12, {1, 6}: 14, {2, 3}: 12, {2, 5}: 18, {2, 6}: 21,
	}
	for xy, want := range wantPS {
		off := shape.Flatten(xy[:])
		if !a.ps[off] {
			t.Errorf("cell %v not converted to PS", xy)
		}
		if a.cells[off] != want {
			t.Errorf("cell %v = %v, want %v", xy, a.cells[off], want)
		}
	}
	if got := a.Converted(); got != len(wantPS) {
		t.Errorf("converted %d cells, want %d", got, len(wantPS))
	}
	// "If the next query computes the sum for range ((0,0),(2,3)) it
	// returns after the first cell access."
	a.Accesses = 0
	v, err := a.Query(dims.NewBox([]int{0, 0}, []int{2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("q((0,0),(2,3)) = %v, want 12", v)
	}
	if a.Accesses != 1 {
		t.Fatalf("follow-up query cost %d accesses, want 1", a.Accesses)
	}
}

func TestFromDDCRejectsNonDDC(t *testing.T) {
	a, err := prefix.FromDense([]float64{1, 2, 3, 4}, dims.Shape{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromDDC(a); err == nil {
		t.Error("FromDDC accepted a PS array")
	}
}

func TestPrefixQueryMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	shape := dims.Shape{7, 9}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(8))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	dims.FullBox(shape).Iter(func(x []int) {
		want := 0.0
		dims.NewBox([]int{0, 0}, x).Iter(func(y []int) {
			want += data[shape.Flatten(y)]
		})
		// Query twice: once converting, once from the PS value.
		if got := a.PrefixQuery(x); got != want {
			t.Fatalf("PS(%v) = %v, want %v", x, got, want)
		}
		if got := a.PrefixQuery(x); got != want {
			t.Fatalf("repeat PS(%v) = %v, want %v", x, got, want)
		}
	})
	// After touching every prefix, the whole array must be PS.
	if a.Converted() != shape.Size() {
		t.Errorf("converted %d of %d cells", a.Converted(), shape.Size())
	}
}

func TestRangeQueryMatchesNaive3D(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	shape := dims.Shape{6, 5, 7}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(5))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		b := dims.Box{Lo: lo, Hi: hi}
		got, err := a.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
		if got != want {
			t.Fatalf("trial %d: Query(%v) = %v, want %v", trial, b, got, want)
		}
	}
}

func TestQueryRejectsInvalidBox(t *testing.T) {
	a, _ := FromDense([]float64{1, 2, 3, 4}, dims.Shape{2, 2})
	if _, err := a.Query(dims.NewBox([]int{1, 0}, []int{0, 1})); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestPrefixPanicsOutsideShape(t *testing.T) {
	a, _ := FromDense([]float64{1, 2, 3, 4}, dims.Shape{2, 2})
	defer func() {
		if recover() == nil {
			t.Error("out-of-shape prefix did not panic")
		}
	}()
	a.PrefixQuery([]int{2, 0})
}

func TestConvergenceReducesCost(t *testing.T) {
	// Repeatedly querying the same region must converge to the PS
	// bound of 2^d accesses.
	r := rand.New(rand.NewSource(13))
	shape := dims.Shape{64, 64}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(4))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	b := dims.NewBox([]int{13, 22}, []int{40, 59})
	a.Accesses = 0
	if _, err := a.Query(b); err != nil {
		t.Fatal(err)
	}
	first := a.Accesses
	a.Accesses = 0
	if _, err := a.Query(b); err != nil {
		t.Fatal(err)
	}
	second := a.Accesses
	if second > 4 {
		t.Errorf("second identical query cost %d, want <= 2^2", second)
	}
	if first <= second {
		t.Errorf("no convergence: first %d, second %d", first, second)
	}
}

func TestWorstCaseNoWorseThanDDCChains(t *testing.T) {
	// A single prefix query on a fresh eCube converts at most
	// prod_i chainlen_i distinct cells — the DDC prefix cost — because
	// the recursion is restricted to the DDC index sets (the paper's
	// worst-case claim counts distinct cells; even its own Fig. 6
	// trace re-reads already-converted cells). Total accesses are
	// bounded by one load per recursive call: 1 + (2^d - 1) per
	// converted cell.
	shape := dims.Shape{32, 17}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = 1
	}
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		a, err := FromDense(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		x := []int{r.Intn(shape[0]), r.Intn(shape[1])}
		bound := int64(len(ddc.DDC{}.PrefixTerms(nil, shape[0], x[0])) *
			len(ddc.DDC{}.PrefixTerms(nil, shape[1], x[1])))
		a.Accesses = 0
		a.PrefixQuery(x)
		if a.Conversions > bound {
			t.Fatalf("prefix %v converted %d cells, DDC chain bound %d", x, a.Conversions, bound)
		}
		if a.Accesses > 1+3*bound {
			t.Fatalf("prefix %v cost %d exceeds call bound %d", x, a.Accesses, 1+3*bound)
		}
	}
}

func TestFullConversionMatchesPSArray(t *testing.T) {
	// After converting every cell, the eCube's cell contents must be
	// exactly the PS pre-aggregation of the original array.
	r := rand.New(rand.NewSource(15))
	shape := dims.Shape{5, 6}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(9))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	dims.FullBox(shape).Iter(func(x []int) { a.PrefixQuery(x) })
	ps, err := prefix.FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	want := ps.Cells()
	for off := range want {
		if a.cells[off] != want[off] {
			t.Fatalf("cell %d = %v, want PS value %v", off, a.cells[off], want[off])
		}
	}
}

// Property: interleaved random prefix and range queries on a random
// eCube always match a naive shadow, regardless of conversion state.
func TestInterleavedQueriesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(10) + 1, r.Intn(10) + 1}
		data := make([]float64, shape.Size())
		for i := range data {
			data[i] = float64(r.Intn(12) - 6)
		}
		a, err := FromDense(data, shape)
		if err != nil {
			return false
		}
		for q := 0; q < 25; q++ {
			lo := []int{r.Intn(shape[0]), r.Intn(shape[1])}
			hi := []int{lo[0] + r.Intn(shape[0]-lo[0]), lo[1] + r.Intn(shape[1]-lo[1])}
			b := dims.Box{Lo: lo, Hi: hi}
			got, err := a.Query(b)
			if err != nil {
				return false
			}
			want := 0.0
			b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a 4-d eCube (the weather4 slice dimensionality) matches
// naive on random boxes.
func TestHighDimProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1}
		data := make([]float64, shape.Size())
		for i := range data {
			data[i] = float64(r.Intn(4))
		}
		a, err := FromDense(data, shape)
		if err != nil {
			return false
		}
		for q := 0; q < 10; q++ {
			lo := make([]int, 4)
			hi := make([]int, 4)
			for i, n := range shape {
				lo[i] = r.Intn(n)
				hi[i] = lo[i] + r.Intn(n-lo[i])
			}
			b := dims.Box{Lo: lo, Hi: hi}
			got, err := a.Query(b)
			if err != nil {
				return false
			}
			want := 0.0
			b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// decliningStore rejects all StorePS persists, like the disk store of
// Section 3.5; the engine must fall back to per-query memoisation and
// stay within a polynomial access budget instead of recursing
// exponentially.
type decliningStore struct {
	cells []float64
	loads int64
}

func (d *decliningStore) Load(off int) (float64, bool) {
	d.loads++
	return d.cells[off], false
}

func (d *decliningStore) StorePS(int, float64) bool { return false }

func TestEngineMemoisesWhenStoreDeclines(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	shape := dims.Shape{64, 64, 16}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(5))
	}
	arr, err := ddc.FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	ds := &decliningStore{cells: arr.Cells()}
	en, err := NewEngine(shape)
	if err != nil {
		t.Fatal(err)
	}
	chains := ddc.MaxChainLen(64) * ddc.MaxChainLen(64) * ddc.MaxChainLen(16)
	for trial := 0; trial < 30; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		b := dims.Box{Lo: lo, Hi: hi}
		ds.loads = 0
		got, err := en.Range(ds, b)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
		if got != want {
			t.Fatalf("Range(%v) = %v, want %v", b, got, want)
		}
		// Memoisation bound: per corner prefix, at most one load per
		// distinct chain-product cell plus one memo-missing re-load per
		// recursion child; 2^d corners. Without the memo this blows up
		// combinatorially (Delannoy growth) and the budget fails.
		budget := int64(8 * 8 * chains)
		if ds.loads > budget {
			t.Fatalf("declining store: %d loads exceeds memo budget %d", ds.loads, budget)
		}
	}
}

// TestEngineCounters pins the engine's cumulative observability
// counters: Loads counts every CellStore.Load, Converts counts only
// persisted DDC->PS rewrites and therefore matches the Array's own
// conversion counter and its converted-cell census.
func TestEngineCounters(t *testing.T) {
	shape := dims.Shape{8, 8}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(i % 7)
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if a.en.Loads() != 0 || a.en.Converts() != 0 {
		t.Fatalf("fresh engine counters: loads=%d converts=%d", a.en.Loads(), a.en.Converts())
	}
	if _, err := a.Query(dims.Box{Lo: []int{1, 1}, Hi: []int{6, 6}}); err != nil {
		t.Fatal(err)
	}
	loads1, conv1 := a.en.Loads(), a.en.Converts()
	if loads1 == 0 || conv1 == 0 {
		t.Fatalf("counters did not move: loads=%d converts=%d", loads1, conv1)
	}
	if conv1 != a.Conversions {
		t.Errorf("engine converts %d != array conversions %d", conv1, a.Conversions)
	}
	if int(conv1) != a.Converted() {
		t.Errorf("engine converts %d != converted cells %d", conv1, a.Converted())
	}
	// Re-running the same query hits only PS cells: loads still grow,
	// conversions must not.
	if _, err := a.Query(dims.Box{Lo: []int{1, 1}, Hi: []int{6, 6}}); err != nil {
		t.Fatal(err)
	}
	if a.en.Converts() != conv1 {
		t.Errorf("repeat query converted again: %d -> %d", conv1, a.en.Converts())
	}
	if a.en.Loads() <= loads1 {
		t.Errorf("repeat query loads did not grow: %d -> %d", loads1, a.en.Loads())
	}
}
