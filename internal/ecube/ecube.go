// Package ecube implements the Evolving Data Cube of Section 3.2 of
// the paper: a (d-1)-dimensional array in which DDC-aggregated and
// PS-aggregated cell values coexist, distinguished by a per-cell flag.
// Prefix queries recursively rewrite DDC values into PS values
// ("neighbouring" cells given by the DDC index sets), storing each
// computed PS value back into its cell, so the array gradually and
// adaptively converges from polylogarithmic DDC query cost towards
// the constant 2^(d-1) PS query cost — without any eager
// transformation pass.
//
// The query algorithm is expressed against the CellStore interface so
// the same code drives both a standalone in-memory eCube (the Fig. 10
// and 11 experiments) and the lazily materialised historic time slices
// of the append-only cube (package appendcube).
package ecube

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"

	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/molap"
	"histcube/internal/trace"
)

// CellStore is the storage a query engine operates on: a flat
// row-major array of cells, each holding either a DDC value or an
// already-converted PS value.
type CellStore interface {
	// Load reads cell off and reports whether it already holds a PS
	// value. Implementations count this as one cell access.
	Load(off int) (val float64, ps bool)
	// StorePS records the computed PS value for cell off and reports
	// whether it was persisted. An implementation may decline (e.g.
	// the disk store of Section 3.5, which keeps no flags); the engine
	// then memoises the value for the remainder of the current query
	// so the recursion stays within the DDC cost bound. A store that
	// persists must return ps=true from subsequent Loads.
	StorePS(off int, val float64) bool
}

// Engine evaluates prefix and range queries over mixed PS/DDC cells of
// a fixed shape. Apart from the shape it carries only two atomic cost
// counters, so it may be shared across many stores (all historic
// slices of a cube use one Engine) and across goroutines.
type Engine struct {
	shape   dims.Shape
	strides []int

	// loads counts CellStore.Load calls (cells touched); converts
	// counts persisted DDC->PS rewrites (StorePS returning true) — the
	// convergence signal of the paper's Figures 10 and 11, aggregated
	// across every store the engine drives. Atomic so a /metrics scrape
	// can read them while a query runs.
	loads    atomic.Int64
	converts atomic.Int64
}

// NewEngine returns an Engine for (d-1)-dimensional slices of the
// given shape.
func NewEngine(shape dims.Shape) (*Engine, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	return &Engine{shape: shape.Clone(), strides: shape.Strides()}, nil
}

// Shape returns the engine's slice shape.
func (en *Engine) Shape() dims.Shape { return en.shape }

// Loads returns the cumulative number of cells the engine has touched
// (CellStore.Load calls) across every query it has run.
func (en *Engine) Loads() int64 { return en.loads.Load() }

// Converts returns the cumulative number of DDC->PS conversions the
// engine has persisted — the quantity the paper's Figure 10/11 curves
// track: query cost converges from (2 log2 N)^(d-1) towards 2^(d-1)
// exactly as this counter approaches the number of queried cells.
func (en *Engine) Converts() int64 { return en.converts.Load() }

// Prefix computes P[x] = aggregate over the box [0..x] in every
// dimension, converting every DDC cell it touches to PS via StorePS.
//
// The recursion follows the paper's eCube algorithm (Fig. 6): a DDC
// cell's value covers the box [RangeStart(x_i)..x_i] per dimension, so
// P(x) = DDC(x) + sum over non-empty subsets S of dimensions of
// (-1)^(|S|+1) * P(x with x_i replaced by RangeStart(x_i)-1 for i in
// S), where a sub-prefix with any coordinate -1 is zero. The
// sub-prefix coordinates are exactly the predecessors in the DDC
// prefix index chains, so the worst case touches no more cells than
// the plain DDC algorithm.
func (en *Engine) Prefix(cs CellStore, x []int) float64 {
	return en.PrefixTraced(nil, cs, x)
}

// PrefixTraced is Prefix with per-request cost attribution: the
// evaluation's cell loads and persisted conversions are added to sp's
// CellsTouched and Conversions counters. A nil span records nothing
// and costs one branch per evaluation.
func (en *Engine) PrefixTraced(sp *trace.Span, cs CellStore, x []int) float64 {
	if !en.shape.Contains(x) {
		panic("ecube: prefix coordinate outside shape")
	}
	v, _ := en.prefixEval(context.Background(), sp, cs, x)
	return v
}

// PrefixCtx is PrefixTraced with cooperative cancellation: the
// recursion polls ctx every 64 cell loads and abandons the evaluation
// with ctx's error once it is done. An out-of-shape coordinate is
// reported as an error rather than a panic — PrefixCtx is the
// server-facing entry point, and a malformed request must not take the
// process down.
func (en *Engine) PrefixCtx(ctx context.Context, sp *trace.Span, cs CellStore, x []int) (float64, error) {
	if !en.shape.Contains(x) {
		return 0, fmt.Errorf("ecube: prefix coordinate %v outside shape %v", x, en.shape)
	}
	return en.prefixEval(ctx, sp, cs, x)
}

func (en *Engine) prefixEval(cctx context.Context, sp *trace.Span, cs CellStore, x []int) (float64, error) {
	ctx := evalCtx{done: cctx.Done(), cctx: cctx}
	v := en.prefixRec(cs, x, &ctx)
	sp.Add(trace.CellsTouched, int64(ctx.loads))
	sp.Add(trace.Conversions, int64(ctx.converts))
	if ctx.err != nil {
		return 0, ctx.err
	}
	return v, nil
}

// evalCtx carries per-evaluation state: PS values the store declined
// to persist, memoised so the recursion stays within the DDC cost
// bound (the map is allocated on the first declined StorePS only),
// plus the evaluation's own load/conversion counts so a trace span can
// attribute cost to one request without reading the shared atomics.
// done/cctx/err implement cooperative cancellation: done is polled
// every 64 loads (nil when the context cannot be canceled, which
// short-circuits the poll to one comparison), and once err is set the
// whole recursion unwinds without touching further cells and without
// persisting any value computed from the abandoned subtree.
type evalCtx struct {
	memo     map[int]float64
	loads    int
	converts int
	done     <-chan struct{}
	cctx     context.Context
	err      error
}

func (en *Engine) prefixRec(cs CellStore, x []int, ctx *evalCtx) float64 {
	if ctx.err != nil {
		return 0
	}
	off := 0
	for i, c := range x {
		off += c * en.strides[i]
	}
	if v, ok := ctx.memo[off]; ok {
		return v
	}
	en.loads.Add(1)
	ctx.loads++
	if ctx.done != nil && ctx.loads&63 == 0 {
		select {
		case <-ctx.done:
			ctx.err = fmt.Errorf("ecube: query canceled after %d cell loads: %w", ctx.loads, ctx.cctx.Err())
			return 0
		default:
		}
	}
	val, ps := cs.Load(off)
	if ps {
		return val
	}
	d := len(x)
	starts := make([]int, d)
	for i := range x {
		starts[i] = ddc.RangeStart(en.shape[i], x[i])
	}
	sub := make([]int, d)
	for mask := 1; mask < 1<<uint(d); mask++ {
		feasible := true
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub[i] = starts[i] - 1
				if sub[i] < 0 {
					feasible = false
					break
				}
			} else {
				sub[i] = x[i]
			}
		}
		if !feasible {
			continue
		}
		if bits.OnesCount(uint(mask))%2 == 1 {
			val += en.prefixRec(cs, sub, ctx)
		} else {
			val -= en.prefixRec(cs, sub, ctx)
		}
	}
	if ctx.err != nil {
		// The evaluation was abandoned somewhere in the subtree: val is
		// a partial sum. Persisting (or even memoising) it would plant a
		// wrong PS value in the cube, so drop it on the floor.
		return 0
	}
	if cs.StorePS(off, val) {
		en.converts.Add(1)
		ctx.converts++
	} else {
		if ctx.memo == nil {
			ctx.memo = make(map[int]float64)
		}
		ctx.memo[off] = val
	}
	return val
}

// Range computes the aggregate over the closed box using the PS
// reduction: at most 2^d corner prefix queries with alternating signs,
// corners with a -1 coordinate contributing zero.
func (en *Engine) Range(cs CellStore, b dims.Box) (float64, error) {
	return en.RangeTraced(nil, cs, b)
}

// RangeTraced is Range with per-request cost attribution (see
// PrefixTraced): the query's cell loads and persisted DDC->PS
// conversions land on sp. As the slice converges to PS form the
// recorded CellsTouched falls from the (2 log2 N)^(d-1) DDC bound to
// the 2^(d-1) corner count — Figures 10/11, observable per query.
func (en *Engine) RangeTraced(sp *trace.Span, cs CellStore, b dims.Box) (float64, error) {
	return en.RangeCtx(context.Background(), sp, cs, b)
}

// RangeCtx is RangeTraced with cooperative cancellation: the corner
// prefix evaluations share one evalCtx, whose done channel is polled
// every 64 cell loads. On cancellation the query returns ctx's error;
// no partially computed PS value is persisted.
func (en *Engine) RangeCtx(cctx context.Context, sp *trace.Span, cs CellStore, b dims.Box) (float64, error) {
	if err := b.Validate(en.shape); err != nil {
		return 0, err
	}
	d := len(en.shape)
	corner := make([]int, d)
	total := 0.0
	ctx := &evalCtx{done: cctx.Done(), cctx: cctx}
	for mask := 0; mask < 1<<uint(d); mask++ {
		feasible := true
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				corner[i] = b.Lo[i] - 1
				if corner[i] < 0 {
					feasible = false
					break
				}
			} else {
				corner[i] = b.Hi[i]
			}
		}
		if !feasible {
			continue
		}
		p := en.prefixRec(cs, corner, ctx)
		if bits.OnesCount(uint(mask))%2 == 0 {
			total += p
		} else {
			total -= p
		}
		if ctx.err != nil {
			break
		}
	}
	sp.Add(trace.CellsTouched, int64(ctx.loads))
	sp.Add(trace.Conversions, int64(ctx.converts))
	if ctx.err != nil {
		return 0, ctx.err
	}
	return total, nil
}

// Array is a standalone in-memory eCube: cells start as DDC values and
// evolve to PS as queries touch them. Accesses counts cell reads and
// writes (the paper's cost metric); Conversions counts DDC->PS cell
// rewrites.
type Array struct {
	en          *Engine
	cells       []float64
	ps          []bool
	Accesses    int64
	Conversions int64
}

// FromDDC builds an eCube from a DDC-aggregated array (all dimensions
// must use the DDC technique). The source array's cells are copied.
func FromDDC(a *molap.Array) (*Array, error) {
	for _, t := range a.Techniques() {
		if t.Name() != "DDC" {
			return nil, errNotDDC
		}
	}
	en, err := NewEngine(a.Shape())
	if err != nil {
		return nil, err
	}
	return &Array{
		en:    en,
		cells: append([]float64(nil), a.Cells()...),
		ps:    make([]bool, a.Shape().Size()),
	}, nil
}

// FromDense pre-aggregates a dense original array with DDC in every
// dimension and wraps it as an eCube.
func FromDense(data []float64, shape dims.Shape) (*Array, error) {
	a, err := ddc.FromDense(data, shape)
	if err != nil {
		return nil, err
	}
	return FromDDC(a)
}

var errNotDDC = errValue("ecube: source array must be DDC-aggregated in every dimension")

type errValue string

func (e errValue) Error() string { return string(e) }

// Shape returns the array's shape.
func (a *Array) Shape() dims.Shape { return a.en.Shape() }

// Load implements CellStore.
func (a *Array) Load(off int) (float64, bool) {
	a.Accesses++
	return a.cells[off], a.ps[off]
}

// StorePS implements CellStore. The write is not counted as a cell
// access: the paper observes that "since only accessed cells are
// transformed, the actual transformation does not incur any access
// overhead" — the cell was just loaded and is rewritten in place.
func (a *Array) StorePS(off int, val float64) bool {
	a.cells[off] = val
	a.ps[off] = true
	a.Conversions++
	return true
}

// PrefixQuery computes P[x], converting touched cells to PS.
func (a *Array) PrefixQuery(x []int) float64 { return a.en.Prefix(a, x) }

// Query computes the aggregate over the closed box.
func (a *Array) Query(b dims.Box) (float64, error) { return a.en.Range(a, b) }

// Converted returns the number of cells currently holding PS values.
func (a *Array) Converted() int {
	n := 0
	for _, p := range a.ps {
		if p {
			n++
		}
	}
	return n
}
