// Package fault is a deterministic, seed-driven fault injector for the
// storage layers: it wraps the WAL's segment file and the pager's page
// backend and makes them fail on demand — error on the Nth operation,
// out-of-space, torn (short) writes, injected latency, or a panic at a
// named site — so the chaos suite and `histserve -fault-spec` can
// exercise retry, degradation and recovery paths that a healthy disk
// never takes.
//
// Faults are described by a compact spec string:
//
//	spec     := rule { ";" rule }
//	rule     := site ":" kind { modifier }
//	site     := "wal.write" | "wal.sync" | "pager.load" | "pager.store"
//	            | "pager.sync" | "serve.dispatch" | ...   (free-form)
//	kind     := "err" | "nospace" | "short" | "panic" | "slow=<dur>"
//	            | "drop" | "stall=<dur>"
//	modifier := "@N"     fire on the Nth operation at the site (1-based)
//	          | "@N+"    fire on the Nth and every later operation
//	          | "%P"     fire each operation with probability P in (0,1]
//	          | "xC"     stop after C fires
//
// A rule with no trigger modifier fires on every operation. "@N" alone
// fires exactly once; "@N+" and "%P" keep firing until an "xC" cap (or
// Heal). Probabilistic rules draw from a rand.Rand seeded at Parse
// time, so a (spec, seed) pair reproduces the exact same fault
// schedule — the property the seeded chaos suite is built on.
//
// Examples:
//
//	wal.write:nospace@100+          disk full from the 100th append on
//	wal.write:short@5               the 5th append is torn mid-record
//	pager.load:err%0.01x3           1% of page loads fail, 3 at most
//	serve.dispatch:panic@2          the 2nd request panics
//	wal.sync:slow=5ms%0.5           half of all fsyncs take +5ms
//	shard0.read:drop@3              the 3rd conn read tears the link down
//	shard1.write:stall=50ms%0.2     a fifth of conn writes stall +50ms
//
// The connection-level kinds model network flakiness rather than disk
// failure: "drop" severs the wrapped connection (the peer sees a
// reset-like error mid-exchange) and "stall=<dur>" freezes an
// individual read or write, the shapes that exercise reconnect,
// hedging and breaker logic in the shard client and the replication
// link.
//
// The wrapper interfaces (File, Backend) are structural copies of
// wal.SegmentFile and pager.Backend rather than imports: wal's and
// pager's own tests import this package, so fault must not import them
// back.
package fault

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"histcube/internal/obs"
)

// ErrNoSpace is the injected out-of-space condition. It wraps
// syscall.ENOSPC, so errors.Is(err, syscall.ENOSPC) holds and the
// retry layer classifies it as permanent — exactly like a real full
// disk.
var ErrNoSpace = fmt.Errorf("no space left on device (injected): %w", syscall.ENOSPC)

// ErrInjected is the generic transient injected error; retry layers
// treat it like any other I/O error.
var ErrInjected = fmt.Errorf("injected fault")

type kind int

const (
	kindErr kind = iota
	kindNoSpace
	kindShort
	kindPanic
	kindSlow
	kindDrop
	kindStall
)

// rule is one parsed fault clause.
type rule struct {
	site    string
	kind    kind
	delay   time.Duration // kindSlow
	nth     int64         // fire on the nth op; 0 = no positional trigger
	persist bool          // @N+ — nth and everything after
	prob    float64       // probabilistic trigger; 0 = none
	max     int64         // fire cap; 0 = default (1 for plain @N, unlimited otherwise)
	fires   int64         // synchronised by the owning injector's lock
}

// Outcome is what one Check decided: an error to return (Torn asks a
// write wrapper to persist a partial prefix first, Drop asks a
// connection wrapper to sever the link) and extra latency to add.
// Panic-kind rules do not return — Check panics.
type Outcome struct {
	Err   error
	Torn  bool
	Drop  bool
	Delay time.Duration
}

// Injector evaluates fault rules against per-site operation counters.
// All methods are safe for concurrent use; a nil *Injector is inert,
// so call sites need no guard.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand       // guarded by mu
	rules  []*rule          // immutable after Parse; per-rule fire counts need mu
	counts map[string]int64 // per-site op counters; guarded by mu
	healed bool             // guarded by mu

	seed     int64
	spec     string
	injected atomic.Int64
	sleep    func(time.Duration) // set at construction; time.Sleep by default
}

// Parse builds an Injector from a spec string (see the package
// comment) and a seed for the probabilistic triggers.
func Parse(spec string, seed int64) (*Injector, error) {
	inj := &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int64),
		seed:   seed,
		spec:   spec,
		sleep:  time.Sleep,
	}
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		inj.rules = append(inj.rules, r)
	}
	if len(inj.rules) == 0 {
		return nil, fmt.Errorf("fault: spec %q contains no rules", spec)
	}
	return inj, nil
}

// MustParse is Parse for tests and fixed literals; it panics on a bad
// spec.
func MustParse(spec string, seed int64) *Injector {
	inj, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return inj
}

func parseRule(clause string) (*rule, error) {
	site, rest, ok := strings.Cut(clause, ":")
	if !ok || site == "" {
		return nil, fmt.Errorf("fault: rule %q needs site:kind", clause)
	}
	// The kind token runs until the first modifier introducer.
	end := len(rest)
	for i, c := range rest {
		if c == '@' || c == '%' || c == 'x' {
			end = i
			break
		}
	}
	kindTok, mods := rest[:end], rest[end:]
	r := &rule{site: site}
	switch {
	case kindTok == "err":
		r.kind = kindErr
	case kindTok == "nospace":
		r.kind = kindNoSpace
	case kindTok == "short":
		r.kind = kindShort
	case kindTok == "panic":
		r.kind = kindPanic
	case strings.HasPrefix(kindTok, "slow="):
		d, err := time.ParseDuration(kindTok[len("slow="):])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("fault: rule %q has a bad slow duration", clause)
		}
		r.kind = kindSlow
		r.delay = d
	case kindTok == "drop":
		r.kind = kindDrop
	case strings.HasPrefix(kindTok, "stall="):
		d, err := time.ParseDuration(kindTok[len("stall="):])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("fault: rule %q has a bad stall duration", clause)
		}
		r.kind = kindStall
		r.delay = d
	default:
		return nil, fmt.Errorf("fault: rule %q has unknown kind %q (want err, nospace, short, panic, slow=<dur>, drop or stall=<dur>)", clause, kindTok)
	}
	for mods != "" {
		introducer := mods[0]
		val := mods[1:]
		end := len(val)
		for i, c := range val {
			if c == '@' || c == '%' || c == 'x' {
				end = i
				break
			}
		}
		tok := val[:end]
		mods = val[end:]
		switch introducer {
		case '@':
			if strings.HasSuffix(tok, "+") {
				r.persist = true
				tok = tok[:len(tok)-1]
			}
			n, err := strconv.ParseInt(tok, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: rule %q has a bad @N trigger", clause)
			}
			r.nth = n
		case '%':
			p, err := strconv.ParseFloat(tok, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("fault: rule %q has a bad %%P probability (want (0,1])", clause)
			}
			r.prob = p
		case 'x':
			c, err := strconv.ParseInt(tok, 10, 64)
			if err != nil || c < 1 {
				return nil, fmt.Errorf("fault: rule %q has a bad xC cap", clause)
			}
			r.max = c
		}
	}
	if r.nth > 0 && r.prob > 0 {
		return nil, fmt.Errorf("fault: rule %q mixes @N and %%P triggers", clause)
	}
	if r.max == 0 && r.nth > 0 && !r.persist {
		r.max = 1 // a plain @N fires exactly once
	}
	return r, nil
}

// Check counts one operation at site and returns the injected outcome,
// if any. A rule of kind panic makes Check panic (after recording the
// fire) — the injected failure mode for exercising panic recovery. A
// nil Injector returns the zero Outcome.
func (i *Injector) Check(site string) Outcome {
	if i == nil {
		return Outcome{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.counts[site] + 1
	i.counts[site] = n
	if i.healed {
		return Outcome{}
	}
	var out Outcome
	for _, r := range i.rules {
		if r.site != site {
			continue
		}
		if r.max > 0 && r.fires >= r.max {
			continue
		}
		hit := false
		switch {
		case r.nth > 0 && r.persist:
			hit = n >= r.nth
		case r.nth > 0:
			hit = n == r.nth
		case r.prob > 0:
			hit = i.rng.Float64() < r.prob
		default:
			hit = true
		}
		if !hit {
			continue
		}
		r.fires++
		i.injected.Add(1)
		switch r.kind {
		case kindErr:
			out.Err = fmt.Errorf("%w at %s (op %d)", ErrInjected, site, n)
		case kindNoSpace:
			out.Err = fmt.Errorf("fault at %s (op %d): %w", site, n, ErrNoSpace)
		case kindShort:
			out.Torn = true
			out.Err = fmt.Errorf("%w: torn write at %s (op %d)", ErrInjected, site, n)
		case kindPanic:
			panic(fmt.Sprintf("fault: injected panic at %s (op %d)", site, n))
		case kindSlow:
			out.Delay += r.delay
		case kindDrop:
			out.Drop = true
			out.Err = fmt.Errorf("%w: connection dropped at %s (op %d)", ErrInjected, site, n)
		case kindStall:
			out.Delay += r.delay
		}
	}
	return out
}

// Heal disarms every rule: operations keep being counted, but no
// further faults fire. The chaos suite uses it to clear a persistent
// fault and watch the server's auto-recovery probe succeed.
func (i *Injector) Heal() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.healed = true
}

// Arm re-enables rules after Heal.
func (i *Injector) Arm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.healed = false
}

// Injected returns the number of faults fired so far.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	return i.injected.Load()
}

// Ops returns the operation count observed at site.
func (i *Injector) Ops(site string) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[site]
}

// Seed returns the seed the injector was built with (for repro logs).
func (i *Injector) Seed() int64 { return i.seed }

// String renders the spec and seed, the pair that reproduces this
// fault schedule.
func (i *Injector) String() string {
	return fmt.Sprintf("fault(%q, seed=%d)", i.spec, i.seed)
}

// RegisterMetrics exposes the injector on a metrics registry so chaos
// runs can observe fault activity alongside the degradation gauges.
func (i *Injector) RegisterMetrics(reg *obs.Registry) {
	// The fire count only ever grows, so it is exposed with counter
	// semantics (the _total suffix requires them).
	reg.NewCounterFunc("histcube_fault_injected_total",
		"Faults fired by the injector since start.",
		i.Injected)
	reg.NewGaugeFunc("histcube_fault_armed",
		"1 while fault rules are armed, 0 after Heal.",
		func() float64 {
			i.mu.Lock()
			defer i.mu.Unlock()
			if i.healed {
				return 0
			}
			return 1
		})
}

func (i *Injector) wait(d time.Duration) {
	if d > 0 {
		i.sleep(d)
	}
}

// File is the file surface the WAL writes segments through — a
// structural copy of wal.SegmentFile (see the package comment for why
// it is not an import).
type File interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
}

// WrapFile interposes the injector on a segment file. Writes check
// site prefix+".write" (a torn outcome persists the first half of the
// buffer before failing, like a crash mid-write), Sync checks
// prefix+".sync"; Close and Truncate pass through so recovery and
// rollback paths stay reliable.
func (i *Injector) WrapFile(prefix string, f File) File {
	if i == nil {
		return f
	}
	return &faultFile{inj: i, prefix: prefix, f: f}
}

type faultFile struct {
	inj    *Injector
	prefix string
	f      File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	out := ff.inj.Check(ff.prefix + ".write")
	ff.inj.wait(out.Delay)
	if out.Err != nil {
		if out.Torn && len(p) > 1 {
			// A torn write leaves a partial frame on disk, exactly like
			// power loss mid-write; the short-write error is primary.
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, out.Err
		}
		return 0, out.Err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	out := ff.inj.Check(ff.prefix + ".sync")
	ff.inj.wait(out.Delay)
	if out.Err != nil {
		return out.Err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

// Backend is the page-store surface — a structural copy of
// pager.Backend.
type Backend interface {
	Load(id int, buf []byte) error
	Store(id int, buf []byte) error
	Sync() error
	Close() error
}

// WrapBackend interposes the injector on a page backend: Load checks
// site prefix+".load", Store prefix+".store", Sync prefix+".sync";
// Close passes through.
func (i *Injector) WrapBackend(prefix string, b Backend) Backend {
	if i == nil {
		return b
	}
	return &faultBackend{inj: i, prefix: prefix, b: b}
}

type faultBackend struct {
	inj    *Injector
	prefix string
	b      Backend
}

func (fb *faultBackend) Load(id int, buf []byte) error {
	out := fb.inj.Check(fb.prefix + ".load")
	fb.inj.wait(out.Delay)
	if out.Err != nil {
		return out.Err
	}
	return fb.b.Load(id, buf)
}

func (fb *faultBackend) Store(id int, buf []byte) error {
	out := fb.inj.Check(fb.prefix + ".store")
	fb.inj.wait(out.Delay)
	if out.Err != nil {
		return out.Err
	}
	return fb.b.Store(id, buf)
}

func (fb *faultBackend) Sync() error {
	out := fb.inj.Check(fb.prefix + ".sync")
	fb.inj.wait(out.Delay)
	if out.Err != nil {
		return out.Err
	}
	return fb.b.Sync()
}

func (fb *faultBackend) Close() error { return fb.b.Close() }

// WrapConn interposes the injector on a network connection: Read
// checks site prefix+".read", Write prefix+".write". A drop outcome
// closes the underlying connection before returning its error, so the
// peer observes the teardown too — the closest a test gets to a cable
// pull. Close and the deadline methods pass through.
func (i *Injector) WrapConn(prefix string, c net.Conn) net.Conn {
	if i == nil {
		return c
	}
	return &faultConn{Conn: c, inj: i, prefix: prefix}
}

type faultConn struct {
	net.Conn
	inj    *Injector
	prefix string
}

func (fc *faultConn) Read(p []byte) (int, error) {
	out := fc.inj.Check(fc.prefix + ".read")
	fc.inj.wait(out.Delay)
	if out.Drop {
		_ = fc.Conn.Close()
	}
	if out.Err != nil {
		return 0, out.Err
	}
	return fc.Conn.Read(p)
}

func (fc *faultConn) Write(p []byte) (int, error) {
	out := fc.inj.Check(fc.prefix + ".write")
	fc.inj.wait(out.Delay)
	if out.Drop {
		_ = fc.Conn.Close()
	}
	if out.Err != nil {
		return 0, out.Err
	}
	return fc.Conn.Write(p)
}
