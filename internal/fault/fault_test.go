package fault

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                      // no rules
		"wal.write",             // no kind
		"wal.write:explode",     // unknown kind
		"wal.write:slow=banana", // bad duration
		"wal.write:err@0",       // @N must be >= 1
		"wal.write:err%2",       // probability > 1
		"wal.write:err%0",       // probability must be positive
		"wal.write:err@3%0.5",   // mixed triggers
		"wal.write:errx0",       // bad cap
		":err",                  // empty site
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestNthOpFiresOnce(t *testing.T) {
	inj := MustParse("wal.write:err@3", 1)
	for n := 1; n <= 6; n++ {
		out := inj.Check("wal.write")
		if (n == 3) != (out.Err != nil) {
			t.Fatalf("op %d: err=%v, want an error exactly on op 3", n, out.Err)
		}
	}
	if got := inj.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	if got := inj.Ops("wal.write"); got != 6 {
		t.Fatalf("Ops = %d, want 6", got)
	}
}

func TestPersistentNthOp(t *testing.T) {
	inj := MustParse("wal.write:nospace@3+", 1)
	for n := 1; n <= 6; n++ {
		out := inj.Check("wal.write")
		wantErr := n >= 3
		if wantErr != (out.Err != nil) {
			t.Fatalf("op %d: err=%v, want errors from op 3 on", n, out.Err)
		}
		if wantErr && !errors.Is(out.Err, syscall.ENOSPC) {
			t.Fatalf("op %d: %v should wrap syscall.ENOSPC", n, out.Err)
		}
	}
}

func TestFireCap(t *testing.T) {
	inj := MustParse("pager.load:err@2+x2", 1)
	errs := 0
	for n := 1; n <= 10; n++ {
		if inj.Check("pager.load").Err != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("errors = %d, want the x2 cap", errs)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	inj := MustParse("wal.write:err@1", 1)
	if out := inj.Check("wal.sync"); out.Err != nil {
		t.Fatalf("wal.sync should be unaffected, got %v", out.Err)
	}
	if out := inj.Check("wal.write"); out.Err == nil {
		t.Fatal("wal.write op 1 should fail")
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := MustParse("pager.load:err%0.3", seed)
		out := make([]bool, 50)
		for n := range out {
			out[n] = inj.Check("pager.load").Err != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i+1)
		}
	}
	fires := 0
	for _, hit := range a {
		if hit {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("fires = %d/%d, want a proper subset for p=0.3", fires, len(a))
	}
}

func TestSlowOutcome(t *testing.T) {
	inj := MustParse("wal.sync:slow=5ms@1", 1)
	if d := inj.Check("wal.sync").Delay; d != 5*time.Millisecond {
		t.Fatalf("Delay = %v, want 5ms", d)
	}
}

func TestPanicKindPanics(t *testing.T) {
	inj := MustParse("serve.dispatch:panic@2", 1)
	if out := inj.Check("serve.dispatch"); out.Err != nil {
		t.Fatalf("op 1 should pass, got %v", out.Err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("op 2 should panic")
		}
		if !strings.Contains(r.(string), "serve.dispatch") {
			t.Fatalf("panic %v should name the site", r)
		}
	}()
	inj.Check("serve.dispatch")
}

func TestHealAndArm(t *testing.T) {
	inj := MustParse("wal.write:err", 1)
	if inj.Check("wal.write").Err == nil {
		t.Fatal("armed rule should fire on every op")
	}
	inj.Heal()
	if inj.Check("wal.write").Err != nil {
		t.Fatal("healed injector should be inert")
	}
	inj.Arm()
	if inj.Check("wal.write").Err == nil {
		t.Fatal("re-armed rule should fire again")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if out := inj.Check("anything"); out.Err != nil || out.Delay != 0 {
		t.Fatalf("nil injector returned %+v", out)
	}
	if inj.Injected() != 0 {
		t.Fatal("nil injector Injected should be 0")
	}
}

// memFile is a minimal File for wrapper tests.
type memFile struct {
	data   []byte
	syncs  int
	closes int
}

func (m *memFile) Write(p []byte) (int, error) { m.data = append(m.data, p...); return len(p), nil }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closes++; return nil }
func (m *memFile) Truncate(size int64) error   { m.data = m.data[:size]; return nil }

func TestWrapFileTornWrite(t *testing.T) {
	inj := MustParse("wal.write:short@2", 1)
	mf := &memFile{}
	f := inj.WrapFile("wal", mf)
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	n, err := f.Write([]byte("abcdefghij"))
	if err == nil {
		t.Fatal("op 2 should fail torn")
	}
	if n != 5 || string(mf.data) != "0123456789abcde" {
		t.Fatalf("torn write persisted %d bytes, data %q; want half the buffer", n, mf.data)
	}
	// Truncate passes through so rollback works.
	if err := f.Truncate(10); err != nil || string(mf.data) != "0123456789" {
		t.Fatalf("truncate rollback failed: %v, data %q", err, mf.data)
	}
}

func TestWrapBackendSites(t *testing.T) {
	inj := MustParse("pager.store:err@1;pager.sync:err@1", 1)
	var calls []string
	b := inj.WrapBackend("pager", recordingBackend{&calls})
	buf := make([]byte, 4)
	if err := b.Load(0, buf); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := b.Store(0, buf); err == nil {
		t.Fatal("store op 1 should fail")
	}
	if err := b.Sync(); err == nil {
		t.Fatal("sync op 1 should fail")
	}
	if err := b.Store(0, buf); err != nil {
		t.Fatalf("store op 2: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	want := "load store close"
	if got := strings.Join(calls, " "); got != want {
		t.Fatalf("inner calls %q, want %q (failed ops must not reach the backend)", got, want)
	}
}

type recordingBackend struct{ calls *[]string }

func (r recordingBackend) Load(id int, buf []byte) error {
	*r.calls = append(*r.calls, "load")
	return nil
}
func (r recordingBackend) Store(id int, buf []byte) error {
	*r.calls = append(*r.calls, "store")
	return nil
}
func (r recordingBackend) Sync() error  { *r.calls = append(*r.calls, "sync"); return nil }
func (r recordingBackend) Close() error { *r.calls = append(*r.calls, "close"); return nil }
