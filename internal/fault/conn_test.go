package fault

import (
	"errors"
	"net"
	"testing"
	"time"
)

// connPair returns the two ends of an in-memory connection.
func connPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return c1, c2
}

func TestWrapConnDropSeversBothEnds(t *testing.T) {
	inj := MustParse("link.write:drop@2", 1)
	local, remote := connPair(t)
	c := inj.WrapConn("link", local)

	echoed := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		if _, err := remote.Read(buf); err != nil {
			echoed <- err
			return
		}
		_, err := remote.Read(buf) // second read must see the teardown
		echoed <- err
	}()

	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := c.Write([]byte("ping")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: %v, want injected drop", err)
	}
	// The drop closed the underlying conn, so the peer unblocks with an
	// error rather than hanging.
	select {
	case err := <-echoed:
		if err == nil {
			t.Fatal("peer read succeeded after drop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer still blocked after drop")
	}
	if _, err := c.Write([]byte("ping")); err == nil {
		t.Fatal("write on dropped conn succeeded")
	}
}

func TestWrapConnReadDropAndStall(t *testing.T) {
	inj := MustParse("link.read:drop@1", 2)
	local, remote := connPair(t)
	c := inj.WrapConn("link", local)
	go func() { remote.Write([]byte("x")) }()
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v, want injected drop", err)
	}

	// stall adds latency but completes the I/O.
	var slept time.Duration
	inj2 := MustParse("link.read:stall=40ms", 3)
	inj2.sleep = func(d time.Duration) { slept += d }
	l2, r2 := connPair(t)
	c2 := inj2.WrapConn("link", l2)
	go func() { r2.Write([]byte("y")) }()
	buf := make([]byte, 1)
	n, err := c2.Read(buf)
	if err != nil || n != 1 || buf[0] != 'y' {
		t.Fatalf("stalled read: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	if slept != 40*time.Millisecond {
		t.Fatalf("stall slept %v, want 40ms", slept)
	}
}

func TestParseConnKinds(t *testing.T) {
	if _, err := Parse("a.read:drop@3;b.write:stall=5ms%0.5", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("a.read:stall=", 1); err == nil {
		t.Fatal("empty stall duration accepted")
	}
	if _, err := Parse("a.read:stall=-5ms", 1); err == nil {
		t.Fatal("negative stall duration accepted")
	}
}
