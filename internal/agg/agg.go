// Package agg models the invertible aggregate operators the paper's
// framework supports: SUM, COUNT, and AVERAGE maintained as SUM and
// COUNT. An operator is invertible when partial aggregates can be
// subtracted out, which is what lets the framework answer a range in
// the transaction-time dimension as the difference of two cumulative
// (prefix-time) queries.
package agg

import (
	"errors"
	"fmt"
)

// Operator identifies an aggregate operator.
type Operator int

const (
	// Sum aggregates measure values by addition.
	Sum Operator = iota
	// Count counts data points; each insert contributes 1.
	Count
	// Average is maintained as the pair (Sum, Count) and finalised as
	// Sum/Count.
	Average
	// Min is listed only to document that non-invertible operators are
	// rejected by the framework.
	Min
	// Max is listed only to document that non-invertible operators are
	// rejected by the framework.
	Max
)

// ErrNotInvertible reports that an operator cannot be used with the
// prefix-difference framework (e.g. MIN/MAX).
var ErrNotInvertible = errors.New("agg: operator is not invertible; the framework supports SUM, COUNT and AVERAGE only")

// String returns the operator's conventional upper-case name.
func (op Operator) String() string {
	switch op {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Average:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Operator(%d)", int(op))
	}
}

// Invertible reports whether the operator admits subtraction of
// partial aggregates.
func (op Operator) Invertible() bool {
	switch op {
	case Sum, Count, Average:
		return true
	default:
		return false
	}
}

// Validate returns ErrNotInvertible for operators the framework cannot
// support and nil otherwise.
func (op Operator) Validate() error {
	if !op.Invertible() {
		return fmt.Errorf("%w: got %s", ErrNotInvertible, op)
	}
	return nil
}

// Value is a partial aggregate: a running sum and a running count.
// SUM reads Sum, COUNT reads Count, AVERAGE finalises Sum/Count.
type Value struct {
	Sum   float64
	Count float64
}

// Add combines two partial aggregates.
func (v Value) Add(o Value) Value {
	return Value{Sum: v.Sum + o.Sum, Count: v.Count + o.Count}
}

// Sub removes a partial aggregate, the inverse of Add.
func (v Value) Sub(o Value) Value {
	return Value{Sum: v.Sum - o.Sum, Count: v.Count - o.Count}
}

// Neg returns the additive inverse.
func (v Value) Neg() Value { return Value{Sum: -v.Sum, Count: -v.Count} }

// Scale multiplies the partial aggregate by factor f. The combination
// step of pre-aggregation techniques multiplies per-dimension factors
// (+1/-1) together, so f is typically ±1.
func (v Value) Scale(f float64) Value {
	return Value{Sum: v.Sum * f, Count: v.Count * f}
}

// Point converts one data point with measure value m into the partial
// aggregate it contributes under operator op.
func Point(op Operator, m float64) Value {
	switch op {
	case Sum:
		return Value{Sum: m, Count: 1}
	case Count:
		return Value{Sum: 1, Count: 1}
	case Average:
		return Value{Sum: m, Count: 1}
	default:
		panic("agg: Point called with non-invertible operator " + op.String())
	}
}

// Finalize converts a partial aggregate into the operator's scalar
// result. AVERAGE of an empty range is defined as 0.
func Finalize(op Operator, v Value) float64 {
	switch op {
	case Sum:
		return v.Sum
	case Count:
		return v.Count
	case Average:
		//histlint:ignore nofloateq Count accumulates exact small integers (±1 per point), so zero is exact and means an empty range
		if v.Count == 0 {
			return 0
		}
		return v.Sum / v.Count
	default:
		panic("agg: Finalize called with non-invertible operator " + op.String())
	}
}
