package agg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestOperatorString(t *testing.T) {
	cases := map[Operator]string{
		Sum: "SUM", Count: "COUNT", Average: "AVG", Min: "MIN", Max: "MAX",
		Operator(42): "Operator(42)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestInvertible(t *testing.T) {
	for _, op := range []Operator{Sum, Count, Average} {
		if !op.Invertible() {
			t.Errorf("%s.Invertible() = false", op)
		}
		if err := op.Validate(); err != nil {
			t.Errorf("%s.Validate() = %v", op, err)
		}
	}
	for _, op := range []Operator{Min, Max, Operator(99)} {
		if op.Invertible() {
			t.Errorf("%s.Invertible() = true", op)
		}
		if err := op.Validate(); !errors.Is(err, ErrNotInvertible) {
			t.Errorf("%s.Validate() = %v, want ErrNotInvertible", op, err)
		}
	}
}

func TestValueArithmetic(t *testing.T) {
	a := Value{Sum: 5, Count: 2}
	b := Value{Sum: 3, Count: 1}
	if got := a.Add(b); got != (Value{Sum: 8, Count: 3}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Value{Sum: 2, Count: 1}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Neg(); got != (Value{Sum: -5, Count: -2}) {
		t.Errorf("Neg = %+v", got)
	}
	if got := a.Scale(-1); got != (Value{Sum: -5, Count: -2}) {
		t.Errorf("Scale(-1) = %+v", got)
	}
	if got := a.Scale(0); got != (Value{}) {
		t.Errorf("Scale(0) = %+v", got)
	}
}

func TestPointContribution(t *testing.T) {
	if got := Point(Sum, 7.5); got != (Value{Sum: 7.5, Count: 1}) {
		t.Errorf("Point(Sum) = %+v", got)
	}
	if got := Point(Count, 7.5); got != (Value{Sum: 1, Count: 1}) {
		t.Errorf("Point(Count) = %+v", got)
	}
	if got := Point(Average, 7.5); got != (Value{Sum: 7.5, Count: 1}) {
		t.Errorf("Point(Average) = %+v", got)
	}
}

func TestPointPanicsOnNonInvertible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Point(Min) did not panic")
		}
	}()
	Point(Min, 1)
}

func TestFinalize(t *testing.T) {
	v := Value{Sum: 10, Count: 4}
	if got := Finalize(Sum, v); got != 10 {
		t.Errorf("Finalize(Sum) = %v", got)
	}
	if got := Finalize(Count, v); got != 4 {
		t.Errorf("Finalize(Count) = %v", got)
	}
	if got := Finalize(Average, v); got != 2.5 {
		t.Errorf("Finalize(Average) = %v", got)
	}
	if got := Finalize(Average, Value{}); got != 0 {
		t.Errorf("Finalize(Average, empty) = %v, want 0", got)
	}
}

func TestFinalizePanicsOnNonInvertible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Finalize(Max) did not panic")
		}
	}()
	Finalize(Max, Value{})
}

// Property: Sub is the inverse of Add.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(s1, c1, s2, c2 float64) bool {
		if math.IsNaN(s1) || math.IsNaN(c1) || math.IsNaN(s2) || math.IsNaN(c2) {
			return true
		}
		a := Value{Sum: s1, Count: c1}
		b := Value{Sum: s2, Count: c2}
		got := a.Add(b).Sub(b)
		return got.Sum == s1+s2-s2 && got.Count == c1+c2-c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and associative (exactly, for values
// that avoid float rounding, here small integers).
func TestAddAlgebraProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		va := Value{Sum: float64(a), Count: 1}
		vb := Value{Sum: float64(b), Count: 1}
		vc := Value{Sum: float64(c), Count: 1}
		comm := va.Add(vb) == vb.Add(va)
		assoc := va.Add(vb).Add(vc) == va.Add(vb.Add(vc))
		return comm && assoc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
