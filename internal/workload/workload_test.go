package workload

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
)

func TestPaperSpecGeometry(t *testing.T) {
	cases := []struct {
		spec       Spec
		totalCells int
		tolerance  float64 // relative deviation from paper's cell count
		paperCells int
	}{
		{Weather4Spec, 180 * 360 * 9 * 246, 0.01, 143648037},
		{Weather6Spec, 18 * 36 * 9 * 9 * 9 * 296, 0.01, 139826700},
		{Gauss3Spec, 271 * 271 * 271, 0.0001, 19902511},
	}
	for _, c := range cases {
		got := c.spec.SliceShape.Size() * c.spec.TimeSize
		if got != c.totalCells {
			t.Errorf("%s: cells = %d, want %d", c.spec.Name, got, c.totalCells)
		}
		dev := math.Abs(float64(got)-float64(c.paperCells)) / float64(c.paperCells)
		if dev > c.tolerance {
			t.Errorf("%s: %d cells deviates %.4f from paper's %d", c.spec.Name, got, dev, c.paperCells)
		}
	}
}

func TestGenerateSortedAndInBounds(t *testing.T) {
	for _, spec := range []Spec{
		Weather4Spec.Scaled(0.001),
		Weather6Spec.Scaled(0.001),
		Gauss3Spec.Scaled(0.001),
	} {
		ds := Generate(spec)
		if len(ds.Updates) != spec.Points {
			t.Errorf("%s: %d updates, want %d", spec.Name, len(ds.Updates), spec.Points)
		}
		if !sort.SliceIsSorted(ds.Updates, func(i, j int) bool { return ds.Updates[i].Time < ds.Updates[j].Time }) {
			t.Errorf("%s: updates not in TT order", spec.Name)
		}
		for _, u := range ds.Updates {
			if u.Time < 0 || u.Time >= int64(spec.TimeSize) {
				t.Fatalf("%s: time %d out of [0,%d)", spec.Name, u.Time, spec.TimeSize)
			}
			if !spec.SliceShape.Contains(u.Coords) {
				t.Fatalf("%s: coords %v out of shape %v", spec.Name, u.Coords, spec.SliceShape)
			}
			if u.Delta <= 0 {
				t.Fatalf("%s: non-positive delta %v", spec.Name, u.Delta)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Gauss3Spec.Scaled(0.001))
	b := Generate(Gauss3Spec.Scaled(0.001))
	if len(a.Updates) != len(b.Updates) {
		t.Fatal("lengths differ")
	}
	for i := range a.Updates {
		ua, ub := a.Updates[i], b.Updates[i]
		if ua.Time != ub.Time || ua.Delta != ub.Delta {
			t.Fatalf("update %d differs", i)
		}
		for j := range ua.Coords {
			if ua.Coords[j] != ub.Coords[j] {
				t.Fatalf("update %d coord %d differs", i, j)
			}
		}
	}
}

func TestScaledPreservesDensity(t *testing.T) {
	for _, spec := range []Spec{Weather4Spec, Weather6Spec, Gauss3Spec} {
		s := spec.Scaled(0.001)
		origDensity := float64(spec.Points) / float64(spec.SliceShape.Size()*spec.TimeSize)
		newDensity := float64(s.Points) / float64(s.SliceShape.Size()*s.TimeSize)
		if newDensity < origDensity/3 || newDensity > origDensity*3 {
			t.Errorf("%s: scaled density %.5f vs original %.5f", spec.Name, newDensity, origDensity)
		}
		if len(s.SliceShape) != len(spec.SliceShape) {
			t.Errorf("%s: scaling changed dimensionality", spec.Name)
		}
	}
	// Scale >= 1 is identity.
	s := Weather4Spec.Scaled(1.5)
	if s.Name != Weather4Spec.Name || s.Points != Weather4Spec.Points {
		t.Error("Scaled(>=1) changed the spec")
	}
}

func TestCountSemantics(t *testing.T) {
	ds := Generate(Weather4Spec.Scaled(0.0005))
	for _, u := range ds.Updates {
		if u.Delta != 1 {
			t.Fatalf("weather4 is a COUNT cube; delta = %v", u.Delta)
		}
	}
}

func TestClusteredDataIsClustered(t *testing.T) {
	// gauss3's clusters must make per-slice update counts much more
	// variable than a uniform stream of the same size.
	spec := Gauss3Spec.Scaled(0.005)
	ds := Generate(spec)
	uni := Generate(Spec{
		Name:       "uniform",
		SliceShape: spec.SliceShape,
		TimeSize:   spec.TimeSize,
		Points:     spec.Points,
		Seed:       7,
	})
	variance := func(d *Dataset) float64 {
		counts := make([]float64, d.TimeSize)
		for _, u := range d.Updates {
			counts[u.Time]++
		}
		mean := float64(len(d.Updates)) / float64(d.TimeSize)
		v := 0.0
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(d.TimeSize)
	}
	if variance(ds) < 2*variance(uni) {
		t.Errorf("gauss3 per-slice variance %.1f not clearly above uniform %.1f", variance(ds), variance(uni))
	}
}

func TestBoxesValidAndMixed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	shape := dims.Shape{40, 30, 9}
	boxes := Boxes(r, shape, 2000, false)
	full, point := 0, 0
	for _, b := range boxes {
		if err := b.Validate(shape); err != nil {
			t.Fatalf("invalid box %v: %v", b, err)
		}
		if b.Size() == shape.Size() {
			full++
		}
		if b.Size() == 1 {
			point++
		}
	}
	// With 10% full-domain per dimension, all-dims-full is ~0.1%; some
	// variety must exist.
	if full == 0 {
		t.Log("no full-domain boxes in 2000 (possible but unlikely)")
	}
	if point == 0 {
		t.Log("no point boxes in 2000 (possible but unlikely)")
	}
}

func TestSkewBoxesConcentrate(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	shape := dims.Shape{100, 100}
	skew := Boxes(r, shape, 3000, true)
	uni := Boxes(r, shape, 3000, false)
	inCenter := func(bs []dims.Box) int {
		n := 0
		for _, b := range bs {
			if b.Lo[0] >= 25 && b.Hi[0] < 75 && b.Lo[1] >= 25 && b.Hi[1] < 75 {
				n++
			}
		}
		return n
	}
	if inCenter(skew) < 2*inCenter(uni) {
		t.Errorf("skew queries not concentrated: %d vs %d in centre region", inCenter(skew), inCenter(uni))
	}
}

func TestTimeQueriesSplit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	qs := TimeQueries(r, dims.Shape{20, 20}, 50, 500, false)
	for _, q := range qs {
		if q.TimeLo < 0 || q.TimeHi >= 50 || q.TimeLo > q.TimeHi {
			t.Fatalf("bad time range [%d,%d]", q.TimeLo, q.TimeHi)
		}
		if err := q.Box.Validate(dims.Shape{20, 20}); err != nil {
			t.Fatalf("bad box: %v", err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(Gauss3Spec.Scaled(0.0005))
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != ds.Name || back.TimeSize != ds.TimeSize || len(back.Updates) != len(ds.Updates) {
		t.Fatalf("round trip header mismatch: %+v vs %+v", back.Name, ds.Name)
	}
	for i := range ds.Updates {
		a, b := ds.Updates[i], back.Updates[i]
		if a.Time != b.Time || a.Delta != b.Delta {
			t.Fatalf("update %d mismatch", i)
		}
		for j := range a.Coords {
			if a.Coords[j] != b.Coords[j] {
				t.Fatalf("update %d coord %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("garbage\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("# name=x slice=2x2 time=3\n1,2\n")); err == nil {
		t.Error("short line accepted")
	}
}

// Property: generated boxes are always valid for their shape.
func TestBoxesValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(4) + 1
		shape := make(dims.Shape, d)
		for i := range shape {
			shape[i] = r.Intn(30) + 1
		}
		for _, b := range Boxes(r, shape, 50, r.Intn(2) == 0) {
			if b.Validate(shape) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNonEmptyAndDensity(t *testing.T) {
	ds := &Dataset{
		Name:       "tiny",
		SliceShape: dims.Shape{4},
		TimeSize:   4,
		Updates: []Update{
			{Time: 0, Coords: []int{1}, Delta: 1},
			{Time: 0, Coords: []int{1}, Delta: 1}, // duplicate cell
			{Time: 2, Coords: []int{3}, Delta: 1},
		},
	}
	if got := ds.NonEmpty(); got != 2 {
		t.Errorf("NonEmpty = %d, want 2", got)
	}
	if got := ds.Density(); got != 2.0/16 {
		t.Errorf("Density = %v", got)
	}
}

// TestCoordGenSkew: the Zipf generator concentrates mass on low
// coordinates (the hot-spot shard-imbalance model), stays in bounds,
// is deterministic per seed, and falls back to uniform for skew <= 1.
func TestCoordGenSkew(t *testing.T) {
	shape := dims.Shape{64, 64}
	const draws = 20000

	gen := CoordGen(rand.New(rand.NewSource(9)), shape, 1.5)
	zeros := 0
	for i := 0; i < draws; i++ {
		c := gen()
		for j, n := range shape {
			if c[j] < 0 || c[j] >= n {
				t.Fatalf("draw %d: coordinate %d = %d out of [0, %d)", i, j, c[j], n)
			}
		}
		if c[0] == 0 {
			zeros++
		}
	}
	// Uniform would put ~1/64 (~1.6%) of draws at coordinate 0; Zipf
	// with s=1.5 puts a large constant fraction there.
	if frac := float64(zeros) / draws; frac < 0.15 {
		t.Errorf("zipf(1.5): coordinate 0 drawn %.3f of the time, want a hot spot >= 0.15", frac)
	}

	uni := CoordGen(rand.New(rand.NewSource(9)), shape, 0)
	zeros = 0
	for i := 0; i < draws; i++ {
		if uni()[0] == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / draws; frac > 0.05 {
		t.Errorf("uniform: coordinate 0 drawn %.3f of the time, want ~1/64", frac)
	}

	// Same seed, same stream.
	a := CoordGen(rand.New(rand.NewSource(7)), shape, 2)
	b := CoordGen(rand.New(rand.NewSource(7)), shape, 2)
	for i := 0; i < 100; i++ {
		av, bv := a(), b()
		if av[0] != bv[0] || av[1] != bv[1] {
			t.Fatalf("draw %d: %v != %v with identical seeds", i, av, bv)
		}
	}
}

// TestGenerateSkewed: a Spec with Skew produces in-bounds, sorted,
// hot-spotted updates.
func TestGenerateSkewed(t *testing.T) {
	spec := Spec{
		Name:       "skewed",
		SliceShape: dims.Shape{32, 32},
		TimeSize:   64,
		Points:     5000,
		Clusters:   10, // overridden by Skew
		Skew:       1.8,
		Seed:       5,
	}
	ds := Generate(spec)
	if len(ds.Updates) != spec.Points {
		t.Fatalf("generated %d updates, want %d", len(ds.Updates), spec.Points)
	}
	zeros := 0
	for i, u := range ds.Updates {
		if i > 0 && u.Time < ds.Updates[i-1].Time {
			t.Fatal("updates not sorted by time")
		}
		for j, n := range spec.SliceShape {
			if u.Coords[j] < 0 || u.Coords[j] >= n {
				t.Fatalf("update %d: coordinate out of bounds: %v", i, u.Coords)
			}
		}
		if u.Coords[0] == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(spec.Points); frac < 0.15 {
		t.Errorf("skewed spec: coordinate 0 seen %.3f of the time, want >= 0.15", frac)
	}
}
