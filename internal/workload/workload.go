// Package workload generates the data sets and query sets of the
// paper's evaluation (Section 5, Table 3). The original cloud
// observation data (Hahn/Warren/London, NDP-026B) is not
// redistributable, so the generators produce synthetic equivalents
// with the same dimensionality, domain sizes, cell counts, densities
// and clustering character; every metric the paper reports is a
// deterministic cell or page access count, which depends only on that
// geometry and on the query/update distributions, not on the actual
// measure values.
//
//	weather4 — COUNT cube, 4 dims (lat x lon at 1 degree, total cloud
//	           cover, time); ~143.6M cells, ~1.05M non-empty (0.0073)
//	weather6 — SUM cube, 6 dims (lat x lon at 10 degrees, total cloud
//	           cover, lower amount, middle amount, time); ~139.8M
//	           cells, ~0.55M non-empty (0.0039)
//	gauss3   — SUM cube, 3 dims of 271 with 60 gaussian clusters;
//	           19,902,511 cells, ~0.95M non-empty (0.048)
//
// Query sets follow Section 5's mixes: "uni" draws each dimension's
// predicate as prefix range (0.1), general range (0.7), point (0.1) or
// complete domain (0.1); "skew" concentrates 80% of queries in a
// sub-region 0.5^d the size of the data space.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"histcube/internal/dims"
)

// Update is one append event: a point in the cube receives a delta at
// a transaction time.
type Update struct {
	Time   int64
	Coords []int
	Delta  float64
}

// Dataset is a generated workload: a cube geometry plus its update
// stream in transaction-time order.
type Dataset struct {
	Name       string
	SliceShape dims.Shape // the d-1 non-time dimensions
	TimeSize   int        // domain size of the TT-dimension
	Updates    []Update   // sorted by Time
}

// TotalCells returns the full cube size including the TT-dimension.
func (d *Dataset) TotalCells() int { return d.SliceShape.Size() * d.TimeSize }

// NonEmpty counts distinct (time, coords) cells touched by updates.
func (d *Dataset) NonEmpty() int {
	seen := make(map[string]struct{}, len(d.Updates))
	key := make([]byte, 0, 32)
	for _, u := range d.Updates {
		key = key[:0]
		key = appendInt(key, u.Time)
		for _, c := range u.Coords {
			key = appendInt(key, int64(c))
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

// appendInt encodes the full 64-bit value: widening is always exact,
// where the old 32-bit truncation could alias two distinct cells.
func appendInt(b []byte, v int64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56), ',')
}

// Density returns NonEmpty / TotalCells.
func (d *Dataset) Density() float64 {
	return float64(d.NonEmpty()) / float64(d.TotalCells())
}

// Spec describes a dataset generator configuration.
type Spec struct {
	Name       string
	SliceShape dims.Shape
	TimeSize   int
	// Points is the number of update events to generate.
	Points int
	// Clusters is the number of spatial clusters (0 = uniform).
	Clusters int
	// ClusterSigmaFrac is each cluster's gaussian sigma as a fraction
	// of the domain size (default 0.05).
	ClusterSigmaFrac float64
	// TimeClustered adds the TT-dimension to the clustering (gauss3
	// style: update volume varies per slice); otherwise times are
	// drawn with a smooth seasonal weight (weather style).
	TimeClustered bool
	// CountSemantics makes every delta 1 (COUNT cube); otherwise
	// deltas are small positive integers (SUM cube).
	CountSemantics bool
	// Skew, when > 1, draws every slice coordinate from a Zipf
	// distribution with that exponent instead of the uniform or
	// clustered placement: low coordinates become hot spots, which is
	// the shard-imbalance scenario histproxy topologies are tested
	// against. Skew overrides Clusters.
	Skew float64
	Seed int64
}

// Paper-scale specs matching Table 3.
var (
	// Weather4Spec: 180x360x9 slices x 246 times = 143,467,200 cells,
	// 1,048,679 points (density 0.0073).
	Weather4Spec = Spec{
		Name:       "weather4",
		SliceShape: dims.Shape{180, 360, 9},
		TimeSize:   246,
		Points:     1048679,
		Clusters:   40,
		Seed:       41,
		// COUNT data cube, per Table 3.
		CountSemantics: true,
	}
	// Weather6Spec: 18x36x9x9x9 slices x 296 times = 139,828,032
	// cells, 549,010 points (density 0.0039).
	Weather6Spec = Spec{
		Name:       "weather6",
		SliceShape: dims.Shape{18, 36, 9, 9, 9},
		TimeSize:   296,
		Points:     549010,
		Clusters:   40,
		Seed:       42,
	}
	// Gauss3Spec: 271x271 slices x 271 times = 19,902,511 cells,
	// 950,633 points in 60 dense clusters (density 0.048).
	Gauss3Spec = Spec{
		Name:          "gauss3",
		SliceShape:    dims.Shape{271, 271},
		TimeSize:      271,
		Points:        950633,
		Clusters:      60,
		TimeClustered: true,
		Seed:          43,
	}
)

// Scaled returns the spec shrunk so the total cell count is roughly
// scale times the original, preserving density, dimensionality and
// clustering character. scale >= 1 returns the spec unchanged.
func (s Spec) Scaled(scale float64) Spec {
	if scale >= 1 {
		return s
	}
	d := len(s.SliceShape) + 1
	f := math.Pow(scale, 1/float64(d))
	out := s
	out.Name = fmt.Sprintf("%s@%.3g", s.Name, scale)
	out.SliceShape = make(dims.Shape, len(s.SliceShape))
	for i, n := range s.SliceShape {
		out.SliceShape[i] = scaleDim(n, f)
	}
	out.TimeSize = scaleDim(s.TimeSize, f)
	cellRatio := float64(out.SliceShape.Size()*out.TimeSize) / float64(s.SliceShape.Size()*s.TimeSize)
	out.Points = int(float64(s.Points) * cellRatio)
	if out.Points < 100 {
		out.Points = 100
	}
	return out
}

func scaleDim(n int, f float64) int {
	v := int(math.Round(float64(n) * f))
	if v < 2 {
		v = 2
	}
	return v
}

// Generate produces the dataset for the spec, deterministically from
// its seed.
func Generate(s Spec) *Dataset {
	r := rand.New(rand.NewSource(s.Seed))
	d := len(s.SliceShape)
	sigFrac := s.ClusterSigmaFrac
	//histlint:ignore nofloateq zero is the spec's explicit "use the default" sentinel, not an arithmetic result
	if sigFrac == 0 {
		sigFrac = 0.05
	}

	// Cluster centres over the slice dimensions (and optionally time).
	type center struct {
		slice []float64
		time  float64
		w     float64
	}
	var centers []center
	if s.Clusters > 0 {
		centers = make([]center, s.Clusters)
		totalW := 0.0
		for i := range centers {
			c := center{slice: make([]float64, d), w: 0.5 + r.Float64()}
			for j, n := range s.SliceShape {
				c.slice[j] = r.Float64() * float64(n)
			}
			c.time = r.Float64() * float64(s.TimeSize)
			totalW += c.w
			centers[i] = c
		}
		for i := range centers {
			centers[i].w /= totalW
		}
	}

	pick := func() int {
		u := r.Float64()
		acc := 0.0
		for i, c := range centers {
			acc += c.w
			if u <= acc {
				return i
			}
		}
		return len(centers) - 1
	}

	var skewed func() []int
	if s.Skew > 1 {
		skewed = CoordGen(r, s.SliceShape, s.Skew)
	}

	updates := make([]Update, 0, s.Points)
	for i := 0; i < s.Points; i++ {
		coords := make([]int, d)
		var tv int64
		if skewed != nil {
			copy(coords, skewed())
			tv = int64(r.Intn(s.TimeSize))
		} else if s.Clusters == 0 {
			for j, n := range s.SliceShape {
				coords[j] = r.Intn(n)
			}
			tv = int64(r.Intn(s.TimeSize))
		} else {
			c := centers[pick()]
			for j, n := range s.SliceShape {
				coords[j] = clampInt(int(math.Round(c.slice[j]+r.NormFloat64()*sigFrac*float64(n))), 0, n-1)
			}
			if s.TimeClustered {
				tv = int64(clampInt(int(math.Round(c.time+r.NormFloat64()*sigFrac*float64(s.TimeSize))), 0, s.TimeSize-1))
			} else {
				// Seasonal weighting: a smooth sinusoid over the time
				// domain, as observation volume varies over the year.
				for {
					cand := r.Intn(s.TimeSize)
					season := 0.6 + 0.4*math.Sin(2*math.Pi*float64(cand)/float64(s.TimeSize))
					if r.Float64() <= season {
						tv = int64(cand)
						break
					}
				}
			}
		}
		delta := 1.0
		if !s.CountSemantics {
			delta = float64(r.Intn(8) + 1)
		}
		updates = append(updates, Update{Time: tv, Coords: coords, Delta: delta})
	}
	sort.SliceStable(updates, func(i, j int) bool { return updates[i].Time < updates[j].Time })
	return &Dataset{
		Name:       s.Name,
		SliceShape: s.SliceShape.Clone(),
		TimeSize:   s.TimeSize,
		Updates:    updates,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Boxes generates n range queries over the shape with the paper's
// "uni" predicate mix, or the "skew" variant when skew is true.
func Boxes(r *rand.Rand, shape dims.Shape, n int, skew bool) []dims.Box {
	out := make([]dims.Box, n)
	for i := range out {
		constrained := skew && r.Float64() < 0.8
		out[i] = oneBox(r, shape, constrained)
	}
	return out
}

// oneBox draws one query. When constrained, range endpoints are drawn
// from the central sub-region covering half of each dimension (a
// region of size 0.5^d of the data space).
func oneBox(r *rand.Rand, shape dims.Shape, constrained bool) dims.Box {
	lo := make([]int, len(shape))
	hi := make([]int, len(shape))
	for i, n := range shape {
		rLo, rHi := 0, n-1
		if constrained {
			rLo = n / 4
			rHi = rLo + n/2 - 1
			if rHi >= n {
				rHi = n - 1
			}
			if rHi < rLo {
				rHi = rLo
			}
		}
		span := rHi - rLo + 1
		u := r.Float64()
		switch {
		case u < 0.1: // prefix range: min <= x <= A
			lo[i] = 0
			hi[i] = rLo + r.Intn(span)
		case u < 0.8: // general range: A <= x <= B
			a := rLo + r.Intn(span)
			b := rLo + r.Intn(span)
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		case u < 0.9: // point: x = A
			a := rLo + r.Intn(span)
			lo[i], hi[i] = a, a
		default: // complete domain
			lo[i], hi[i] = 0, n-1
		}
	}
	return dims.Box{Lo: lo, Hi: hi}
}

// CoordGen returns a deterministic coordinate generator over shape:
// uniform when skew <= 1, Zipf-skewed with exponent skew otherwise
// (rand.Zipf requires s > 1). Under skew, coordinate 0 of every
// dimension is the hottest cell and popularity falls off as rank^-s —
// the standard hot-spot model for shard-imbalance testing. The
// returned slice is reused across calls; copy it to retain.
func CoordGen(r *rand.Rand, shape dims.Shape, skew float64) func() []int {
	coords := make([]int, len(shape))
	if skew <= 1 {
		return func() []int {
			for i, n := range shape {
				coords[i] = r.Intn(n)
			}
			return coords
		}
	}
	zipfs := make([]*rand.Zipf, len(shape))
	for i, n := range shape {
		zipfs[i] = rand.NewZipf(r, skew, 1, uint64(n-1))
	}
	return func() []int {
		for i := range shape {
			// Zipf draws are bounded by imax = n-1, so the narrowing is
			// total; the guard keeps the invariant checkable.
			c, ok := dims.ToCoord(int64(zipfs[i].Uint64()))
			if !ok || c >= shape[i] {
				c = shape[i] - 1
			}
			coords[i] = c
		}
		return coords
	}
}

// TimeQuery is a cube-level query: a time range plus a box over the
// slice dimensions.
type TimeQuery struct {
	TimeLo, TimeHi int64
	Box            dims.Box
}

// TimeQueries generates n cube-level queries: the TT-dimension is
// treated as one more dimension of the mix, then split off.
func TimeQueries(r *rand.Rand, sliceShape dims.Shape, timeSize, n int, skew bool) []TimeQuery {
	full := make(dims.Shape, 0, len(sliceShape)+1)
	full = append(full, timeSize)
	full = append(full, sliceShape...)
	boxes := Boxes(r, full, n, skew)
	out := make([]TimeQuery, n)
	for i, b := range boxes {
		out[i] = TimeQuery{
			TimeLo: int64(b.Lo[0]),
			TimeHi: int64(b.Hi[0]),
			Box:    dims.Box{Lo: b.Lo[1:], Hi: b.Hi[1:]},
		}
	}
	return out
}
