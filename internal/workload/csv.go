package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"histcube/internal/dims"
)

// WriteCSV streams the dataset as CSV: a header line with the
// geometry, then one line per update "time,c1,...,cd,delta".
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s slice=%s time=%d\n", d.Name, shapeString(d.SliceShape), d.TimeSize); err != nil {
		return err
	}
	for _, u := range d.Updates {
		if _, err := fmt.Fprintf(bw, "%d", u.Time); err != nil {
			return err
		}
		for _, c := range u.Coords {
			if _, err := fmt.Fprintf(bw, ",%d", c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, ",%g\n", u.Delta); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func shapeString(s dims.Shape) string {
	parts := make([]string, len(s))
	for i, n := range s {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "x")
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: empty input")
	}
	header := sc.Text()
	d := &Dataset{}
	var shapeStr string
	if _, err := fmt.Sscanf(header, "# name=%s slice=%s time=%d", &d.Name, &shapeStr, &d.TimeSize); err != nil {
		return nil, fmt.Errorf("workload: bad header %q: %w", header, err)
	}
	for _, part := range strings.Split(shapeStr, "x") {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("workload: bad shape %q: %w", shapeStr, err)
		}
		d.SliceShape = append(d.SliceShape, n)
	}
	dimsN := len(d.SliceShape)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != dimsN+2 {
			return nil, fmt.Errorf("workload: line %q has %d fields, want %d", line, len(fields), dimsN+2)
		}
		tv, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad time in %q: %w", line, err)
		}
		coords := make([]int, dimsN)
		for i := 0; i < dimsN; i++ {
			coords[i], err = strconv.Atoi(fields[1+i])
			if err != nil {
				return nil, fmt.Errorf("workload: bad coordinate in %q: %w", line, err)
			}
		}
		delta, err := strconv.ParseFloat(fields[dimsN+1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad delta in %q: %w", line, err)
		}
		d.Updates = append(d.Updates, Update{Time: tv, Coords: coords, Delta: delta})
	}
	return d, sc.Err()
}
