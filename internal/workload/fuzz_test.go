package workload

import (
	"math"
	"strings"
	"testing"
)

// FuzzCSVWorkload drives ReadCSV with arbitrary text: it must reject
// malformed input with an error (never panic), and any dataset it
// accepts must survive a WriteCSV/ReadCSV round-trip unchanged — the
// property cmd/histgen's output format depends on.
func FuzzCSVWorkload(f *testing.F) {
	ds := Generate(Gauss3Spec.Scaled(0.001))
	if len(ds.Updates) > 64 {
		ds.Updates = ds.Updates[:64] // realistic header and rows, cheap fuzz execs
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("# name=tiny slice=2x2 time=4\n0,0,1,2.5\n3,1,0,-1\n")
	f.Add("# name=tiny slice=2x2 time=4\n0,0,1,NaN\n")
	f.Add("# name=bad slice=2x time=4\n")
	f.Add("no header at all")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := ds.WriteCSV(&out); err != nil {
			t.Fatalf("accepted dataset does not write: %v", err)
		}
		ds2, err := ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("written dataset does not re-read: %v\n%s", err, out.String())
		}
		if ds.Name != ds2.Name || ds.TimeSize != ds2.TimeSize || len(ds.SliceShape) != len(ds2.SliceShape) ||
			len(ds.Updates) != len(ds2.Updates) {
			t.Fatalf("round-trip changed the dataset header:\n  first  %v %v %d updates\n  second %v %v %d updates",
				ds.Name, ds.SliceShape, len(ds.Updates), ds2.Name, ds2.SliceShape, len(ds2.Updates))
		}
		for i := range ds.SliceShape {
			if ds.SliceShape[i] != ds2.SliceShape[i] {
				t.Fatalf("round-trip changed the shape: %v vs %v", ds.SliceShape, ds2.SliceShape)
			}
		}
		for i := range ds.Updates {
			a, b := ds.Updates[i], ds2.Updates[i]
			if a.Time != b.Time || math.Float64bits(a.Delta) != math.Float64bits(b.Delta) {
				t.Fatalf("round-trip changed update %d: %+v vs %+v", i, a, b)
			}
			for j := range a.Coords {
				if a.Coords[j] != b.Coords[j] {
					t.Fatalf("round-trip changed update %d coords: %v vs %v", i, a.Coords, b.Coords)
				}
			}
		}
	})
}
