// Package retry provides bounded retry with exponential backoff and
// jitter for transient storage errors. The pager and WAL layers use it
// so a single flaky write does not bubble up as a failed request, while
// permanent conditions (out of space, canceled requests, errors marked
// with Permanent) fail fast instead of burning the backoff budget.
//
// The package is deliberately tiny and dependency-free: a Policy value
// is copyable configuration, Do is the only loop, and both the sleep
// and the jitter source are injectable so tests run deterministically
// with no wall-clock time.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"syscall"
	"time"
)

// Policy bounds a retry loop: up to Attempts tries with exponential
// backoff starting at Base, capped at Max, with multiplicative jitter.
// The zero value performs exactly one attempt (no retry).
type Policy struct {
	// Attempts is the total number of tries (first call included);
	// values below 1 mean a single attempt.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry.
	// 0 selects 1ms.
	Base time.Duration
	// Max caps the per-retry delay; 0 leaves it uncapped.
	Max time.Duration
	// Jitter spreads each delay multiplicatively over
	// [1-Jitter/2, 1+Jitter/2); 0 disables jitter.
	Jitter float64
	// Sleep replaces time.Sleep (tests pass a recorder).
	Sleep func(time.Duration)
	// Rand replaces the jitter source, which must yield values in
	// [0, 1); nil selects math/rand.Float64.
	Rand func() float64
	// OnRetry, when non-nil, observes every retry (not the first
	// attempt) before its backoff sleep — the hook metrics counters and
	// logs attach to.
	OnRetry func(label string, attempt int, err error)
}

// Default returns the policy the storage layers use when the caller
// does not override it: 3 attempts, 1ms base, 50ms cap, 50% jitter.
func Default() Policy {
	return Policy{Attempts: 3, Base: time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.5}
}

// Do runs fn until it succeeds, permanently fails, or the attempt
// budget is spent; it returns fn's last error. The label names the
// operation for OnRetry observers.
func (p Policy) Do(label string, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= attempts || IsPermanent(err) {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(label, attempt, err)
		}
		p.sleep(p.backoff(attempt))
	}
}

func (p Policy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff computes the delay after the attempt-th failed try:
// Base·2^(attempt-1), capped at Max, jittered.
func (p Policy) backoff(attempt int) time.Duration {
	d := p.Base
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		r := rand.Float64()
		if p.Rand != nil {
			r = p.Rand()
		}
		d = time.Duration(float64(d) * (1 - p.Jitter/2 + p.Jitter*r))
	}
	return d
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Do returns it immediately
// without consuming further attempts. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err should not be retried: errors marked
// with Permanent, out-of-space conditions (syscall.ENOSPC — a full
// disk does not drain between attempts), and request cancellation
// (context errors — the deadline stays exceeded).
func IsPermanent(err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return true
	}
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
