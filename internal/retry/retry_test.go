package retry

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

// noSleep returns a policy whose sleeps are recorded, not taken.
func noSleep(p Policy, slept *[]time.Duration) Policy {
	p.Sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return p
}

func TestDoSucceedsFirstTry(t *testing.T) {
	var slept []time.Duration
	p := noSleep(Default(), &slept)
	calls := 0
	if err := p.Do("op", func() error { calls++; return nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d slept=%v, want 1 call and no sleeps", calls, slept)
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	var slept []time.Duration
	var retries []int
	p := noSleep(Policy{Attempts: 5, Base: time.Millisecond, Jitter: 0}, &slept)
	p.OnRetry = func(label string, attempt int, err error) {
		if label != "op" {
			t.Errorf("label = %q, want op", label)
		}
		retries = append(retries, attempt)
	}
	calls := 0
	err := p.Do("op", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept = %v, want %v (exponential doubling)", slept, want)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	p := noSleep(Policy{Attempts: 3, Base: time.Millisecond}, &slept)
	calls := 0
	last := errors.New("still failing")
	err := p.Do("op", func() error { calls++; return last })
	if !errors.Is(err, last) {
		t.Fatalf("Do = %v, want the last error", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 and 2", calls, len(slept))
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	var slept []time.Duration
	p := noSleep(Policy{Attempts: 5, Base: time.Millisecond}, &slept)
	base := errors.New("disk on fire")
	calls := 0
	err := p.Do("op", func() error { calls++; return Permanent(base) })
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d sleeps=%d, want 1 and 0", calls, len(slept))
	}
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want to unwrap to the base error", err)
	}
}

func TestDoStopsOnENOSPCAndContextErrors(t *testing.T) {
	for _, tc := range []error{
		fmt.Errorf("write: %w", syscall.ENOSPC),
		fmt.Errorf("op: %w", context.Canceled),
		fmt.Errorf("op: %w", context.DeadlineExceeded),
	} {
		var slept []time.Duration
		p := noSleep(Policy{Attempts: 5, Base: time.Millisecond}, &slept)
		calls := 0
		err := p.Do("op", func() error { calls++; return tc })
		if calls != 1 || len(slept) != 0 {
			t.Errorf("%v: calls=%d sleeps=%d, want 1 and 0", tc, calls, len(slept))
		}
		if !errors.Is(err, tc) {
			t.Errorf("Do = %v, want %v", err, tc)
		}
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	calls := 0
	err := Policy{}.Do("op", func() error { calls++; return errors.New("nope") })
	if calls != 1 || err == nil {
		t.Fatalf("calls=%d err=%v, want 1 attempt and the error", calls, err)
	}
}

func TestBackoffCapAndJitter(t *testing.T) {
	p := Policy{Attempts: 10, Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0}
	if d := p.backoff(1); d != time.Millisecond {
		t.Fatalf("backoff(1) = %v, want 1ms", d)
	}
	if d := p.backoff(5); d != 4*time.Millisecond {
		t.Fatalf("backoff(5) = %v, want the 4ms cap", d)
	}
	// With Jitter=1 and a fixed Rand, delays scale deterministically
	// over [0.5, 1.5).
	p.Jitter = 1
	p.Rand = func() float64 { return 0 }
	if d := p.backoff(1); d != 500*time.Microsecond {
		t.Fatalf("jitter floor = %v, want 0.5ms", d)
	}
	p.Rand = func() float64 { return 0.5 }
	if d := p.backoff(1); d != time.Millisecond {
		t.Fatalf("jitter mid = %v, want 1ms", d)
	}
}

func TestPermanentNilStaysNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) should be nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain errors are transient")
	}
}
