// Package obs is histcube's observability layer: a dependency-free,
// allocation-light metrics toolkit with atomic counters, gauges and
// fixed-bucket latency histograms, plus a Registry that renders the
// Prometheus text exposition format (version 0.0.4).
//
// The package exists so the paper's cost-convergence claims (Figures
// 10-14 of Riedewald/Agrawal/El Abbadi) can be watched on a *live*
// system instead of recomputed offline: internal/core, the append-only
// cube and cmd/histserve register their counters here and the server's
// optional /metrics listener scrapes them.
//
// Everything on the hot path is a single atomic operation; callback
// metrics (CounterFunc, GaugeFunc) defer all work to scrape time so
// state-derived values cost nothing per operation. Quantile reporting
// follows the same nearest-rank convention as internal/stats.Quantile,
// so offline experiment summaries and live histogram summaries agree.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histcube/internal/stats"
)

// Observer receives one sample; Histogram and Series implement it, and
// Timer reports durations (in seconds) to one.
type Observer interface {
	Observe(v float64)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets is the default histogram layout for operation
// latencies: 1µs to 10s in a 1-2.5-5 progression. Cube operations sit
// at the microsecond end; snapshot save/load and cold disk queries at
// the millisecond end.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic buckets, count and
// sum. Buckets are cumulative at render time (Prometheus `le`
// semantics); observation picks the first upper bound >= v.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile from the bucket counts using the
// nearest-rank rule of internal/stats.Quantile: the estimate is the
// upper bound of the bucket containing the ceil(q*n)-th observation
// (+Inf observations report the largest finite bound). It returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Timer measures one duration and reports it, in seconds, to an
// optional Observer. The zero cost of a nil observer lets callers keep
// one code path whether or not metrics are enabled:
//
//	t := obs.NewTimer(h)      // h may be nil
//	defer t.ObserveDuration()
type Timer struct {
	start time.Time
	o     Observer
}

// NewTimer starts a timer reporting to o (nil is allowed: the timer
// then only returns the elapsed duration).
func NewTimer(o Observer) Timer { return Timer{start: time.Now(), o: o} }

// ObserveDuration reports the elapsed time to the observer (if any)
// and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	if t.o != nil && !isNilObserver(t.o) {
		t.o.Observe(d.Seconds())
	}
	return d
}

// isNilObserver guards against typed-nil interfaces such as a nil
// *Histogram passed as an Observer.
func isNilObserver(o Observer) bool {
	switch v := o.(type) {
	case *Histogram:
		return v == nil
	case *Series:
		return v == nil
	}
	return false
}

// Series collects raw samples for offline summary — the hook
// cmd/histbench and internal/experiments use so benchmark timing goes
// through the same instrumentation as the server. Unlike Histogram it
// keeps every sample, so quantiles are exact (internal/stats).
type Series struct {
	mu sync.Mutex
	xs []float64 // guarded by mu
}

// Observe implements Observer.
func (s *Series) Observe(v float64) {
	s.mu.Lock()
	s.xs = append(s.xs, v)
	s.mu.Unlock()
}

// Summary is the standard p50/p90/p99/mean digest, computed with
// internal/stats on the raw samples.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary digests the collected samples via internal/stats.
func (s *Series) Summary() Summary {
	s.mu.Lock()
	xs := append([]float64(nil), s.xs...)
	s.mu.Unlock()
	sum := Summary{
		Count: len(xs),
		Mean:  stats.Mean(xs),
		P50:   stats.Quantile(xs, 0.5),
		P90:   stats.Quantile(xs, 0.9),
		P99:   stats.Quantile(xs, 0.99),
	}
	if len(xs) > 0 {
		sum.Max = stats.Quantile(xs, 1)
	}
	return sum
}

// Summarize digests an ad-hoc sample slice that never went through a
// Series — the helper cmd/histbench uses to turn experiment cost
// curves into the standard digest.
func Summarize(xs []float64) Summary {
	s := &Series{xs: xs}
	return s.Summary()
}

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one labelled time series inside a family.
type series struct {
	labels []Label

	counter          *Counter
	gauge            *Gauge
	histogram        *Histogram
	counterFunc      func() int64
	counterFloatFunc func() float64
	gaugeFunc        func() float64
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind kind
	// series in registration order; key is the rendered label set.
	order []string
	byKey map[string]*series
}

// Registry holds metric families in registration order and renders
// them in the Prometheus text exposition format.
type Registry struct {
	mu       sync.Mutex
	families []*family          // guarded by mu
	byName   map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.kind))
	}
	key := labelKey(labels)
	if _, dup := f.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q%s", name, key))
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.byKey[key] = s
	f.order = append(f.order, key)
	return s
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	s.counter = &Counter{}
	return s.counter
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — for monotonic totals already tracked elsewhere (cube
// cost counters). fn must be safe to call from the scrape goroutine.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	s.counterFunc = fn
}

// NewFloatCounterFunc registers a counter whose float64 value is read
// from fn at scrape time — for monotonic totals the runtime reports in
// fractional units (cumulative seconds of GC pause or lock wait). fn
// must be safe to call from the scrape goroutine.
func (r *Registry) NewFloatCounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	s.counterFloatFunc = fn
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	s.gauge = &Gauge{}
	return s.gauge
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe to call from the scrape goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, labels)
	s.gaugeFunc = fn
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (nil selects LatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	s.histogram = newHistogram(bounds)
	return s.histogram
}

// WritePrometheus renders every registered family in the text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			s := f.byKey[key]
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, key, s.counter.Value())
			case s.counterFunc != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, key, s.counterFunc())
			case s.counterFloatFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatFloat(s.counterFloatFunc()))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, key, s.gauge.Value())
			case s.gaugeFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatFloat(s.gaugeFunc()))
			case s.histogram != nil:
				writeHistogram(&b, f.name, s.labels, s.histogram)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			labelKey(append(append([]Label(nil), labels...), Label{"le", formatFloat(bound)})), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		labelKey(append(append([]Label(nil), labels...), Label{"le", "+Inf"})), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelKey(labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelKey(labels), h.Count())
}

// labelKey renders a label set as {k="v",...}, or "" for no labels.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
