package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRuntimeMetrics is the `make runtimemetrics` smoke: the collector
// registers, samples, and every advertised series renders with a sane
// value.
func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	runtime.GC() // at least one cycle so gc_cycles_total is non-zero
	c.Sample()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"histcube_runtime_goroutines",
		"histcube_runtime_heap_bytes",
		"histcube_runtime_gc_pause_p99_seconds",
		"histcube_runtime_sched_latency_p99_seconds",
		"histcube_runtime_gc_cycles_total",
		"histcube_lock_wait_seconds_total",
		"histcube_lock_contention_events_total",
	} {
		if !strings.Contains(out, "\n"+name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "histcube_runtime_goroutines 0\n") {
		t.Error("goroutine gauge sampled as 0 in a running process")
	}
	if strings.Contains(out, "histcube_runtime_gc_cycles_total 0\n") {
		t.Error("gc_cycles_total is 0 right after runtime.GC()")
	}

	stop := c.Start(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // idempotent
}

// TestMutexContentionEvents: with profiling enabled, forced contention
// shows up in the sampled event counter.
func TestMutexContentionEvents(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				time.Sleep(10 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := mutexContentionEvents(); got == 0 {
		t.Error("no contention events sampled despite profile fraction 1 and contended locking")
	}
}

// TestHistogramQuantile pins the nearest-rank digestion of runtime
// histograms, including the +Inf overflow bucket falling back to its
// finite lower edge.
func TestHistogramQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{5, 3, 2},
		Buckets: []float64{0, 0.1, 0.2, 0.3},
	}
	if got := float64HistogramQuantile(h, 0.5); got != 0.1 {
		t.Errorf("p50 = %v, want 0.1", got)
	}
	if got := float64HistogramQuantile(h, 0.99); got != 0.3 {
		t.Errorf("p99 = %v, want 0.3", got)
	}
	// The overflow bucket's +Inf upper edge falls back to its finite
	// lower edge, so a tail landing there still reports a real number.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{1, 9},
		Buckets: []float64{0, 0.5, math.Inf(1)},
	}
	if got := float64HistogramQuantile(inf, 0.99); got != 0.5 {
		t.Errorf("overflow p99 = %v, want the finite lower edge 0.5", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := float64HistogramQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	if got := float64HistogramQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram p99 = %v, want 0", got)
	}
}
