package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"histcube/internal/stats"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
	// Buckets: le=1 holds {0.5, 1}, le=2 adds {1.5}, le=4 adds {3},
	// +Inf adds {100}.
	wants := []int64{2, 1, 1, 1}
	for i, want := range wants {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

// The histogram quantile must follow the nearest-rank convention of
// internal/stats.Quantile: with every sample equal to a bucket bound,
// the two must agree exactly.
func TestHistogramQuantileMatchesStats(t *testing.T) {
	bounds := []float64{1, 2, 3, 4, 5}
	h := newHistogram(bounds)
	var xs []float64
	for i, n := range []int{3, 1, 4, 2, 2} { // 12 samples
		for j := 0; j < n; j++ {
			h.Observe(bounds[i])
			xs = append(xs, bounds[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if got, want := h.Quantile(q), stats.Quantile(xs, q); got != want {
			t.Errorf("Quantile(%v) = %v, stats.Quantile = %v", q, got, want)
		}
	}
	if got := newHistogram(bounds).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-8000*1e-5) > 1e-9 {
		t.Errorf("sum = %v", got)
	}
}

func TestTimer(t *testing.T) {
	h := newHistogram(nil)
	tm := NewTimer(h)
	time.Sleep(time.Millisecond)
	d := tm.ObserveDuration()
	if d <= 0 {
		t.Errorf("duration = %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Errorf("histogram not observed: count=%d sum=%v", h.Count(), h.Sum())
	}
	// nil observer (including typed nil) must not panic.
	NewTimer(nil).ObserveDuration()
	var nilH *Histogram
	NewTimer(nilH).ObserveDuration()
}

func TestSeriesSummary(t *testing.T) {
	s := &Series{}
	for _, v := range []float64{4, 1, 3, 2} {
		s.Observe(v)
	}
	sum := s.Summary()
	if sum.Count != 4 || sum.Mean != 2.5 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.P50 != stats.Quantile([]float64{1, 2, 3, 4}, 0.5) {
		t.Errorf("p50 = %v", sum.P50)
	}
	if sum.Max != 4 {
		t.Errorf("max = %v", sum.Max)
	}
	empty := (&Series{}).Summary()
	if empty.Count != 0 || empty.Max != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestRegistryPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests.", Label{"cmd", "INS"})
	c.Add(3)
	c2 := r.NewCounter("test_requests_total", "Requests.", Label{"cmd", "QRY"})
	c2.Inc()
	g := r.NewGauge("test_inflight", "In-flight requests.")
	g.Set(2)
	r.NewGaugeFunc("test_slices", "Slices.", func() float64 { return 7 })
	r.NewCounterFunc("test_conversions_total", "Conversions.", func() int64 { return 42 })
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{cmd="INS"} 3`,
		`test_requests_total{cmd="QRY"} 1`,
		"# TYPE test_inflight gauge",
		"test_inflight 2",
		"test_slices 7",
		"test_conversions_total 42",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two series.
	if strings.Count(out, "# TYPE test_requests_total counter") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "", Label{"path", "a\"b\\c\nd"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 0`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}
