// Runtime telemetry: a RuntimeCollector samples runtime/metrics into
// histcube_runtime_* gauges and wires lock-contention counters, so the
// single-mutex serving bottleneck (ROADMAP: "Break the single-mutex
// bottleneck") has a measured baseline instead of a suspicion. Pause
// and latency distributions are digested to p99 with the same
// nearest-rank convention as internal/stats.Quantile.
//
// Two sampling disciplines coexist:
//
//   - Distribution-derived gauges (GC pause p99, scheduler latency p99,
//     goroutine count, heap bytes) are sampled on a ticker (Start) into
//     a mutex-guarded snapshot; scrapes read the snapshot. Walking a
//     runtime histogram on every scrape would make /metrics the most
//     expensive endpoint on the box.
//   - Monotonic totals (GC cycles, cumulative mutex wait seconds,
//     contention event counts) are read live at scrape time — each is
//     one runtime/metrics read or profile walk, and a counter sampled
//     on a ticker would systematically under-report between ticks.
//
// histcube_lock_contention_events_total stays at zero until the binary
// enables mutex profiling (runtime.SetMutexProfileFraction via
// -mutex-profile-fraction); histcube_lock_wait_seconds_total is
// always-on (the runtime keeps /sync/mutex/wait/total:seconds
// regardless of the profile fraction).
package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Names of the runtime/metrics series the collector consumes.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmMutexWait  = "/sync/mutex/wait/total:seconds"
)

// RuntimeCollector owns the sampled snapshot behind the
// histcube_runtime_* gauges.
type RuntimeCollector struct {
	mu          sync.Mutex
	goroutines  int64   // guarded by mu
	heapBytes   int64   // guarded by mu
	gcPauseP99  float64 // guarded by mu
	schedLatP99 float64 // guarded by mu
}

// NewRuntimeCollector registers the runtime and lock-contention metrics
// on r and takes a first sample so gauges are live before the first
// tick. Call Start to keep the snapshot fresh.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	c := &RuntimeCollector{}
	c.Sample()
	r.NewGaugeFunc("histcube_runtime_goroutines",
		"Goroutines at the last runtime sample.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.goroutines)
		})
	r.NewGaugeFunc("histcube_runtime_heap_bytes",
		"Live heap object bytes at the last runtime sample.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.heapBytes)
		})
	r.NewGaugeFunc("histcube_runtime_gc_pause_p99_seconds",
		"p99 stop-the-world GC pause over the process lifetime, at the last runtime sample.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.gcPauseP99
		})
	r.NewGaugeFunc("histcube_runtime_sched_latency_p99_seconds",
		"p99 goroutine scheduling latency over the process lifetime, at the last runtime sample.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.schedLatP99
		})
	r.NewCounterFunc("histcube_runtime_gc_cycles_total",
		"Completed GC cycles.", func() int64 {
			return int64(readRuntimeUint64(rmGCCycles))
		})
	r.NewFloatCounterFunc("histcube_lock_wait_seconds_total",
		"Cumulative seconds goroutines have spent blocked on sync.Mutex/RWMutex.", func() float64 {
			return readRuntimeFloat64(rmMutexWait)
		})
	r.NewCounterFunc("histcube_lock_contention_events_total",
		"Sampled mutex contention events (zero until -mutex-profile-fraction enables sampling).",
		mutexContentionEvents)
	return c
}

// Sample refreshes the snapshot behind the gauges: one batched
// runtime/metrics read, two histogram walks.
func (c *RuntimeCollector) Sample() {
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)
	goroutines := int64(valueUint64(samples[0].Value))
	heapBytes := int64(valueUint64(samples[1].Value))
	gcPauseP99 := histogramQuantile(samples[2].Value, 0.99)
	schedLatP99 := histogramQuantile(samples[3].Value, 0.99)
	c.mu.Lock()
	c.goroutines = goroutines
	c.heapBytes = heapBytes
	c.gcPauseP99 = gcPauseP99
	c.schedLatP99 = schedLatP99
	c.mu.Unlock()
}

// Start samples every interval until the returned stop function is
// called. Stop is idempotent.
func (c *RuntimeCollector) Start(every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.Sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// readRuntimeUint64 reads one uint64-valued runtime metric; an absent
// or differently-typed metric (an older runtime) reads as zero rather
// than panicking a scrape.
func readRuntimeUint64(name string) uint64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return valueUint64(s[0].Value)
}

// readRuntimeFloat64 is readRuntimeUint64 for float64-valued metrics.
func readRuntimeFloat64(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return s[0].Value.Float64()
}

func valueUint64(v metrics.Value) uint64 {
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return v.Uint64()
}

// histogramQuantile estimates the q-quantile of a runtime histogram by
// nearest rank: the upper edge of the bucket containing the ceil(q*n)-th
// observation (the overflow bucket reports its finite lower edge),
// matching Histogram.Quantile and internal/stats.Quantile. Returns 0
// for an empty or non-histogram value.
func histogramQuantile(v metrics.Value, q float64) float64 {
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return float64HistogramQuantile(v.Float64Histogram(), q)
}

func float64HistogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Counts[i] covers [Buckets[i], Buckets[i+1]).
			edge := h.Buckets[i+1]
			if edge > maxFiniteEdge {
				edge = h.Buckets[i]
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// maxFiniteEdge flags the +Inf overflow edge without an exact float
// comparison against Inf.
const maxFiniteEdge = 1e300

// mutexContentionEvents sums the sampled contention counts from the
// runtime's mutex profile. Two-pass sizing per the runtime.MutexProfile
// contract, with headroom for profiles growing between the calls.
func mutexContentionEvents() int64 {
	n, _ := runtime.MutexProfile(nil)
	if n == 0 {
		return 0
	}
	recs := make([]runtime.BlockProfileRecord, n+n/4+8)
	n, ok := runtime.MutexProfile(recs)
	if !ok || n > len(recs) {
		return 0
	}
	var total int64
	for _, r := range recs[:n] {
		total += r.Count
	}
	return total
}
