package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// MetricName enforces the metric naming contract from the
// observability PR: every metric registered on the obs registry
// carries a constant snake_case name under the histcube_, histserve_
// or histproxy_ prefix, and no name is registered from two different
// sites in a package. Dashboards and the /metrics scrape contract key
// on these literals; a computed name defeats grep-ability, and a
// double registration either panics at runtime or silently merges two
// series.
//
// The same contract covers trace span names (trace.New and
// Span.StartChild): constant dotted snake_case under the histcube.,
// histserve. or proxy. prefix (proxy. is cmd/histproxy's namespace —
// proxy.query roots with one proxy.leg child per fan-out), so EXPLAIN
// output and slow-query log entries stay grep-able against the
// source. Spans carry no duplicate-site check — unlike a metric
// series, the same span name legitimately starts from many call
// sites.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metrics and trace spans use constant histcube/histserve/histproxy snake_case names",
	Run:  runMetricName,
}

var (
	metricNameRE = regexp.MustCompile(`^(histcube|histserve|histproxy)(_[a-z0-9]+)+$`)
	spanNameRE   = regexp.MustCompile(`^(histcube|histserve|proxy)(\.[a-z0-9_]+)+$`)
)

var metricRegisterMethods = map[string]bool{
	"NewCounter":          true,
	"NewGauge":            true,
	"NewHistogram":        true,
	"NewCounterFunc":      true,
	"NewFloatCounterFunc": true,
	"NewGaugeFunc":        true,
}

func runMetricName(pass *Pass) error {
	// name -> first registration site, for the duplicate check.
	sites := make(map[string]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if checkSpanName(pass, call) {
				return true
			}
			fn := calleeMethod(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !metricRegisterMethods[fn.Name()] || !PathHasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			name, isConst := constantString(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %s is not a string constant: names must be grep-able literals (the /metrics scrape contract keys on them)",
					types.ExprString(call.Args[0]))
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q violates the naming contract: want histcube_/histserve_/histproxy_ prefix and lower snake_case (%s)",
					name, metricNameRE)
				return true
			}
			pos := pass.Fset.Position(call.Pos())
			site := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if first, dup := sites[name]; dup {
				pass.Reportf(call.Args[0].Pos(),
					"metric %q is registered at two sites (first at %s): double registration panics or merges two series", name, first)
			} else {
				sites[name] = site
			}
			return true
		})
	}
	return nil
}

// checkSpanName reports whether call is a span-starting call
// (trace.New or Span.StartChild on histcube's internal/trace), and if
// so checks the name argument against the span naming contract.
func checkSpanName(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	isNew := fn != nil && fn.Pkg() != nil && fn.Name() == "New" &&
		PathHasSuffix(fn.Pkg().Path(), "internal/trace")
	if !isNew {
		fn = calleeMethod(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Name() != "StartChild" ||
			!PathHasSuffix(fn.Pkg().Path(), "internal/trace") {
			return false
		}
	}
	if len(call.Args) == 0 {
		return true
	}
	name, isConst := constantString(pass, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(),
			"span name %s is not a string constant: names must be grep-able literals (EXPLAIN and slow-log entries key on them)",
			types.ExprString(call.Args[0]))
		return true
	}
	if !spanNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"span name %q violates the naming contract: want histcube./histserve./proxy. prefix and dotted lower snake_case (%s)",
			name, spanNameRE)
	}
	return true
}
