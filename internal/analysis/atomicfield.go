package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity per field: once any
// access to a struct field goes through sync/atomic (atomic.AddInt64,
// atomic.LoadUint32, ... on &x.f), every access to that field must —
// a single plain read racing one atomic write is still a data race,
// and it is exactly the mixed-access bug that slips in when a hot
// counter is "optimised" from mutex to atomic one call site at a time.
// A field can also opt in explicitly, before any atomic call exists,
// with a //guarded-by:atomic comment on its declaration — the
// annotation the per-cell converted-flag refactor will use so the flag
// is born with the discipline attached.
//
// The check is per-package, which covers every field that can matter:
// a field accessed atomically is by definition shared mutable state,
// and histcube keeps all such fields unexported. Fields of the typed
// atomic wrappers (atomic.Int64 & co) need no analyzer — their types
// make plain access impossible — so this check is specifically the
// safety net for primitive fields paired with atomic calls.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic (or marked //guarded-by:atomic) is accessed atomically everywhere",
	Run:  runAtomicField,
}

const atomicAnnotation = "guarded-by:atomic"

func runAtomicField(pass *Pass) error {
	// why explains, per atomic field, what put it under the rule —
	// quoted back in every finding so the fix is self-evident.
	why := make(map[*types.Var]string)
	// blessed marks the selector expressions that ARE the atomic
	// accesses (the &x.f argument of a sync/atomic call).
	blessed := make(map[*ast.SelectorExpr]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if !hasAtomicAnnotation(field) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							if _, present := why[v]; !present {
								why[v] = "is marked //" + atomicAnnotation
							}
						}
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range n.Args {
					ue, ok := arg.(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					se, ok := unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fv := fieldVarOf(pass, se)
					if fv == nil {
						continue
					}
					blessed[se] = true
					if _, present := why[fv]; !present {
						pos := pass.Fset.Position(n.Pos())
						why[fv] = "is accessed with atomic." + fn.Name() + " at " +
							shortFile(pos.Filename) + ":" + strconv.Itoa(pos.Line)
					}
				}
			}
			return true
		})
	}
	if len(why) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[se] {
				return true
			}
			fv := fieldVarOf(pass, se)
			if fv == nil {
				return true
			}
			reason, atomicField := why[fv]
			if !atomicField {
				return true
			}
			pass.Reportf(se.Sel.Pos(),
				"plain access to %s, which %s: every read and write must go through sync/atomic (mixed access is a data race)",
				fv.Name(), reason)
			return true
		})
	}
	return nil
}

// fieldVarOf resolves a selector to the struct-field variable it
// names, or nil for method values, qualified identifiers, etc.
func fieldVarOf(pass *Pass, se *ast.SelectorExpr) *types.Var {
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := sel.Obj().(*types.Var)
	return fv
}

func hasAtomicAnnotation(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), atomicAnnotation) {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
