package analysis

import (
	"go/ast"

	"histcube/internal/analysis/cfg"
)

// DeferUnlock proves release-on-all-paths: every mu.Lock() / RLock()
// must be matched, on every control-flow path from the acquisition to
// a function exit (return, panic, or falling off the end), by either a
// reached `defer mu.Unlock()` registration or an explicit Unlock. The
// check runs on the basic-block CFG (package cfg), so early returns,
// breaks past the unlock, switch cases without a release and panic
// exits are all real paths, not textual approximations.
//
// This is the analyzer that keeps the lock-breaking refactor honest:
// once histserve's single mutex splits into per-slice and RWMutex
// locks, a forgotten unlock on one error path is a server that wedges
// under load, and reviews will not reliably catch it across six
// binaries. Functions that intentionally return holding the lock
// (lock-handoff constructors) carry a justified //histlint:ignore.
var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "every Lock()/RLock() is released on every path to function exit (defer or explicit)",
	Run:  runDeferUnlock,
}

func runDeferUnlock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBodies(pass, fd.Body, checkReleaseOnAllPaths)
		}
	}
	return nil
}

// checkFuncBodies runs check on body and, recursively, on every
// function literal inside it — each literal is its own control-flow
// universe with its own CFG.
func checkFuncBodies(pass *Pass, body *ast.BlockStmt, check func(*Pass, *ast.BlockStmt)) {
	check(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			if lit.Body != nil {
				checkFuncBodies(pass, lit.Body, check)
			}
			return false
		}
		return true
	})
}

func checkReleaseOnAllPaths(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			block, idx := b, i
			lockCallsIn(pass, node, func(call *ast.CallExpr, op lockOp, id lockID, deferred bool) {
				if !op.acquires() || deferred {
					return
				}
				rel := op.release()
				released := func(n ast.Node) bool {
					hit := false
					lockCallsIn(pass, n, func(_ *ast.CallExpr, o lockOp, i2 lockID, _ bool) {
						if o == rel && i2.instance == id.instance {
							hit = true
						}
					})
					return hit
				}
				// The acquisition's own node may carry the release
				// when lock and unlock share a statement; start the
				// path check at the next node and handle the same-
				// node case by position.
				if sameNodeRelease(pass, node, call, rel, id) {
					return
				}
				if !g.EveryPathHits(block, idx+1, released) {
					pass.Reportf(call.Pos(),
						"%s.%s() is not released on every path to function exit: add `defer %s.%s()` right after the acquisition, or release on each return/panic path",
						id.display, op, shortRecv(call), rel)
				}
			})
		}
	}
}

// sameNodeRelease reports whether the node containing the acquisition
// also releases it *after* the acquisition (single-statement lock/
// unlock pairs, e.g. inside a helper expression).
func sameNodeRelease(pass *Pass, node ast.Node, acq *ast.CallExpr, rel lockOp, id lockID) bool {
	hit := false
	lockCallsIn(pass, node, func(c *ast.CallExpr, o lockOp, i2 lockID, _ bool) {
		if c.Pos() > acq.Pos() && o == rel && i2.instance == id.instance {
			hit = true
		}
	})
	return hit
}

// shortRecv renders the receiver expression of a lock call for the
// suggested fix ("c.mu", "s.pool.mu").
func shortRecv(call *ast.CallExpr) string {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "mu"
	}
	return exprString(se.X)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	default:
		return "mu"
	}
}
