package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// This file is the shared mutex-identity layer under the CFG-backed
// concurrency analyzers (deferunlock, rwlockdiscipline, lockorder):
// it recognises sync.Mutex/RWMutex method calls and resolves the lock
// they act on to two levels of identity —
//
//   - instance: "which lock value in this function" (root variable
//     plus the field path reaching the mutex), used to match a Lock
//     with its Unlock and to know whose fields an RLock covers;
//   - node: "which lock in the program" (the mutex field or package
//     variable object), used as the vertex identity of the project-
//     wide lock-acquisition graph, where every *Client.mu is one lock.

// lockOp is the kind of mutex call.
type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

func (op lockOp) String() string {
	switch op {
	case opLock:
		return "Lock"
	case opRLock:
		return "RLock"
	case opUnlock:
		return "Unlock"
	default:
		return "RUnlock"
	}
}

// acquires reports whether the op takes the lock (in either mode).
func (op lockOp) acquires() bool { return op == opLock || op == opRLock }

// release returns the op that releases this acquisition.
func (op lockOp) release() lockOp {
	if op == opLock {
		return opUnlock
	}
	return opRUnlock
}

// lockID identifies one resolved mutex.
type lockID struct {
	// instance keys the lock value within one function: root object
	// identity plus the field path. Two mentions of s.mu share it; s.mu
	// and other.mu do not.
	instance string
	// node is the program-wide identity: the mutex field's *types.Var
	// (shared by every instance of the struct) or the plain variable.
	node types.Object
	// display renders the node for humans: "pkg.Type.mu" for fields,
	// "pkg.mu" for variables.
	display string
}

// resolveLockCall recognises m.Lock/RLock/Unlock/RUnlock() where the
// callee is sync.Mutex or sync.RWMutex's method (embedded promotion
// included) and the receiver chain is resolvable to a variable or a
// field path. ok is false for anything else — locks reached through
// map lookups, function results or interfaces are out of scope.
func resolveLockCall(pass *Pass, call *ast.CallExpr) (op lockOp, id lockID, ok bool) {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, lockID{}, false
	}
	switch se.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return 0, lockID{}, false
	}
	sel, found := pass.Info.Selections[se]
	if !found || sel.Kind() != types.MethodVal {
		return 0, lockID{}, false
	}
	fn, _ := sel.Obj().(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, lockID{}, false
	}

	root, fields, resolved := fieldChain(pass, se.X)
	if !resolved {
		return 0, lockID{}, false
	}
	// The method selection's index path names any embedded fields
	// between the receiver expression's type and the sync type
	// (type T struct{ sync.Mutex }; t.Lock()). Append them so the
	// identity lands on the actual mutex field.
	fields = append(fields, implicitFields(sel)...)
	id, ok = makeLockID(pass, root, fields)
	if !ok {
		return 0, lockID{}, false
	}
	return op, id, true
}

// fieldChain unwraps expr (parens, derefs, selector chains) to a root
// object plus the ordered field path. A plain identifier yields an
// empty path; a qualified package variable (pkg.Mu) yields that
// variable as the root.
func fieldChain(pass *Pass, expr ast.Expr) (types.Object, []*types.Var, bool) {
	var rev []*types.Var
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil {
				obj = pass.Info.Defs[e]
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return nil, nil, false
			}
			return obj, reverseVars(rev), true
		case *ast.SelectorExpr:
			if sel, found := pass.Info.Selections[e]; found {
				if sel.Kind() != types.FieldVal {
					return nil, nil, false
				}
				fv, _ := sel.Obj().(*types.Var)
				if fv == nil {
					return nil, nil, false
				}
				// A selection may itself traverse embedded fields;
				// capture them so s.mu on an embedded struct resolves
				// to the same path as s.embedded.mu.
				implicit := selectionFields(sel)
				for i := len(implicit) - 1; i >= 0; i-- {
					rev = append(rev, implicit[i])
				}
				expr = e.X
			} else if v, isVar := pass.Info.Uses[e.Sel].(*types.Var); isVar {
				// Qualified package-level variable: pkg.Mu.
				return v, reverseVars(rev), true
			} else {
				return nil, nil, false
			}
		default:
			return nil, nil, false
		}
	}
}

func reverseVars(rev []*types.Var) []*types.Var {
	fields := make([]*types.Var, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		fields = append(fields, rev[i])
	}
	return fields
}

// selectionFields maps a field selection's index path to the field
// variables it traverses (the named field plus any embedded hops).
func selectionFields(sel *types.Selection) []*types.Var {
	return indexFields(sel.Recv(), sel.Index())
}

// implicitFields maps a method selection's embedded-field hops (all
// indices but the final method index) to field variables.
func implicitFields(sel *types.Selection) []*types.Var {
	idx := sel.Index()
	if len(idx) <= 1 {
		return nil
	}
	return indexFields(sel.Recv(), idx[:len(idx)-1])
}

func indexFields(t types.Type, idx []int) []*types.Var {
	var fields []*types.Var
	for _, i := range idx {
		st, ok := derefStruct(t)
		if !ok || i >= st.NumFields() {
			return fields
		}
		f := st.Field(i)
		fields = append(fields, f)
		t = f.Type()
	}
	return fields
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// chainKey builds the instance-identity string for a root object plus
// a field-name path (optionally extended): the shared currency between
// the lock analyzers, so "the mutex at s.inner.mu" and "the guard of
// field s.inner.cells" compare equal.
func chainKey(root types.Object, fields []*types.Var, extra ...string) string {
	names := make([]string, 0, len(fields)+len(extra)+1)
	names = append(names, fmt.Sprintf("%p", root))
	for _, f := range fields {
		names = append(names, f.Name())
	}
	names = append(names, extra...)
	return strings.Join(names, ".")
}

// makeLockID builds both identity levels from a resolved chain.
func makeLockID(pass *Pass, root types.Object, fields []*types.Var) (lockID, bool) {
	id := lockID{instance: chainKey(root, fields)}
	if len(fields) > 0 {
		last := fields[len(fields)-1]
		id.node = last
		id.display = fieldDisplay(pass, root, fields)
	} else {
		// The root variable itself is the mutex (var mu sync.Mutex).
		// Package-level variables are program-wide nodes; locals are
		// function-private, which instance identity already captures.
		id.node = root
		if v, isVar := root.(*types.Var); isVar && v.Pkg() != nil {
			id.display = v.Pkg().Name() + "." + v.Name()
		} else {
			id.display = root.Name()
		}
	}
	return id, id.node != nil
}

// fieldDisplay renders the final mutex field as pkg.Owner.field, using
// the struct type that declares the field.
func fieldDisplay(pass *Pass, root types.Object, fields []*types.Var) string {
	last := fields[len(fields)-1]
	owner := ""
	// Walk the chain types to find the named type owning the last hop.
	t := root.Type()
	for _, f := range fields {
		if f == last {
			if n := namedOf(t); n != nil {
				owner = n.Obj().Name()
			}
			break
		}
		t = f.Type()
	}
	pkg := ""
	if last.Pkg() != nil {
		pkg = last.Pkg().Name() + "."
	}
	if owner != "" {
		return pkg + owner + "." + last.Name()
	}
	return pkg + last.Name()
}

// lockCallIn inspects one CFG node (skipping nested function literals,
// which are separate control-flow universes) and yields every resolved
// mutex call in source order. A *ast.DeferStmt node yields its calls
// flagged deferred — registration point semantics: the release
// happens at function exit, on every path that passed the
// registration.
func lockCallsIn(pass *Pass, node ast.Node, visit func(call *ast.CallExpr, op lockOp, id lockID, deferred bool)) {
	deferred := false
	root := node
	if ds, ok := node.(*ast.DeferStmt); ok {
		deferred = true
		root = ds.Call
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			// Inside a deferred closure the calls still run at exit;
			// keep descending there. Anywhere else a literal's body is
			// someone else's control flow.
			return deferred
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if op, id, ok := resolveLockCall(pass, call); ok {
			visit(call, op, id, deferred)
		}
		return true
	})
}
