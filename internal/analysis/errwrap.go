package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-path hygiene the durability subsystem
// depends on:
//
//  1. fmt.Errorf with an error-typed argument must wrap it with %w,
//     not flatten it with %v/%s — recovery code distinguishes
//     io.ErrUnexpectedEOF (a torn tail record, expected after a crash)
//     from real corruption via errors.Is, which only sees through %w.
//  2. Close/Sync/Flush results may not be silently dropped: on the WAL
//     path a failed Sync is a lost durability guarantee and a failed
//     Close can be the first report of a write error. Handle the
//     error, or discard it explicitly with `_ =` so the decision is
//     visible in the diff.
//
// Test files are not loaded by the driver, so tests remain free to
// `defer f.Close()` without ceremony.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf wraps error args with %w; Close/Sync/Flush errors are not silently dropped",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedError(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDroppedError(pass, n.Call, "go ")
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument
// without a %w verb in the format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.Info.Types[arg]
		if ok && isErrorType(tv.Type) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf flattens an error argument; use %%w so callers can errors.Is/As through the wrap")
			return
		}
	}
}

// checkDroppedError flags statements that call Close/Sync/Flush and
// discard the returned error.
func checkDroppedError(pass *Pass, call *ast.CallExpr, how string) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := se.Sel.Name
	if name != "Close" && name != "Sync" && name != "Flush" {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s.%s() silently drops its error: handle it or discard explicitly with _ = (a failed %s can be the first report of a write error)",
		how, types.ExprString(se.X), name, name)
}

// constantString evaluates expr to a string constant (literal or named
// const), if it is one.
func constantString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
