package analysis

import (
	"go/ast"
	"go/types"
)

// calleeMethod resolves a call expression to the *types.Func of a
// method call (x.M(...)), or nil when the call is not a resolved
// method call.
func calleeMethod(pass *Pass, call *ast.CallExpr) *types.Func {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return nil
	}
	fn, _ := sel.Obj().(*types.Func)
	return fn
}

// calleeFunc resolves a call to pkg.F(...) — a package-level function
// reached through a package qualifier — or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// baseIdentVar unwraps x in x.f (or x.f.g) to its base identifier and
// the variable it names; nil when the base is not a plain identifier.
func baseIdentVar(pass *Pass, expr ast.Expr) (*ast.Ident, *types.Var) {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			v, _ := pass.Info.Uses[e].(*types.Var)
			return e, v
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, nil
		}
	}
}

// namedOf strips pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// receiverTypeName returns the *types.TypeName of a method
// declaration's receiver type, or nil for functions and unresolvable
// receivers.
func receiverTypeName(pass *Pass, decl *ast.FuncDecl) *types.TypeName {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := decl.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver
			t = e.X
		case *ast.Ident:
			tn, _ := pass.Info.Uses[e].(*types.TypeName)
			return tn
		default:
			return nil
		}
	}
}

// isErrorType reports whether t is the built-in error interface type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
