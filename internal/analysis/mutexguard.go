package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MutexGuard enforces annotated mutex discipline: a struct field whose
// comment says "guarded by <mu>" (where <mu> is a sibling sync.Mutex
// or sync.RWMutex field) may only be touched by methods of the type
// while that mutex is held. This is the mechanical form of the
// histserve locking contract — the single mutex serialising every cube
// call is load-bearing because queries mutate shared state (the eCube
// conversion rewrites historic cells), so an unguarded read is a race,
// not an optimisation.
//
// The check is positional within each function body: an access is
// considered guarded when a <recv>.<mu>.Lock()/RLock() textually
// precedes it with no intervening non-deferred Unlock. Function
// literals are independent scopes — a closure may outlive the lock
// held where it was created, so it must lock for itself. Methods whose
// name ends in "Locked" are exempt by convention: their contract is
// that the caller holds the lock.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  `fields annotated "guarded by mu" are only accessed under that mutex`,
	Run:  runMutexGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// mgGuard is the annotation set of one struct type.
type mgGuard struct {
	typeName *types.TypeName
	muName   string
	muVar    *types.Var
	guarded  map[*types.Var]bool
}

func runMutexGuard(pass *Pass) error {
	guards := collectGuards(pass, true)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(pass, fd)
			if tn == nil {
				continue
			}
			g, ok := guards[tn]
			if !ok {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkGuardedScopes(pass, g, fd)
		}
	}
	return nil
}

// collectGuards finds "guarded by <mu>" field annotations and
// validates them (the named mutex must exist in the same struct and
// be a sync.Mutex or sync.RWMutex). Only the reporting caller
// (mutexguard) passes report=true; rwlockdiscipline reuses the
// collection without duplicating the annotation diagnostics.
func collectGuards(pass *Pass, report bool) map[*types.TypeName]*mgGuard {
	guards := make(map[*types.TypeName]*mgGuard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				muName, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				muVar := findStructField(pass, st, muName)
				if muVar == nil || !isSyncMutex(muVar.Type()) {
					if report {
						pass.Reportf(field.Pos(),
							"guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of this struct", muName)
					}
					continue
				}
				g := guards[tn]
				if g == nil {
					g = &mgGuard{typeName: tn, muName: muName, muVar: muVar, guarded: make(map[*types.Var]bool)}
					guards[tn] = g
				} else if g.muName != muName {
					if report {
						pass.Reportf(field.Pos(),
							"guarded-by annotations on %s disagree: %q vs %q", tn.Name(), g.muName, muName)
					}
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						g.guarded[v] = true
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

func findStructField(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := pass.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

func isSyncMutex(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// mgEvent is one lock-relevant occurrence inside a scope, in source
// order.
type mgEvent struct {
	pos      token.Pos
	base     *types.Var // the receiver-ish variable the event is on
	kind     int        // 0 access, 1 lock, 2 unlock
	field    *types.Var // for accesses
	deferred bool       // for unlocks
}

// checkGuardedScopes walks the method body, collecting events per
// lexical function scope (the method body and each nested function
// literal separately), then verifies every guarded-field access
// happens at positive lock depth for its base variable.
func checkGuardedScopes(pass *Pass, g *mgGuard, fd *ast.FuncDecl) {
	var scopes [][]mgEvent
	deferredCall := make(map[*ast.CallExpr]bool)
	var walk func(body ast.Node) int
	walk = func(body ast.Node) int {
		idx := len(scopes)
		scopes = append(scopes, nil)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body)
				return false
			case *ast.DeferStmt:
				deferredCall[n.Call] = true
			case *ast.CallExpr:
				if base, lock := g.mutexOp(pass, n); base != nil {
					kind := 2
					if lock {
						kind = 1
					}
					scopes[idx] = append(scopes[idx], mgEvent{
						pos: n.Pos(), base: base, kind: kind, deferred: deferredCall[n],
					})
				}
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				fieldVar, ok := sel.Obj().(*types.Var)
				if !ok || !g.guarded[fieldVar] {
					return true
				}
				_, base := baseIdentVar(pass, n.X)
				scopes[idx] = append(scopes[idx], mgEvent{
					pos: n.Sel.Pos(), base: base, kind: 0, field: fieldVar,
				})
			}
			return true
		})
		return idx
	}
	walk(fd.Body)

	for _, events := range scopes {
		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		depth := make(map[*types.Var]int)
		for _, ev := range events {
			switch ev.kind {
			case 1:
				depth[ev.base]++
			case 2:
				if !ev.deferred { // a deferred unlock holds until return
					depth[ev.base]--
				}
			case 0:
				if ev.base == nil || depth[ev.base] <= 0 {
					pass.Reportf(ev.pos,
						"%s.%s is guarded by %s but accessed without holding it in %s (lock first, or suffix the method name with Locked if the caller holds it)",
						g.typeName.Name(), ev.field.Name(), g.muName, fd.Name.Name)
				}
			}
		}
	}
}

// mutexOp recognises base.<mu>.Lock/RLock/Unlock/RUnlock() on the
// guard's mutex field, returning the base variable and whether the
// call acquires (true) or releases (false); nil base otherwise.
func (g *mgGuard) mutexOp(pass *Pass, call *ast.CallExpr) (*types.Var, bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var lock bool
	switch se.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return nil, false
	}
	muSel, ok := se.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	sel, ok := pass.Info.Selections[muSel]
	if !ok || sel.Kind() != types.FieldVal || sel.Obj() != g.muVar {
		return nil, false
	}
	_, base := baseIdentVar(pass, muSel.X)
	return base, lock
}
