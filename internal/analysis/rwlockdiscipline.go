package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"histcube/internal/analysis/cfg"
)

// RWLockDiscipline enforces the invariant the upcoming RWMutex read
// path lives or dies on: code running between RLock and RUnlock of an
// annotated guard ("guarded by mu" where mu is a sync.RWMutex) must be
// genuinely read-only — no writes to guarded fields, no calls to
// mutating methods (methods that write guarded fields, take the write
// lock, or transitively call something that does), and no mu.Lock()
// upgrade attempts (an RLock-to-Lock upgrade on the same RWMutex
// self-deadlocks).
//
// The analysis is CFG-backed: a "maybe read-locked" set is propagated
// forward over basic blocks (deferred RUnlocks hold until exit, like
// mutexguard's convention), so a write reachable from an RLock on any
// path is reported even when the RLock sits in a different branch arm
// than the write. That path-sensitivity is what lets converged
// read-mostly historic slices move behind an RWMutex without trusting
// reviews to spot a mutation smuggled into the read path — which is
// exactly how the paper's lazy DDC→PS conversion (a query that
// *writes*) would bite.
var RWLockDiscipline = &Analyzer{
	Name: "rwlockdiscipline",
	Doc:  "code under RLock never writes guarded fields, calls mutating methods, or upgrades the lock",
	Run:  runRWLockDiscipline,
}

func runRWLockDiscipline(pass *Pass) error {
	guards := collectGuards(pass, false)
	// Only RWMutex guards have a read mode to police.
	rw := make(map[*types.TypeName]*mgGuard)
	for tn, g := range guards {
		if n := namedOf(g.muVar.Type()); n != nil && n.Obj().Name() == "RWMutex" {
			rw[tn] = g
		}
	}
	if len(rw) == 0 {
		return nil
	}
	mutating := collectMutators(pass, rw)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkFuncBodies(pass, fd.Body, func(p *Pass, body *ast.BlockStmt) {
				checkRLockRegions(p, body, fd.Name.Name, rw, mutating)
			})
		}
	}
	return nil
}

// collectMutators classifies, per guarded type, which methods mutate:
// write a guarded field, acquire the guard's write lock, or call
// another mutating method of the same type. Computed to a fixpoint so
// helper chains are seen through.
func collectMutators(pass *Pass, rw map[*types.TypeName]*mgGuard) map[*types.Func]bool {
	type methodInfo struct {
		fn    *types.Func
		tn    *types.TypeName
		calls []*types.Func
		dirty bool // writes a guarded field or takes the write lock directly
	}
	var methods []*methodInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tn := receiverTypeName(pass, fd)
			g, guarded := rw[tn]
			if !guarded {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			mi := &methodInfo{fn: fn, tn: tn}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if writesGuarded(pass, lhs, g) {
							mi.dirty = true
						}
					}
				case *ast.IncDecStmt:
					if writesGuarded(pass, n.X, g) {
						mi.dirty = true
					}
				case *ast.CallExpr:
					if op, id, ok := resolveLockCall(pass, n); ok && op == opLock && id.node == g.muVar {
						mi.dirty = true
					}
					if callee := calleeMethod(pass, n); callee != nil {
						mi.calls = append(mi.calls, callee)
					}
				}
				return true
			})
			methods = append(methods, mi)
		}
	}
	mutating := make(map[*types.Func]bool)
	for _, mi := range methods {
		if mi.dirty {
			mutating[mi.fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, mi := range methods {
			if mutating[mi.fn] {
				continue
			}
			for _, callee := range mi.calls {
				if mutating[callee] {
					mutating[mi.fn] = true
					changed = true
					break
				}
			}
		}
	}
	return mutating
}

// writesGuarded reports whether an assignment target touches a field
// guarded by g (directly or through an index/slice of it).
func writesGuarded(pass *Pass, lhs ast.Expr, g *mgGuard) bool {
	found := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := pass.Info.Selections[se]
		if !ok || sel.Kind() != types.FieldVal {
			return true
		}
		if fv, _ := sel.Obj().(*types.Var); fv != nil && g.guarded[fv] {
			found = true
		}
		return true
	})
	return found
}

// rwEvent is one ordered occurrence inside a block's nodes.
type rwEvent struct {
	pos token.Pos
	// lock-state transitions
	acquire, release string // instance keys ("" when not applicable)
	// violation checks, evaluated against the held set at this point
	violation func(held map[string]bool)
}

// checkRLockRegions runs the forward maybe-RLocked dataflow over one
// function body and reports writes, mutating calls and upgrades that
// can execute with a read lock held.
func checkRLockRegions(pass *Pass, body *ast.BlockStmt, funcName string, rw map[*types.TypeName]*mgGuard, mutating map[*types.Func]bool) {
	g := cfg.New(body)
	events := make([][]rwEvent, len(g.Blocks))
	any := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			evs := nodeEvents(pass, node, funcName, rw, mutating)
			if len(evs) > 0 {
				any = true
			}
			events[b.Index] = append(events[b.Index], evs...)
		}
		sort.SliceStable(events[b.Index], func(i, j int) bool {
			return events[b.Index][i].pos < events[b.Index][j].pos
		})
	}
	if !any {
		return
	}

	// Forward dataflow: in[b] = union of out[pred]; transfer applies
	// acquire/release transitions in order.
	in := make([]map[string]bool, len(g.Blocks))
	in[g.Entry.Index] = map[string]bool{}
	work := []*cfg.Block{g.Entry}
	transfer := func(b *cfg.Block) map[string]bool {
		held := copySet(in[b.Index])
		for _, ev := range events[b.Index] {
			if ev.acquire != "" {
				held[ev.acquire] = true
			}
			if ev.release != "" {
				delete(held, ev.release)
			}
		}
		return held
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b)
		for _, s := range b.Succs {
			if union(&in[s.Index], out) {
				work = append(work, s)
			}
		}
	}

	// Violation pass: replay each reachable block with its in-state.
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		held := copySet(in[b.Index])
		for _, ev := range events[b.Index] {
			if ev.violation != nil {
				ev.violation(held)
			}
			if ev.acquire != "" {
				held[ev.acquire] = true
			}
			if ev.release != "" {
				delete(held, ev.release)
			}
		}
	}
}

// nodeEvents extracts the ordered lock transitions and violation
// checks from one CFG node.
func nodeEvents(pass *Pass, node ast.Node, funcName string, rw map[*types.TypeName]*mgGuard, mutating map[*types.Func]bool) []rwEvent {
	var evs []rwEvent
	guardOf := func(tn *types.TypeName) *mgGuard { return rw[tn] }

	lockCallsIn(pass, node, func(call *ast.CallExpr, op lockOp, id lockID, deferred bool) {
		switch op {
		case opRLock:
			if !deferred {
				evs = append(evs, rwEvent{pos: call.Pos(), acquire: id.instance})
			}
		case opRUnlock:
			if !deferred { // a deferred RUnlock holds until exit
				evs = append(evs, rwEvent{pos: call.Pos(), release: id.instance})
			}
		case opLock:
			inst := id.instance
			disp := id.display
			pos := call.Pos()
			evs = append(evs, rwEvent{pos: pos, violation: func(held map[string]bool) {
				if held[inst] {
					pass.Reportf(pos,
						"%s() on %s while it is read-locked in %s: RWMutex upgrades self-deadlock — release the RLock first or take the write lock from the start",
						op, disp, funcName)
				}
			}})
		}
	})

	inspectSkippingFuncLits(node, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				evs = append(evs, writeEvents(pass, lhs, funcName, guardOf)...)
			}
		case *ast.IncDecStmt:
			evs = append(evs, writeEvents(pass, n.X, funcName, guardOf)...)
		case *ast.CallExpr:
			callee := calleeMethod(pass, n)
			if callee == nil || !mutating[callee] {
				return
			}
			se := n.Fun.(*ast.SelectorExpr)
			tn := namedTypeName(pass, se.X)
			g := guardOf(tn)
			if g == nil {
				return
			}
			root, fields, ok := fieldChain(pass, se.X)
			if !ok {
				return
			}
			inst := chainKey(root, fields, g.muName)
			pos := n.Pos()
			name := callee.Name()
			owner := tn.Name()
			evs = append(evs, rwEvent{pos: pos, violation: func(held map[string]bool) {
				if held[inst] {
					pass.Reportf(pos,
						"call to mutating method %s.%s under %s.RLock() in %s: it writes guarded fields or takes the write lock — the read path must stay read-only",
						owner, name, g.muName, funcName)
				}
			}})
		}
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// writeEvents yields a violation event per guarded-field selector in
// an assignment target.
func writeEvents(pass *Pass, lhs ast.Expr, funcName string, guardOf func(*types.TypeName) *mgGuard) []rwEvent {
	var evs []rwEvent
	ast.Inspect(lhs, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := pass.Info.Selections[se]
		if !ok || sel.Kind() != types.FieldVal {
			return true
		}
		fv, _ := sel.Obj().(*types.Var)
		if fv == nil {
			return true
		}
		tn := namedTypeName(pass, se.X)
		g := guardOf(tn)
		if g == nil || !g.guarded[fv] {
			return true
		}
		root, fields, ok2 := fieldChain(pass, se.X)
		if !ok2 {
			return true
		}
		inst := chainKey(root, fields, g.muName)
		pos := se.Sel.Pos()
		fieldName := fv.Name()
		owner := tn.Name()
		muName := g.muName
		evs = append(evs, rwEvent{pos: pos, violation: func(held map[string]bool) {
			if held[inst] {
				pass.Reportf(pos,
					"write to %s.%s under %s.RLock() in %s: guarded state must not change on the read path — take the write lock",
					owner, fieldName, muName, funcName)
			}
		}})
		return true
	})
	return evs
}

// namedTypeName resolves an expression's named type (after pointer
// deref) to its *types.TypeName, or nil.
func namedTypeName(pass *Pass, e ast.Expr) *types.TypeName {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return nil
	}
	if n := namedOf(tv.Type); n != nil {
		return n.Obj()
	}
	return nil
}

// inspectSkippingFuncLits walks one CFG node, skipping function
// literal bodies (separate control-flow universes) and deferred calls'
// contents are still visited — a deferred mutation runs at exit, where
// the deferred RUnlock has not yet released, so it is still in scope.
func inspectSkippingFuncLits(node ast.Node, visit func(ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// union merges src into *dst, allocating it on first touch; reports
// whether *dst grew (the dataflow's change signal).
func union(dst *map[string]bool, src map[string]bool) bool {
	if *dst == nil {
		*dst = copySet(src)
		return true
	}
	grew := false
	for k := range src {
		if !(*dst)[k] {
			(*dst)[k] = true
			grew = true
		}
	}
	return grew
}
