package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoFloatEq flags == and != between floating-point values. Aggregates
// in the cube are float64 sums; SUM over the same cells in a different
// order (eager vs lazy cube, tree vs linear scan) produces values that
// are equal in exact arithmetic but differ in the last ulp, so an
// equality cross-check that happens to pass today is a latent flaky
// test. Compare with an epsilon, or with math.Float64bits when
// bit-exactness is genuinely the contract (codec round-trips) — and in
// that case say so with a histlint:ignore directive.
//
// Exempt: x != x / x == x (the NaN idiom — textually identical
// operands), and comparisons where both operands are constants (the
// compiler folds those in exact precision).
var NoFloatEq = &Analyzer{
	Name: "nofloateq",
	Doc:  "no ==/!= on floating-point values (aggregates differ in the last ulp across evaluation orders)",
	Run:  runNoFloatEq,
}

func runNoFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded in exact precision
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN idiom
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: aggregate values differ in the last ulp across evaluation orders; use an epsilon or math.Float64bits",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
