package analysis

import (
	"fmt"
	"sort"
)

// Run loads the packages matched by patterns (relative to dir, which
// must lie inside a Go module) and applies every analyzer to every
// package. Diagnostics come back sorted by position; an error means
// the load or an analyzer itself failed, not that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(loader, pkgs, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages —
// the entry point tests use to drive analyzers over fixtures.
func RunPackages(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(loader.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				suppress: sup,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full histcube analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AppendBeforeApply,
		CoordNarrow,
		ErrWrap,
		MetricName,
		MutexGuard,
		NoFloatEq,
	}
}
