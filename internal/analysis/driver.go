package analysis

import (
	"fmt"
	"sort"
)

// Run loads the packages matched by patterns (relative to dir, which
// must lie inside a Go module) and applies every analyzer to every
// package. Diagnostics come back sorted by position; an error means
// the load or an analyzer itself failed, not that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(loader, pkgs, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages — the
// entry point tests use to drive analyzers over fixtures. After every
// per-package pass it runs each analyzer's Finish hook (whole-program
// state), then reports ignore directives that suppressed nothing.
func RunPackages(loader *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sup := newSuppressions()
	for _, pkg := range pkgs {
		sup.collect(loader.Fset, pkg.Files, &diags)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     loader.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				suppress: sup,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Finish == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: loader.Fset, diags: &diags, suppress: sup}
		if err := a.Finish(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
	}
	sup.reportStale(ran, &diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// knownAnalyzerNames is every analyzer name the suite has ever heard
// of (plus the "histlint" pseudo-analyzer), so a directive naming
// something else can be called out as a typo no matter which subset of
// analyzers a run uses.
var knownAnalyzerNames = map[string]bool{
	"histlint":          true,
	"appendbeforeapply": true,
	"atomicfield":       true,
	"coordnarrow":       true,
	"ctxloop":           true,
	"deferunlock":       true,
	"errwrap":           true,
	"lockorder":         true,
	"metricname":        true,
	"mutexguard":        true,
	"nofloateq":         true,
	"rwlockdiscipline":  true,
}

// All returns the full histcube analyzer suite in stable order, with a
// fresh lock-order accumulator. Use AllWith to keep a handle on the
// accumulator (DOT export).
func All() []*Analyzer {
	return AllWith(NewLockOrder())
}

// AllWith returns the full suite wired to the given lock-order
// accumulator, so callers (cmd/histlint's -lockgraph) can export the
// acquisition graph after the run.
func AllWith(lo *LockOrder) []*Analyzer {
	return []*Analyzer{
		AppendBeforeApply,
		AtomicField,
		CoordNarrow,
		CtxLoop,
		DeferUnlock,
		ErrWrap,
		lo.Analyzer(),
		MetricName,
		MutexGuard,
		NoFloatEq,
		RWLockDiscipline,
	}
}
