package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop keeps cancellation honest in the functions that promise it:
// a function taking a context.Context whose body contains an unbounded
// loop — `for { ... }` with no condition, or a range over a channel —
// must touch the context somewhere inside that loop (ctx.Err(),
// select on ctx.Done(), or passing ctx into a call that does the
// polling). Otherwise the context is decoration: the scatter-gather
// proxy and the shard clients advertise deadline support, but a retry
// loop that never looks at ctx spins on a dead request until the
// remote side hangs up, holding a connection slot and a goroutine the
// governor has already written off.
//
// Bounded loops (any `for` with a condition or classic three-clause
// form) are out of scope — they terminate on their own. So are
// functions without a context parameter: nothing was promised. A loop
// that intentionally ignores ctx (e.g. a drain loop that must run to
// completion) carries a justified //histlint:ignore.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "unbounded loops in context-taking functions poll cancellation",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd.Type) {
				continue
			}
			funcName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					if n.Cond == nil {
						checkLoopPollsCtx(pass, n.Body, n.Pos(), funcName, "unbounded for loop")
					}
				case *ast.RangeStmt:
					if isChanType(pass, n.X) {
						checkLoopPollsCtx(pass, n.Body, n.Pos(), funcName, "range over channel")
					}
				}
				return true
			})
		}
	}
	return nil
}

func checkLoopPollsCtx(pass *Pass, body *ast.BlockStmt, pos token.Pos, funcName, kind string) {
	if body == nil || touchesContext(pass, body) {
		return
	}
	pass.Reportf(pos,
		"%s in %s never polls cancellation: %s takes a context.Context — check ctx.Err() or select on ctx.Done() each iteration, or pass ctx to a call inside the loop",
		kind, funcName, funcName)
}

// touchesContext reports whether any expression of type context.Context
// occurs in the subtree — a ctx.Err() call, a ctx.Done() select arm,
// or ctx handed to a callee all qualify. Function literals are NOT
// skipped: a closure invoked inside the loop that uses ctx is a
// legitimate polling mechanism.
func touchesContext(pass *Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.Info.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

func isChanType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
