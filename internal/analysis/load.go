package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package: the unit an
// analyzer pass runs over. Only non-test files are loaded — the suite
// checks production code; tests are deliberately exempt from rules
// like the dropped-Close check.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader resolves and type-checks packages of one Go module without
// shelling out to the go tool: module-internal import paths map to
// directories under the module root, everything else (the standard
// library) goes through the stdlib source importer. Loaded packages
// are cached, so one Loader amortises the stdlib type-checking cost
// across many Load calls. A Loader is not safe for concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	ctxt    build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks dependencies from GOROOT source.
	// It reads the global build context, so disable cgo there too:
	// histcube is pure Go, and the cgo-free variants of net and friends
	// type-check without invoking the cgo tool.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		ctxt:       ctxt,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found in or above %s", dir)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			path = strings.Trim(path, `"`)
			if path != "" {
				return path, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module path in %s", gomod)
}

// Load expands the patterns relative to base (a directory inside the
// module; empty means the module root) and returns the matched
// packages, type-checked, in deterministic order. Patterns are
// directories ("./internal/core") or recursive globs ("./...",
// "./internal/..."); recursive expansion skips testdata, vendor and
// hidden directories, as the go tool does.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	if base == "" {
		base = l.ModuleRoot
	}
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	dirs, err := l.expand(abs, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// expand resolves patterns to package directories (absolute paths).
func (l *Loader) expand(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		fi, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !rec {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a package directory to its import path within
// the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport is the inverse mapping for module-internal imports.
func (l *Loader) dirForImport(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// loadDir parses and type-checks the package in dir (memoised).
func (l *Loader) loadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:                 (*loaderImporter)(l),
		FakeImportC:              true,
		Error:                    func(err error) { typeErrs = append(typeErrs, err) },
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	p := &Package{Dir: dir, ImportPath: importPath, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// loaderImporter adapts the loader to types.Importer: module-internal
// paths load from source inside the module, everything else falls back
// to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.loadDir(l.dirForImport(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
