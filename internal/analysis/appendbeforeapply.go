package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// AppendBeforeApply enforces the write-ahead ordering and mutation
// confinement of the op-sink architecture (core.Op / Cube.SetOpSink /
// wal replay):
//
//  1. append-before-apply: an exported method that applies a mutation
//     (calls the receiver's unexported apply/applyDelta) on a type
//     that has a logOp method must call logOp first — the durable sink
//     sees every mutation before it takes effect, so an acknowledged
//     op is always in the log. ApplyOp is the deliberate, documented
//     exception: it is the replay path and bypasses the sink.
//  2. apply confinement: inside internal/core, only the apply method
//     itself may call (*appendcube.Cube).Update or UpdateCtx — every
//     other call site would mutate historic-slice state behind the
//     sink's back.
//  3. replay confinement: only WAL recovery (internal/wal) may call
//     core's ApplyOp; anywhere else it is a sink bypass.
//  4. facade confinement: cmd/histserve must not import appendcube at
//     all — the server mutates through the core facade, which is where
//     the sink hook lives.
//
// Together these make the paper's Section 2.2 append-only contract —
// "updates only affect the latest instance", historic slices immutable
// — a property the build enforces rather than one reviews must catch.
var AppendBeforeApply = &Analyzer{
	Name: "appendbeforeapply",
	Doc:  "mutations are logged to the op sink before they are applied, and apply paths stay confined",
	Run:  runAppendBeforeApply,
}

func runAppendBeforeApply(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	inCore := PathHasSuffix(pkgPath, "internal/core")
	inWal := PathHasSuffix(pkgPath, "internal/wal")
	inServe := PathHasSuffix(pkgPath, "cmd/histserve")

	for _, f := range pass.Files {
		if inServe {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && PathHasSuffix(path, "internal/appendcube") {
					pass.Reportf(imp.Pos(),
						"histserve must mutate through the core facade (op sink + WAL), not internal/appendcube directly")
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLogBeforeApply(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeMethod(pass, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case inCore && (fn.Name() == "Update" || fn.Name() == "UpdateCtx") && PathHasSuffix(fn.Pkg().Path(), "internal/appendcube"):
					if fd.Name.Name != "apply" {
						pass.Reportf(call.Pos(),
							"appendcube.Cube.%s called outside apply: historic-slice mutations must route through the op-sink path (core.apply)", fn.Name())
					}
				case fn.Name() == "ApplyOp" && PathHasSuffix(fn.Pkg().Path(), "internal/core") && !inWal && !inCore:
					pass.Reportf(call.Pos(),
						"core ApplyOp bypasses the op sink; only WAL recovery (internal/wal) may replay ops")
				}
				return true
			})
		}
	}
	return nil
}

// checkLogBeforeApply implements rule 1 for one method declaration.
func checkLogBeforeApply(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Name.Name == "ApplyOp" {
		return
	}
	tn := receiverTypeName(pass, fd)
	if tn == nil || fd.Recv == nil || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvVar := pass.Info.Defs[recvIdent]
	if recvVar == nil {
		return
	}

	var firstApply *ast.CallExpr
	var firstLog token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		baseIdent, _ := baseIdentVar(pass, se.X)
		if baseIdent == nil || pass.Info.Uses[baseIdent] != recvVar {
			return true
		}
		switch se.Sel.Name {
		case "apply", "applyDelta":
			if firstApply == nil || call.Pos() < firstApply.Pos() {
				firstApply = call
			}
		case "logOp":
			if firstLog == token.NoPos || call.Pos() < firstLog {
				firstLog = call.Pos()
			}
		}
		return true
	})
	if firstApply == nil {
		return
	}
	// Only types wired to an op sink are in scope: the receiver type
	// must have a logOp method.
	if !hasMethod(tn, "logOp") {
		return
	}
	if firstLog == token.NoPos {
		pass.Reportf(firstApply.Pos(),
			"exported method %s.%s applies a mutation without logging it first: call logOp before apply so the WAL sink sees every acknowledged op", tn.Name(), fd.Name.Name)
	} else if firstLog > firstApply.Pos() {
		pass.Reportf(firstApply.Pos(),
			"%s.%s applies the mutation before logging it: logOp must precede apply (append-before-apply)", tn.Name(), fd.Name.Name)
	}
}

func hasMethod(tn *types.TypeName, name string) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}
