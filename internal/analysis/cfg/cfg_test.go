package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a file containing one function and returns
// its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// callNamed matches an ExprStmt (or bare CallExpr) calling ident name.
func callNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			n = ds.Call
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			n = es.X
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

// findCall locates the block/index of the first call to name.
func findCall(t *testing.T, g *Graph, name string) (*Block, int) {
	t.Helper()
	match := callNamed(name)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if match(n) {
				return b, i
			}
		}
	}
	t.Fatalf("no call to %s in graph", name)
	return nil, -1
}

// every reports EveryPathHits from just after the call to `from` for
// paths hitting a call to `to`.
func every(t *testing.T, body, from, to string) bool {
	t.Helper()
	g := New(parseBody(t, body))
	b, i := findCall(t, g, from)
	return g.EveryPathHits(b, i+1, callNamed(to))
}

func TestStraightLine(t *testing.T) {
	if !every(t, "lock()\nwork()\nunlock()", "lock", "unlock") {
		t.Error("straight-line release not seen")
	}
	if every(t, "lock()\nwork()", "lock", "unlock") {
		t.Error("missing release not detected")
	}
}

func TestEarlyReturnEscapes(t *testing.T) {
	body := `
lock()
if cond() {
	return
}
unlock()`
	if every(t, body, "lock", "unlock") {
		t.Error("early return without release not detected")
	}
	covered := `
lock()
if cond() {
	unlock()
	return
}
unlock()`
	if !every(t, covered, "lock", "unlock") {
		t.Error("release on both paths not recognised")
	}
}

func TestDeferCoversAllPaths(t *testing.T) {
	body := `
lock()
defer unlock()
if cond() {
	return
}
work()`
	if !every(t, body, "lock", "unlock") {
		t.Error("defer registration should cover every later path")
	}
	conditional := `
lock()
if cond() {
	defer unlock()
	return
}
work()`
	if every(t, conditional, "lock", "unlock") {
		t.Error("conditionally registered defer must not cover the other path")
	}
}

func TestPanicIsAnExit(t *testing.T) {
	body := `
lock()
if cond() {
	panic("boom")
}
unlock()`
	if every(t, body, "lock", "unlock") {
		t.Error("panic path without release not detected")
	}
}

func TestForLoop(t *testing.T) {
	// Release after the loop: the loop may spin, but every path that
	// reaches Exit passes unlock.
	body := `
lock()
for i := 0; i < n; i++ {
	work()
}
unlock()`
	if !every(t, body, "lock", "unlock") {
		t.Error("release after loop not recognised")
	}
	// break jumps past the release.
	escape := `
lock()
for {
	if cond() {
		break
	}
	unlock()
	return
}
work()`
	if every(t, escape, "lock", "unlock") {
		t.Error("break escaping past the release not detected")
	}
}

func TestInfiniteLoopIsVacuous(t *testing.T) {
	// for{} without break never reaches Exit: nothing escapes.
	body := `
lock()
for {
	work()
}`
	if !every(t, body, "lock", "unlock") {
		t.Error("non-exiting loop should satisfy vacuously")
	}
}

func TestRangeLoop(t *testing.T) {
	body := `
lock()
for _, v := range xs {
	use(v)
}
unlock()`
	if !every(t, body, "lock", "unlock") {
		t.Error("release after range not recognised")
	}
	skip := `
lock()
for _, v := range xs {
	if bad(v) {
		return
	}
}
unlock()`
	if every(t, skip, "lock", "unlock") {
		t.Error("return from range body not detected")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	body := `
lock()
switch x {
case 1:
	unlock()
case 2:
	unlock()
default:
	unlock()
}`
	if !every(t, body, "lock", "unlock") {
		t.Error("release in every case incl. default not recognised")
	}
	missingDefault := `
lock()
switch x {
case 1:
	unlock()
}`
	if every(t, missingDefault, "lock", "unlock") {
		t.Error("implicit no-default path not detected")
	}
	fall := `
lock()
switch x {
case 1:
	work()
	fallthrough
case 2:
	unlock()
default:
	unlock()
}`
	if !every(t, fall, "lock", "unlock") {
		t.Error("fallthrough into releasing case not recognised")
	}
}

func TestSelect(t *testing.T) {
	body := `
lock()
select {
case <-a:
	unlock()
case <-b:
	unlock()
}`
	if !every(t, body, "lock", "unlock") {
		t.Error("release in every comm clause not recognised")
	}
	leak := `
lock()
select {
case <-a:
	unlock()
case <-b:
}`
	if every(t, leak, "lock", "unlock") {
		t.Error("comm clause without release not detected")
	}
}

func TestGotoAndLabels(t *testing.T) {
	body := `
lock()
goto done
unlock()
done:
	work()`
	if every(t, body, "lock", "unlock") {
		t.Error("goto skipping the release not detected")
	}
	loop := `
lock()
again:
	if cond() {
		goto again
	}
unlock()`
	if !every(t, loop, "lock", "unlock") {
		t.Error("goto loop with trailing release not recognised")
	}
}

func TestLabeledBreak(t *testing.T) {
	body := `
lock()
outer:
	for {
		for {
			if cond() {
				break outer
			}
			if other() {
				break
			}
		}
		unlock()
		return
	}
work()`
	// break outer escapes both loops without ever unlocking.
	if every(t, body, "lock", "unlock") {
		t.Error("labeled break escaping the release not detected")
	}
}

func TestReachable(t *testing.T) {
	g := New(parseBody(t, "a()\nif c() {\n\tb()\n\treturn\n}\nd()"))
	ab, _ := findCall(t, g, "a")
	bb, _ := findCall(t, g, "b")
	db, _ := findCall(t, g, "d")
	if !g.Reachable(ab, bb) || !g.Reachable(ab, db) {
		t.Error("both branches should be reachable from entry")
	}
	if g.Reachable(bb, db) {
		t.Error("d comes after b's return; must be unreachable from it")
	}
	if !g.Reachable(ab, g.Exit) {
		t.Error("exit should be reachable")
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := New(parseBody(t, "return\nwork()"))
	wb, _ := findCall(t, g, "work")
	if g.Reachable(g.Entry, wb) {
		t.Error("code after return must be unreachable")
	}
}

func TestFuncLitNotDescended(t *testing.T) {
	g := New(parseBody(t, "f := func() { inner() }\nuse(f)"))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false // callers skip FuncLit bodies; builder keeps them out of separate blocks
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "inner" {
						t.Error("FuncLit body leaked into the enclosing graph")
					}
				}
				return true
			})
		}
	}
}

func TestDumpSmoke(t *testing.T) {
	g := New(parseBody(t, "if c() {\n\ta()\n} else {\n\tb()\n}"))
	var sb strings.Builder
	g.Dump(&sb)
	if !strings.Contains(sb.String(), "entry") || !strings.Contains(sb.String(), "->") {
		t.Errorf("dump looks wrong:\n%s", sb.String())
	}
}
