// Package cfg builds a basic-block control-flow graph over a single
// go/ast function body, using only the standard library. It exists so
// histlint's concurrency-discipline analyzers (deferunlock,
// rwlockdiscipline, lockorder) can reason about *paths* — "is the lock
// released on every way out of this function", "can this write happen
// while a read lock may be held" — instead of the purely positional
// text-order approximation the first-generation analyzers used.
//
// The graph is deliberately small: a Block is a maximal straight-line
// run of statements and the condition/range expressions that decide
// its successors; edges cover if/else, for (all three clauses), range,
// switch (expression and type, with fallthrough), select, labeled
// break/continue, goto, and return. A call to the panic builtin ends
// its block with an edge to Exit, so "every path" analyses see the
// panic exit. Deferred statements appear in the graph as ordinary
// *ast.DeferStmt nodes at their registration point: a path that passes
// the registration is a path on which the deferred call will run at
// function exit, which is exactly the property release-on-all-paths
// checks need.
//
// Function literals are NOT descended into — a closure is a separate
// control-flow universe (it may run after the enclosing frame
// returned), so analyzers build a separate Graph per FuncLit. Nodes
// are statements and decision expressions only; compound statements
// never appear as nodes, so walking a block's Nodes with ast.Inspect
// visits each executed expression exactly once (minus FuncLit bodies,
// which callers must skip, as they must everywhere else).
package cfg

import (
	"fmt"
	"go/ast"
	"io"
)

// Block is one basic block: Nodes execute in order, then control moves
// to one of Succs. A block ending in return or panic has the synthetic
// Exit block as its only successor. Kind is a short debugging label
// ("entry", "if.then", "for.body", ...).
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the CFG of one function body. Entry is where execution
// starts; Exit is a synthetic, empty block every return, panic and
// fall-off-the-end edge targets. Blocks holds every block (including
// unreachable ones, e.g. code after return) in creation order.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the CFG for a function body (fd.Body or lit.Body). A nil
// body yields a graph whose Entry falls straight through to Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.current = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.current, g.Exit)
	return g
}

// builder carries the under-construction graph plus the
// break/continue/fallthrough/goto resolution state.
type builder struct {
	g       *Graph
	current *Block
	targets []*target // innermost last
	labels  map[string]*labelInfo

	// pendingLabel is set by a LabeledStmt so the loop/switch it labels
	// registers break/continue targets under that name.
	pendingLabel string
}

// target is one enclosing breakable construct.
type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type labelInfo struct {
	block *Block // the labeled statement's block (goto/continue target)
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

// terminate ends the current block with an edge to `to` and starts a
// fresh (possibly unreachable) block for whatever follows.
func (b *builder) terminate(to *Block, kind string) {
	b.edge(b.current, to)
	b.current = b.newBlock(kind)
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos resolve.
func (b *builder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li.block
}

// findTarget resolves a break/continue to its construct; nil label
// means innermost.
func (b *builder) findTarget(label string, needContinue bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

// takeLabel consumes the pending label for the construct now being
// built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether a statement is a call to the panic
// builtin (syntactically; shadowing panic defeats it, as everywhere).
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s) {
			b.terminate(b.g.Exit, "after.panic")
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit, "after.return")
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.takeLabel()
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.current, lb)
		b.current = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	default:
		// Unknown statement kinds (future syntax) degrade to a plain
		// node: the analyses stay sound for everything they recognise.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.findTarget(label, false); t != nil {
			b.terminate(t.breakTo, "after.break")
			return
		}
	case "continue":
		if t := b.findTarget(label, true); t != nil {
			b.terminate(t.continueTo, "after.continue")
			return
		}
	case "goto":
		if s.Label != nil {
			b.terminate(b.labelBlock(s.Label.Name), "after.goto")
			return
		}
	case "fallthrough":
		// Handled by the switch builder, which rewires the case body's
		// fall edge; reaching here means a stray fallthrough — ignore.
	}
	b.add(s)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.current
	follow := b.newBlock("if.follow")

	thenB := b.newBlock("if.then")
	b.edge(head, thenB)
	b.current = thenB
	b.stmtList(s.Body.List)
	b.edge(b.current, follow)

	if s.Else != nil {
		elseB := b.newBlock("if.else")
		b.edge(head, elseB)
		b.current = elseB
		b.stmt(s.Else)
		b.edge(b.current, follow)
	} else {
		b.edge(head, follow)
	}
	b.current = follow
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.current, head)
	b.current = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	follow := b.newBlock("for.follow")
	body := b.newBlock("for.body")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, follow)
	}
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTo = post
	}
	b.targets = append(b.targets, &target{label: label, breakTo: follow, continueTo: contTo})
	b.current = body
	b.stmtList(s.Body.List)
	b.edge(b.current, contTo)
	b.targets = b.targets[:len(b.targets)-1]
	b.current = follow
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.edge(b.current, head)
	// The range expression and the per-iteration key/value targets are
	// evaluated at the head; they are plain expressions, safe as nodes.
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	follow := b.newBlock("range.follow")
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.edge(head, follow) // the range may be empty (or drained)
	b.targets = append(b.targets, &target{label: label, breakTo: follow, continueTo: head})
	b.current = body
	b.stmtList(s.Body.List)
	b.edge(b.current, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.current = follow
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(label, s.Body, func(cc *ast.CaseClause, blk *Block) {
		blk.Nodes = append(blk.Nodes, exprNodes(cc.List)...)
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(label, s.Body, nil)
}

// caseClauses builds the shared switch/type-switch shape: every case
// body is entered from the head, fallthrough chains to the next body,
// and a missing default adds a head→follow edge.
func (b *builder) caseClauses(label string, body *ast.BlockStmt, guards func(*ast.CaseClause, *Block)) {
	head := b.current
	follow := b.newBlock("switch.follow")
	b.targets = append(b.targets, &target{label: label, breakTo: follow})

	type caseBlk struct {
		cc  *ast.CaseClause
		blk *Block
	}
	var cases []caseBlk
	hasDefault := false
	for _, raw := range body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("case")
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
		if guards != nil {
			guards(cc, blk)
		}
		cases = append(cases, caseBlk{cc, blk})
	}
	if !hasDefault {
		b.edge(head, follow)
	}
	for i, c := range cases {
		b.current = c.blk
		list := c.cc.Body
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i+1 < len(cases) {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if fallsThrough {
			b.edge(b.current, cases[i+1].blk)
		} else {
			b.edge(b.current, follow)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.current = follow
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.current
	follow := b.newBlock("select.follow")
	b.targets = append(b.targets, &target{label: label, breakTo: follow})
	for _, raw := range s.Body.List {
		cc, ok := raw.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		b.edge(head, blk)
		b.current = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.current, follow)
	}
	// A select with no cases blocks forever: no head→follow edge is
	// added, so code after `select {}` is correctly unreachable.
	b.targets = b.targets[:len(b.targets)-1]
	b.current = follow
}

func exprNodes(list []ast.Expr) []ast.Node {
	nodes := make([]ast.Node, len(list))
	for i, e := range list {
		nodes[i] = e
	}
	return nodes
}

// Reachable reports whether `to` can execute after `from` (following
// successor edges; from is considered to reach itself).
func (g *Graph) Reachable(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// EveryPathHits reports whether every path from block `from`, starting
// at node index `start` within it, that reaches Exit passes at least
// one node for which hit returns true first. Paths that never reach
// Exit (infinite loops) are vacuously satisfied — they never leave the
// function, so nothing escapes unreleased. Because a block is
// straight-line, a hit anywhere in a block covers every path through
// that block: return/panic always terminate their block, so no exit
// can sneak out ahead of a hit in the same block.
func (g *Graph) EveryPathHits(from *Block, start int, hit func(ast.Node) bool) bool {
	for _, n := range from.Nodes[min(start, len(from.Nodes)):] {
		if hit(n) {
			return true
		}
	}
	// escapes(b): some path from the start of b reaches Exit without a
	// hit. Memoised DFS; a cycle contributes no escape of its own.
	memo := make([]int8, len(g.Blocks)) // 0 unknown, 1 escaping, 2 covered/in-progress
	var escapes func(b *Block) bool
	escapes = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		switch memo[b.Index] {
		case 1:
			return true
		case 2:
			return false
		}
		memo[b.Index] = 2
		blocked := false
		for _, n := range b.Nodes {
			if hit(n) {
				blocked = true
				break
			}
		}
		if !blocked {
			for _, s := range b.Succs {
				if escapes(s) {
					memo[b.Index] = 1
					return true
				}
			}
		}
		return false
	}
	for _, s := range from.Succs {
		if escapes(s) {
			return false
		}
	}
	return true
}

// BlockOf returns the block containing node n (by identity) and its
// index within the block, or (nil, -1).
func (g *Graph) BlockOf(n ast.Node) (*Block, int) {
	for _, b := range g.Blocks {
		for i, m := range b.Nodes {
			if m == n {
				return b, i
			}
		}
	}
	return nil, -1
}

// Dump writes a human-readable rendering, for tests and debugging.
func (g *Graph) Dump(w io.Writer) {
	for _, b := range g.Blocks {
		fmt.Fprintf(w, "b%d(%s):", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(w, " ->b%d", s.Index)
		}
		fmt.Fprintln(w)
	}
}
