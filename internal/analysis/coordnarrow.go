package analysis

import (
	"go/ast"
	"go/types"
)

// CoordNarrow flags unguarded narrowing conversions from int64/uint64
// to int or int32. Cube coordinates arrive as int64 (wire format,
// workload timestamps) but index into in-memory arrays as int; on a
// 32-bit platform — or with a corrupted WAL record — a silent
// truncation turns one cell's update into another cell's, which the
// append-only design then preserves forever. The histserve toCoord
// helper exists exactly to make this narrowing explicit; this analyzer
// makes sure nothing bypasses it.
//
// A conversion is considered guarded when the operand is a constant
// (the compiler checks the range) or when an earlier comparison in the
// same function mentions the same expression — the toCoord/ToCoord
// bounds-check shape. Anything else must either go through a guard
// helper or carry a histlint:ignore directive with a reason.
var CoordNarrow = &Analyzer{
	Name: "coordnarrow",
	Doc:  "int64→int narrowing must be range-guarded (coordinates index arrays)",
	Run:  runCoordNarrow,
}

func runCoordNarrow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNarrowing(pass, fd)
		}
	}
	return nil
}

func checkNarrowing(pass *Pass, fd *ast.FuncDecl) {
	// compared holds the textual form of every operand of every
	// comparison seen so far in this function, in source order; a
	// conversion whose operand was previously compared is treated as
	// range-guarded.
	compared := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op.String() {
			case "<", "<=", ">", ">=", "==", "!=":
				compared[types.ExprString(n.X)] = true
				compared[types.ExprString(n.Y)] = true
			}
		case *ast.CallExpr:
			if len(n.Args) != 1 {
				return true
			}
			tv, ok := pass.Info.Types[n.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || (dst.Kind() != types.Int && dst.Kind() != types.Int32) {
				return true
			}
			arg := n.Args[0]
			argTV, ok := pass.Info.Types[arg]
			if !ok {
				return true
			}
			src, ok := argTV.Type.Underlying().(*types.Basic)
			if !ok || (src.Kind() != types.Int64 && src.Kind() != types.Uint64) {
				return true
			}
			if argTV.Value != nil {
				return true // constant: the compiler rejects out-of-range values
			}
			if compared[types.ExprString(arg)] {
				return true // bounds-checked above (the toCoord shape)
			}
			pass.Reportf(n.Pos(),
				"unguarded narrowing %s(%s) from %s: bounds-check the value first (e.g. dims.ToCoord) so truncation cannot silently remap a coordinate",
				tv.Type.String(), types.ExprString(arg), src.Name())
		}
		return true
	})
}
