// Package ctxloop exercises cancellation honesty: an unbounded loop
// in a context-taking function must touch the context somewhere
// inside the loop.
package ctxloop

import "context"

// BadSpin waits forever without ever looking at ctx.
func BadSpin(ctx context.Context, ready func() bool) {
	for { // want `unbounded for loop in BadSpin never polls cancellation`
		if ready() {
			return
		}
	}
}

// BadDrain ranges a channel that may never close while the request is
// long dead.
func BadDrain(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch { // want `range over channel in BadDrain never polls cancellation`
		total += v
	}
	return total
}
