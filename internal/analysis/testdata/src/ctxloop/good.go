package ctxloop

import "context"

// GoodSpin polls ctx.Err each iteration.
func GoodSpin(ctx context.Context, ready func() bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if ready() {
			return nil
		}
	}
}

// GoodSelect selects on ctx.Done.
func GoodSelect(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// GoodDelegate passes ctx into the loop body — the callee does the
// polling.
func GoodDelegate(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

// GoodBounded terminates on its own; bounded loops are out of scope.
func GoodBounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// NoPromise has no context parameter: nothing was promised.
func NoPromise(ready func() bool) {
	for {
		if ready() {
			return
		}
	}
}

// Flush must run to completion regardless of cancellation — the
// justified-exception escape hatch.
func Flush(ctx context.Context, ch <-chan int) int {
	total := 0
	//histlint:ignore ctxloop drain must empty the channel even after cancellation
	for v := range ch {
		total += v
	}
	return total
}
