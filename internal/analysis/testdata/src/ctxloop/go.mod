module example.com/ctxloop

go 1.22
