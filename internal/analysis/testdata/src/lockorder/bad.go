// Package lockorder exercises the project-wide acquisition graph: an
// AB/BA inversion across two functions is a cycle (potential
// deadlock), including when one half of it hides behind a call.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type World struct {
	a A
	b B
}

// AB establishes the a→b edge.
func (w *World) AB() {
	w.a.mu.Lock()
	defer w.a.mu.Unlock()
	w.b.mu.Lock() // want `lock-order cycle lockorder.A.mu → lockorder.B.mu → lockorder.A.mu`
	defer w.b.mu.Unlock()
}

// BA inverts it: b→a closes the cycle. The diagnostic lands on the
// earliest witnessing edge, which is AB's inner acquisition above.
func (w *World) BA() {
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	w.a.mu.Lock()
	defer w.a.mu.Unlock()
}

// Recursive re-locks the very same instance: reported immediately,
// not drawn as an edge.
func (w *World) Recursive() {
	w.a.mu.Lock()
	w.a.mu.Lock() // want `recursive acquisition of lockorder.A.mu`
	w.a.mu.Unlock()
	w.a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

// poke acquires C.mu; callers holding other locks inherit the edge
// through the call-graph summary.
func (c *C) poke() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

type Pair struct {
	d sync.Mutex
	c *C
}

// Held holds d across the call into poke: the propagated edge
// Pair.d→C.mu is recorded here, and this is the cycle's earliest
// witness.
func (p *Pair) Held() {
	p.d.Lock()
	defer p.d.Unlock()
	p.c.poke() // want `lock-order cycle lockorder.C.mu → lockorder.Pair.d → lockorder.C.mu`
}

// Inverse acquires in the opposite order directly.
func (p *Pair) Inverse() {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	p.d.Lock()
	p.d.Unlock()
}
