module example.com/lockorder

go 1.22
