package lockorder

import "sync"

type X struct{ mu sync.Mutex }

type Y struct{ mu sync.Mutex }

type Consistent struct {
	x X
	y Y
}

// Both call sites agree on x-before-y: one edge, no cycle.
func (c *Consistent) First() {
	c.x.mu.Lock()
	defer c.x.mu.Unlock()
	c.y.mu.Lock()
	defer c.y.mu.Unlock()
}

func (c *Consistent) Second() {
	c.x.mu.Lock()
	c.y.mu.Lock()
	c.y.mu.Unlock()
	c.x.mu.Unlock()
}

// Sequential never holds both at once: no edge at all.
func (c *Consistent) Sequential() {
	c.y.mu.Lock()
	c.y.mu.Unlock()
	c.x.mu.Lock()
	c.x.mu.Unlock()
}

// Striped locks two instances of the SAME field: self-edges are
// deliberately never recorded (ordering within one field is out of
// scope), so this draws nothing.
func Striped(a, b *X) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}
