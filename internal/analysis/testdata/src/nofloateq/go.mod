module example.com/nofloateq

go 1.22
