package nofloateq

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func bad32(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func badZero(sum float64) bool {
	return sum == 0 // want `floating-point == comparison`
}

func goodNaNIdiom(a float64) bool {
	return a != a
}

func goodConstFold() bool {
	const x = 0.1
	const y = 0.2
	return x+y == 0.3
}

func goodEpsilon(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func goodInts(a, b int) bool { return a == b }

func suppressed(sentinel float64) bool {
	//histlint:ignore nofloateq zero is a sentinel in this fixture, not an arithmetic result
	return sentinel == 0
}
