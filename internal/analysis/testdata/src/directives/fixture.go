// Package directives exercises the histlint:ignore directive parser:
// a directive without a reason is itself a finding, under the
// pseudo-analyzer "histlint".
package directives

func noReason() int {
	//histlint:ignore nofloateq
	return 0
}
