// Package directives exercises the histlint:ignore directive parser
// and the stale-directive check: a directive without a reason is
// itself a finding, a directive naming an unknown analyzer is always
// a finding (a typo would otherwise silently suppress nothing
// forever), and a directive whose analyzer ran but reported nothing is
// stale.
package directives

func noReason() int {
	//histlint:ignore nofloateq
	return 0
}

func unknownAnalyzer() int {
	//histlint:ignore nofloatql suppressing a misspelled analyzer name
	return 0
}

// stale suppresses nothing: the comparison it once justified is gone.
func stale() int {
	//histlint:ignore nofloateq the float comparison here moved to stats
	return 0
}

// justified still covers a real finding, so it is used, not stale.
func justified(a, b float64) bool {
	//histlint:ignore nofloateq exact bit-equality intended: comparing against a sentinel
	return a == b
}
