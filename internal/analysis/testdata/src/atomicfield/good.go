package atomicfield

import "sync/atomic"

// GoodRead goes through sync/atomic, like every access must.
func (c *Counter) GoodRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// GoodFlag honours the annotation.
func (c *Counter) GoodFlag() {
	atomic.StoreUint32(&c.flag, 1)
}

// Name touches a field with no atomic history: out of scope.
func (c *Counter) Name() string {
	return c.name
}

// NewCounter initialises before the value is shared — justified, and
// the directive is consumed by a real finding (not stale).
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 0 //histlint:ignore atomicfield not shared yet: plain init before publication
	return c
}
