// Package atomicfield exercises all-or-nothing atomicity: once any
// access to a field goes through sync/atomic — or the field is marked
// //guarded-by:atomic — every access must.
package atomicfield

import "sync/atomic"

type Counter struct {
	hits int64  // atomic by use: see Inc
	flag uint32 //guarded-by:atomic
	name string // plain field, never atomic — untouched by the check
}

// Inc is the use that puts hits under the atomic rule.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// BadRead mixes a plain load with the atomic add above: a data race.
func (c *Counter) BadRead() int64 {
	return c.hits // want `plain access to hits`
}

// BadWrite is the same race on the store side.
func (c *Counter) BadWrite() {
	c.hits = 0 // want `plain access to hits`
}

// BadFlag touches an annotated field non-atomically — the annotation
// alone is enough, no atomic call needed first.
func (c *Counter) BadFlag() {
	c.flag = 1 // want `plain access to flag`
}
