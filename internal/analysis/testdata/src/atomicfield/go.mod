module example.com/atomicfield

go 1.22
