package rwlockdiscipline

// Get is the shape the analyzer exists to protect: a pure read under
// the read lock.
func (s *Store) Get(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cells[k]
}

// Put writes under the write lock — the held set tracks only read
// acquisitions, so nothing fires.
func (s *Store) Put(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells[k] = v
	s.gen++
}

// Snapshot reads several guarded fields and calls a read-only helper;
// non-mutating methods are fine on the read path.
func (s *Store) Snapshot() (int, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sizeLocked(), s.gen
}

// sizeLocked is read-only: not a mutator, and exempt from checking by
// the Locked-suffix convention anyway.
func (s *Store) sizeLocked() int { return len(s.cells) }

// Reread releases the read lock before mutating: the explicit RUnlock
// removes the instance from the held set.
func (s *Store) Reread(k, v int) {
	s.mu.RLock()
	stale := s.cells[k] != v
	s.mu.RUnlock()
	if stale {
		s.mu.Lock()
		s.cells[k] = v
		s.mu.Unlock()
	}
}
