// Package rwlockdiscipline exercises read-path purity: between RLock
// and RUnlock of an annotated RWMutex guard, guarded fields must not
// be written, mutating methods must not be called, and the lock must
// not be upgraded.
package rwlockdiscipline

import "sync"

type Store struct {
	mu    sync.RWMutex
	cells map[int]int // guarded by mu
	gen   int         // guarded by mu
}

// BadWrite mutates guarded state on the read path.
func (s *Store) BadWrite(k, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.cells[k] = v // want `write to Store.cells under mu.RLock\(\)`
}

// BadIncDec is a write too.
func (s *Store) BadIncDec() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.gen++ // want `write to Store.gen under mu.RLock\(\)`
}

// BadUpgrade takes the write lock while read-locked: self-deadlock.
func (s *Store) BadUpgrade() {
	s.mu.RLock()
	s.mu.Lock() // want `while it is read-locked`
	s.mu.Unlock()
	s.mu.RUnlock()
}

// bump writes gen under the write lock — a mutating method.
func (s *Store) bump() {
	s.mu.Lock()
	s.gen++
	s.mu.Unlock()
}

// refresh is mutating transitively, through bump.
func (s *Store) refresh() { s.bump() }

// BadCall invokes a mutating method from the read path.
func (s *Store) BadCall(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.bump() // want `call to mutating method Store.bump under mu.RLock\(\)`
	return s.cells[k]
}

// BadTransitiveCall is caught through the call-summary fixpoint.
func (s *Store) BadTransitiveCall() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.refresh() // want `call to mutating method Store.refresh under mu.RLock\(\)`
}

// BadBranch shows the CFG path-sensitivity: the RLock is taken on only
// one branch, and the write after the join is reachable with it held.
func (s *Store) BadBranch(fast bool, k, v int) {
	if fast {
		s.mu.RLock()
	} else {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.cells[k] = v // want `write to Store.cells under mu.RLock\(\)`
	if fast {
		s.mu.RUnlock()
	}
}
