module example.com/rwlockdiscipline

go 1.22
