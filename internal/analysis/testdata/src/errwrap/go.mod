module example.com/errwrap

go 1.22
