package errwrap

import (
	"fmt"
	"os"
)

func wrapBad(err error) error {
	return fmt.Errorf("open failed: %v", err) // want `use %w so callers can errors\.Is/As`
}

func wrapGood(err error) error {
	return fmt.Errorf("open failed: %w", err)
}

func wrapNoError(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func dropBad(f *os.File) {
	f.Close() // want `f\.Close\(\) silently drops its error`
}

func dropDeferBad(f *os.File) {
	defer f.Close() // want `defer f\.Close\(\) silently drops its error`
}

func dropSyncBad(f *os.File) {
	f.Sync() // want `f\.Sync\(\) silently drops its error`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func explicitDiscard(f *os.File) {
	_ = f.Close()
}
