package errwrap

import (
	"fmt"
	"os"
)

func wrapBad(err error) error {
	return fmt.Errorf("open failed: %v", err) // want `use %w so callers can errors\.Is/As`
}

func wrapGood(err error) error {
	return fmt.Errorf("open failed: %w", err)
}

func wrapNoError(n int) error {
	return fmt.Errorf("bad count: %d", n)
}

func dropBad(f *os.File) {
	f.Close() // want `f\.Close\(\) silently drops its error`
}

func dropDeferBad(f *os.File) {
	defer f.Close() // want `defer f\.Close\(\) silently drops its error`
}

func dropSyncBad(f *os.File) {
	f.Sync() // want `f\.Sync\(\) silently drops its error`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func explicitDiscard(f *os.File) {
	_ = f.Close()
}

// --- retry-helper idioms (internal/retry) ---
//
// Retry closures are ordinary error paths: a %v inside one hides the
// wrapped cause from retry.IsPermanent / errors.Is exactly like it
// would anywhere else, and Sync calls inside a closure still may not
// drop their error.

type policy struct{}

func (policy) Do(label string, fn func() error) error { return fn() }

func permanent(err error) error { return fmt.Errorf("permanent: %w", err) }

func retryFlattensCause(p policy, f *os.File) error {
	return p.Do("seg.write", func() error {
		if _, err := f.Write(nil); err != nil {
			return fmt.Errorf("segment write: %v", err) // want `use %w so callers can errors\.Is/As`
		}
		return nil
	})
}

func retryWrapsCause(p policy, f *os.File) error {
	return p.Do("seg.write", func() error {
		if _, err := f.Write(nil); err != nil {
			return fmt.Errorf("segment write: %w", err)
		}
		return nil
	})
}

func retryDoubleWrap(p policy, f *os.File) error {
	return p.Do("seg.rollback", func() error {
		_, err := f.Write(nil)
		if err == nil {
			return nil
		}
		if terr := f.Truncate(0); terr != nil {
			return permanent(fmt.Errorf("rollback failed: %w (after write error: %w)", terr, err))
		}
		return err
	})
}

func retryDropsSync(p policy, f *os.File) error {
	return p.Do("seg.sync", func() error {
		f.Sync() // want `f\.Sync\(\) silently drops its error`
		return nil
	})
}

// Passing the Sync method value itself hands the error to the retry
// policy; nothing is dropped.
func retryMethodValue(p policy, f *os.File) error {
	return p.Do("seg.sync", f.Sync)
}
