module example.com/deferunlock

go 1.22
