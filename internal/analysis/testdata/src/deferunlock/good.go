package deferunlock

// GoodDefer releases via the canonical defer-right-after idiom.
func (s *S) GoodDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// GoodBranches releases explicitly on each path.
func (s *S) GoodBranches(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// GoodPanic releases before panicking — the panic edge counts as an
// exit and is covered.
func (s *S) GoodPanic(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		panic("boom")
	}
	s.mu.Unlock()
}

// GoodClosure: the literal is its own control-flow universe and locks
// for itself.
func (s *S) GoodClosure() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
	}
}

// GoodSpin holds across iterations of an infinite loop — there is no
// path to the exit, so the obligation is vacuously met.
func (s *S) GoodSpin() {
	s.mu.Lock()
	for {
		s.n++
	}
}

// lockAndReturn intentionally hands the held lock to its caller.
func (s *S) lockAndReturn() {
	//histlint:ignore deferunlock lock handoff: the caller releases via unlockNow
	s.mu.Lock()
}

// unlockNow releases the lock lockAndReturn handed over — a bare
// release is not an acquisition and needs no directive.
func (s *S) unlockNow() {
	s.mu.Unlock()
}
