// Package deferunlock exercises release-on-all-paths checking: a lock
// acquisition must be matched by a defer or by an explicit release on
// every control-flow path to a function exit.
package deferunlock

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

type R struct {
	mu sync.RWMutex
	n  int
}

// Bad leaks the lock on the early-return path.
func (s *S) Bad(b bool) int {
	s.mu.Lock() // want `Lock\(\) is not released on every path`
	if b {
		return 1
	}
	s.mu.Unlock()
	return 0
}

// BadRLock leaks the read lock the same way.
func (r *R) BadRLock(b bool) int {
	r.mu.RLock() // want `RLock\(\) is not released on every path`
	if b {
		return 1
	}
	r.mu.RUnlock()
	return 0
}

// BadCondDefer registers the defer on only one branch; the other
// branch reaches the exit still holding the lock.
func (s *S) BadCondDefer(b bool) {
	s.mu.Lock() // want `Lock\(\) is not released on every path`
	if b {
		defer s.mu.Unlock()
	}
	s.n++
}

// BadLoopBreak escapes the loop between Lock and Unlock.
func (s *S) BadLoopBreak(xs []int) {
	for _, x := range xs {
		s.mu.Lock() // want `Lock\(\) is not released on every path`
		if x < 0 {
			break
		}
		s.mu.Unlock()
	}
}

// BadSwitch forgets the release in one case.
func (s *S) BadSwitch(k int) int {
	s.mu.Lock() // want `Lock\(\) is not released on every path`
	switch k {
	case 0:
		s.mu.Unlock()
		return 0
	case 1:
		return 1
	}
	s.mu.Unlock()
	return 2
}
