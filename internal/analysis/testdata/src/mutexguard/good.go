package mutexguard

import "sync"

type store struct {
	mu    sync.RWMutex
	cells []float64 // guarded by mu
	name  string    // unguarded: set once before the store is shared
}

func (s *store) Get(i int) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cells[i]
}

func (s *store) Set(i int, v float64) {
	s.mu.Lock()
	s.cells[i] = v
	s.mu.Unlock()
}

// sumLocked's contract is that the caller holds mu.
func (s *store) sumLocked() float64 {
	var t float64
	for _, v := range s.cells {
		t += v
	}
	return t
}

func (s *store) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sumLocked()
}

func (s *store) Name() string { return s.name }

func (s *store) LockedClosure() float64 {
	var v float64
	f := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		v = s.cells[0]
	}
	f()
	return v
}
