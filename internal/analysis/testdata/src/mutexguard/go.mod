module example.com/mutexguard

go 1.22
