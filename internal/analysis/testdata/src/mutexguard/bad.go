package mutexguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) Bad() int {
	return c.n // want `counter\.n is guarded by mu but accessed without holding it in Bad`
}

func (c *counter) BadAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `counter\.n is guarded by mu but accessed without holding it in BadAfterUnlock`
}

func (c *counter) BadClosure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The closure may run after BadAfterUnlock's caller released mu,
	// so the lock held here does not cover it.
	return func() int {
		return c.n // want `counter\.n is guarded by mu but accessed without holding it in BadClosure`
	}
}

type brokenAnnotation struct {
	mu sync.Mutex
	x  int // guarded by missing  want `guarded-by annotation names "missing"`
}
