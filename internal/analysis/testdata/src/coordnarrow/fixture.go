package coordnarrow

func bad(v int64, u uint64) (int, int32) {
	a := int(v)   // want `unguarded narrowing int\(v\) from int64`
	b := int32(u) // want `unguarded narrowing int32\(u\) from uint64`
	return a, b
}

func goodGuarded(v int64) int {
	if v < 0 || v > 1<<31-1 {
		return 0
	}
	return int(v)
}

func goodConst() int {
	const k int64 = 42
	return int(k)
}

func goodWidening(v int32) int64 { return int64(v) }

func goodSmallSource(v int16) int { return int(v) }
