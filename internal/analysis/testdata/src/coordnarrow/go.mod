module example.com/coordnarrow

go 1.22
