// Command histserve (stub) demonstrates the two confinement
// violations the server binary is checked for.
package main

import (
	"example.com/appendbeforeapply/internal/appendcube" // want `histserve must mutate through the core facade`
	"example.com/appendbeforeapply/internal/core"
)

func main() {
	direct := &appendcube.Cube{}
	_ = direct
	c := &core.Cube{}
	_ = c.ApplyOp(core.Op{Cell: 1, Value: 2}) // want `core ApplyOp bypasses the op sink`
}
