// Package appendcube is a stub of the storage layer whose Update is
// confined to core's apply path.
package appendcube

type Cube struct {
	cells []float64
}

func (c *Cube) Update(i int, v float64) {
	for len(c.cells) <= i {
		c.cells = append(c.cells, 0)
	}
	c.cells[i] += v
}

// UpdateCtx is the context-aware variant; it is confined to core's
// apply exactly like Update.
func (c *Cube) UpdateCtx(done <-chan struct{}, i int, v float64) {
	select {
	case <-done:
		return
	default:
	}
	c.Update(i, v)
}
