// Package wal may replay ops through ApplyOp: recovery re-applies what
// the log already holds, so re-logging would duplicate records.
package wal

import "example.com/appendbeforeapply/internal/core"

func Replay(c *core.Cube, ops []core.Op) error {
	for _, op := range ops {
		if err := c.ApplyOp(op); err != nil {
			return err
		}
	}
	return nil
}
