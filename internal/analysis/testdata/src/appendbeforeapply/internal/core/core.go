// Package core is a stub of the facade the appendbeforeapply analyzer
// guards: exported mutators must route through logOp before apply, the
// storage layer's Update is confined to apply, and ApplyOp is the
// replay-only path.
package core

import "example.com/appendbeforeapply/internal/appendcube"

type Op struct {
	Cell  int
	Value float64
}

type Cube struct {
	inner *appendcube.Cube
	sink  func(Op) error
}

func (c *Cube) logOp(op Op) error {
	if c.sink != nil {
		return c.sink(op)
	}
	return nil
}

func (c *Cube) apply(op Op) {
	c.inner.Update(op.Cell, op.Value)
	c.inner.UpdateCtx(nil, op.Cell, 0)
}

func (c *Cube) applyDelta(op Op, scale float64) {
	op.Value *= scale
	c.apply(op)
}

func (c *Cube) Insert(op Op) error {
	if err := c.logOp(op); err != nil {
		return err
	}
	c.apply(op)
	return nil
}

func (c *Cube) AddDelta(op Op, scale float64) error {
	if err := c.logOp(op); err != nil {
		return err
	}
	c.applyDelta(op, scale)
	return nil
}

func (c *Cube) InsertUnlogged(op Op) {
	c.apply(op) // want `applies a mutation without logging it first`
}

func (c *Cube) InsertSwapped(op Op) error {
	c.apply(op) // want `applies the mutation before logging it`
	return c.logOp(op)
}

// ApplyOp is the replay path: it bypasses the sink by design.
func (c *Cube) ApplyOp(op Op) error {
	c.apply(op)
	return nil
}

func (c *Cube) Rebuild(ops []Op) {
	for _, op := range ops {
		c.inner.Update(op.Cell, op.Value) // want `appendcube\.Cube\.Update called outside apply`
	}
}

func (c *Cube) RebuildCtx(done <-chan struct{}, ops []Op) {
	for _, op := range ops {
		c.inner.UpdateCtx(done, op.Cell, op.Value) // want `appendcube\.Cube\.UpdateCtx called outside apply`
	}
}
