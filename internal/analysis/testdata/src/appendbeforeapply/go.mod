module example.com/appendbeforeapply

go 1.22
