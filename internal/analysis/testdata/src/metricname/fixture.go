package metricname

import "example.com/metricname/internal/obs"

const namedConstant = "histcube_named_constant_total"

func register(reg *obs.Registry, dynamic string) {
	reg.NewCounter("histcube_requests_total", "ok: literal, well-formed")
	reg.NewCounter(namedConstant, "ok: named constant still folds to a literal")
	reg.NewGaugeFunc("histserve_queue_depth", "ok: histserve prefix", func() float64 { return 0 })
	reg.NewHistogram("histcube_latency_seconds", "ok", nil)

	reg.NewCounter(dynamic, "bad: computed name")                  // want `metric name dynamic is not a string constant`
	reg.NewCounter("histcube_requests_total"+dynamic, "bad")       // want `is not a string constant`
	reg.NewGauge("histcube_BadCase", "bad: upper case")            // want `violates the naming contract`
	reg.NewGauge("cube_missing_prefix", "bad: prefix")             // want `violates the naming contract`
	reg.NewCounterFunc("histcube_", "bad: bare prefix", count)     // want `violates the naming contract`
	reg.NewHistogram("histcube_requests_total", "bad: duped", nil) // want `metric "histcube_requests_total" is registered at two sites`
}

func count() int64 { return 0 }
