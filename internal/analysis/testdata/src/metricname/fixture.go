package metricname

import (
	"example.com/metricname/internal/obs"
	"example.com/metricname/internal/trace"
)

const namedConstant = "histcube_named_constant_total"

func register(reg *obs.Registry, dynamic string) {
	reg.NewCounter("histcube_requests_total", "ok: literal, well-formed")
	reg.NewCounter(namedConstant, "ok: named constant still folds to a literal")
	reg.NewGaugeFunc("histserve_queue_depth", "ok: histserve prefix", func() float64 { return 0 })
	reg.NewHistogram("histcube_latency_seconds", "ok", nil)

	reg.NewCounter(dynamic, "bad: computed name")                  // want `metric name dynamic is not a string constant`
	reg.NewCounter("histcube_requests_total"+dynamic, "bad")       // want `is not a string constant`
	reg.NewGauge("histcube_BadCase", "bad: upper case")            // want `violates the naming contract`
	reg.NewGauge("cube_missing_prefix", "bad: prefix")             // want `violates the naming contract`
	reg.NewCounterFunc("histcube_", "bad: bare prefix", count)     // want `violates the naming contract`
	reg.NewHistogram("histcube_requests_total", "bad: duped", nil) // want `metric "histcube_requests_total" is registered at two sites`
}

func count() int64 { return 0 }

// registerPerf mirrors internal/perf's Set.Register: one NewGaugeFunc
// call site inside a loop publishes each histserve_cmd_* series for
// every cmd/stat label pair. A single site registering the same
// literal name many times is fine — the duplicate rule counts sites,
// not calls — and the per-command latency names must parse as
// well-formed histserve_ metrics.
func registerPerf(reg *obs.Registry, names []string) {
	for _, n := range names {
		for _, stat := range []string{"p50", "p95", "p99", "max", "mean"} {
			reg.NewGaugeFunc("histserve_cmd_latency_seconds", "ok: one site, many label pairs",
				func() float64 { return 0 },
				obs.Label{Key: "cmd", Value: n}, obs.Label{Key: "stat", Value: stat})
		}
		reg.NewGaugeFunc("histserve_cmd_window_ops_per_sec", "ok: histserve prefix, snake case",
			func() float64 { return 0 }, obs.Label{Key: "cmd", Value: n})
		reg.NewGaugeFunc("histserve_cmd_window_count", "ok: histserve prefix, snake case",
			func() float64 { return 0 }, obs.Label{Key: "cmd", Value: n})
	}
	reg.NewGaugeFunc("histserve_cmd_window_count", "bad: second site for a live name", count2) // want `metric "histserve_cmd_window_count" is registered at two sites`
}

func count2() float64 { return 0 }

// registerProxy covers the histproxy_ prefix (cmd/histproxy's metric
// namespace, published by perf.RegisterProxy and the proxy's own
// counters): well-formed histproxy_ names pass, near-misses on the
// prefix or case fail like any other name.
func registerProxy(reg *obs.Registry, shards []string) {
	reg.NewCounter("histproxy_requests_total", "ok: histproxy prefix")
	reg.NewCounter("histproxy_partials_total", "ok: histproxy prefix")
	for _, sh := range shards {
		reg.NewGaugeFunc("histproxy_shard_up", "ok: one site, one label pair per shard",
			func() float64 { return 0 }, obs.Label{Key: "shard", Value: sh})
	}

	reg.NewCounter("histproxy_", "bad: bare prefix")            // want `violates the naming contract`
	reg.NewCounter("proxy_requests_total", "bad: short prefix") // want `violates the naming contract`
	reg.NewGauge("histproxy_Shard_Up", "bad: upper case")       // want `violates the naming contract`
}

// registerRuntime covers the runtime/contention collector's names
// (internal/obs NewRuntimeCollector): histcube_runtime_* gauges and
// counters plus the histcube_lock_* totals, including the
// NewFloatCounterFunc registration path for float64 monotonic totals.
func registerRuntime(reg *obs.Registry) {
	reg.NewGaugeFunc("histcube_runtime_goroutines", "ok: runtime gauge", count2)
	reg.NewGaugeFunc("histcube_runtime_heap_bytes", "ok: runtime gauge", count2)
	reg.NewGaugeFunc("histcube_runtime_gc_pause_p99_seconds", "ok: runtime gauge", count2)
	reg.NewCounterFunc("histcube_runtime_gc_cycles_total", "ok: runtime counter", count)
	reg.NewFloatCounterFunc("histcube_lock_wait_seconds_total", "ok: float counter func", count2)
	reg.NewCounterFunc("histcube_lock_contention_events_total", "ok: runtime counter", count)

	reg.NewFloatCounterFunc("histcube_Lock_Wait", "bad: upper case", count2)   // want `violates the naming contract`
	reg.NewFloatCounterFunc("lock_wait_seconds_total", "bad: prefix", count2)  // want `violates the naming contract`
	reg.NewFloatCounterFunc("histcube_lock_wait_seconds_total", "bad", count2) // want `metric "histcube_lock_wait_seconds_total" is registered at two sites`
}

const namedSpan = "histcube.named_span"

func spans(dynamic string) {
	root := trace.New("histserve.query")    // ok: literal, dotted, well-formed
	root.StartChild("histcube.prefix")      // ok
	root.StartChild("histcube.slice_query") // ok: underscores inside a dotted segment
	root.StartChild("histcube.prefix")      // ok: same span name from many sites is fine (no duplicate rule)
	_ = trace.New(namedSpan)                // ok: named constant still folds to a literal

	_ = trace.New(dynamic)                 // want `span name dynamic is not a string constant`
	_ = trace.New("histcube." + dynamic)   // want `is not a string constant`
	_ = trace.New("histcube.BadCase")      // want `span name "histcube.BadCase" violates the naming contract`
	_ = trace.New("histcube_query")        // want `violates the naming contract`
	_ = trace.New("query.histcube")        // want `violates the naming contract`
	root.StartChild("histcube.")           // want `violates the naming contract`
	root.StartChild("other.prefix.spoken") // want `violates the naming contract`
}

// proxySpans covers cmd/histproxy's span namespace: proxy.query roots
// with one proxy.leg child per shard fan-out. "proxy" alone is a span
// prefix, not a metric prefix — histproxy. is NOT a valid span prefix
// (the namespaces are deliberately distinct so a grep for proxy. finds
// spans and histproxy_ finds metrics).
func proxySpans() {
	root := trace.New("proxy.query") // ok: proxy span prefix
	root.StartChild("proxy.leg")     // ok: one child per fan-out leg
	_ = trace.New("proxy.insert")    // ok

	_ = trace.New("histproxy.query") // want `violates the naming contract`
	_ = trace.New("proxy.")          // want `violates the naming contract`
	root.StartChild("proxy.Leg")     // want `violates the naming contract`
}
