// Package trace is a minimal stub of histcube's span recorder: the
// metricname analyzer matches trace.New and Span.StartChild by name on
// any package whose import path ends in internal/trace.
package trace

type Span struct{}

func New(name string) *Span { return &Span{} }

func (s *Span) StartChild(name string) *Span { return &Span{} }
