// Package obs is a minimal stub of histcube's metrics registry: the
// metricname analyzer matches the registration methods by name on any
// package whose import path ends in internal/obs.
package obs

type Label struct{ Key, Value string }

type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

type Registry struct{}

func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter { return &Counter{} }

func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) {}

func (r *Registry) NewFloatCounterFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge { return &Gauge{} }

func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
