module example.com/metricname

go 1.22
