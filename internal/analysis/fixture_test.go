package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"histcube/internal/analysis"
)

// Fixture convention: each analyzer has a self-contained Go module
// under testdata/src/<name>/. Lines that must be diagnosed carry a
// comment containing `want` followed by one or more backquoted
// regexps; every reported diagnostic must match a want on its line and
// every want must be hit.

var (
	wantLineRE = regexp.MustCompile("want ((?:`[^`]+`[ \t]*)+)$")
	wantPatRE  = regexp.MustCompile("`([^`]+)`")
)

type wantMark struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, dir string) []*wantMark {
	t.Helper()
	var wants []*wantMark
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range wantPatRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(pat[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %w", path, i+1, pat[1], err)
				}
				wants = append(wants, &wantMark{file: abs, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func runFixture(t *testing.T, name string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", name)
	}
	diags, err := analysis.RunPackages(loader, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// checkFixture runs one analyzer over its fixture module and compares
// the diagnostics against the want marks.
func checkFixture(t *testing.T, a *analysis.Analyzer) {
	t.Helper()
	diags := runFixture(t, a.Name, a)
	wants := parseWants(t, filepath.Join("testdata", "src", a.Name))
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no want marks", a.Name)
	}
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMutexGuard(t *testing.T)        { checkFixture(t, analysis.MutexGuard) }
func TestAppendBeforeApply(t *testing.T) { checkFixture(t, analysis.AppendBeforeApply) }
func TestMetricName(t *testing.T)        { checkFixture(t, analysis.MetricName) }
func TestCoordNarrow(t *testing.T)       { checkFixture(t, analysis.CoordNarrow) }
func TestErrWrap(t *testing.T)           { checkFixture(t, analysis.ErrWrap) }
func TestNoFloatEq(t *testing.T)         { checkFixture(t, analysis.NoFloatEq) }
func TestDeferUnlock(t *testing.T)       { checkFixture(t, analysis.DeferUnlock) }
func TestRWLockDiscipline(t *testing.T)  { checkFixture(t, analysis.RWLockDiscipline) }
func TestAtomicField(t *testing.T)       { checkFixture(t, analysis.AtomicField) }
func TestCtxLoop(t *testing.T)           { checkFixture(t, analysis.CtxLoop) }

// TestLockOrder uses a fresh accumulator: its state is per-run by
// design, and sharing one across tests would merge the graphs.
func TestLockOrder(t *testing.T) { checkFixture(t, analysis.NewLockOrder().Analyzer()) }

// TestMalformedDirective checks the no-analyzer run of the directives
// fixture: a directive without a reason is reported, and a directive
// naming an analyzer the suite has never heard of is reported even
// though nothing ran — a typo must not suppress nothing, silently,
// forever. Directives for known analyzers that were not part of the
// run are left alone.
func TestMalformedDirective(t *testing.T) {
	diags := runFixture(t, "directives")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "histlint" || !strings.Contains(d.Message, "needs an analyzer name and a reason") {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
	if d := diags[1]; d.Analyzer != "histlint" || !strings.Contains(d.Message, `unknown analyzer "nofloatql"`) {
		t.Fatalf("unexpected diagnostic: %s", d)
	}
}

// TestStaleDirective runs the directives fixture WITH nofloateq: now
// the directive that suppresses nothing is stale, while the one that
// still covers a real finding stays silent (and so does the finding).
func TestStaleDirective(t *testing.T) {
	diags := runFixture(t, "directives", analysis.NoFloatEq)
	var stale []analysis.Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "stale ignore directive") {
			stale = append(stale, d)
		}
		if d.Analyzer == "nofloateq" {
			t.Errorf("the justified directive should have suppressed this: %s", d)
		}
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "no nofloateq finding is suppressed here") {
		t.Fatalf("got stale diagnostics %v, want exactly one for the rotted nofloateq directive", stale)
	}
	if len(diags) != 3 { // malformed + unknown + stale
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
}
