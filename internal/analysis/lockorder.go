package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// LockOrder accumulates the project-wide lock-acquisition graph and
// reports cycles in it as potential deadlocks. It is the one analyzer
// in the suite that is whole-program by construction: an AB/BA
// deadlock is invisible to any per-package, per-function check,
// because each half of the inversion is locally fine.
//
// Vertices are lock *nodes* — the mutex field (one vertex for every
// instance of *shardclient.Client.mu) or package-level mutex variable.
// An edge A→B is recorded when B is acquired while A is held, either
// directly in one function body or through a call chain: per-function
// summaries of "locks acquired anywhere inside" are propagated over
// the call graph to a fixpoint in Finish, so mu.Lock(); s.helper()
// contributes edges for everything helper (transitively) locks.
//
// Two deliberate exclusions keep the graph honest: self-edges are
// never recorded (distinct instances of the same field — the sharded
// per-slice locks the refactor introduces — would otherwise make every
// striped lock a false cycle; ordering within one field is a
// convention this analyzer cannot see), and a deferred Unlock does not
// release (it holds until exit, matching the other analyzers). A
// direct re-Lock of the very same instance is reported immediately as
// a self-deadlock rather than drawn as an edge.
//
// The accumulated graph is exportable as Graphviz DOT via WriteDOT —
// cmd/histlint's -lockgraph flag, published as a CI artifact so the
// acquisition order is reviewable, not tribal.
type LockOrder struct {
	// nodes maps every lock node seen to its display name.
	nodes map[types.Object]string
	// edges maps held→acquired pairs to the first witnessing position.
	edges map[loEdge]token.Pos
	// acquires is the per-function summary: every lock node acquired
	// anywhere in the function body, keyed by types.Func.FullName().
	// Finish grows it to the transitive closure over calls.
	acquires map[string]map[types.Object]bool
	// calls is the call-graph summary: callee keys per function.
	calls map[string]map[string]bool
	// heldCalls are call sites executed with locks held; Finish turns
	// them into propagated edges once callee summaries are complete.
	heldCalls []loHeldCall
}

type loEdge struct{ from, to types.Object }

type loHeldCall struct {
	holder types.Object
	callee string
	pos    token.Pos
}

// NewLockOrder returns an empty accumulator. Use one per driver run —
// state carries across packages by design, so sharing one between runs
// would cross-contaminate their graphs.
func NewLockOrder() *LockOrder {
	return &LockOrder{
		nodes:    make(map[types.Object]string),
		edges:    make(map[loEdge]token.Pos),
		acquires: make(map[string]map[types.Object]bool),
		calls:    make(map[string]map[string]bool),
	}
}

// Analyzer wraps the accumulator as a registerable analyzer.
func (lo *LockOrder) Analyzer() *Analyzer {
	return &Analyzer{
		Name:   "lockorder",
		Doc:    "the project-wide lock-acquisition graph is acyclic (a cycle is a potential deadlock)",
		Run:    lo.run,
		Finish: lo.finish,
	}
}

func (lo *LockOrder) run(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			lo.scanFunc(pass, fn.FullName(), fd.Body)
		}
	}
	return nil
}

// loEvent is one ordered lock-relevant occurrence in a scope.
type loEvent struct {
	pos      token.Pos
	isLock   bool
	op       lockOp
	id       lockID
	deferred bool
	callee   string // for non-lock calls
}

// scanFunc collects events per lexical scope (the body and each
// function literal separately — a literal is its own control-flow
// universe and may run with a different lock set than its birthplace)
// and replays them in source order against a held-lock set. All scopes
// contribute to the named function's acquire/call summaries: whatever
// a literal locks, calling the function may lock.
func (lo *LockOrder) scanFunc(pass *Pass, fnKey string, body *ast.BlockStmt) {
	var scopes [][]loEvent
	deferredCall := make(map[*ast.CallExpr]bool)
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		idx := len(scopes)
		scopes = append(scopes, nil)
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n.Body != nil && ast.Node(n.Body) != root {
					walk(n.Body)
				}
				return false
			case *ast.DeferStmt:
				deferredCall[n.Call] = true
			case *ast.CallExpr:
				if op, id, ok := resolveLockCall(pass, n); ok {
					scopes[idx] = append(scopes[idx], loEvent{
						pos: n.Pos(), isLock: true, op: op, id: id, deferred: deferredCall[n],
					})
					return true
				}
				callee := calleeMethod(pass, n)
				if callee == nil {
					callee = calleeFunc(pass, n)
				}
				if callee != nil {
					scopes[idx] = append(scopes[idx], loEvent{pos: n.Pos(), callee: callee.FullName()})
				}
			}
			return true
		})
	}
	walk(body)

	for _, events := range scopes {
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		held := make(map[string]types.Object) // instance → node
		for _, ev := range events {
			switch {
			case ev.isLock && ev.op.acquires() && !ev.deferred:
				if _, already := held[ev.id.instance]; already && ev.op == opLock {
					pass.Reportf(ev.pos,
						"recursive acquisition of %s: it is already held on this path — sync mutexes are not reentrant, this self-deadlocks",
						ev.id.display)
				}
				for inst, node := range held {
					if inst == ev.id.instance || node == ev.id.node {
						continue
					}
					lo.addEdge(node, ev.id.node, ev.pos)
				}
				held[ev.id.instance] = ev.id.node
				lo.nodes[ev.id.node] = ev.id.display
				lo.summary(lo.acquires, fnKey)[ev.id.node] = true
			case ev.isLock && !ev.op.acquires() && !ev.deferred:
				delete(held, ev.id.instance)
			case !ev.isLock:
				lo.callSummary(fnKey)[ev.callee] = true
				if len(held) > 0 {
					seen := make(map[types.Object]bool)
					for _, node := range held {
						if !seen[node] {
							seen[node] = true
							lo.heldCalls = append(lo.heldCalls, loHeldCall{node, ev.callee, ev.pos})
						}
					}
				}
			}
		}
	}
}

func (lo *LockOrder) summary(m map[string]map[types.Object]bool, key string) map[types.Object]bool {
	s := m[key]
	if s == nil {
		s = make(map[types.Object]bool)
		m[key] = s
	}
	return s
}

func (lo *LockOrder) callSummary(key string) map[string]bool {
	s := lo.calls[key]
	if s == nil {
		s = make(map[string]bool)
		lo.calls[key] = s
	}
	return s
}

func (lo *LockOrder) addEdge(from, to types.Object, pos token.Pos) {
	if from == nil || to == nil || from == to {
		return
	}
	e := loEdge{from, to}
	if _, ok := lo.edges[e]; !ok {
		lo.edges[e] = pos
	}
}

// finish closes the acquire summaries over the call graph, turns
// held-lock call sites into propagated edges, and reports every cycle.
func (lo *LockOrder) finish(pass *Pass) error {
	for changed := true; changed; {
		changed = false
		for fn, callees := range lo.calls {
			for callee := range callees {
				if len(lo.acquires[callee]) == 0 {
					continue
				}
				nodes := make([]types.Object, 0, len(lo.acquires[callee]))
				for node := range lo.acquires[callee] {
					nodes = append(nodes, node)
				}
				set := lo.summary(lo.acquires, fn)
				for _, node := range nodes {
					if !set[node] {
						set[node] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range lo.heldCalls {
		for node := range lo.acquires[hc.callee] {
			lo.addEdge(hc.holder, node, hc.pos)
		}
	}
	for _, cyc := range lo.cycles() {
		names := make([]string, len(cyc.nodes))
		for i, n := range cyc.nodes {
			names[i] = lo.nodes[n]
		}
		pass.Reportf(cyc.pos,
			"potential deadlock: lock-order cycle %s → %s — pick one global acquisition order and hold to it on every path",
			strings.Join(names, " → "), names[0])
	}
	return nil
}

// loCycle is one strongly connected component of ≥2 lock nodes, with
// the earliest witnessing edge position for deterministic reporting.
type loCycle struct {
	nodes []types.Object
	pos   token.Pos
}

// cycles finds non-trivial SCCs of the edge set (Tarjan), each
// reported once with its members sorted by display name.
func (lo *LockOrder) cycles() []loCycle {
	adj := make(map[types.Object][]types.Object)
	for e := range lo.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	verts := make([]types.Object, 0, len(lo.nodes))
	for v := range lo.nodes {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return lo.nodes[verts[i]] < lo.nodes[verts[j]] })
	for _, v := range verts {
		ns := adj[v]
		sort.Slice(ns, func(i, j int) bool { return lo.nodes[ns[i]] < lo.nodes[ns[j]] })
	}

	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	next := 0
	var out []loCycle

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var comp []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) < 2 {
				return
			}
			sort.Slice(comp, func(i, j int) bool { return lo.nodes[comp[i]] < lo.nodes[comp[j]] })
			inComp := make(map[types.Object]bool, len(comp))
			for _, n := range comp {
				inComp[n] = true
			}
			pos := token.NoPos
			for e, p := range lo.edges {
				if inComp[e.from] && inComp[e.to] && (pos == token.NoPos || p < pos) {
					pos = p
				}
			}
			out = append(out, loCycle{nodes: comp, pos: pos})
		}
	}
	for _, v := range verts {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// WriteDOT renders the accumulated acquisition graph as Graphviz DOT,
// nodes and edges sorted for stable diffs. Call after the driver run
// (Finish has added the propagated edges by then).
func (lo *LockOrder) WriteDOT(w io.Writer) error {
	names := make([]string, 0, len(lo.nodes))
	for _, name := range lo.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	type edgeLine struct{ from, to string }
	lines := make([]edgeLine, 0, len(lo.edges))
	for e := range lo.edges {
		lines = append(lines, edgeLine{lo.nodes[e.from], lo.nodes[e.to]})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].from != lines[j].from {
			return lines[i].from < lines[j].from
		}
		return lines[i].to < lines[j].to
	})
	if _, err := fmt.Fprintln(w, "digraph lockorder {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range names {
		fmt.Fprintf(w, "  %q;\n", n)
	}
	for _, l := range lines {
		fmt.Fprintf(w, "  %q -> %q;\n", l.from, l.to)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
