// Package analysis is histcube's stdlib-only static-analysis suite:
// a dependency-free analyzer driver built on go/parser, go/ast and
// go/types (no golang.org/x/tools), plus the project-specific
// analyzers that turn histcube's conventions into machine-checked
// invariants.
//
// The paper's central guarantee — append-only instances where updates
// only ever touch the latest instance R_{d-1}(t) (Section 2.2) and
// historic slices are immutable — and the invariants later PRs layered
// on top (WAL append-before-apply, the single-mutex server, the
// histcube_/histserve_ metric-name contract, guarded int64→int
// coordinate narrowing) were previously enforced only by convention.
// Each analyzer here makes one of them a CI regression instead of
// tribal knowledge; cmd/histlint is the command-line driver wired into
// check.sh and CI.
//
// Suppression: a diagnostic can be silenced with a directive comment
//
//	//histlint:ignore <analyzer> <reason>
//
// on the flagged line or on its own line directly above. The reason is
// mandatory — a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the conventional file:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by histlint -list.
	Doc string
	Run func(*Pass) error
	// Finish, when set, is called once after Run has seen every
	// package — the hook whole-program analyses (the lock-order graph)
	// use to report on state accumulated across packages. Its Pass
	// carries the FileSet and the merged suppression table but no
	// Files/Pkg/Info.
	Finish func(*Pass) error
}

// Pass is one (analyzer, package) unit of work. Files are the parsed
// non-test sources of the package; Info holds full type information.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags    *[]Diagnostic
	suppress *suppressions
}

type suppressKey struct {
	analyzer string
	file     string
	line     int
}

// directive is one parsed //histlint:ignore comment. used flips when
// it actually silences a finding, so the driver can report directives
// that rotted into suppressing nothing.
type directive struct {
	analyzer string
	pos      token.Position
	used     bool
}

// suppressions is the merged ignore-directive table of one driver run.
type suppressions struct {
	byKey map[suppressKey]*directive
	all   []*directive
}

func newSuppressions() *suppressions {
	return &suppressions{byKey: make(map[suppressKey]*directive)}
}

// Reportf records a diagnostic at pos unless an ignore directive
// covers it (in which case the directive is marked used).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.suppress.byKey[suppressKey{p.Analyzer.Name, position.Filename, position.Line}]; d != nil {
		d.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// PathHasSuffix reports whether an import path is, or ends in, the
// given slash-separated suffix. Analyzers key package identity on path
// suffixes ("internal/core", "internal/obs", ...) so the checks work
// unchanged inside the histcube module, on testdata fixtures and on
// the temporary modules the end-to-end tests build.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

const directivePrefix = "histlint:ignore"

// collect scans the files' comments for ignore directives and records
// the (analyzer, file, line) pairs they silence: the directive's own
// line and the line below it, so both end-of-line and stand-alone
// placement work. Malformed directives are reported under the
// pseudo-analyzer "histlint".
func (sup *suppressions) collect(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				position := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "histlint",
						Pos:      position,
						Message:  "ignore directive needs an analyzer name and a reason: //histlint:ignore <analyzer> <reason>",
						File:     position.Filename,
						Line:     position.Line,
						Col:      position.Column,
					})
					continue
				}
				d := &directive{analyzer: fields[0], pos: position}
				sup.all = append(sup.all, d)
				sup.byKey[suppressKey{d.analyzer, position.Filename, position.Line}] = d
				sup.byKey[suppressKey{d.analyzer, position.Filename, position.Line + 1}] = d
			}
		}
	}
}

// reportStale appends a finding for every directive that silenced
// nothing: either its analyzer ran and reported nothing there (the
// justified exception rotted — the code or the analyzer moved on), or
// the directive names an analyzer the suite has never heard of (a
// typo that would otherwise suppress nothing forever, silently).
// Directives for known analyzers that simply were not part of this
// run are left alone, so fixture runs of a single analyzer do not
// misreport the others' directives.
func (sup *suppressions) reportStale(ran map[string]bool, diags *[]Diagnostic) {
	for _, d := range sup.all {
		if d.used {
			continue
		}
		known := knownAnalyzerNames[d.analyzer]
		if !ran[d.analyzer] && known {
			continue
		}
		msg := fmt.Sprintf("stale ignore directive: no %s finding is suppressed here — remove it, or re-justify it against a real finding", d.analyzer)
		if !known {
			msg = fmt.Sprintf("ignore directive names unknown analyzer %q (typo? run histlint -list)", d.analyzer)
		}
		*diags = append(*diags, Diagnostic{
			Analyzer: "histlint",
			Pos:      d.pos,
			Message:  msg,
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Col:      d.pos.Column,
		})
	}
}
