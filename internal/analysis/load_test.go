package analysis_test

import (
	"path/filepath"
	"testing"

	"histcube/internal/analysis"
)

func TestLoaderModuleResolution(t *testing.T) {
	dir := filepath.Join("testdata", "src", "appendbeforeapply")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "example.com/appendbeforeapply" {
		t.Fatalf("module path = %q", loader.ModulePath)
	}
	pkgs, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"example.com/appendbeforeapply/cmd/histserve",
		"example.com/appendbeforeapply/internal/appendcube",
		"example.com/appendbeforeapply/internal/core",
		"example.com/appendbeforeapply/internal/wal",
	}
	if len(pkgs) != len(want) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(want))
	}
	for i, p := range pkgs {
		if p.ImportPath != want[i] {
			t.Errorf("package %d = %s, want %s", i, p.ImportPath, want[i])
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without types or files", p.ImportPath)
		}
	}
}

func TestLoaderSinglePackagePattern(t *testing.T) {
	dir := filepath.Join("testdata", "src", "appendbeforeapply")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir, "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "example.com/appendbeforeapply/internal/core" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"histcube/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"example.com/x/internal/core", "internal/core", true},
		{"histcube/internal/coreext", "internal/core", false},
		{"histcube/xinternal/core", "internal/core", false},
	}
	for _, c := range cases {
		if got := analysis.PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}
