// Package mversion provides the multiversion substrates discussed in
// Section 4 of the paper as the alternative instantiation of the
// framework for sparse data:
//
//   - Treap: a partially persistent (path-copying) balanced search
//     tree with subtree aggregates, in the spirit of the
//     Driscoll/Sarnak/Sleator/Tarjan construction — every update
//     yields a new version in O(log n) time and space, and every old
//     version remains queryable at single-version cost times a
//     constant.
//   - Array: a fat-node multiversion array (O'Neil/Burton-style):
//     per-cell version lists give O(log v) access to any version. The
//     paper notes no multiversion array with constant-time access
//     exists — this gap is what the Section 3 cache construction
//     fills; Array makes the trade-off measurable.
package mversion

// Treap is an immutable handle to a persistent treap over int64 keys
// with float64 measures and subtree sums. The zero value is the empty
// tree. All operations return new handles; old handles stay valid and
// queryable — the multiversion property.
type Treap struct {
	root *tnode
}

type tnode struct {
	key         int64
	prio        uint64
	val         float64
	sum         float64
	size        int
	left, right *tnode
}

// splitmix64 derives a deterministic pseudo-random priority from the
// key, keeping the structure reproducible without a PRNG dependency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (n *tnode) recompute() {
	n.sum = n.val
	n.size = 1
	if n.left != nil {
		n.sum += n.left.sum
		n.size += n.left.size
	}
	if n.right != nil {
		n.sum += n.right.sum
		n.size += n.right.size
	}
}

// Len returns the number of keys.
func (t Treap) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Sum returns the sum of all measures.
func (t Treap) Sum() float64 {
	if t.root == nil {
		return 0
	}
	return t.root.sum
}

// Add returns a new version with delta added to key's measure
// (inserting the key if absent). The receiver is unchanged.
func (t Treap) Add(key int64, delta float64) Treap {
	return Treap{root: add(t.root, key, delta)}
}

func add(n *tnode, key int64, delta float64) *tnode {
	if n == nil {
		nn := &tnode{key: key, prio: splitmix64(uint64(key)), val: delta}
		nn.recompute()
		return nn
	}
	c := *n // path copy
	switch {
	case key == n.key:
		c.val += delta
	case key < n.key:
		c.left = add(n.left, key, delta)
		if c.left.prio > c.prio {
			return rotateRight(&c)
		}
	default:
		c.right = add(n.right, key, delta)
		if c.right.prio > c.prio {
			return rotateLeft(&c)
		}
	}
	c.recompute()
	return &c
}

// rotateRight lifts c.left above c; both nodes are fresh copies.
func rotateRight(c *tnode) *tnode {
	l := *c.left
	c.left = l.right
	c.recompute()
	l.right = c
	l.recompute()
	return &l
}

// rotateLeft lifts c.right above c.
func rotateLeft(c *tnode) *tnode {
	r := *c.right
	c.right = r.left
	c.recompute()
	r.left = c
	r.recompute()
	return &r
}

// Get returns key's measure in this version.
func (t Treap) Get(key int64) (float64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key == n.key:
			return n.val, true
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return 0, false
}

// RangeSum returns the sum of measures over keys in [lo, hi] for this
// version, in O(log n).
func (t Treap) RangeSum(lo, hi int64) float64 {
	if lo > hi {
		return 0
	}
	return rangeSum(t.root, lo, hi)
}

func rangeSum(n *tnode, lo, hi int64) float64 {
	if n == nil {
		return 0
	}
	if n.key < lo {
		return rangeSum(n.right, lo, hi)
	}
	if n.key > hi {
		return rangeSum(n.left, lo, hi)
	}
	// n.key inside [lo, hi]: left subtree clipped below, right above.
	total := n.val
	total += suffixSum(n.left, lo)
	total += prefixSum(n.right, hi)
	return total
}

// suffixSum sums keys >= lo.
func suffixSum(n *tnode, lo int64) float64 {
	total := 0.0
	for n != nil {
		if n.key >= lo {
			total += n.val
			if n.right != nil {
				total += n.right.sum
			}
			n = n.left
		} else {
			n = n.right
		}
	}
	return total
}

// prefixSum sums keys <= hi.
func prefixSum(n *tnode, hi int64) float64 {
	total := 0.0
	for n != nil {
		if n.key <= hi {
			total += n.val
			if n.left != nil {
				total += n.left.sum
			}
			n = n.right
		} else {
			n = n.left
		}
	}
	return total
}

// Ascend calls fn in ascending key order, stopping if fn returns
// false.
func (t Treap) Ascend(fn func(key int64, val float64) bool) {
	ascend(t.root, fn)
}

func ascend(n *tnode, fn func(int64, float64) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}
