package mversion

import (
	"fmt"
	"sort"
)

// Array is a fat-node multiversion array: each cell keeps a list of
// (version, value) pairs, so any cell of any version is readable in
// O(log v) where v is the number of versions of that cell. Updates to
// the current version cost amortised O(1).
//
// Section 4 of the paper observes that no multiversion array offers
// constant-time access to every version — the logarithmic fat-node
// cost here is exactly the overhead the Section 3 cache construction
// avoids; the ablation benchmarks quantify it.
type Array struct {
	cells [][]cellVersion
	cur   int
}

type cellVersion struct {
	ver int
	val float64
}

// NewArray returns a multiversion array of the given size, at version
// 0, with all cells zero in every version.
func NewArray(size int) *Array {
	return &Array{cells: make([][]cellVersion, size)}
}

// Size returns the number of cells.
func (a *Array) Size() int { return len(a.cells) }

// Version returns the current version number.
func (a *Array) Version() int { return a.cur }

// NewVersion freezes the current state and returns the new current
// version number. Cells not written afterwards keep their old value.
func (a *Array) NewVersion() int {
	a.cur++
	return a.cur
}

// Set writes val to cell i in the current version.
func (a *Array) Set(i int, val float64) {
	vs := a.cells[i]
	if n := len(vs); n > 0 && vs[n-1].ver == a.cur {
		vs[n-1].val = val
		return
	}
	a.cells[i] = append(vs, cellVersion{ver: a.cur, val: val})
}

// Add adds delta to cell i in the current version.
func (a *Array) Add(i int, delta float64) {
	a.Set(i, a.Get(a.cur, i)+delta)
}

// Get reads cell i as of version ver. Versions beyond the current are
// rejected.
func (a *Array) Get(ver, i int) float64 {
	if ver > a.cur || ver < 0 {
		panic(fmt.Sprintf("mversion: version %d out of range [0, %d]", ver, a.cur))
	}
	vs := a.cells[i]
	// Find the last version <= ver.
	idx := sort.Search(len(vs), func(k int) bool { return vs[k].ver > ver }) - 1
	if idx < 0 {
		return 0
	}
	return vs[idx].val
}

// Versions returns the number of stored versions of cell i (its fat
// node length) — the space metric of the fat-node method.
func (a *Array) Versions(i int) int { return len(a.cells[i]) }
