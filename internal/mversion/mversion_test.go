package mversion

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTreapEmpty(t *testing.T) {
	var tr Treap
	if tr.Len() != 0 || tr.Sum() != 0 {
		t.Error("zero Treap not empty")
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty found a key")
	}
	if tr.RangeSum(0, 10) != 0 {
		t.Error("RangeSum on empty != 0")
	}
}

func TestTreapAddGet(t *testing.T) {
	var tr Treap
	tr = tr.Add(5, 2).Add(3, 1).Add(5, 4)
	if v, ok := tr.Get(5); !ok || v != 6 {
		t.Errorf("Get(5) = %v,%v", v, ok)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Sum() != 7 {
		t.Errorf("Sum = %v", tr.Sum())
	}
}

func TestTreapPersistence(t *testing.T) {
	// Every intermediate version must remain queryable with its own
	// contents — the multiversion property of Section 4.
	versions := []Treap{{}}
	r := rand.New(rand.NewSource(1))
	type op struct {
		key   int64
		delta float64
	}
	var ops []op
	cur := Treap{}
	for i := 0; i < 300; i++ {
		o := op{key: int64(r.Intn(50)), delta: float64(r.Intn(9) - 4)}
		ops = append(ops, o)
		cur = cur.Add(o.key, o.delta)
		versions = append(versions, cur)
	}
	shadow := map[int64]float64{}
	for i, o := range ops {
		shadow[o.key] += o.delta
		v := versions[i+1]
		for q := 0; q < 5; q++ {
			lo := int64(r.Intn(60) - 5)
			hi := lo + int64(r.Intn(40))
			want := 0.0
			for k, val := range shadow {
				if k >= lo && k <= hi {
					want += val
				}
			}
			if got := v.RangeSum(lo, hi); got != want {
				t.Fatalf("version %d RangeSum(%d,%d) = %v, want %v", i+1, lo, hi, got, want)
			}
		}
	}
	// Version 0 is still empty.
	if versions[0].Len() != 0 {
		t.Error("version 0 mutated")
	}
}

func TestTreapAscendOrdered(t *testing.T) {
	var tr Treap
	r := rand.New(rand.NewSource(2))
	for _, k := range r.Perm(200) {
		tr = tr.Add(int64(k), 1)
	}
	var keys []int64
	tr.Ascend(func(k int64, v float64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 200 {
		t.Fatalf("Ascend visited %d", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Ascend out of order")
	}
	n := 0
	tr.Ascend(func(int64, float64) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestTreapBalanced(t *testing.T) {
	// Sequential keys must not degenerate: depth should be O(log n).
	var tr Treap
	for i := 0; i < 1<<12; i++ {
		tr = tr.Add(int64(i), 1)
	}
	d := depth(tr.root)
	if d > 50 {
		t.Errorf("depth %d for 4096 sequential keys; treap not balancing", d)
	}
}

func depth(n *tnode) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Property: heap order and BST order hold after random insertion, and
// RangeSum matches a shadow.
func TestTreapInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Treap
		shadow := map[int64]float64{}
		for i := 0; i < 150; i++ {
			k := int64(r.Intn(80))
			d := float64(r.Intn(11) - 5)
			tr = tr.Add(k, d)
			shadow[k] += d
		}
		if !checkTreap(tr.root, -1<<62, 1<<62) {
			return false
		}
		for q := 0; q < 20; q++ {
			lo := int64(r.Intn(90) - 5)
			hi := lo + int64(r.Intn(50))
			want := 0.0
			for k, v := range shadow {
				if k >= lo && k <= hi {
					want += v
				}
			}
			if tr.RangeSum(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func checkTreap(n *tnode, lo, hi int64) bool {
	if n == nil {
		return true
	}
	if n.key <= lo || n.key >= hi {
		return false
	}
	if n.left != nil && n.left.prio > n.prio {
		return false
	}
	if n.right != nil && n.right.prio > n.prio {
		return false
	}
	wantSum := n.val
	wantSize := 1
	if n.left != nil {
		wantSum += n.left.sum
		wantSize += n.left.size
	}
	if n.right != nil {
		wantSum += n.right.sum
		wantSize += n.right.size
	}
	if n.sum != wantSum || n.size != wantSize {
		return false
	}
	return checkTreap(n.left, lo, n.key) && checkTreap(n.right, n.key, hi)
}

func TestArrayVersioning(t *testing.T) {
	a := NewArray(4)
	a.Set(0, 3)
	a.Set(1, 5)
	v0 := a.Version()
	a.NewVersion()
	a.Set(0, 7)
	a.Add(2, 2)
	v1 := a.Version()
	a.NewVersion()
	a.Set(1, 9)

	if got := a.Get(v0, 0); got != 3 {
		t.Errorf("v0 cell0 = %v", got)
	}
	if got := a.Get(v1, 0); got != 7 {
		t.Errorf("v1 cell0 = %v", got)
	}
	if got := a.Get(a.Version(), 0); got != 7 {
		t.Errorf("cur cell0 = %v", got)
	}
	if got := a.Get(v0, 1); got != 5 {
		t.Errorf("v0 cell1 = %v", got)
	}
	if got := a.Get(a.Version(), 1); got != 9 {
		t.Errorf("cur cell1 = %v", got)
	}
	if got := a.Get(v0, 2); got != 0 {
		t.Errorf("v0 cell2 = %v", got)
	}
	if got := a.Get(v1, 2); got != 2 {
		t.Errorf("v1 cell2 = %v", got)
	}
	if got := a.Get(v0, 3); got != 0 {
		t.Errorf("untouched cell = %v", got)
	}
}

func TestArraySameVersionOverwrite(t *testing.T) {
	a := NewArray(1)
	a.Set(0, 1)
	a.Set(0, 2)
	if a.Versions(0) != 1 {
		t.Errorf("same-version writes created %d versions, want 1", a.Versions(0))
	}
	if a.Get(0, 0) != 2 {
		t.Errorf("value = %v", a.Get(0, 0))
	}
}

func TestArrayGetPanicsOnBadVersion(t *testing.T) {
	a := NewArray(1)
	defer func() {
		if recover() == nil {
			t.Error("future version read did not panic")
		}
	}()
	a.Get(1, 0)
}

// Property: the multiversion array agrees with a full per-version
// snapshot shadow.
func TestArrayShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := r.Intn(8) + 1
		a := NewArray(size)
		var snaps [][]float64
		cur := make([]float64, size)
		for op := 0; op < 100; op++ {
			switch r.Intn(4) {
			case 0:
				a.NewVersion()
				snaps = append(snaps, append([]float64(nil), cur...))
				_ = snaps
			default:
				i := r.Intn(size)
				v := float64(r.Intn(100))
				a.Set(i, v)
				cur[i] = v
			}
		}
		// Current version must match cur; historical versions must
		// match their snapshots (version v's state is snaps[v-1]
		// after... recompute directly instead:)
		for i := 0; i < size; i++ {
			if a.Get(a.Version(), i) != cur[i] {
				return false
			}
		}
		for v := 0; v < len(snaps); v++ {
			// snaps[v] is the state frozen when version v ended.
			for i := 0; i < size; i++ {
				if a.Get(v, i) != snaps[v][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
