package framework

import (
	"fmt"

	"histcube/internal/dims"
	"histcube/internal/mvbt"
)

// MVBTSource keeps all instances as versions of one multiversion
// B-tree (internal/mvbt) over one-dimensional int64 keys — the
// external-memory multiversion route of Section 4: snapshots are free
// (a version number), old versions stay queryable at B-tree cost, and
// storage grows linearly in the number of updates.
type MVBTSource struct {
	t        *mvbt.Tree
	versions []int64
}

// NewMVBTSource returns an empty MVBT-backed instance source.
func NewMVBTSource() (*MVBTSource, error) {
	t, err := mvbt.New(mvbt.Config{})
	if err != nil {
		return nil, err
	}
	return &MVBTSource{t: t}, nil
}

// Update implements InstanceSource; x must be one-dimensional.
func (s *MVBTSource) Update(newInstance bool, x []int, delta float64) error {
	if len(x) != 1 {
		return fmt.Errorf("framework: MVBTSource requires 1-dimensional points, got %d", len(x))
	}
	if newInstance {
		s.versions = append(s.versions, s.t.Version())
	}
	if len(s.versions) == 0 {
		return fmt.Errorf("framework: update before any instance exists")
	}
	if err := s.t.Add(int64(x[0]), delta); err != nil {
		return err
	}
	s.versions[len(s.versions)-1] = s.t.Version()
	return nil
}

// QueryAt implements InstanceSource.
func (s *MVBTSource) QueryAt(idx int, b dims.Box) (float64, error) {
	if idx < 0 || idx >= len(s.versions) {
		return 0, fmt.Errorf("framework: instance %d out of range [0,%d)", idx, len(s.versions))
	}
	if len(b.Lo) != 1 {
		return 0, fmt.Errorf("framework: MVBTSource requires 1-dimensional boxes, got %d", len(b.Lo))
	}
	return s.t.RangeSum(s.versions[idx], int64(b.Lo[0]), int64(b.Hi[0])), nil
}

// UpdateFrom implements InstanceSource: multiversion history is
// immutable.
func (s *MVBTSource) UpdateFrom(int, []int, float64) error {
	return ErrCascadeUnsupported
}

// Len implements InstanceSource.
func (s *MVBTSource) Len() int { return len(s.versions) }
