package framework

import (
	"fmt"

	"histcube/internal/btree"
	"histcube/internal/dims"
	"histcube/internal/directory"
)

// GeneralStructure is the general d-dimensional structure G_d of
// Section 2.5 that buffers out-of-order updates: it supports the
// operations of Table 2 without exploiting the append-only property.
type GeneralStructure interface {
	// Insert stores the d-dimensional point (t, x) with measure delta.
	Insert(t int64, x []int, delta float64)
	// Query aggregates over the time range and box.
	Query(tLo, tHi int64, b dims.Box) (float64, error)
	// Len returns the number of buffered points.
	Len() int
	// PopLatest removes and returns a point with the greatest time
	// coordinate — the background process drains latest-first so it
	// does not chase newly created time slices.
	PopLatest() (t int64, x []int, delta float64, ok bool)
}

// ListGd is the baseline G_d: an unindexed point list with linear-scan
// queries. Its per-query cost is linear in the number of out-of-order
// updates, which matches the paper's graceful-degradation analysis and
// makes the degradation measurable; the R*-tree in internal/rstar
// offers an indexed alternative through the same interface.
type ListGd struct {
	pts []gdPoint
}

type gdPoint struct {
	t     int64
	x     []int
	delta float64
}

// NewListGd returns an empty buffer.
func NewListGd() *ListGd { return &ListGd{} }

// Insert implements GeneralStructure.
func (g *ListGd) Insert(t int64, x []int, delta float64) {
	g.pts = append(g.pts, gdPoint{t: t, x: append([]int(nil), x...), delta: delta})
}

// Query implements GeneralStructure.
func (g *ListGd) Query(tLo, tHi int64, b dims.Box) (float64, error) {
	total := 0.0
	for _, p := range g.pts {
		if p.t < tLo || p.t > tHi {
			continue
		}
		if b.Contains(p.x) {
			total += p.delta
		}
	}
	return total, nil
}

// Len implements GeneralStructure.
func (g *ListGd) Len() int { return len(g.pts) }

// PopLatest implements GeneralStructure.
func (g *ListGd) PopLatest() (int64, []int, float64, bool) {
	if len(g.pts) == 0 {
		return 0, nil, 0, false
	}
	best := 0
	for i, p := range g.pts {
		if p.t > g.pts[best].t {
			best = i
		}
	}
	p := g.pts[best]
	g.pts[best] = g.pts[len(g.pts)-1]
	g.pts = g.pts[:len(g.pts)-1]
	return p.t, p.x, p.delta, true
}

// Config configures an AppendOnly data set.
type Config struct {
	// Source manages the R_{d-1} instances (required).
	Source InstanceSource
	// Directory maps occurring times to instances; defaults to the
	// array directory.
	Directory directory.Directory
	// OutOfOrder buffers out-of-order updates; nil rejects them with
	// ErrOutOfOrder.
	OutOfOrder GeneralStructure
}

// AppendOnly is the framework's d-dimensional append-only data set D:
// dimension 1 is the TT-dimension, handled by cumulative instances;
// the remaining d-1 dimensions are handled by the instance source.
type AppendOnly struct {
	src InstanceSource
	dir directory.Directory
	gd  GeneralStructure
}

// New returns an AppendOnly data set.
func New(cfg Config) (*AppendOnly, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("framework: Config.Source is required")
	}
	dir := cfg.Directory
	if dir == nil {
		dir = directory.NewArray()
	}
	return &AppendOnly{src: cfg.Source, dir: dir, gd: cfg.OutOfOrder}, nil
}

// Update applies update_D((t, x), delta). Appends (t >= latest
// occurring time) go to the latest instance, creating a new one when t
// is new; out-of-order updates go to G_d when configured.
func (a *AppendOnly) Update(t int64, x []int, delta float64) error {
	_, latestT, ok := a.dir.Latest()
	switch {
	case !ok || t > latestT:
		if _, err := a.dir.Append(t); err != nil {
			return err
		}
		return a.src.Update(true, x, delta)
	case t == latestT:
		return a.src.Update(false, x, delta)
	default:
		if a.gd == nil {
			return fmt.Errorf("%w: time %d, latest %d", ErrOutOfOrder, t, latestT)
		}
		a.gd.Insert(t, x, delta)
		return nil
	}
}

// PrefixQuery answers the prefix time query "all points with time <= t
// inside the box": one directory lookup plus one (d-1)-dimensional
// query, plus the G_d contribution.
func (a *AppendOnly) PrefixQuery(t int64, b dims.Box) (float64, error) {
	total, err := a.prefixMain(t, b)
	if err != nil {
		return 0, err
	}
	if a.gd != nil {
		g, err := a.gd.Query(minTime, t, b)
		if err != nil {
			return 0, err
		}
		total += g
	}
	return total, nil
}

const minTime = int64(-1) << 62

func (a *AppendOnly) prefixMain(t int64, b dims.Box) (float64, error) {
	idx, ok := a.dir.Floor(t)
	if !ok {
		return 0, nil
	}
	return a.src.QueryAt(idx, b)
}

// Query answers query_D over the closed time range [tLo, tHi] and box:
// q_u - q_l on the cumulative instances, plus the buffered
// out-of-order contribution.
func (a *AppendOnly) Query(tLo, tHi int64, b dims.Box) (float64, error) {
	if tLo > tHi {
		return 0, fmt.Errorf("framework: inverted time range [%d, %d]", tLo, tHi)
	}
	qu, err := a.prefixMain(tHi, b)
	if err != nil {
		return 0, err
	}
	var ql float64
	if tLo != minTime && tLo != -int64(1)<<63 {
		// tLo-1 would wrap at the int64 minimum; nothing precedes it.
		ql, err = a.prefixMain(tLo-1, b)
		if err != nil {
			return 0, err
		}
	}
	total := qu - ql
	if a.gd != nil {
		g, err := a.gd.Query(tLo, tHi, b)
		if err != nil {
			return 0, err
		}
		total += g
	}
	return total, nil
}

// PendingOutOfOrder returns the number of buffered out-of-order
// updates.
func (a *AppendOnly) PendingOutOfOrder() int {
	if a.gd == nil {
		return 0
	}
	return a.gd.Len()
}

// ApplyOutOfOrder drains up to n buffered out-of-order updates
// (latest-first, so the process does not chase newly created slices)
// into the instances, cascading each to every instance with time >=
// the update's time. It is the paper's asynchronous background
// process, exposed synchronously so callers control the schedule.
//
// Only updates whose time coordinate is an occurring time can be
// folded into the cumulative instances; an update at a non-occurring
// historic time would require inserting an instance retroactively
// (which the paper leaves beyond scope), so such updates stay in G_d —
// queries remain exact either way, since G_d's contribution is always
// merged. ApplyOutOfOrder returns the number applied;
// ErrCascadeUnsupported means the instance source cannot rewrite
// history and the buffer is left intact.
func (a *AppendOnly) ApplyOutOfOrder(n int) (int, error) {
	if a.gd == nil {
		return 0, nil
	}
	applied := 0
	var skipped []gdPoint
	defer func() {
		for _, p := range skipped {
			a.gd.Insert(p.t, p.x, p.delta)
		}
	}()
	for popped := 0; applied < n && popped < n; popped++ {
		t, x, delta, ok := a.gd.PopLatest()
		if !ok {
			break
		}
		idx, found := a.dir.Floor(t)
		if !found || a.dir.Time(idx) != t || idx >= a.src.Len() {
			skipped = append(skipped, gdPoint{t: t, x: x, delta: delta})
			continue
		}
		if err := a.src.UpdateFrom(idx, x, delta); err != nil {
			skipped = append(skipped, gdPoint{t: t, x: x, delta: delta})
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// Instances returns the number of occurring time values.
func (a *AppendOnly) Instances() int { return a.dir.Len() }

// BTreeStructure adapts the aggregate B+tree to a one-dimensional
// Structure — the paper's Section 2.2 example of R_1 ("e.g., a B-tree
// with location keys").
type BTreeStructure struct {
	T *btree.Tree
}

// NewBTreeStructure returns an empty B-tree structure.
func NewBTreeStructure() *BTreeStructure { return &BTreeStructure{T: btree.New(0)} }

// Update implements Structure; x must be one-dimensional.
func (s *BTreeStructure) Update(x []int, delta float64) { s.T.Add(int64(x[0]), delta) }

// Query implements Structure.
func (s *BTreeStructure) Query(b dims.Box) (float64, error) {
	if len(b.Lo) != 1 {
		return 0, fmt.Errorf("framework: BTreeStructure requires 1-dimensional boxes")
	}
	return s.T.RangeSum(int64(b.Lo[0]), int64(b.Hi[0])), nil
}

// Clone implements Cloneable.
func (s *BTreeStructure) Clone() Cloneable { return &BTreeStructure{T: s.T.Clone()} }
