package framework

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
)

func TestMVBTSourceMatchesCloneSource(t *testing.T) {
	mv, err := NewMVBTSource()
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Source: mv})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Source: NewCloneSource(func() Cloneable { return NewBTreeStructure() })})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(51))
	now := int64(0)
	for i := 0; i < 400; i++ {
		if r.Intn(3) == 0 {
			now += int64(r.Intn(3) + 1)
		}
		x := []int{r.Intn(50)}
		v := float64(r.Intn(9) + 1)
		if err := a.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		if err := ref.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			lo := r.Intn(50)
			hi := lo + r.Intn(50-lo)
			b := dims.NewBox([]int{lo}, []int{hi})
			tLo := int64(r.Intn(int(now) + 2))
			tHi := tLo + int64(r.Intn(int(now)+2))
			g1, err1 := a.Query(tLo, tHi, b)
			g2, err2 := ref.Query(tLo, tHi, b)
			if err1 != nil || err2 != nil || g1 != g2 {
				t.Fatalf("op %d: mvbt %v (%v) vs clone %v (%v)", i, g1, err1, g2, err2)
			}
		}
	}
}

func TestMVBTSourceValidation(t *testing.T) {
	mv, err := NewMVBTSource()
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Update(true, []int{1, 2}, 1); err == nil {
		t.Error("2-d point accepted")
	}
	if _, err := mv.QueryAt(0, dims.NewBox([]int{0}, []int{1})); err == nil {
		t.Error("query before any instance accepted")
	}
	if err := mv.UpdateFrom(0, []int{1}, 1); err != ErrCascadeUnsupported {
		t.Errorf("UpdateFrom err = %v", err)
	}
}

// Property: MVBT-backed and treap-backed append-only sets agree on
// random append streams.
func TestMVBTAgreesWithTreapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mv, err := NewMVBTSource()
		if err != nil {
			return false
		}
		a, err := New(Config{Source: mv})
		if err != nil {
			return false
		}
		b, err := New(Config{Source: NewTreapSource()})
		if err != nil {
			return false
		}
		now := int64(0)
		for i := 0; i < 120; i++ {
			if r.Intn(4) == 0 {
				now++
			}
			x := []int{r.Intn(30)}
			v := float64(r.Intn(7) + 1)
			if a.Update(now, x, v) != nil || b.Update(now, x, v) != nil {
				return false
			}
			if i%6 == 0 {
				lo := r.Intn(30)
				hi := lo + r.Intn(30-lo)
				box := dims.NewBox([]int{lo}, []int{hi})
				tLo := int64(r.Intn(int(now) + 2))
				tHi := tLo + int64(r.Intn(int(now)+2))
				g1, e1 := a.Query(tLo, tHi, box)
				g2, e2 := b.Query(tLo, tHi, box)
				if e1 != nil || e2 != nil || g1 != g2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
