package framework

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
	"histcube/internal/directory"
	"histcube/internal/molap"
)

type fwShadow struct {
	points []struct {
		t int64
		x []int
		v float64
	}
}

func (s *fwShadow) add(t int64, x []int, v float64) {
	s.points = append(s.points, struct {
		t int64
		x []int
		v float64
	}{t, append([]int(nil), x...), v})
}

func (s *fwShadow) query(tLo, tHi int64, b dims.Box) float64 {
	total := 0.0
	for _, p := range s.points {
		if p.t >= tLo && p.t <= tHi && b.Contains(p.x) {
			total += p.v
		}
	}
	return total
}

func newBTreeAppendOnly(t *testing.T, ooo bool) *AppendOnly {
	t.Helper()
	cfg := Config{Source: NewCloneSource(func() Cloneable { return NewBTreeStructure() })}
	if ooo {
		cfg.OutOfOrder = NewListGd()
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRequiresSource(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without source succeeded")
	}
}

func TestSection22Example(t *testing.T) {
	// The time x location walkthrough of Section 2.2 with a B-tree as
	// R_1: a 2-d range query is two 1-d prefix-time queries.
	a := newBTreeAppendOnly(t, false)
	sh := &fwShadow{}
	for _, u := range []struct {
		t   int64
		loc int
		v   float64
	}{{1, 3, 3}, {1, 5, 4}, {3, 4, 2}, {3, 3, 1}, {4, 5, 3}} {
		if err := a.Update(u.t, []int{u.loc}, u.v); err != nil {
			t.Fatal(err)
		}
		sh.add(u.t, []int{u.loc}, u.v)
	}
	box := dims.NewBox([]int{3}, []int{5})
	got, err := a.Query(2, 4, box)
	if err != nil {
		t.Fatal(err)
	}
	if want := sh.query(2, 4, box); got != want {
		t.Fatalf("query = %v, want %v", got, want)
	}
	if a.Instances() != 3 {
		t.Errorf("instances = %d, want 3 (occurring times 1,3,4)", a.Instances())
	}
}

func TestOutOfOrderRejectedWithoutBuffer(t *testing.T) {
	a := newBTreeAppendOnly(t, false)
	if err := a.Update(10, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	err := a.Update(5, []int{1}, 1)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestOutOfOrderBufferedAndQueried(t *testing.T) {
	a := newBTreeAppendOnly(t, true)
	sh := &fwShadow{}
	upd := func(tv int64, loc int, v float64) {
		t.Helper()
		if err := a.Update(tv, []int{loc}, v); err != nil {
			t.Fatal(err)
		}
		sh.add(tv, []int{loc}, v)
	}
	upd(10, 3, 5)
	upd(20, 4, 2)
	upd(10, 2, 4) // out of order, at an occurring time: drainable
	upd(15, 3, 7) // out of order, non-occurring time: stays in G_d
	upd(5, 1, 1)  // out of order, before the first occurring time
	if a.PendingOutOfOrder() != 3 {
		t.Fatalf("pending = %d", a.PendingOutOfOrder())
	}
	box := dims.NewBox([]int{0}, []int{9})
	for _, tr := range [][2]int64{{0, 30}, {11, 19}, {5, 5}, {0, 9}, {16, 30}, {10, 10}} {
		got, err := a.Query(tr[0], tr[1], box)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tr[0], tr[1], box); got != want {
			t.Fatalf("query [%d,%d] = %v, want %v", tr[0], tr[1], got, want)
		}
	}
	// Drain the buffer: only the occurring-time update folds in; the
	// others stay buffered (and stay visible through the G_d merge).
	n, err := a.ApplyOutOfOrder(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || a.PendingOutOfOrder() != 2 {
		t.Fatalf("applied %d, pending %d; want 1 applied, 2 pending", n, a.PendingOutOfOrder())
	}
	for _, tr := range [][2]int64{{0, 30}, {11, 19}, {5, 5}, {0, 9}, {16, 30}, {10, 10}} {
		got, err := a.Query(tr[0], tr[1], box)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tr[0], tr[1], box); got != want {
			t.Fatalf("post-drain query [%d,%d] = %v, want %v", tr[0], tr[1], got, want)
		}
	}
}

func TestTreapSourceCascadeUnsupported(t *testing.T) {
	a, err := New(Config{Source: NewTreapSource(), OutOfOrder: NewListGd()})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Update(10, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(20, []int{2}, 1); err != nil {
		t.Fatal(err)
	}
	// Out of order at an occurring time: drainable in principle, but
	// the persistent source cannot rewrite history.
	if err := a.Update(10, []int{3}, 1); err != nil {
		t.Fatal(err)
	}
	_, err = a.ApplyOutOfOrder(10)
	if !errors.Is(err, ErrCascadeUnsupported) {
		t.Errorf("err = %v, want ErrCascadeUnsupported", err)
	}
	// The update must remain buffered and still be visible to queries.
	if a.PendingOutOfOrder() != 1 {
		t.Errorf("pending = %d", a.PendingOutOfOrder())
	}
	got, err := a.Query(10, 10, dims.NewBox([]int{0}, []int{9}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("query = %v, want 2 (in-order point plus buffered correction)", got)
	}
}

func TestListGdPopLatest(t *testing.T) {
	g := NewListGd()
	g.Insert(5, []int{1}, 1)
	g.Insert(9, []int{2}, 2)
	g.Insert(7, []int{3}, 3)
	tv, _, _, ok := g.PopLatest()
	if !ok || tv != 9 {
		t.Fatalf("first pop = %d,%v", tv, ok)
	}
	tv, _, _, ok = g.PopLatest()
	if !ok || tv != 7 {
		t.Fatalf("second pop = %d,%v", tv, ok)
	}
	tv, _, _, ok = g.PopLatest()
	if !ok || tv != 5 {
		t.Fatalf("third pop = %d,%v", tv, ok)
	}
	if _, _, _, ok = g.PopLatest(); ok {
		t.Error("pop on empty returned ok")
	}
}

func TestArrayStructureSource(t *testing.T) {
	// Framework over 2-d molap arrays: a 3-d append-only problem
	// reduced to 2-d instances.
	shape := dims.Shape{4, 5}
	mk := func() Cloneable {
		arr, err := molap.New(shape, []molap.Technique{molap.Raw{}, molap.Raw{}})
		if err != nil {
			t.Fatal(err)
		}
		return NewArrayStructure(arr)
	}
	a, err := New(Config{Source: NewCloneSource(mk), Directory: directory.NewTree()})
	if err != nil {
		t.Fatal(err)
	}
	sh := &fwShadow{}
	r := rand.New(rand.NewSource(21))
	now := int64(0)
	for i := 0; i < 150; i++ {
		if r.Intn(3) == 0 {
			now += int64(r.Intn(3) + 1)
		}
		x := []int{r.Intn(4), r.Intn(5)}
		v := float64(r.Intn(7) - 3)
		if err := a.Update(now, x, v); err != nil {
			t.Fatal(err)
		}
		sh.add(now, x, v)
	}
	for q := 0; q < 100; q++ {
		lo := []int{r.Intn(4), r.Intn(5)}
		hi := []int{lo[0] + r.Intn(4-lo[0]), lo[1] + r.Intn(5-lo[1])}
		b := dims.Box{Lo: lo, Hi: hi}
		tLo := int64(r.Intn(int(now) + 2))
		tHi := tLo + int64(r.Intn(int(now)+2))
		got, err := a.Query(tLo, tHi, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sh.query(tLo, tHi, b); got != want {
			t.Fatalf("query [%d,%d] %v = %v, want %v", tLo, tHi, b, got, want)
		}
	}
}

// Property: clone-source and treap-source agree with the shadow (and
// with each other) on random 1-d append streams with out-of-order
// updates and interleaved drains.
func TestSourcesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		clone, err := New(Config{
			Source:     NewCloneSource(func() Cloneable { return NewBTreeStructure() }),
			OutOfOrder: NewListGd(),
		})
		if err != nil {
			return false
		}
		treap, err := New(Config{Source: NewTreapSource(), OutOfOrder: NewListGd()})
		if err != nil {
			return false
		}
		sh := &fwShadow{}
		now := int64(0)
		for i := 0; i < 120; i++ {
			var tv int64
			if r.Intn(10) == 0 && now > 2 {
				tv = int64(r.Intn(int(now))) // out of order
			} else {
				if r.Intn(3) == 0 {
					now += int64(r.Intn(3) + 1)
				}
				tv = now
			}
			x := []int{r.Intn(20)}
			v := float64(r.Intn(9) - 4)
			if err := clone.Update(tv, x, v); err != nil {
				return false
			}
			if err := treap.Update(tv, x, v); err != nil {
				return false
			}
			sh.add(tv, x, v)
			if r.Intn(10) == 0 {
				if _, err := clone.ApplyOutOfOrder(r.Intn(3)); err != nil {
					return false
				}
			}
			if i%4 == 0 {
				lo := r.Intn(20)
				hi := lo + r.Intn(20-lo)
				b := dims.NewBox([]int{lo}, []int{hi})
				tLo := int64(r.Intn(int(now) + 2))
				tHi := tLo + int64(r.Intn(int(now)+2))
				want := sh.query(tLo, tHi, b)
				g1, err1 := clone.Query(tLo, tHi, b)
				g2, err2 := treap.Query(tLo, tHi, b)
				if err1 != nil || err2 != nil || g1 != want || g2 != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPrefixQueryBeforeFirstTime(t *testing.T) {
	a := newBTreeAppendOnly(t, false)
	if err := a.Update(10, []int{1}, 5); err != nil {
		t.Fatal(err)
	}
	got, err := a.PrefixQuery(9, dims.NewBox([]int{0}, []int{5}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("prefix before first time = %v", got)
	}
	got, err = a.PrefixQuery(10, dims.NewBox([]int{0}, []int{5}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("prefix at first time = %v", got)
	}
}
