// Package framework implements the general construction of Section 2
// of the paper, independent of any storage model: a d-dimensional
// append-only data set is maintained as cumulative instances of an
// arbitrary (d-1)-dimensional aggregate structure R_{d-1}, one per
// occurring value of the transaction-time dimension. Any d-dimensional
// range aggregate reduces to two (d-1)-dimensional queries (q_u - q_l)
// plus two directory lookups, so query and update cost are within a
// constant factor of the (d-1)-dimensional problem — the history
// length never matters.
//
// Two instance sources realise the "constant-time copy" assumption of
// Section 2.3: CloneSource physically copies the latest instance
// (adequate when updates per slice amortise the copy, and the basis of
// the paper's own Section 3 array construction), and TreapSource uses
// the partially persistent treap of internal/mversion, where every
// snapshot is O(1) — the multiversion route of Section 4.
//
// Out-of-order updates (Section 2.5) are buffered in a general
// d-dimensional structure G_d; queries merge its contribution, and a
// background ApplyOutOfOrder drains it into the affected instances,
// degrading gracefully towards general d-dimensional cost as the
// out-of-order share grows.
package framework

import (
	"errors"
	"fmt"

	"histcube/internal/dims"
	"histcube/internal/molap"
	"histcube/internal/mversion"
)

// Structure is the (d-1)-dimensional aggregate structure R_{d-1} of
// the paper's Table 1.
type Structure interface {
	// Update adds delta to the measure of point x.
	Update(x []int, delta float64)
	// Query returns the aggregate over the closed box.
	Query(b dims.Box) (float64, error)
}

// Cloneable is a Structure that can copy itself; the clone must be
// independent of (and the same dynamic type as) the receiver.
type Cloneable interface {
	Structure
	Clone() Cloneable
}

// InstanceSource manages the instances R_{d-1}(t). Instance indices
// are dense, in occurring-time order.
type InstanceSource interface {
	// Update applies an update to the latest instance, first creating
	// a new instance (a copy of the latest, or an empty one if none
	// exists) when newInstance is true.
	Update(newInstance bool, x []int, delta float64) error
	// QueryAt queries instance idx.
	QueryAt(idx int, b dims.Box) (float64, error)
	// UpdateFrom applies an update to every instance with index >= idx
	// (the out-of-order cascade of Section 2.5). Sources that cannot
	// rewrite history return ErrCascadeUnsupported.
	UpdateFrom(idx int, x []int, delta float64) error
	// Len returns the number of instances.
	Len() int
}

// ErrCascadeUnsupported reports an instance source that cannot apply
// out-of-order updates to historic instances (e.g. persistent
// versions are immutable); such updates then stay in G_d permanently,
// which remains correct.
var ErrCascadeUnsupported = errors.New("framework: instance source cannot rewrite historic instances")

// ErrOutOfOrder reports an out-of-order update when no G_d buffer is
// configured.
var ErrOutOfOrder = errors.New("framework: out-of-order update and no out-of-order buffer configured")

// CloneSource keeps one physical structure per occurring time by
// cloning the latest instance — the direct reading of Section 2.3.
type CloneSource struct {
	fresh func() Cloneable
	insts []Cloneable
}

// NewCloneSource returns a CloneSource; fresh creates an empty
// structure.
func NewCloneSource(fresh func() Cloneable) *CloneSource {
	return &CloneSource{fresh: fresh}
}

// Update implements InstanceSource.
func (s *CloneSource) Update(newInstance bool, x []int, delta float64) error {
	if newInstance {
		if len(s.insts) == 0 {
			s.insts = append(s.insts, s.fresh())
		} else {
			s.insts = append(s.insts, s.insts[len(s.insts)-1].Clone())
		}
	}
	if len(s.insts) == 0 {
		return errors.New("framework: update before any instance exists")
	}
	s.insts[len(s.insts)-1].Update(x, delta)
	return nil
}

// QueryAt implements InstanceSource.
func (s *CloneSource) QueryAt(idx int, b dims.Box) (float64, error) {
	if idx < 0 || idx >= len(s.insts) {
		return 0, fmt.Errorf("framework: instance %d out of range [0,%d)", idx, len(s.insts))
	}
	return s.insts[idx].Query(b)
}

// UpdateFrom implements InstanceSource.
func (s *CloneSource) UpdateFrom(idx int, x []int, delta float64) error {
	if idx < 0 || idx >= len(s.insts) {
		return fmt.Errorf("framework: instance %d out of range [0,%d)", idx, len(s.insts))
	}
	for i := idx; i < len(s.insts); i++ {
		s.insts[i].Update(x, delta)
	}
	return nil
}

// Len implements InstanceSource.
func (s *CloneSource) Len() int { return len(s.insts) }

// TreapSource keeps all instances as versions of one persistent treap
// over one-dimensional int64 keys (coordinates are x[0]). Snapshots
// are O(1) — the "copy in constant time" the framework assumes,
// obtained through the multiversion methodology of Section 4.
type TreapSource struct {
	cur      mversion.Treap
	versions []mversion.Treap
}

// NewTreapSource returns an empty TreapSource.
func NewTreapSource() *TreapSource { return &TreapSource{} }

// Update implements InstanceSource; x must be one-dimensional.
func (s *TreapSource) Update(newInstance bool, x []int, delta float64) error {
	if len(x) != 1 {
		return fmt.Errorf("framework: TreapSource requires 1-dimensional points, got %d", len(x))
	}
	if newInstance {
		s.versions = append(s.versions, s.cur)
	}
	if len(s.versions) == 0 {
		return errors.New("framework: update before any instance exists")
	}
	s.cur = s.cur.Add(int64(x[0]), delta)
	s.versions[len(s.versions)-1] = s.cur
	return nil
}

// QueryAt implements InstanceSource.
func (s *TreapSource) QueryAt(idx int, b dims.Box) (float64, error) {
	if idx < 0 || idx >= len(s.versions) {
		return 0, fmt.Errorf("framework: instance %d out of range [0,%d)", idx, len(s.versions))
	}
	if len(b.Lo) != 1 {
		return 0, fmt.Errorf("framework: TreapSource requires 1-dimensional boxes, got %d", len(b.Lo))
	}
	return s.versions[idx].RangeSum(int64(b.Lo[0]), int64(b.Hi[0])), nil
}

// UpdateFrom implements InstanceSource: persistent versions are
// immutable, so historic rewrites are unsupported.
func (s *TreapSource) UpdateFrom(int, []int, float64) error {
	return ErrCascadeUnsupported
}

// Len implements InstanceSource.
func (s *TreapSource) Len() int { return len(s.versions) }

// ArrayStructure adapts a molap pre-aggregated array to the Structure
// interface, with deep-copy cloning.
type ArrayStructure struct {
	A *molap.Array
}

// NewArrayStructure wraps an array.
func NewArrayStructure(a *molap.Array) *ArrayStructure { return &ArrayStructure{A: a} }

// Update implements Structure.
func (s *ArrayStructure) Update(x []int, delta float64) { s.A.Update(x, delta) }

// Query implements Structure.
func (s *ArrayStructure) Query(b dims.Box) (float64, error) { return s.A.Query(b) }

// Clone implements Cloneable.
func (s *ArrayStructure) Clone() Cloneable { return &ArrayStructure{A: s.A.Clone()} }
