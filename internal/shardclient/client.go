// Package shardclient is histproxy's per-shard connection layer: a
// small pool of line-protocol connections to one backend histserve,
// fronted by a consecutive-failure circuit breaker with a half-open
// trial, dial backoff via internal/retry, and a VERSION health probe.
//
// The breaker trips on transport failures only (dial errors, timeouts,
// broken conns) — an "ERR ..." reply is a healthy transport carrying an
// application error and must not open the breaker. While open, Do
// fails fast with ErrShardDown so the proxy can assemble a PARTIAL
// answer instead of hanging on a dead shard; after the cooldown a
// single trial request is let through (half-open), and one success
// closes the breaker again. That is what lets a SIGKILLed shard rejoin
// without a proxy restart: the first query (or background probe) after
// it comes back closes the breaker.
package shardclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"histcube/internal/retry"
)

// ErrShardDown is returned (wrapped) when the breaker is open and the
// request was not attempted: the shard is presumed dead until the
// cooldown expires.
var ErrShardDown = errors.New("shard down (breaker open)")

// maxResponseLines bounds an END-terminated multi-line response
// (EXPLAIN span trees); a backend streaming forever is a transport
// fault, not a reason to buffer without limit.
const maxResponseLines = 4096

// Options configures a Client. The zero value selects the defaults
// noted per field.
type Options struct {
	// PoolSize is the number of idle connections kept; 0 selects 4.
	PoolSize int
	// DialTimeout bounds one TCP dial; 0 selects 2s.
	DialTimeout time.Duration
	// OpTimeout bounds one request round-trip (write + full read);
	// 0 selects 5s. A ctx with an earlier deadline wins.
	OpTimeout time.Duration
	// BreakerThreshold is the consecutive transport-failure count that
	// opens the breaker; 0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// half-open trial; 0 selects 1s.
	BreakerCooldown time.Duration
	// DialRetry backs off transient dial failures; the zero Policy
	// dials exactly once (the breaker supplies the coarse retry).
	DialRetry retry.Policy
	// MaxLineBytes caps one response line; 0 selects 1 MiB.
	MaxLineBytes int

	// DialFault, when non-nil, is consulted before every fresh dial; a
	// non-nil error fails that dial attempt. It is the fault-injection
	// hook for connection-level chaos (internal/fault wires its Check
	// here without shardclient importing it back).
	DialFault func() error
	// WrapConn, when non-nil, wraps every freshly dialed connection —
	// the hook for injecting drop/stall faults at conn read/write sites.
	WrapConn func(net.Conn) net.Conn

	// now replaces time.Now in the breaker (tests).
	now func() time.Time
}

// Client is a pooled line-protocol client for one shard. Safe for
// concurrent use.
type Client struct {
	addr string
	opts Options

	idle chan *wire

	mu       sync.Mutex
	fails    int       // guarded by mu; consecutive transport failures
	openedAt time.Time // guarded by mu; zero while the breaker is closed
	trialing bool      // guarded by mu; a half-open trial is in flight
	closed   bool      // guarded by mu
}

// wire is one pooled connection.
type wire struct {
	conn net.Conn
	r    *bufio.Reader
}

// New returns a client for addr. No connection is made until the
// first request or probe.
func New(addr string, opts Options) *Client {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = 5 * time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = time.Second
	}
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = 1 << 20
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	return &Client{
		addr: addr,
		opts: opts,
		idle: make(chan *wire, opts.PoolSize),
	}
}

// Addr returns the shard address this client serves.
func (c *Client) Addr() string { return c.addr }

// Healthy reports whether the breaker is closed (requests flow
// normally). A half-open client reports unhealthy until a trial
// succeeds.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.openedAt.IsZero()
}

// allow decides whether a request may proceed. It returns an error
// while the breaker is open; after the cooldown it admits exactly one
// half-open trial at a time.
func (c *Client) allow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return retry.Permanent(fmt.Errorf("shard %s: client closed", c.addr))
	}
	if c.openedAt.IsZero() {
		return nil
	}
	if c.opts.now().Sub(c.openedAt) < c.opts.BreakerCooldown {
		return fmt.Errorf("shard %s: %w", c.addr, ErrShardDown)
	}
	if c.trialing {
		return fmt.Errorf("shard %s: %w (trial in flight)", c.addr, ErrShardDown)
	}
	c.trialing = true
	return nil
}

// success records a completed round-trip and closes the breaker.
func (c *Client) success() {
	c.mu.Lock()
	c.fails = 0
	c.openedAt = time.Time{}
	c.trialing = false
	c.mu.Unlock()
}

// failure records a transport failure; at the threshold (or on a
// failed half-open trial) the breaker opens and the idle pool is
// drained — pooled conns to a dead shard are all suspect.
func (c *Client) failure() {
	c.mu.Lock()
	c.fails++
	trip := c.fails >= c.opts.BreakerThreshold || c.trialing
	c.trialing = false
	if trip {
		c.openedAt = c.opts.now()
	}
	c.mu.Unlock()
	if trip {
		c.drain()
	}
}

func (c *Client) drain() {
	for {
		select {
		case w := <-c.idle:
			w.conn.Close() //histlint:ignore errwrap draining suspect conns after a breaker trip; close errors carry no signal
		default:
			return
		}
	}
}

// get returns a pooled connection or dials a fresh one. The bool
// reports whether the conn was reused (a reused conn may have died
// idle; idempotent requests retry those on a fresh dial).
func (c *Client) get(ctx context.Context) (*wire, bool, error) {
	select {
	case w := <-c.idle:
		return w, true, nil
	default:
	}
	var conn net.Conn
	err := c.opts.DialRetry.Do("shardclient.dial", func() error {
		if f := c.opts.DialFault; f != nil {
			if ferr := f(); ferr != nil {
				return ferr
			}
		}
		d := net.Dialer{Timeout: c.opts.DialTimeout}
		var derr error
		conn, derr = d.DialContext(ctx, "tcp", c.addr)
		return derr
	})
	if err != nil {
		return nil, false, fmt.Errorf("dial shard %s: %w", c.addr, err)
	}
	if c.opts.WrapConn != nil {
		conn = c.opts.WrapConn(conn)
	}
	return &wire{conn: conn, r: bufio.NewReaderSize(conn, 64<<10)}, false, nil
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or the client closed).
func (c *Client) put(w *wire) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if !closed {
		select {
		case c.idle <- w:
			return
		default:
		}
	}
	w.conn.Close() //histlint:ignore errwrap surplus pooled conn; close errors carry no signal
}

// Do sends one request line and returns the single response line.
// idempotent requests (reads) are retried once on a fresh connection
// when a *reused* pooled conn fails — it may simply have died idle;
// mutations never retry (the first attempt may have been applied).
// Transport failures feed the breaker; ERR replies do not.
func (c *Client) Do(ctx context.Context, line string, idempotent bool) (string, error) {
	lines, err := c.roundTrip(ctx, line, idempotent, false)
	if err != nil {
		return "", err
	}
	return lines[0], nil
}

// DoMulti sends one request line and reads an END-terminated
// multi-line response (EXPLAIN); the terminating END is stripped.
// A response whose first line is ERR is returned as that single line
// (the server does not follow an error with END).
func (c *Client) DoMulti(ctx context.Context, line string, idempotent bool) ([]string, error) {
	return c.roundTrip(ctx, line, idempotent, true)
}

func (c *Client) roundTrip(ctx context.Context, line string, idempotent, multi bool) ([]string, error) {
	if err := c.allow(); err != nil {
		return nil, err
	}
	lines, reused, err := c.attempt(ctx, line, multi)
	if err != nil && reused && idempotent && ctx.Err() == nil {
		// The pooled conn likely died idle; one fresh-dial retry.
		lines, _, err = c.attempt(ctx, line, multi)
	}
	if err != nil {
		if errors.Is(ctx.Err(), context.Canceled) {
			// The caller abandoned the request (a hedged duplicate won, or
			// the client went away): that says nothing about the shard's
			// health, so the breaker stays out of it. Deadline expiry still
			// counts below — a shard too slow to answer is a sick shard.
			return nil, err
		}
		c.failure()
		return nil, err
	}
	c.success()
	return lines, nil
}

// attempt performs one request on one connection. The returned bool
// reports whether that connection came from the pool.
func (c *Client) attempt(ctx context.Context, line string, multi bool) (_ []string, reused bool, err error) {
	w, reused, err := c.get(ctx)
	if err != nil {
		return nil, reused, err
	}
	deadline := c.opts.now().Add(c.opts.OpTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := w.conn.SetDeadline(deadline); err != nil {
		w.conn.Close() //histlint:ignore errwrap conn is being discarded for the deadline error
		return nil, reused, fmt.Errorf("shard %s: set deadline: %w", c.addr, err)
	}
	if _, err := w.conn.Write([]byte(line + "\n")); err != nil {
		w.conn.Close() //histlint:ignore errwrap conn is being discarded for the write error
		return nil, reused, fmt.Errorf("shard %s: write: %w", c.addr, err)
	}
	first, err := c.readLine(w)
	if err != nil {
		w.conn.Close() //histlint:ignore errwrap conn is being discarded for the read error
		return nil, reused, fmt.Errorf("shard %s: read: %w", c.addr, err)
	}
	lines := []string{first}
	if multi && !strings.HasPrefix(first, "ERR") {
		for {
			if err := ctx.Err(); err != nil {
				// Cancellation without a ctx deadline would otherwise ride
				// the full OpTimeout on every remaining line read.
				w.conn.Close() //histlint:ignore errwrap conn is being discarded for the cancelled request
				return nil, reused, fmt.Errorf("shard %s: %w", c.addr, err)
			}
			if len(lines) > maxResponseLines {
				w.conn.Close() //histlint:ignore errwrap conn is being discarded for the oversized response
				return nil, reused, fmt.Errorf("shard %s: response exceeds %d lines", c.addr, maxResponseLines)
			}
			l, err := c.readLine(w)
			if err != nil {
				w.conn.Close() //histlint:ignore errwrap conn is being discarded for the read error
				return nil, reused, fmt.Errorf("shard %s: read: %w", c.addr, err)
			}
			if l == "END" {
				break
			}
			lines = append(lines, l)
		}
	}
	c.put(w)
	return lines, reused, nil
}

// readLine reads one \n-terminated line, enforcing MaxLineBytes.
func (c *Client) readLine(w *wire) (string, error) {
	var b strings.Builder
	for {
		chunk, err := w.r.ReadSlice('\n')
		b.Write(chunk)
		if b.Len() > c.opts.MaxLineBytes {
			return "", fmt.Errorf("response line exceeds %d bytes", c.opts.MaxLineBytes)
		}
		if err == nil {
			return strings.TrimRight(b.String(), "\r\n"), nil
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
	}
}

// Probe performs one VERSION round-trip, bypassing idempotent retry
// (a probe wants the shard's current truth, not a lucky pooled conn).
// It feeds the breaker like any request, so a successful probe on a
// half-open breaker closes it — the rejoin path.
func (c *Client) Probe(ctx context.Context) error {
	resp, err := c.Do(ctx, "VERSION", false)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(resp, "OK") {
		return fmt.Errorf("shard %s: probe got %q", c.addr, resp)
	}
	return nil
}

// Close drains the pool and rejects future requests.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.drain()
}
