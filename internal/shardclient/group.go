// Group: one shard's replica set as a single client surface — reads
// fan across healthy members (with a hedged duplicate after a latency
// threshold), writes pin to the current primary, and failover is one
// SetPrimary call away.
//
// Hedging is safe here for a reason most systems don't have: every
// member replays the same totally ordered WAL stream, so any two
// members that have applied an acked write return bit-identical
// answers — first answer wins, no reconciliation. (A replica that is
// still catching up can serve a slightly stale read under async
// replication; semi-sync primaries — histserve -repl-min-acks — close
// that window for acked writes.)
package shardclient

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Group is the replica-set client for one time-range shard. Safe for
// concurrent use.
type Group struct {
	members []*Client // immutable; configured primary first
	primary atomic.Int32
	rr      atomic.Uint32 // read round-robin cursor
	hedged  atomic.Int64  // hedged duplicates launched

	hedgeAfter time.Duration
}

// NewGroup builds one Client per member address (configured primary
// first, as in the shard-map spec). hedgeAfter is the latency
// threshold after which a read is duplicated to the next member; 0
// disables hedging.
func NewGroup(addrs []string, hedgeAfter time.Duration, opts Options) *Group {
	g := &Group{hedgeAfter: hedgeAfter}
	for _, a := range addrs {
		g.members = append(g.members, New(a, opts))
	}
	return g
}

// Len returns the member count.
func (g *Group) Len() int { return len(g.members) }

// Member returns the i'th member's client (configured order).
func (g *Group) Member(i int) *Client { return g.members[i] }

// Primary returns the current write target.
func (g *Group) Primary() *Client { return g.members[g.primary.Load()] }

// PrimaryIndex returns the current primary's index in configured
// order.
func (g *Group) PrimaryIndex() int { return int(g.primary.Load()) }

// SetPrimary re-points writes at member i — the failover switch after
// a promotion.
func (g *Group) SetPrimary(i int) {
	if i >= 0 && i < len(g.members) {
		g.primary.Store(int32(i))
	}
}

// Healthy reports whether any member's breaker is closed.
func (g *Group) Healthy() bool {
	for _, c := range g.members {
		if c.Healthy() {
			return true
		}
	}
	return false
}

// Hedged returns the number of hedged duplicate reads launched.
func (g *Group) Hedged() int64 { return g.hedged.Load() }

// Close closes every member client.
func (g *Group) Close() {
	for _, c := range g.members {
		c.Close()
	}
}

// Write sends one mutation to the current primary, never retried and
// never hedged: a duplicate mutation is a double-apply.
func (g *Group) Write(ctx context.Context, line string) (string, error) {
	return g.Primary().Do(ctx, line, false)
}

// Read sends one idempotent single-line request with member fan-out:
// the first member answers alone until hedgeAfter elapses, then a
// duplicate goes to the next member and the first reply wins. A member
// whose attempt fails triggers the next member immediately. An ERR
// reply is an answer (the transport is healthy and every member is
// deterministic), not a reason to fan out further.
func (g *Group) Read(ctx context.Context, line string) (string, error) {
	lines, err := g.read(ctx, line, false)
	if err != nil {
		return "", err
	}
	return lines[0], nil
}

// ReadMulti is Read for END-terminated multi-line responses (EXPLAIN).
func (g *Group) ReadMulti(ctx context.Context, line string) ([]string, error) {
	return g.read(ctx, line, true)
}

type readResult struct {
	lines []string
	err   error
}

func (g *Group) read(ctx context.Context, line string, multi bool) ([]string, error) {
	order := g.readOrder()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the winner cancels every outstanding loser

	results := make(chan readResult, len(order))
	launch := func(c *Client) {
		go func() {
			var r readResult
			if multi {
				r.lines, r.err = c.DoMulti(ctx, line, true)
			} else {
				var one string
				one, r.err = c.Do(ctx, line, true)
				r.lines = []string{one}
			}
			results <- r
		}()
	}

	next := 0
	launch(order[next])
	next++
	outstanding := 1

	var hedge <-chan time.Time
	if g.hedgeAfter > 0 && next < len(order) {
		t := time.NewTimer(g.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.lines, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if next < len(order) {
				launch(order[next])
				next++
				outstanding++
			} else if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			if next < len(order) {
				g.hedged.Add(1)
				launch(order[next])
				next++
				outstanding++
			}
		case <-ctx.Done():
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, fmt.Errorf("shard group: %w", ctx.Err())
		}
	}
}

// readOrder returns the members in attempt order: healthy ones first,
// rotated by a round-robin cursor so read load spreads across the set,
// then open-breaker members last (a half-open trial may still get
// through and is how a rejoined member comes back).
func (g *Group) readOrder() []*Client {
	n := len(g.members)
	start := int(g.rr.Add(1)-1) % n
	healthy := make([]*Client, 0, n)
	var down []*Client
	for i := 0; i < n; i++ {
		c := g.members[(start+i)%n]
		if c.Healthy() {
			healthy = append(healthy, c)
		} else {
			down = append(down, c)
		}
	}
	return append(healthy, down...)
}
