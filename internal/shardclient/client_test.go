package shardclient

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeShard is a minimal line-protocol backend: it answers VERSION,
// QRY (fixed value), EXPLAIN (multi-line + END), ERRME (ERR reply) and
// DROPME (closes the conn mid-request).
type fakeShard struct {
	ln       net.Listener
	accepted atomic.Int64
}

func startFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeShard{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			f.accepted.Add(1)
			go f.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakeShard) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == "VERSION":
			conn.Write([]byte("OK histserve rev=test\n"))
		case strings.HasPrefix(line, "QRY"):
			conn.Write([]byte("42\n"))
		case strings.HasPrefix(line, "EXPLAIN"):
			conn.Write([]byte("OK result=42\nspan serve.query\nEND\n"))
		case line == "ERRME":
			conn.Write([]byte("ERR bad request\n"))
		case line == "DROPME":
			return
		default:
			conn.Write([]byte("OK\n"))
		}
	}
}

func (f *fakeShard) addr() string { return f.ln.Addr().String() }

func newTestClient(t *testing.T, addr string, now *atomic.Pointer[time.Time]) *Client {
	t.Helper()
	opts := Options{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		DialTimeout:      time.Second,
		OpTimeout:        2 * time.Second,
	}
	if now != nil {
		opts.now = func() time.Time { return *now.Load() }
	}
	c := New(addr, opts)
	t.Cleanup(c.Close)
	return c
}

func TestDoAndPooling(t *testing.T) {
	f := startFakeShard(t)
	c := newTestClient(t, f.addr(), nil)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		resp, err := c.Do(ctx, "QRY 0 10 0 0 1 1", true)
		if err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if resp != "42" {
			t.Fatalf("Do %d: resp %q", i, resp)
		}
	}
	if n := f.accepted.Load(); n != 1 {
		t.Fatalf("accepted %d conns, want 1 (pooling broken)", n)
	}
	if !c.Healthy() {
		t.Fatal("client unhealthy after successes")
	}
}

func TestDoMulti(t *testing.T) {
	f := startFakeShard(t)
	c := newTestClient(t, f.addr(), nil)
	lines, err := c.DoMulti(context.Background(), "EXPLAIN QRY 0 1 0 0", true)
	if err != nil {
		t.Fatalf("DoMulti: %v", err)
	}
	want := []string{"OK result=42", "span serve.query"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	// ERR first line short-circuits the END scan.
	lines, err = c.DoMulti(context.Background(), "ERRME", true)
	if err != nil || len(lines) != 1 || lines[0] != "ERR bad request" {
		t.Fatalf("DoMulti(ERRME) = %q, %v", lines, err)
	}
}

func TestErrReplyDoesNotTripBreaker(t *testing.T) {
	f := startFakeShard(t)
	c := newTestClient(t, f.addr(), nil)
	for i := 0; i < 5; i++ {
		resp, err := c.Do(context.Background(), "ERRME", true)
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("resp %q", resp)
		}
	}
	if !c.Healthy() {
		t.Fatal("ERR replies tripped the breaker; they are application errors, not transport failures")
	}
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	// A listener we immediately close: dials fail with conn refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	var now atomic.Pointer[time.Time]
	now.Store(&start)
	c := newTestClient(t, addr, &now)
	ctx := context.Background()

	// Threshold is 2: two real failures, then fast-fail.
	for i := 0; i < 2; i++ {
		if _, err := c.Do(ctx, "QRY 0 1 0 0", true); err == nil {
			t.Fatalf("Do %d against dead addr succeeded", i)
		}
	}
	if c.Healthy() {
		t.Fatal("breaker still closed after threshold failures")
	}
	_, err = c.Do(ctx, "QRY 0 1 0 0", true)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("open breaker returned %v, want ErrShardDown", err)
	}
}

func TestBreakerHalfOpenRejoin(t *testing.T) {
	// Reserve an address, kill it, trip the breaker, then bring a
	// real shard up on the same port and advance past the cooldown:
	// the half-open trial must close the breaker — the rejoin path.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	var now atomic.Pointer[time.Time]
	now.Store(&start)
	c := newTestClient(t, addr, &now)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.Do(ctx, "VERSION", false)
	}
	if c.Healthy() {
		t.Fatal("breaker should be open")
	}

	// Shard comes back on the same address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	f := &fakeShard{ln: ln2}
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go f.serve(conn)
		}
	}()
	defer ln2.Close()

	// Still inside the cooldown: fail fast, no trial.
	if _, err := c.Do(ctx, "VERSION", false); !errors.Is(err, ErrShardDown) {
		t.Fatalf("inside cooldown got %v, want ErrShardDown", err)
	}
	// Past the cooldown: the trial goes through and closes the breaker.
	later := start.Add(2 * time.Minute)
	now.Store(&later)
	if err := c.Probe(ctx); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if !c.Healthy() {
		t.Fatal("breaker did not close after a successful trial")
	}
}

func TestIdempotentRetryOnStalePooledConn(t *testing.T) {
	f := startFakeShard(t)
	c := newTestClient(t, f.addr(), nil)
	ctx := context.Background()

	// Prime the pool, then make the server drop that conn.
	if _, err := c.Do(ctx, "QRY 0 1 0 0", true); err != nil {
		t.Fatalf("prime: %v", err)
	}
	if _, err := c.Do(ctx, "DROPME", false); err == nil {
		t.Fatal("DROPME should surface a transport error")
	}

	// Prime again, drop again — but this time retry as idempotent.
	if _, err := c.Do(ctx, "QRY 0 1 0 0", true); err != nil {
		t.Fatalf("prime 2: %v", err)
	}
	// Ask the server to close the pooled conn underneath us.
	w := <-c.idle
	w.conn.Write([]byte("DROPME\n"))
	// Wait for the server side to actually close.
	buf := make([]byte, 1)
	w.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	w.conn.Read(buf)
	c.idle <- w

	resp, err := c.Do(ctx, "QRY 0 1 0 0", true)
	if err != nil {
		t.Fatalf("idempotent Do on stale conn did not recover: %v", err)
	}
	if resp != "42" {
		t.Fatalf("resp %q", resp)
	}
}

func TestClosedClientRejects(t *testing.T) {
	f := startFakeShard(t)
	c := New(f.addr(), Options{})
	c.Close()
	if _, err := c.Do(context.Background(), "VERSION", false); err == nil {
		t.Fatal("closed client accepted a request")
	}
}
