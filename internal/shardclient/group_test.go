package shardclient

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"histcube/internal/fault"
)

// slowShard answers QRY with its own value after an optional delay —
// distinct values let hedging tests see which member won.
type slowShard struct {
	ln    net.Listener
	reply string
	delay time.Duration
	hits  atomic.Int64
}

func startSlowShard(t *testing.T, reply string, delay time.Duration) *slowShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &slowShard{ln: ln, reply: reply, delay: delay}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					s.hits.Add(1)
					if s.delay > 0 {
						time.Sleep(s.delay)
					}
					c.Write([]byte(s.reply + "\n"))
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *slowShard) addr() string { return s.ln.Addr().String() }

func TestGroupHedgesSlowMember(t *testing.T) {
	slow := startSlowShard(t, "1", 2*time.Second)
	fast := startSlowShard(t, "2", 0)
	g := NewGroup([]string{slow.addr(), fast.addr()}, 30*time.Millisecond, Options{OpTimeout: 5 * time.Second})
	t.Cleanup(g.Close)
	// Pin the round-robin cursor so the slow member is attempted first.
	for int(g.rr.Load())%g.Len() != 0 {
		g.rr.Add(1)
	}
	start := time.Now()
	resp, err := g.Read(context.Background(), "QRY 0 0 1 1")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "2" {
		t.Fatalf("got %q, want the hedge's answer", resp)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedged read took %v — waited out the slow member", d)
	}
	if g.Hedged() != 1 {
		t.Fatalf("hedged count = %d, want 1", g.Hedged())
	}
}

func TestGroupReadFailsOverToReplicaImmediately(t *testing.T) {
	up := startSlowShard(t, "7", 0)
	g := NewGroup([]string{"127.0.0.1:1", up.addr()}, 0, Options{
		DialTimeout: 200 * time.Millisecond, OpTimeout: time.Second,
	})
	t.Cleanup(g.Close)
	for int(g.rr.Load())%g.Len() != 0 {
		g.rr.Add(1)
	}
	resp, err := g.Read(context.Background(), "QRY 0 0 1 1")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "7" {
		t.Fatalf("got %q, want the replica's answer", resp)
	}
}

func TestGroupAllMembersDown(t *testing.T) {
	g := NewGroup([]string{"127.0.0.1:1", "127.0.0.1:1"}, 0, Options{
		DialTimeout: 100 * time.Millisecond, OpTimeout: 500 * time.Millisecond,
	})
	t.Cleanup(g.Close)
	if _, err := g.Read(context.Background(), "QRY 0 0 1 1"); err == nil {
		t.Fatal("read with every member down succeeded")
	}
}

func TestGroupWritePinsToPrimary(t *testing.T) {
	a := startSlowShard(t, "OK a", 0)
	b := startSlowShard(t, "OK b", 0)
	g := NewGroup([]string{a.addr(), b.addr()}, 0, Options{OpTimeout: time.Second})
	t.Cleanup(g.Close)
	for i := 0; i < 5; i++ {
		resp, err := g.Write(context.Background(), "INS 1 0 0 1")
		if err != nil {
			t.Fatal(err)
		}
		if resp != "OK a" {
			t.Fatalf("write %d reached %q, want the primary", i, resp)
		}
	}
	g.SetPrimary(1)
	resp, err := g.Write(context.Background(), "INS 1 0 0 1")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "OK b" {
		t.Fatalf("write after SetPrimary reached %q", resp)
	}
	if g.PrimaryIndex() != 1 {
		t.Fatalf("PrimaryIndex = %d", g.PrimaryIndex())
	}
}

func TestGroupHedgeLoserDoesNotFeedBreaker(t *testing.T) {
	slow := startSlowShard(t, "1", 300*time.Millisecond)
	fast := startSlowShard(t, "2", 0)
	g := NewGroup([]string{slow.addr(), fast.addr()}, 10*time.Millisecond, Options{
		OpTimeout: 5 * time.Second, BreakerThreshold: 2,
	})
	t.Cleanup(g.Close)
	for int(g.rr.Load())%g.Len() != 0 {
		g.rr.Add(1)
	}
	// Several hedged reads where the slow member always loses and gets
	// canceled: its breaker must stay closed — cancellation is not a
	// shard failure.
	for i := 0; i < 4; i++ {
		for int(g.rr.Load())%g.Len() != 0 {
			g.rr.Add(1)
		}
		if _, err := g.Read(context.Background(), "QRY 0 0 1 1"); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Member(0).Healthy() {
		t.Fatal("losing hedges opened the slow member's breaker")
	}
}

func TestClientConnFaultHooks(t *testing.T) {
	up := startSlowShard(t, "5", 0)

	// DialFault: injected dial failures surface like dial errors.
	inj := fault.MustParse("proxy0.dial:err@1", 1)
	c := New(up.addr(), Options{
		OpTimeout: time.Second,
		DialFault: func() error {
			out := inj.Check("proxy0.dial")
			return out.Err
		},
	})
	t.Cleanup(c.Close)
	if _, err := c.Do(context.Background(), "QRY 0 0 1 1", true); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected dial fault: %v", err)
	}
	if resp, err := c.Do(context.Background(), "QRY 0 0 1 1", true); err != nil || resp != "5" {
		t.Fatalf("after fault healed: %q %v", resp, err)
	}

	// WrapConn drop: the read sees the injected teardown; the next
	// request dials afresh and succeeds.
	inj2 := fault.MustParse("proxy0.conn.read:drop@1", 1)
	c2 := New(up.addr(), Options{
		OpTimeout: time.Second,
		WrapConn:  func(nc net.Conn) net.Conn { return inj2.WrapConn("proxy0.conn", nc) },
	})
	t.Cleanup(c2.Close)
	if _, err := c2.Do(context.Background(), "QRY 0 0 1 1", false); err == nil ||
		!strings.Contains(err.Error(), "injected") {
		t.Fatalf("injected conn drop: %v", err)
	}
	if resp, err := c2.Do(context.Background(), "QRY 0 0 1 1", true); err != nil || resp != "5" {
		t.Fatalf("after drop: %q %v", resp, err)
	}
}
