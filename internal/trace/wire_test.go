package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestIDRoundTrip pins the identity layer: generated IDs are non-zero
// and distinct, render as 16 hex digits, parse back exactly, and the
// zero ID renders empty and never parses.
func TestIDRoundTrip(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned the reserved zero ID")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %s within 1000 draws", id)
		}
		seen[id] = true
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %d renders as %q, want 16 hex digits", uint64(id), s)
		}
		back, ok := ParseID(s)
		if !ok || back != id {
			t.Fatalf("ParseID(%q) = %v,%v, want %v,true", s, back, ok, id)
		}
	}
	if got := ID(0).String(); got != "" {
		t.Errorf("zero ID renders %q, want empty", got)
	}
	for _, bad := range []string{"", "0", strings.Repeat("0", 16), strings.Repeat("g", 16), strings.Repeat("a", 15), strings.Repeat("a", 17)} {
		if id, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted as %v", bad, id)
		}
	}
}

// TestCutRequestID covers the TID= token grammar: present, absent,
// malformed (ignored, never an error), and bare (token with no verb).
func TestCutRequestID(t *testing.T) {
	id := NewID()
	tid, rest := CutRequestID(FormatRequestID(id) + "QRY 1 2 0 0 7 7")
	if tid != id || rest != "QRY 1 2 0 0 7 7" {
		t.Fatalf("CutRequestID = %v, %q", tid, rest)
	}
	tid, rest = CutRequestID("QRY 1 2")
	if tid != 0 || rest != "QRY 1 2" {
		t.Fatalf("no-token line altered: %v, %q", tid, rest)
	}
	tid, rest = CutRequestID("TID=xyz QRY 1 2")
	if tid != 0 || rest != "TID=xyz QRY 1 2" {
		t.Fatalf("malformed token not ignored: %v, %q", tid, rest)
	}
	tid, rest = CutRequestID(requestIDPrefix + id.String())
	if tid != id || rest != "" {
		t.Fatalf("bare token: %v, %q", tid, rest)
	}
	if got := FormatRequestID(0); got != "" {
		t.Errorf("FormatRequestID(0) = %q, want empty", got)
	}
}

// TestSpanIdentity pins ID threading through a span tree: the root
// generates, children inherit, SetTraceID (the adopted TID= token)
// rewrites the root before fan-out.
func TestSpanIdentity(t *testing.T) {
	root := New("histserve.query")
	if root.TraceID() == 0 || root.SpanID() == 0 {
		t.Fatal("New left IDs unset")
	}
	adopted := NewID()
	root.SetTraceID(adopted)
	root.SetTraceID(0) // zero is "no token": must not clear
	child := root.StartChild("histcube.query")
	if root.TraceID() != adopted {
		t.Fatalf("root trace ID = %v, want adopted %v", root.TraceID(), adopted)
	}
	if child.TraceID() != adopted {
		t.Fatalf("child trace ID = %v, want inherited %v", child.TraceID(), adopted)
	}
	if child.SpanID() == root.SpanID() || child.SpanID() == 0 {
		t.Fatalf("child span ID %v not distinct from root %v", child.SpanID(), root.SpanID())
	}
	var nilSpan *Span
	if nilSpan.TraceID() != 0 || nilSpan.SpanID() != 0 {
		t.Error("nil span reports non-zero IDs")
	}
	nilSpan.SetTraceID(adopted) // must not panic
	nilSpan.Graft(root)         // must not panic
}

// TestSpanJSONRoundTrip builds a real tree, ships it through the wire
// codec and grafts the decoded copy: IDs survive, counter totals are
// bit-identical, and rendering is deterministic.
func TestSpanJSONRoundTrip(t *testing.T) {
	root := New("histserve.query")
	root.SetInt("tlo", 1)
	root.SetStr("shard", "s1:7072")
	child := root.StartChild("histcube.query")
	child.Add(CellsTouched, 17)
	child.Add(Conversions, 9)
	child.SetFloat("value", 2.5)
	child.SetBool("historic", true)
	grand := child.StartChild("histcube.prefix")
	grand.Add(PagerReads, 3)
	grand.End()
	child.End()
	root.Add(WALBytes, 120)
	root.End()

	enc, err := EncodeSpanJSON(root.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(enc, '\n') {
		t.Fatal("encoded span tree is not a single line")
	}
	dec, err := DecodeSpanJSON(enc)
	if err != nil {
		t.Fatal(err)
	}
	back := dec.Span()
	if back.TraceID() != root.TraceID() || back.SpanID() != root.SpanID() {
		t.Fatalf("IDs lost in transit: %v/%v -> %v/%v",
			root.TraceID(), root.SpanID(), back.TraceID(), back.SpanID())
	}
	if back.Children()[0].TraceID() != root.TraceID() {
		t.Fatal("child trace ID lost in transit")
	}
	for c := Counter(0); c < NumCounters; c++ {
		if got, want := back.Total(c), root.Total(c); got != want {
			t.Errorf("counter %s: decoded total %d, want %d", c, got, want)
		}
	}
	if back.Duration() != root.Duration() {
		t.Errorf("duration drifted: %v -> %v", root.Duration(), back.Duration())
	}
	if !back.Start().Equal(time.Unix(0, root.Start().UnixNano())) {
		t.Errorf("start drifted: %v -> %v", root.Start(), back.Start())
	}

	// Grafting the decoded tree under a fresh parent folds the shard's
	// costs into the parent's Total — the proxy-side merge invariant.
	parent := New("proxy.query")
	leg := parent.StartChild("proxy.leg")
	leg.Graft(back)
	leg.End()
	parent.End()
	for c := Counter(0); c < NumCounters; c++ {
		if got, want := parent.Total(c), root.Total(c); got != want {
			t.Errorf("grafted total %s = %d, want %d", c, got, want)
		}
	}

	// A decoded tree renders without surprises (attrs sorted by key).
	var b strings.Builder
	back.Render(&b)
	for _, want := range []string{"histserve.query", "histcube.query", "histcube.prefix", "cells_touched=17", "pager_reads=3", "shard=s1:7072"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("decoded render missing %q:\n%s", want, b.String())
		}
	}
}

// TestDecodeSpanJSONRejects covers the decode error branches.
func TestDecodeSpanJSONRejects(t *testing.T) {
	for _, bad := range []string{"", "not json", "null", "{}", `{"name":""}`, "[1,2]"} {
		if j, err := DecodeSpanJSON([]byte(bad)); err == nil {
			t.Errorf("DecodeSpanJSON(%q) accepted: %+v", bad, j)
		}
	}
	if _, err := EncodeSpanJSON(nil); err == nil {
		t.Error("EncodeSpanJSON(nil) accepted")
	}
}

// FuzzSpanJSON fuzzes the wire codec: decoding arbitrary bytes must
// never panic, and any document that decodes must hit an
// encode/decode fixpoint (canonical form is stable) while converting
// to a Span without losing known counters.
func FuzzSpanJSON(f *testing.F) {
	root := New("histserve.query")
	c := root.StartChild("histcube.query")
	c.Add(CellsTouched, 21)
	c.SetStr("shard", "a:1")
	c.End()
	root.End()
	if seed, err := EncodeSpanJSON(root.JSON()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"name":"histserve.query","counters":{"cells_touched":7,"bogus":1}}`))
	f.Add([]byte(`{"name":"proxy.query","attrs":{"a":1.5,"b":true,"c":[1,2]},"children":[{"name":"proxy.leg"}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeSpanJSON(data)
		if err != nil {
			return
		}
		enc, err := EncodeSpanJSON(j)
		if err != nil {
			t.Fatalf("decoded document failed to encode: %v", err)
		}
		j2, err := DecodeSpanJSON(enc)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v\n%s", err, enc)
		}
		enc2, err := EncodeSpanJSON(j2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode is not a fixpoint:\n%s\n%s", enc, enc2)
		}
		// Span conversion must not panic and must preserve every known
		// counter bit-exactly (the proxy's merged totals depend on it).
		sp := j.Span()
		for name, v := range j.Counters {
			if cnt, ok := CounterByName(name); ok && sp.Count(cnt) != v {
				t.Fatalf("counter %s: %d -> %d", name, v, sp.Count(cnt))
			}
		}
	})
}
