package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"strconv"
	"sync/atomic"
	"time"
)

// ID is a 64-bit trace or span identifier, rendered as 16 lowercase
// hex digits on the wire (the TID= request token, SpanJSON, slog
// lines). The zero ID means "absent": spans belonging to no trace and
// requests that carried no TID= token both read as zero.
type ID uint64

// String renders the ID as 16 hex digits ("" for the zero ID, so the
// absent case never leaks a bogus all-zero identifier into logs).
func (id ID) String() string {
	if id == 0 {
		return ""
	}
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses a 16-hex-digit identifier. It reports false for
// anything else, including the all-zero string (zero means absent and
// must not round-trip as a real ID).
func ParseID(s string) (ID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return ID(v), true
}

// idState is the generator state: a counter seeded once from
// crypto/rand (falling back to the clock) and advanced by a large odd
// constant, then mixed through splitmix64. One atomic add per ID keeps
// generation lock-free and cheap enough for the per-request edge.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// NewID returns a fresh non-zero identifier. IDs are unique within a
// process run and collide across processes with the usual 64-bit
// birthday odds — fine for correlation, not for security.
func NewID() ID {
	x := idState.Add(0x9e3779b97f4a7c15) // golden-ratio increment (Weyl sequence)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // zero is reserved for "absent"
	}
	return ID(x)
}

// requestIDPrefix is the optional leading token a request line may
// carry to propagate a trace across nodes: "TID=<16 hex> <verb> ...".
// histproxy stamps it on every shard leg; histserve adopts it for the
// request's root span so one ID correlates the query fleet-wide.
const requestIDPrefix = "TID="

// CutRequestID strips the optional TID= token off a request line. It
// returns the propagated ID (zero when the token is absent or
// malformed — a bad token is ignored rather than rejected, so tracing
// can never break a request) and the line without the token.
func CutRequestID(line string) (ID, string) {
	rest, ok := cutPrefix(line, requestIDPrefix)
	if !ok {
		return 0, line
	}
	tok := rest
	if i := indexSpace(rest); i >= 0 {
		tok, rest = rest[:i], trimLeftSpace(rest[i:])
	} else {
		rest = ""
	}
	id, ok := ParseID(tok)
	if !ok {
		return 0, line
	}
	return id, rest
}

// FormatRequestID renders the TID= token for id followed by a space,
// or "" for the zero ID — callers can prefix request lines
// unconditionally.
func FormatRequestID(id ID) string {
	if id == 0 {
		return ""
	}
	return requestIDPrefix + id.String() + " "
}

// The three tiny helpers below avoid importing strings into the hot
// ID path (CutRequestID runs per request on both servers).

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return s, false
	}
	return s[len(prefix):], true
}

func indexSpace(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return i
		}
	}
	return -1
}

func trimLeftSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}
