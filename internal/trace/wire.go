// SpanJSON wire codec: the structured EXPLAIN variant ships a whole
// span tree across the proxy/shard boundary as one JSON document
// ("EXPLAIN JSON QRY ..." answers `OK {"result":...,"trace":{...}}`
// on a single line). Decode tolerates anything a well-meaning shard
// could send — unknown attrs and counters are preserved or dropped,
// never fatal — and Span rebuilds an in-memory tree the proxy grafts
// under its proxy.leg span, so Total over the merged tree equals the
// sum of the shards' flat totals exactly (counters travel as int64).

package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// counterByName is the inverse of counterNames, for decoding wire
// counters back into the enum.
var counterByName = func() map[string]Counter {
	m := make(map[string]Counter, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		m[c.String()] = c
	}
	return m
}()

// CounterByName resolves a snake_case counter name ("cells_touched")
// back to its enum value; ok is false for unknown names.
func CounterByName(name string) (Counter, bool) {
	c, ok := counterByName[name]
	return c, ok
}

// EncodeSpanJSON marshals a span tree's JSON shape. The output is a
// single line (encoding/json emits no newlines without an Encoder),
// which is what lets the structured EXPLAIN reply fit the one-line
// protocol slot.
func EncodeSpanJSON(j *SpanJSON) ([]byte, error) {
	if j == nil {
		return nil, errors.New("trace: nil SpanJSON")
	}
	return json.Marshal(j)
}

// DecodeSpanJSON parses a SpanJSON document. It never panics on
// adversarial input (FuzzSpanJSON pins this) and rejects documents
// whose root has no name — the one structural invariant every real
// span satisfies.
func DecodeSpanJSON(data []byte) (*SpanJSON, error) {
	var j SpanJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	if j.Name == "" {
		return nil, errors.New("trace: span document has no name")
	}
	return &j, nil
}

// Span rebuilds an in-memory span tree from its JSON shape — the
// grafting side of the wire codec. Counters map back through the enum
// (unknown names are dropped: an older proxy meeting a newer shard
// loses the counters it does not know, nothing else). Attributes are
// restored sorted by key so a decoded tree renders deterministically;
// integral JSON numbers come back as integer attrs, everything
// non-scalar is stringified. A nil receiver returns nil.
func (j *SpanJSON) Span() *Span {
	if j == nil {
		return nil
	}
	tid, _ := ParseID(j.TraceID)
	sid, _ := ParseID(j.SpanID)
	s := &Span{
		name:    j.Name,
		start:   time.Unix(0, j.StartNano),
		dur:     time.Duration(j.DurationNS),
		traceID: tid,
		spanID:  sid,
	}
	if len(j.Attrs) > 0 {
		keys := make([]string, 0, len(j.Attrs))
		for k := range j.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := j.Attrs[k].(type) {
			case string:
				s.SetStr(k, v)
			case bool:
				s.SetBool(k, v)
			case float64:
				//histlint:ignore nofloateq exact integrality check choosing the attr type on decode, not a value comparison
				if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
					s.SetInt(k, int64(v))
				} else {
					s.SetFloat(k, v)
				}
			default:
				s.SetStr(k, fmt.Sprint(v))
			}
		}
	}
	for name, v := range j.Counters {
		if c, ok := counterByName[name]; ok {
			s.counters[c] = v
		}
	}
	for _, child := range j.Children {
		if cs := child.Span(); cs != nil {
			s.children = append(s.children, cs)
		}
	}
	return s
}

// EntryJSON is the JSON shape of one retained trace in the
// /debug/slowlog and /debug/trace/recent feeds, shared by histserve
// and histproxy so fleet-wide trace_id correlation works with one
// `jq` expression on either side.
type EntryJSON struct {
	Line       string    `json:"line"`
	TraceID    string    `json:"trace_id,omitempty"`
	At         time.Time `json:"at"`
	DurationNS int64     `json:"duration_ns"`
	Trace      *SpanJSON `json:"trace"`
}

// EntriesJSON converts retained entries into their feed shape.
func EntriesJSON(entries []Entry) []EntryJSON {
	out := make([]EntryJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, EntryJSON{
			Line:       e.Line,
			TraceID:    e.Span.TraceID().String(),
			At:         e.At,
			DurationNS: int64(e.Duration),
			Trace:      e.Span.JSON(),
		})
	}
	return out
}
