// Package trace is histcube's request-scoped tracing layer: a
// dependency-free span recorder with per-query cost counters. A span
// records a name, start time, duration, typed attributes and ordered
// children; counters accumulate the paper's cost units (cells touched,
// DDC->PS conversions, instances consulted, pager I/O, WAL bytes) so a
// single query's work is attributable — the per-request counterpart of
// the aggregate metrics in internal/obs.
//
// Tracing is zero-cost when off: every method is safe on a nil *Span
// and returns after one branch, so the untraced hot path (the common
// case — plain Query/Insert calls) pays one nil check and allocates
// nothing. The overhead is pinned by a benchmark-backed regression
// test (overhead_test.go, <= 5 ns/op).
//
// Spans are NOT safe for concurrent use: a span tree belongs to one
// request on one goroutine, which is exactly the serving contract of
// cmd/histserve (all cube calls serialise under the server mutex).
// Rendered snapshots (Render, JSON) are plain values and may be
// shipped across goroutines freely.
package trace

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Counter identifies one per-request cost counter. The units follow
// the paper's cost model: cell accesses for in-memory structures, page
// I/Os for the pager, bytes for the WAL.
type Counter uint8

const (
	// CellsTouched counts historic-slice cells loaded by the eCube
	// query algorithm — the Fig. 10/11 per-query cost that converges
	// from (2 log2 N)^(d-1) towards 2^(d-1).
	CellsTouched Counter = iota
	// Conversions counts DDC->PS cell rewrites persisted during the
	// request (the convergence progress itself).
	Conversions
	// Instances counts (d-1)-dimensional instances consulted via the
	// time directory; the framework reduction bounds this at two per
	// range query (Section 2).
	Instances
	// CacheAccesses counts reads/writes of latest-slice cache cells.
	CacheAccesses
	// StoreAccesses counts historic-store accesses in the store's
	// native unit (cells in memory, page I/Os on disk).
	StoreAccesses
	// PagerReads counts pages faulted in by the single-page buffer.
	PagerReads
	// PagerWrites counts pages written back.
	PagerWrites
	// WALBytes counts write-ahead-log bytes appended for the request.
	WALBytes
	// ForcedCopies counts step-3 forced lazy copies (Fig. 8).
	ForcedCopies
	// CopyAheadWork counts step-4 copy-ahead work (Fig. 8).
	CopyAheadWork

	// NumCounters bounds the counter enum; it is not a counter.
	NumCounters
)

var counterNames = [NumCounters]string{
	CellsTouched:  "cells_touched",
	Conversions:   "conversions",
	Instances:     "instances",
	CacheAccesses: "cache_accesses",
	StoreAccesses: "store_accesses",
	PagerReads:    "pager_reads",
	PagerWrites:   "pager_writes",
	WALBytes:      "wal_bytes",
	ForcedCopies:  "forced_copies",
	CopyAheadWork: "copy_ahead",
}

// String returns the snake_case counter name used in renders, EXPLAIN
// replies and JSON.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	kindInt attrKind = iota
	kindStr
	kindFloat
	kindBool
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	s    string
	f    float64
	b    bool
}

// Value renders the attribute value as a string.
func (a Attr) Value() string {
	switch a.kind {
	case kindInt:
		return strconv.FormatInt(a.i, 10)
	case kindStr:
		return a.s
	case kindFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	default:
		return strconv.FormatBool(a.b)
	}
}

// value returns the attribute payload as a JSON-encodable value.
func (a Attr) value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindStr:
		return a.s
	case kindFloat:
		return a.f
	default:
		return a.b
	}
}

// Span is one node of a request trace. The zero value is not useful;
// construct roots with New and children with StartChild. All methods
// are nil-safe no-ops so call sites need no "is tracing on" guards.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	traceID  ID // shared by every span of one request tree
	spanID   ID // unique per span
	attrs    []Attr
	children []*Span
	counters [NumCounters]int64
}

// New starts a root span with a freshly generated TraceID — the edge
// of a distributed trace. Span names are part of the observability
// contract: constant dotted snake_case under the histcube. or
// histserve. prefix, enforced by histlint's metricname analyzer.
func New(name string) *Span {
	return &Span{name: name, start: time.Now(), traceID: NewID(), spanID: NewID()}
}

// StartChild starts and appends a child span inheriting the parent's
// TraceID; it returns nil when s is nil, so disabled tracing
// propagates through call trees for free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), traceID: s.traceID, spanID: NewID()}
	s.children = append(s.children, c)
	return c
}

// TraceID returns the request-wide trace identifier (zero for nil).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns this span's own identifier (zero for nil).
func (s *Span) SpanID() ID {
	if s == nil {
		return 0
	}
	return s.spanID
}

// SetTraceID adopts a propagated trace identifier (the TID= request
// token), replacing the generated one. It must run before children are
// started — they inherit at StartChild time. A zero id (no token on
// the request) is a no-op, so call sites need no branch; a nil span is
// a no-op like every other method.
func (s *Span) SetTraceID(id ID) {
	if s == nil || id == 0 {
		return
	}
	s.traceID = id
}

// Graft appends an already-built span as a child — the proxy-side
// merge that hangs a shard's decoded tree (SpanJSON.Span) under its
// proxy.leg span so Total sums the whole distributed request. Nil
// receiver and nil child are no-ops.
func (s *Span) Graft(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.children = append(s.children, child)
}

// End fixes the span's duration. Ending twice keeps the first
// duration; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil || s.dur != 0 {
		return
	}
	s.dur = time.Since(s.start)
	if s.dur == 0 {
		s.dur = 1 // clock granularity floor; 0 means "still open"
	}
}

// Add bumps one cost counter on this span.
func (s *Span) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.counters[c] += n
}

// SetInt attaches an integer attribute. The setters are monomorphic
// (no variadic slice) so a call on a nil span allocates nothing.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: kindInt, i: v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: kindStr, s: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: kindFloat, f: v})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: kindBool, b: v})
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Children returns the ordered child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attrs returns the span's attributes in the order they were set.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Count returns this span's own value of counter c, excluding
// children.
func (s *Span) Count(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c]
}

// Total returns the value of counter c summed over the span and its
// whole subtree — the per-request aggregate EXPLAIN reports.
func (s *Span) Total(c Counter) int64 {
	if s == nil {
		return 0
	}
	n := s.counters[c]
	for _, child := range s.children {
		n += child.Total(c)
	}
	return n
}

// ctxKey is the zero-size context key for span propagation.
type ctxKey struct{}

// NewContext returns a context carrying sp. A nil span returns ctx
// unchanged, so untraced requests never touch context values.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext extracts the span from ctx, nil when absent — the one
// branch the disabled path costs.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Render writes the span tree as indented text, one line per span:
//
//	histcube.query dur=12.3µs time_lo=1 time_hi=5 ...
//	  histcube.prefix dur=8.1µs t=5 slice=2
//	    histcube.slice_query ... cells_touched=17 conversions=9
//
// Counters appear after attributes, zero counters omitted. A nil span
// renders nothing.
func (s *Span) Render(w io.Writer) {
	s.render(w, 0)
}

func (s *Span) render(w io.Writer, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	io.WriteString(w, s.name)
	fmt.Fprintf(w, " dur=%s", s.dur)
	for _, a := range s.attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value())
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.counters[c]; v != 0 {
			fmt.Fprintf(w, " %s=%d", c, v)
		}
	}
	io.WriteString(w, "\n")
	for _, child := range s.children {
		child.render(w, depth+1)
	}
}

// SpanJSON is the JSON shape of a rendered span, used by the
// /debug/slowlog and /debug/trace/recent endpoints and histbench
// -trace reports.
type SpanJSON struct {
	Name       string           `json:"name"`
	TraceID    string           `json:"trace_id,omitempty"`
	SpanID     string           `json:"span_id,omitempty"`
	StartNano  int64            `json:"start_unix_nano"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]any   `json:"attrs,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanJSON      `json:"children,omitempty"`
}

// JSON converts the span tree into its JSON shape (nil for nil).
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	j := &SpanJSON{
		Name:       s.name,
		TraceID:    s.traceID.String(),
		SpanID:     s.spanID.String(),
		StartNano:  s.start.UnixNano(),
		DurationNS: int64(s.dur),
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.Key] = a.value()
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.counters[c]; v != 0 {
			if j.Counters == nil {
				j.Counters = make(map[string]int64)
			}
			j.Counters[c.String()] = v
		}
	}
	for _, child := range s.children {
		j.Children = append(j.Children, child.JSON())
	}
	return j
}
