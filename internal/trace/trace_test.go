package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	child := s.StartChild("histcube.query")
	if child != nil {
		t.Fatalf("StartChild on nil span = %v, want nil", child)
	}
	s.End()
	s.Add(CellsTouched, 7)
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.SetFloat("k", 1.5)
	s.SetBool("k", true)
	if s.Name() != "" || s.Duration() != 0 || s.Count(CellsTouched) != 0 || s.Total(Conversions) != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
	if s.Children() != nil || s.Attrs() != nil || s.JSON() != nil {
		t.Fatal("nil span snapshots must be nil")
	}
	var b strings.Builder
	s.Render(&b)
	if b.Len() != 0 {
		t.Fatalf("nil span rendered %q", b.String())
	}
}

func TestSpanTreeCountersAndRender(t *testing.T) {
	root := New("histserve.query")
	root.SetInt("time_lo", 1)
	p1 := root.StartChild("histcube.prefix")
	p1.Add(CellsTouched, 10)
	p1.Add(Conversions, 4)
	p1.End()
	p2 := root.StartChild("histcube.prefix")
	q := p2.StartChild("histcube.slice_query")
	q.Add(CellsTouched, 5)
	q.SetStr("form", "historic")
	q.End()
	p2.End()
	root.Add(WALBytes, 33)
	root.End()

	if got := root.Total(CellsTouched); got != 15 {
		t.Fatalf("Total(CellsTouched) = %d, want 15", got)
	}
	if got := root.Count(CellsTouched); got != 0 {
		t.Fatalf("Count(CellsTouched) on root = %d, want 0 (own only)", got)
	}
	if got := root.Total(Conversions); got != 4 {
		t.Fatalf("Total(Conversions) = %d, want 4", got)
	}
	if len(root.Children()) != 2 || root.Children()[0] != p1 {
		t.Fatal("children must be ordered")
	}
	if root.Duration() <= 0 {
		t.Fatal("ended span must have positive duration")
	}

	var b strings.Builder
	root.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "histserve.query dur=") || !strings.Contains(lines[0], "time_lo=1") {
		t.Fatalf("bad root line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  histcube.prefix") || !strings.Contains(lines[1], "cells_touched=10") {
		t.Fatalf("bad child line %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "    histcube.slice_query") || !strings.Contains(lines[3], "form=historic") {
		t.Fatalf("bad grandchild line %q", lines[3])
	}
	if strings.Contains(lines[1], "conversions=0") {
		t.Fatal("zero counters must be omitted from renders")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	sp := New("histcube.query")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	// Nil spans leave the context untouched.
	base := context.Background()
	if got := NewContext(base, nil); got != base {
		t.Fatal("NewContext(nil span) must return ctx unchanged")
	}
}

func TestSpanJSON(t *testing.T) {
	root := New("histserve.query")
	root.SetStr("line", "QRY 0 1")
	root.SetBool("ok", true)
	c := root.StartChild("histcube.prefix")
	c.Add(CellsTouched, 3)
	c.End()
	root.End()
	data, err := json.Marshal(root.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Name     string         `json:"name"`
		Attrs    map[string]any `json:"attrs"`
		Children []struct {
			Name     string           `json:"name"`
			Counters map[string]int64 `json:"counters"`
		} `json:"children"`
	}
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Name != "histserve.query" || dec.Attrs["line"] != "QRY 0 1" || dec.Attrs["ok"] != true {
		t.Fatalf("bad JSON root: %s", data)
	}
	if len(dec.Children) != 1 || dec.Children[0].Counters["cells_touched"] != 3 {
		t.Fatalf("bad JSON child: %s", data)
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.Contains(name, "(") {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if got := NumCounters.String(); !strings.HasPrefix(got, "counter(") {
		t.Fatalf("out-of-range counter renders %q", got)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	sp := New("histcube.query")
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatal("second End must keep the first duration")
	}
}

func TestSlowLogAdmissionAndBound(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	now := time.Now()
	if l.Observe("fast", now, 5*time.Millisecond, nil) {
		t.Fatal("below-threshold trace must not be admitted")
	}
	for i, d := range []time.Duration{20, 40, 30} {
		if !l.Observe("q", now, d*time.Millisecond, nil) {
			t.Fatalf("trace %d must be admitted", i)
		}
	}
	// Full: a trace slower than the current worst evicts it ...
	if !l.Observe("slow", now, 50*time.Millisecond, nil) {
		t.Fatal("slower trace must displace the current minimum")
	}
	// ... and one faster than everything retained is rejected.
	if l.Observe("meh", now, 15*time.Millisecond, nil) {
		t.Fatal("faster-than-retained trace must be rejected when full")
	}
	es := l.Entries()
	if len(es) != 3 {
		t.Fatalf("len(entries) = %d, want 3 (the bound)", len(es))
	}
	want := []time.Duration{50 * time.Millisecond, 40 * time.Millisecond, 30 * time.Millisecond}
	for i, e := range es {
		if e.Duration != want[i] {
			t.Fatalf("entry %d duration = %s, want %s", i, e.Duration, want[i])
		}
	}
	if l.Observed() != 6 || l.Admitted() != 4 {
		t.Fatalf("observed=%d admitted=%d, want 6/4", l.Observed(), l.Admitted())
	}
}

func TestRingNewestFirstAndEviction(t *testing.T) {
	r := NewRing(3)
	now := time.Now()
	for i := 1; i <= 5; i++ {
		r.Add("q", now, time.Duration(i), nil)
	}
	es := r.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want 3", len(es))
	}
	for i, want := range []time.Duration{5, 4, 3} {
		if es[i].Duration != want {
			t.Fatalf("entry %d = %d, want %d (newest first)", i, es[i].Duration, want)
		}
	}
	// Partially filled ring.
	r2 := NewRing(4)
	r2.Add("a", now, 1, nil)
	r2.Add("b", now, 2, nil)
	es2 := r2.Entries()
	if len(es2) != 2 || es2[0].Duration != 2 || es2[1].Duration != 1 {
		t.Fatalf("partial ring entries wrong: %v", es2)
	}
}
