package trace

import (
	"context"
	"testing"
)

// traceSink defeats dead-code elimination in the benchmarks below.
var traceSink int64

// benchDisabledPath is the exact shape of an untraced hot-path call:
// extract a span from a bare context (absent -> nil) and drive the
// nil-safe API. Every call must reduce to a handful of branches.
func benchDisabledPath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := FromContext(ctx)
		child := sp.StartChild("histcube.query")
		child.Add(CellsTouched, 1)
		child.SetInt("slice", 3)
		child.End()
		traceSink += sp.Total(CellsTouched)
		// The distributed-tracing identity branch: reading the trace ID
		// off a disabled span must stay a single nil check and must not
		// reach the ID generator.
		traceSink += int64(sp.TraceID())
	}
}

func BenchmarkDisabledTracer(b *testing.B) { benchDisabledPath(b) }

// TestDisabledTracerOverhead is the regression guard of the issue's
// acceptance criteria: a disabled tracer (nil span in context) must
// cost <= 5 ns/op on the query hot path and allocate nothing. It runs
// the benchmark in-process so check.sh and CI fail on regressions.
func TestDisabledTracerOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the ns/op measurement")
	}
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	res := testing.Benchmark(benchDisabledPath)
	if res.N == 0 {
		t.Fatal("benchmark did not run")
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled tracer allocates %d objects/op, want 0", allocs)
	}
	nsPerCall := float64(res.T.Nanoseconds()) / float64(res.N)
	// The benchmark body makes 6 nil-safe calls (including the
	// disabled-path TraceID read); the contract is <= 5 ns per call on
	// the disabled path.
	const budget = 5.0 * 6
	if nsPerCall > budget {
		t.Fatalf("disabled tracer costs %.2f ns per hot-path iteration (6 calls), want <= %.0f", nsPerCall, budget)
	}
	t.Logf("disabled tracer: %.2f ns per 6-call iteration, %d allocs", nsPerCall, res.AllocsPerOp())
}
