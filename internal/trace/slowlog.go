package trace

import (
	"sync"
	"time"
)

// Entry is one retained trace: the request line that produced it, when
// it finished, how long it took, and the finished span tree.
type Entry struct {
	Line     string
	At       time.Time
	Duration time.Duration
	Span     *Span
}

// SlowLog retains the N worst traces at or above a duration threshold
// — a bounded, in-memory slow-query log. It is safe for concurrent
// use; entries are kept sorted worst-first, and once full a new trace
// must beat the current N-th worst to be admitted.
type SlowLog struct {
	mu        sync.Mutex
	capacity  int
	threshold time.Duration
	entries   []Entry // guarded by mu; sorted by Duration descending
	observed  int64   // guarded by mu
	admitted  int64   // guarded by mu
}

// NewSlowLog returns a slow-query log retaining at most capacity
// traces whose duration is >= threshold. A non-positive capacity
// keeps one entry; threshold 0 admits every observed trace.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{capacity: capacity, threshold: threshold}
}

// Threshold returns the admission threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Cap returns the retention bound.
func (l *SlowLog) Cap() int { return l.capacity }

// Observe offers one finished trace and reports whether it was
// retained.
func (l *SlowLog) Observe(line string, at time.Time, d time.Duration, sp *Span) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed++
	if d < l.threshold {
		return false
	}
	if len(l.entries) == l.capacity && d <= l.entries[len(l.entries)-1].Duration {
		return false
	}
	e := Entry{Line: line, At: at, Duration: d, Span: sp}
	// Insert in descending duration order; the list is tiny (the
	// retention bound), so a linear scan beats anything clever.
	pos := len(l.entries)
	for i, cur := range l.entries {
		if d > cur.Duration {
			pos = i
			break
		}
	}
	l.entries = append(l.entries, Entry{})
	copy(l.entries[pos+1:], l.entries[pos:])
	l.entries[pos] = e
	if len(l.entries) > l.capacity {
		l.entries = l.entries[:l.capacity]
	}
	l.admitted++
	return true
}

// Entries returns a copy of the retained traces, worst-first.
func (l *SlowLog) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Observed returns how many traces were offered.
func (l *SlowLog) Observed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.observed
}

// Admitted returns how many traces were retained on arrival.
func (l *SlowLog) Admitted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.admitted
}

// Ring retains the most recent traces in a fixed-size circular
// buffer, newest first on read — the /debug/trace/recent feed. Safe
// for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Entry // guarded by mu
	next int     // guarded by mu
	full bool    // guarded by mu
}

// NewRing returns a ring retaining the last capacity traces
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Entry, capacity)}
}

// Cap returns the retention bound.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Add records one finished trace, evicting the oldest when full.
func (r *Ring) Add(line string, at time.Time, d time.Duration, sp *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = Entry{Line: line, At: at, Duration: d, Span: sp}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Entries returns a copy of the retained traces, newest first.
func (r *Ring) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}
