package experiments

import "testing"

// TestTracedQueryCostConvergence pins the -trace mode's convergence
// claim: identical historic queries start in the DDC cost regime
// (above the PS bound, converting cells) and end exactly at the
// paper's 2^d bound with no further conversions, never increasing
// along the way.
func TestTracedQueryCostConvergence(t *testing.T) {
	res, err := TracedQueryCost(16, 2, 24, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 24 {
		t.Fatalf("got %d records, want 24", len(res.Records))
	}
	psBound := int64(res.PSBound)
	first := res.Records[0]
	last := res.Records[len(res.Records)-1]
	if first.Conversions == 0 {
		t.Fatalf("first historic query converted nothing: %+v", first)
	}
	if first.CellsTouched <= psBound {
		t.Fatalf("first query already at the PS bound: %+v", first)
	}
	if first.CellsTouched > int64(res.DDCBound) {
		t.Fatalf("first query exceeded the DDC bound %g: %+v", res.DDCBound, first)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].CellsTouched > res.Records[i-1].CellsTouched {
			t.Fatalf("per-query cost increased at record %d: %+v -> %+v",
				i, res.Records[i-1], res.Records[i])
		}
		//histlint:ignore nofloateq identical queries over identical state must agree bitwise
		if res.Records[i].Result != first.Result {
			t.Fatalf("result drifted at record %d: %v != %v", i, res.Records[i].Result, first.Result)
		}
	}
	if last.CellsTouched != psBound || last.Conversions != 0 {
		t.Fatalf("did not converge to %d cells / 0 conversions: %+v", psBound, last)
	}
	if last.Instances != 1 {
		t.Fatalf("instances = %d, want 1 (time 0 prefix resolves to no slice)", last.Instances)
	}
}

// TestTracedQueryCostRandom sanity-checks the random-box mode.
func TestTracedQueryCostRandom(t *testing.T) {
	res, err := TracedQueryCost(16, 2, 10, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("got %d records, want 10", len(res.Records))
	}
	for _, rec := range res.Records {
		if rec.Instances < 1 {
			t.Fatalf("record consulted no instance: %+v", rec)
		}
		if rec.DurationNS <= 0 {
			t.Fatalf("record has no duration: %+v", rec)
		}
	}
}

// TestTracedQueryCostValidation covers the parameter guard.
func TestTracedQueryCostValidation(t *testing.T) {
	if _, err := TracedQueryCost(2, 2, 10, true, 1); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := TracedQueryCost(16, 0, 10, true, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := TracedQueryCost(16, 2, 0, true, 1); err == nil {
		t.Error("0 queries accepted")
	}
}
