package experiments

import (
	"testing"

	"histcube/internal/workload"
)

// The experiment drivers validate result values internally (each
// technique must agree with the others on every query); these tests
// additionally assert the qualitative shapes the paper reports, at a
// small scale so the suite stays fast.

func TestTable3Shapes(t *testing.T) {
	rows := Table3(0.005)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	wantDensity := map[string]float64{"weather4": 0.0073, "weather6": 0.0039, "gauss3": 0.048}
	wantDims := map[string]int{"weather4": 4, "weather6": 6, "gauss3": 3}
	for _, r := range rows {
		base := r.Name[:len(r.Name)-len("@0.005")]
		if r.Dims != wantDims[base] {
			t.Errorf("%s: dims = %d, want %d", r.Name, r.Dims, wantDims[base])
		}
		w := wantDensity[base]
		if r.Density < w/3 || r.Density > w*3 {
			t.Errorf("%s: density %.4f not within 3x of paper's %.4f", r.Name, r.Density, w)
		}
		if r.NonEmpty == 0 || r.TotalCells == 0 {
			t.Errorf("%s: empty dataset", r.Name)
		}
	}
}

func TestQueryCostConvergence(t *testing.T) {
	// Figure 10's shape: eCube starts above DDC (two-prefix reduction)
	// and converges towards the PS bound; DDC and PS stay flat.
	res, err := QueryCost(0.01, 1500, false, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECubeFirst <= res.DDCAvg {
		t.Errorf("eCube first window %.1f should start above DDC avg %.1f", res.ECubeFirst, res.DDCAvg)
	}
	if res.ECubeLast >= res.ECubeFirst/2 {
		t.Errorf("no convergence: first %.1f, last %.1f", res.ECubeFirst, res.ECubeLast)
	}
	if res.ECubeLast >= res.DDCAvg {
		t.Errorf("converged eCube %.1f should be below DDC %.1f", res.ECubeLast, res.DDCAvg)
	}
	if res.PSAvg > 8 {
		t.Errorf("PS average %.1f exceeds the 2^d bound for 3-d slices", res.PSAvg)
	}
	if res.Converted == 0 || res.Converted > res.SliceCells {
		t.Errorf("converted = %d of %d", res.Converted, res.SliceCells)
	}
}

func TestQueryCostSkewConvergesFaster(t *testing.T) {
	// Figure 11: skewed queries concentrate conversions, so the tail
	// cost drops at least as low with fewer conversions overall.
	uni, err := QueryCost(0.01, 1500, false, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := QueryCost(0.01, 1500, true, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if skew.Converted >= uni.Converted {
		t.Errorf("skew converted %d cells, uni %d; skew should touch a smaller region", skew.Converted, uni.Converted)
	}
	if skew.ECubeLast > skew.ECubeFirst/2 {
		t.Errorf("skew did not converge: first %.1f last %.1f", skew.ECubeFirst, skew.ECubeLast)
	}
}

func TestUpdateCostCurves(t *testing.T) {
	// Figure 12/13 shape: the with-copy curve dominates the
	// without-copy curve pointwise (both sorted), and the copy work is
	// positive but bounded.
	for _, spec := range []workload.Spec{workload.Weather6Spec, workload.Gauss3Spec} {
		res, err := UpdateCost(spec, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		if res.Updates == 0 {
			t.Fatalf("%s: no updates", spec.Name)
		}
		if len(res.SortedWith) != res.Updates || len(res.SortedWithout) != res.Updates {
			t.Fatalf("%s: curve lengths wrong", spec.Name)
		}
		for i := range res.SortedWith {
			if res.SortedWith[i] < res.SortedWithout[i] {
				t.Fatalf("%s: sorted with-copy curve below without-copy at rank %d", spec.Name, i)
			}
			if i > 0 && res.SortedWith[i] < res.SortedWith[i-1] {
				t.Fatalf("%s: with-copy curve not sorted", spec.Name)
			}
		}
		if res.TotalCopy <= 0 {
			t.Errorf("%s: no copy work recorded", spec.Name)
		}
		if res.P50 > res.P90 || res.P90 > res.P99 {
			t.Errorf("%s: quantiles out of order: %v %v %v", spec.Name, res.P50, res.P90, res.P99)
		}
	}
}

func TestTable4Bounds(t *testing.T) {
	rows, err := Table4(0.01, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Min != 0 {
			t.Errorf("%s/%s: min = %d, want 0", r.Dataset, r.Mode, r.Min)
		}
		switch r.Mode {
		case "disk":
			// The paper: never more than one incomplete instance.
			if r.Max > 1 {
				t.Errorf("%s/disk: max = %d, want <= 1", r.Dataset, r.Max)
			}
		case "in-memory":
			// The paper observes 0-5; the adaptive budget keeps it
			// small.
			if r.Max > 6 {
				t.Errorf("%s/in-memory: max = %d, want small", r.Dataset, r.Max)
			}
			if r.MostFrequent > 3 {
				t.Errorf("%s/in-memory: most frequent = %d, want <= 3", r.Dataset, r.MostFrequent)
			}
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
	}
}

func TestIOCostRuns(t *testing.T) {
	// At reduced scale the R*-tree has few leaves and can win; the
	// full-scale ordering (array wins, as in Fig. 14) is recorded by
	// the histbench run in EXPERIMENTS.md. Here: both cost models
	// produce sane, internally-consistent results (the driver verifies
	// every query's value against both structures).
	res, err := IOCost(0.02, 300, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrayAvg <= 0 || res.RTreeAvg <= 0 {
		t.Errorf("non-positive averages: %v %v", res.ArrayAvg, res.RTreeAvg)
	}
	if res.Queries != 300 {
		t.Errorf("queries = %d", res.Queries)
	}
	if res.TreeLeaves == 0 || res.TreeHeight == 0 {
		t.Errorf("tree stats empty: %+v", res)
	}
	for i := 1; i < len(res.SortedArray); i++ {
		if res.SortedArray[i] < res.SortedArray[i-1] {
			t.Fatal("array curve not sorted")
		}
	}
}

func TestOutOfOrderSweep(t *testing.T) {
	rows, err := OutOfOrderSweep(0.003, []float64{0, 5, 25}, 120, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Buffered != 0 {
		t.Errorf("0%% sweep buffered %d updates", rows[0].Buffered)
	}
	// Graceful degradation: buffered counts and G_d work grow with the
	// out-of-order share.
	for i := 1; i < len(rows); i++ {
		if rows[i].Buffered <= rows[i-1].Buffered {
			t.Errorf("buffered not increasing: %v", rows)
		}
		if rows[i].TreeLeaves < rows[i-1].TreeLeaves {
			t.Errorf("tree leaf work not monotone: %v", rows)
		}
	}
	// The indexed G_d does far less work per query than the scan.
	last := rows[len(rows)-1]
	if last.TreeLeaves >= last.ListChecks {
		t.Errorf("R*-tree G_d (%d leaf reads) should beat the %d list checks", last.TreeLeaves, last.ListChecks)
	}
}
