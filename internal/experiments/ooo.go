package experiments

import (
	"fmt"
	"math/rand"

	"histcube/internal/appendcube"
	"histcube/internal/dims"
	"histcube/internal/framework"
	"histcube/internal/rstar"
	"histcube/internal/workload"
)

// OOORow is one point of the out-of-order sweep: the average query
// cost (wall-clock-free: structure accesses are not comparable across
// G_d kinds, so the row reports buffered counts and exact-result
// verification plus the G_d sizes driving the paper's degradation
// argument).
type OOORow struct {
	Percent    float64
	Buffered   int
	ListChecks int64 // points scanned by the list G_d across all queries
	TreeLeaves int64 // leaf accesses by the R*-tree G_d across all queries
	Queries    int
}

// OutOfOrderSweep validates Section 2.5's graceful-degradation claim:
// with an increasing share of out-of-order updates, query cost
// converges towards the cost of a general d-dimensional structure.
// For each percentage, a gauss3-style stream is ingested with that
// share of updates redirected to historic times; queries combine the
// cube with a list-backed and an R*-tree-backed G_d (both must agree
// with the append-only-only result plus buffered contribution), and
// the per-query G_d work is reported.
func OutOfOrderSweep(scale float64, percents []float64, nQueries int, seed int64) ([]OOORow, error) {
	ds := workload.Generate(workload.Gauss3Spec.Scaled(scale))
	rows := make([]OOORow, 0, len(percents))
	for _, pct := range percents {
		r := rand.New(rand.NewSource(seed))
		cube, err := appendcube.New(appendcube.Config{SliceShape: ds.SliceShape})
		if err != nil {
			return nil, err
		}
		list := framework.NewListGd()
		tree, err := rstar.NewGd(len(ds.SliceShape))
		if err != nil {
			return nil, err
		}
		var latest int64 = -1
		buffered := 0
		applied := make([]workload.Update, 0, len(ds.Updates))
		for _, u := range ds.Updates {
			tv := u.Time
			if latest >= 1 && r.Float64()*100 < pct {
				// Redirect to a historic time.
				tv = int64(r.Intn(int(latest)))
			}
			applied = append(applied, workload.Update{Time: tv, Coords: u.Coords, Delta: u.Delta})
			if tv >= latest {
				if _, err := cube.Update(tv, u.Coords, u.Delta); err != nil {
					return nil, err
				}
				if tv > latest {
					latest = tv
				}
				continue
			}
			list.Insert(tv, u.Coords, u.Delta)
			tree.Insert(tv, u.Coords, u.Delta)
			buffered++
		}

		qr := rand.New(rand.NewSource(seed + 1))
		qs := workload.TimeQueries(qr, ds.SliceShape, ds.TimeSize, nQueries, false)
		var treeLeaves int64
		for qi, q := range qs {
			base, err := cube.Query(q.TimeLo, q.TimeHi, q.Box)
			if err != nil {
				return nil, err
			}
			lv, err := list.Query(q.TimeLo, q.TimeHi, q.Box)
			if err != nil {
				return nil, err
			}
			before := tree.Tree().LeafReads
			tv, err := tree.Query(q.TimeLo, q.TimeHi, q.Box)
			if err != nil {
				return nil, err
			}
			treeLeaves += tree.Tree().LeafReads - before
			//histlint:ignore nofloateq cross-check oracle: list and tree sum the identical buffered updates, so exact agreement is the contract
			if lv != tv {
				return nil, fmt.Errorf("experiments: G_d structures disagree: list %v, tree %v", lv, tv)
			}
			// Exactness: append-only part plus buffered part must equal
			// the naive replay of the redirected stream (spot-checked
			// to keep the sweep fast).
			if qi%25 == 0 {
				//histlint:ignore nofloateq exactness oracle against naive replay of the same update stream; a ulp difference here would be a real bug
				if want := naiveBoxCheck(applied, q.TimeLo, q.TimeHi, q.Box); base+lv != want {
					return nil, fmt.Errorf("experiments: ooo query inexact at %.0f%%: got %v, want %v", pct, base+lv, want)
				}
			}
		}
		listChecks := int64(buffered) * int64(nQueries)
		rows = append(rows, OOORow{
			Percent:    pct,
			Buffered:   buffered,
			ListChecks: listChecks,
			TreeLeaves: treeLeaves,
			Queries:    nQueries,
		})
	}
	return rows, nil
}

// naiveBoxCheck is kept for the sweep's tests: a query against the
// combined (cube + buffer) state must equal the stream replayed
// naively. Exposed so the test can reuse the exact redirect logic.
func naiveBoxCheck(updates []workload.Update, tLo, tHi int64, b dims.Box) float64 {
	total := 0.0
	for _, u := range updates {
		if u.Time >= tLo && u.Time <= tHi && b.Contains(u.Coords) {
			total += u.Delta
		}
	}
	return total
}
