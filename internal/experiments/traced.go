package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/trace"
)

// TracedQueryRecord is one per-query cost record emitted by histbench
// -trace: the wall-clock duration and the span-counter totals of a
// single traced range query, comparable against the closed-form
// bounds in the enclosing result.
type TracedQueryRecord struct {
	Query         int     `json:"query"`
	Result        float64 `json:"result"`
	DurationNS    int64   `json:"duration_ns"`
	CellsTouched  int64   `json:"cells_touched"`
	Conversions   int64   `json:"conversions"`
	Instances     int64   `json:"instances"`
	CacheAccesses int64   `json:"cache_accesses"`
}

// TracedQueryCostResult is the output of TracedQueryCost: the
// geometry, the paper's closed-form per-instance cost bounds, and one
// record per query.
type TracedQueryCostResult struct {
	N         int     `json:"n"`
	Dims      int     `json:"dims"`
	Queries   int     `json:"queries"`
	Identical bool    `json:"identical"`
	DDCBound  float64 `json:"ddc_bound"` // (2 log2 N)^d, the pre-conversion regime
	PSBound   float64 `json:"ps_bound"`  // 2^d, the converged PS regime

	Records []TracedQueryRecord `json:"records"`
}

// TracedQueryCost is the tracing counterpart of QueryCost (Figs.
// 10/11): instead of instrumenting the raw engines it drives the full
// core.Cube facade with a span per query, so the numbers it reports
// are exactly what EXPLAIN reports over the wire. It builds a cube
// with d non-time dimensions of size n, fills three time slices, and
// runs nQueries historic queries against the oldest slice — identical
// repeats (the convergence experiment: cells_touched falls from the
// DDC regime towards PSBound and conversions dry up) or uniformly
// random boxes.
func TracedQueryCost(n, d, nQueries int, identical bool, seed int64) (TracedQueryCostResult, error) {
	res := TracedQueryCostResult{
		N: n, Dims: d, Queries: nQueries, Identical: identical,
		DDCBound: math.Pow(2*math.Log2(float64(n)), float64(d)),
		PSBound:  math.Exp2(float64(d)),
	}
	if n < 4 || d < 1 || nQueries < 1 {
		return res, fmt.Errorf("experiments: traced query cost needs n >= 4, d >= 1, queries >= 1 (got n=%d d=%d q=%d)", n, d, nQueries)
	}
	ds := make([]core.Dim, d)
	for i := range ds {
		ds[i] = core.Dim{Name: fmt.Sprintf("d%d", i), Size: n}
	}
	c, err := core.New(core.Config{Dims: ds, Operator: agg.Sum})
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Three slices; the queries target time 1, historic once 2 and 3
	// open. A few points per dimension keep the slices non-trivial.
	for t := int64(1); t <= 3; t++ {
		for i := 0; i < n*d; i++ {
			coords := make([]int, d)
			for j := range coords {
				coords[j] = rng.Intn(n)
			}
			if err := c.Insert(t, coords, 1); err != nil {
				return res, err
			}
		}
	}
	lo := make([]int, d)
	hi := make([]int, d)
	res.Records = make([]TracedQueryRecord, 0, nQueries)
	for q := 0; q < nQueries; q++ {
		if identical {
			for j := 0; j < d; j++ {
				lo[j], hi[j] = 1, n-2
			}
		} else {
			for j := 0; j < d; j++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
		}
		root := trace.New("histcube.bench_query")
		v, err := c.QueryTraced(root, core.Range{TimeLo: 1, TimeHi: 1, Lo: lo, Hi: hi})
		root.End()
		if err != nil {
			return res, err
		}
		res.Records = append(res.Records, TracedQueryRecord{
			Query:         q,
			Result:        v,
			DurationNS:    int64(root.Duration()),
			CellsTouched:  root.Total(trace.CellsTouched),
			Conversions:   root.Total(trace.Conversions),
			Instances:     root.Total(trace.Instances),
			CacheAccesses: root.Total(trace.CacheAccesses),
		})
	}
	return res, nil
}
