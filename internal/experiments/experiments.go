// Package experiments reproduces every table and figure of the
// paper's evaluation (Section 5). Each experiment is a pure function
// from a scale factor and seed to structured results; cmd/histbench
// renders them as tables/CSV and bench_test.go wraps them in
// testing.B benchmarks. The cost metric is the paper's: cell accesses
// in memory, page accesses on disk — deterministic given the
// workload, so the reproduced shapes are machine-independent.
package experiments

import (
	"fmt"
	"math/rand"

	"histcube/internal/appendcube"
	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/ecube"
	"histcube/internal/molap"
	"histcube/internal/obs"
	"histcube/internal/pager"
	"histcube/internal/prefix"
	"histcube/internal/rstar"
	"histcube/internal/stats"
	"histcube/internal/workload"
)

// Table3Row is one line of the paper's Table 3.
type Table3Row struct {
	Name       string
	Dims       int
	TotalCells int
	NonEmpty   int
	Density    float64
}

// Table3 generates the three data sets at the given scale and reports
// their inventory (paper: weather4 143,648,037 cells / 1,048,679
// non-empty / 0.0073; weather6 139,826,700 / 549,010 / 0.0039; gauss3
// 19,902,511 / 950,633 / 0.048).
func Table3(scale float64) []Table3Row {
	rows := make([]Table3Row, 0, 3)
	for _, spec := range []workload.Spec{
		workload.Weather4Spec.Scaled(scale),
		workload.Weather6Spec.Scaled(scale),
		workload.Gauss3Spec.Scaled(scale),
	} {
		ds := workload.Generate(spec)
		rows = append(rows, Table3Row{
			Name:       ds.Name,
			Dims:       len(ds.SliceShape) + 1,
			TotalCells: ds.TotalCells(),
			NonEmpty:   ds.NonEmpty(),
			Density:    ds.Density(),
		})
	}
	return rows
}

// QueryCostPoint is one x-position of Figures 10 and 11: the rolling
// average (window 50 in the paper) of per-query cell accesses for the
// three techniques.
type QueryCostPoint struct {
	Query int
	ECube float64
	DDC   float64
	PS    float64
}

// QueryCostResult is the Figure 10/11 output.
type QueryCostResult struct {
	Points []QueryCostPoint
	// Convergence summary: eCube's average cost over the first and
	// last rolling window, and the flat DDC/PS averages.
	ECubeFirst, ECubeLast float64
	DDCAvg, PSAvg         float64
	Converted             int // eCube cells converted to PS
	SliceCells            int
	// WallSeconds is the experiment's wall-clock time (obs.Timer) —
	// secondary to the cell-access metric, reported for context.
	WallSeconds float64
}

// QueryCost runs the Figure 10 (skew=false) / Figure 11 (skew=true)
// experiment: a weather4-style (d-1)-dimensional time slice is
// pre-aggregated three ways (eCube starting from DDC, static DDC,
// static PS) and the same query sequence is costed on each. The eCube
// curve must start at or above DDC (its two-prefix reduction touches
// cells DDC's direct algorithm cancels) and converge towards PS.
func QueryCost(scale float64, nQueries int, skew bool, window int, seed int64) (QueryCostResult, error) {
	timer := obs.NewTimer(nil)
	spec := workload.Weather4Spec.Scaled(scale)
	ds := workload.Generate(spec)
	shape := ds.SliceShape

	// Project the cube onto the slice dimensions: the cumulative slice
	// with the greatest time coordinate, which is what historic
	// instances hold.
	dense := make([]float64, shape.Size())
	for _, u := range ds.Updates {
		dense[shape.Flatten(u.Coords)] += u.Delta
	}

	ec, err := ecube.FromDense(dense, shape)
	if err != nil {
		return QueryCostResult{}, err
	}
	dd, err := ddc.FromDense(dense, shape)
	if err != nil {
		return QueryCostResult{}, err
	}
	ps, err := prefix.FromDense(dense, shape)
	if err != nil {
		return QueryCostResult{}, err
	}

	r := rand.New(rand.NewSource(seed))
	boxes := workload.Boxes(r, shape, nQueries, skew)
	costsE := make([]float64, nQueries)
	costsD := make([]float64, nQueries)
	costsP := make([]float64, nQueries)
	for i, b := range boxes {
		ec.Accesses = 0
		ve, err := ec.Query(b)
		if err != nil {
			return QueryCostResult{}, err
		}
		costsE[i] = float64(ec.Accesses)

		dd.Accesses = 0
		vd, err := dd.Query(b)
		if err != nil {
			return QueryCostResult{}, err
		}
		costsD[i] = float64(dd.Accesses)

		ps.Accesses = 0
		vp, err := ps.Query(b)
		if err != nil {
			return QueryCostResult{}, err
		}
		costsP[i] = float64(ps.Accesses)

		//histlint:ignore nofloateq cross-check oracle: all three techniques aggregate the same cells in deterministic row-major order, so exact agreement is the experiment's correctness contract
		if ve != vd || ve != vp {
			return QueryCostResult{}, fmt.Errorf("experiments: techniques disagree on query %d: eCube %v, DDC %v, PS %v", i, ve, vd, vp)
		}
	}

	if window <= 0 {
		window = 50
	}
	re := stats.RollingAvg(costsE, window)
	rd := stats.RollingAvg(costsD, window)
	rp := stats.RollingAvg(costsP, window)
	res := QueryCostResult{
		Converted:  ec.Converted(),
		SliceCells: shape.Size(),
	}
	for i := range re {
		res.Points = append(res.Points, QueryCostPoint{
			Query: i * window,
			ECube: re[i],
			DDC:   rd[i],
			PS:    rp[i],
		})
	}
	if len(re) > 0 {
		res.ECubeFirst = re[0]
		res.ECubeLast = re[len(re)-1]
	}
	res.DDCAvg = stats.Mean(costsD)
	res.PSAvg = stats.Mean(costsP)
	res.WallSeconds = timer.ObserveDuration().Seconds()
	return res, nil
}

// UpdateCostResult is the Figure 12/13 output: per-update costs in
// sorted order, with and without copy cost.
type UpdateCostResult struct {
	SortedWith    []float64
	SortedWithout []float64
	// Quantiles of the with-copy curve.
	P50, P90, P99 float64
	// TotalCopy is the area between the curves: forced copies plus
	// copy-ahead work.
	TotalCopy float64
	Updates   int
	// WallSeconds is the experiment's wall-clock time (obs.Timer).
	WallSeconds float64
}

// UpdateCost runs the Figure 12 (weather6) / Figure 13 (gauss3)
// experiment: every update of the data set is applied to the
// append-only cube and its cost recorded with and without copy work.
// Most copies must ride on cheap updates: the two sorted curves stay
// close except at the cheap end.
func UpdateCost(spec workload.Spec, scale float64) (UpdateCostResult, error) {
	timer := obs.NewTimer(nil)
	ds := workload.Generate(spec.Scaled(scale))
	cube, err := appendcube.New(appendcube.Config{SliceShape: ds.SliceShape})
	if err != nil {
		return UpdateCostResult{}, err
	}
	with := make([]float64, 0, len(ds.Updates))
	without := make([]float64, 0, len(ds.Updates))
	total := 0.0
	for _, u := range ds.Updates {
		res, err := cube.Update(u.Time, u.Coords, u.Delta)
		if err != nil {
			return UpdateCostResult{}, err
		}
		with = append(with, float64(res.Cost()))
		without = append(without, float64(res.CostNoCopy()))
		total += float64(res.ForcedCopies + res.CopyAhead)
	}
	return UpdateCostResult{
		SortedWith:    stats.Sorted(with),
		SortedWithout: stats.Sorted(without),
		P50:           stats.Quantile(with, 0.5),
		P90:           stats.Quantile(with, 0.9),
		P99:           stats.Quantile(with, 0.99),
		TotalCopy:     total,
		Updates:       len(with),
		WallSeconds:   timer.ObserveDuration().Seconds(),
	}, nil
}

// Table4Row is one line of the paper's Table 4: the distribution of
// the number of incompletely copied historic instances after each
// update.
type Table4Row struct {
	Dataset      string
	Mode         string // "in-memory" or "disk"
	Min          int
	Max          int
	MostFrequent int
}

// Table4 runs all three data sets through the in-memory and disk
// variants, tracking the incomplete-instance count after every update
// (paper: in-memory 0/2/2, 0/2/2, 0/5/1; disk always 0/1/1).
func Table4(scale float64, pageSize int) ([]Table4Row, error) {
	if pageSize == 0 {
		pageSize = pager.DefaultPageSize
	}
	var rows []Table4Row
	for _, spec := range []workload.Spec{
		workload.Weather4Spec,
		workload.Weather6Spec,
		workload.Gauss3Spec,
	} {
		ds := workload.Generate(spec.Scaled(scale))
		for _, mode := range []string{"in-memory", "disk"} {
			cfg := appendcube.Config{SliceShape: ds.SliceShape}
			if mode == "disk" {
				pg, err := pager.New(pager.NewMemBackend(pageSize), pageSize)
				if err != nil {
					return nil, err
				}
				cfg.Store = appendcube.NewDiskStore(ds.SliceShape.Size(), pg)
			}
			cube, err := appendcube.New(cfg)
			if err != nil {
				return nil, err
			}
			tracker := stats.NewFreqTracker()
			for _, u := range ds.Updates {
				res, err := cube.Update(u.Time, u.Coords, u.Delta)
				if err != nil {
					return nil, err
				}
				tracker.Observe(res.Incomplete)
			}
			rows = append(rows, Table4Row{
				Dataset:      spec.Name,
				Mode:         mode,
				Min:          tracker.Min(),
				Max:          tracker.Max(),
				MostFrequent: tracker.MostFrequent(),
			})
		}
	}
	return rows, nil
}

// IOCostResult is the Figure 14 output: per-query page accesses for
// the DDC array (row-major on 8K pages) and the bulk-loaded R*-tree
// (leaf accesses), in ascending order, plus the averages the paper
// quotes (59.17 vs 275.65 on weather6).
type IOCostResult struct {
	SortedArray []float64
	SortedRTree []float64
	ArrayAvg    float64
	RTreeAvg    float64
	Queries     int
	TreeHeight  int
	TreeLeaves  int
	// Storage comparison (the paper: the DDC array's pre-aggregation
	// "leads to a storage increase by a factor up to 20 compared to
	// the index"): cells stored by the array vs. entries in the tree.
	ArrayCells  int
	TreeEntries int
}

// IOCost runs the Figure 14 experiment on a weather6-style cube: the
// full d-dimensional array (time included) is DDC pre-aggregated and
// laid out row-major on disk pages; the R*-tree is bulk loaded from
// the non-empty points. Each uni query is costed in page accesses
// (array: pager I/Os through a one-page buffer; tree: leaf accesses
// only, internal nodes assumed resident, as in the paper).
func IOCost(scale float64, nQueries int, pageSize int, seed int64) (IOCostResult, error) {
	if pageSize == 0 {
		pageSize = pager.DefaultPageSize
	}
	spec := workload.Weather6Spec.Scaled(scale)
	ds := workload.Generate(spec)

	// Full d-dimensional shape with time as dimension 0.
	full := make(dims.Shape, 0, len(ds.SliceShape)+1)
	full = append(full, ds.TimeSize)
	full = append(full, ds.SliceShape...)

	dense := make([]float64, full.Size())
	coords := make([]int, len(full))
	entries := make([]rstar.Entry, 0, len(ds.Updates))
	for _, u := range ds.Updates {
		t, ok := dims.ToCoord(u.Time)
		if !ok {
			return IOCostResult{}, fmt.Errorf("experiments: update time %d overflows the coordinate range", u.Time)
		}
		coords[0] = t
		copy(coords[1:], u.Coords)
		dense[full.Flatten(coords)] += u.Delta
		entries = append(entries, rstar.Entry{Coords: append([]int(nil), coords...), Value: u.Delta})
	}

	arr, err := ddc.FromDense(dense, full)
	if err != nil {
		return IOCostResult{}, err
	}
	// Lay the DDC cells out row-major on disk.
	pg, err := pager.New(pager.NewMemBackend(pageSize), pageSize)
	if err != nil {
		return IOCostResult{}, err
	}
	cells := arr.Cells()
	for i, v := range cells {
		if err := pg.WriteCell(i, v); err != nil {
			return IOCostResult{}, err
		}
	}
	if err := pg.Flush(); err != nil {
		return IOCostResult{}, err
	}

	tree, err := rstar.BulkLoad(rstar.Config{Dim: len(full), PageSize: pageSize}, entries)
	if err != nil {
		return IOCostResult{}, err
	}

	r := rand.New(rand.NewSource(seed))
	boxes := workload.Boxes(r, full, nQueries, false)
	arrayCosts := make([]float64, nQueries)
	treeCosts := make([]float64, nQueries)
	techs := arr.Techniques()
	for i, b := range boxes {
		// Array: evaluate the DDC query term cells through the pager.
		pg.ResetCounters()
		sum, err := evalTermsOnPager(pg, full, techs, b)
		if err != nil {
			return IOCostResult{}, err
		}
		arrayCosts[i] = float64(pg.IOs())

		tree.LeafReads = 0
		tsum, err := tree.RangeScan(b)
		if err != nil {
			return IOCostResult{}, err
		}
		treeCosts[i] = float64(tree.LeafReads)

		// Integrity: both evaluations must agree (float32 disk cells
		// round large sums, so compare with tolerance).
		if !closeEnough(sum, tsum) {
			return IOCostResult{}, fmt.Errorf("experiments: array %v and tree %v disagree on query %d", sum, tsum, i)
		}
	}
	return IOCostResult{
		SortedArray: stats.Sorted(arrayCosts),
		SortedRTree: stats.Sorted(treeCosts),
		ArrayAvg:    stats.Mean(arrayCosts),
		RTreeAvg:    stats.Mean(treeCosts),
		Queries:     nQueries,
		TreeHeight:  tree.Height(),
		TreeLeaves:  tree.LeafCount(),
		ArrayCells:  full.Size(),
		TreeEntries: tree.Len(),
	}, nil
}

func closeEnough(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-3*scale
}

// evalTermsOnPager computes the DDC range query by reading the term
// cells through the pager (page accesses counted by its one-page
// buffer). Terms are combined exactly as molap.Array.Query does, but
// each cell read goes to disk.
func evalTermsOnPager(pg *pager.Pager, shape dims.Shape, techs []molap.Technique, b dims.Box) (float64, error) {
	sets := make([][]molap.Term, len(shape))
	idxSets := make([][]int, len(shape))
	for d, t := range techs {
		sets[d] = t.QueryTerms(nil, shape[d], b.Lo[d], b.Hi[d])
		ii := make([]int, len(sets[d]))
		for i := range ii {
			ii[i] = i
		}
		idxSets[d] = ii
	}
	strides := shape.Strides()
	total := 0.0
	var rerr error
	dims.CrossProduct(idxSets, func(combo []int) {
		if rerr != nil {
			return
		}
		off := 0
		f := 1.0
		for d, i := range combo {
			term := sets[d][i]
			off += term.Index * strides[d]
			f *= term.Factor
		}
		v, err := pg.ReadCell(off)
		if err != nil {
			rerr = err
			return
		}
		total += f * v
	})
	return total, rerr
}
