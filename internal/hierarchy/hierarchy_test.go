package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/agg"
	"histcube/internal/core"
)

func mustHierarchy(t testing.TB) *Hierarchy {
	t.Helper()
	// 12 cities -> 4 states (3 cities each) -> 2 regions (2 states each).
	h, err := New("geo", 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddLevel("state", []int{0, 3, 6, 9}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLevel("region", []int{0, 6}); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0); err == nil {
		t.Error("zero base accepted")
	}
}

func TestAddLevelValidation(t *testing.T) {
	h, _ := New("d", 10)
	if err := h.AddLevel("bad", []int{1, 5}); err == nil {
		t.Error("bounds not starting at 0 accepted")
	}
	if err := h.AddLevel("bad", []int{0, 5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if err := h.AddLevel("bad", []int{0, 10}); err == nil {
		t.Error("bound outside domain accepted")
	}
	if err := h.AddLevel("l1", []int{0, 4, 8}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLevel("l1", []int{0, 8}); err == nil {
		t.Error("duplicate level name accepted")
	}
	if err := h.AddLevel("bad", []int{0, 5}); err == nil {
		t.Error("non-aligned coarser level accepted")
	}
	if err := h.AddLevel("bad", []int{0, 4, 8, 8}); err == nil {
		t.Error("finer level accepted (and non-ascending)")
	}
	if err := h.AddLevel("l2", []int{0, 8}); err != nil {
		t.Errorf("aligned coarser level rejected: %v", err)
	}
}

func TestRangesAndValues(t *testing.T) {
	h := mustHierarchy(t)
	if got := h.Levels(); len(got) != 2 || got[0] != "state" || got[1] != "region" {
		t.Fatalf("Levels = %v", got)
	}
	if n, _ := h.Size("state"); n != 4 {
		t.Errorf("state size = %d", n)
	}
	if n, _ := h.Size(""); n != 12 {
		t.Errorf("base size = %d", n)
	}
	if _, err := h.Size("nope"); err == nil {
		t.Error("unknown level accepted")
	}
	cases := []struct {
		level  string
		v      int
		lo, hi int
	}{
		{"state", 0, 0, 2}, {"state", 1, 3, 5}, {"state", 3, 9, 11},
		{"region", 0, 0, 5}, {"region", 1, 6, 11},
		{"", 7, 7, 7},
	}
	for _, c := range cases {
		lo, hi, err := h.Range(c.level, c.v)
		if err != nil || lo != c.lo || hi != c.hi {
			t.Errorf("Range(%q,%d) = %d,%d,%v want %d,%d", c.level, c.v, lo, hi, err, c.lo, c.hi)
		}
	}
	if _, _, err := h.Range("state", 4); err == nil {
		t.Error("out-of-range coarse value accepted")
	}
	for x := 0; x < 12; x++ {
		st, err := h.ValueAt("state", x)
		if err != nil || st != x/3 {
			t.Errorf("ValueAt(state,%d) = %d,%v", x, st, err)
		}
		rg, err := h.ValueAt("region", x)
		if err != nil || rg != x/6 {
			t.Errorf("ValueAt(region,%d) = %d,%v", x, rg, err)
		}
	}
}

func TestAddUniformLevel(t *testing.T) {
	h, _ := New("time", 24)
	if err := h.AddUniformLevel("halfday", 12); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Size("halfday"); n != 2 {
		t.Errorf("halfday size = %d", n)
	}
	if err := h.AddUniformLevel("day", 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Size("day"); n != 1 {
		t.Errorf("day size = %d", n)
	}
	if err := h.AddUniformLevel("bad", 1); err == nil {
		t.Error("group size 1 accepted")
	}
}

func TestGroupByOverCube(t *testing.T) {
	h := mustHierarchy(t)
	cube, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "city", Size: 12}, {Name: "product", Size: 4}},
		Operator: agg.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(61))
	totals := make([]float64, 12)
	for i := 0; i < 500; i++ {
		city := r.Intn(12)
		v := float64(r.Intn(50) + 1)
		if err := cube.Insert(int64(i/50), []int{city, r.Intn(4)}, v); err != nil {
			t.Fatal(err)
		}
		totals[city] += v
	}
	q := func(lo, hi []int) (float64, error) {
		return cube.Query(core.Range{TimeLo: 0, TimeHi: 100, Lo: lo, Hi: hi})
	}
	// Roll up to states over the full region.
	vals, aggs, err := GroupBy(q, []int{0, 0}, []int{11, 3}, 0, h, "state")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d state groups", len(vals))
	}
	for i, v := range vals {
		want := totals[v*3] + totals[v*3+1] + totals[v*3+2]
		if aggs[i] != want {
			t.Errorf("state %d = %v, want %v", v, aggs[i], want)
		}
	}
	// Drill down into region 1's states only (clipped region).
	vals, aggs, err = GroupBy(q, []int{7, 0}, []int{11, 3}, 0, h, "state")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 3 {
		t.Fatalf("clipped groups = %v", vals)
	}
	// Group 2 is clipped to cities 7-8.
	if want := totals[7] + totals[8]; aggs[0] != want {
		t.Errorf("clipped state 2 = %v, want %v", aggs[0], want)
	}
	// Errors propagate.
	if _, _, err := GroupBy(q, []int{0, 0}, []int{11, 3}, 5, h, "state"); err == nil {
		t.Error("bad dim accepted")
	}
	if _, _, err := GroupBy(q, []int{0, 0}, []int{11, 3}, 0, h, "nope"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestTimeBuckets(t *testing.T) {
	cube, err := core.New(core.Config{
		Dims:     []core.Dim{{Name: "x", Size: 4}},
		Operator: agg.Count,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := int64(0); d < 90; d++ {
		for k := 0; k < int(d%3)+1; k++ {
			if err := cube.Insert(d, []int{0}, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := func(tLo, tHi int64) (float64, error) {
		return cube.Query(core.Range{TimeLo: tLo, TimeHi: tHi, Lo: []int{0}, Hi: []int{3}})
	}
	starts, aggs, err := TimeBuckets(q, 0, 89, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 3 {
		t.Fatalf("got %d buckets", len(starts))
	}
	total := 0.0
	for _, a := range aggs {
		total += a
	}
	if total != 180 { // 90 days x avg 2 observations
		t.Errorf("bucket total = %v, want 180", total)
	}
	// Partial trailing bucket.
	starts, _, err = TimeBuckets(q, 0, 99, 30)
	if err != nil || len(starts) != 4 {
		t.Fatalf("partial bucket: %d, %v", len(starts), err)
	}
	if _, _, err := TimeBuckets(q, 0, 10, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, _, err := TimeBuckets(q, 10, 0, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

// Property: GroupBy aggregates sum to the aggregate of the whole
// (unclipped) region, for random hierarchies and data.
func TestGroupByPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := r.Intn(20) + 4
		h, err := New("d", base)
		if err != nil {
			return false
		}
		// Random aligned level.
		var bounds []int
		for i := 0; i < base; i++ {
			if i == 0 || r.Intn(3) == 0 {
				bounds = append(bounds, i)
			}
		}
		if err := h.AddLevel("l", bounds); err != nil {
			return false
		}
		data := make([]float64, base)
		for i := range data {
			data[i] = float64(r.Intn(10))
		}
		q := func(lo, hi []int) (float64, error) {
			s := 0.0
			for i := lo[0]; i <= hi[0]; i++ {
				s += data[i]
			}
			return s, nil
		}
		lo := r.Intn(base)
		hi := lo + r.Intn(base-lo)
		_, aggs, err := GroupBy(q, []int{lo}, []int{hi}, 0, h, "l")
		if err != nil {
			return false
		}
		sum := 0.0
		for _, a := range aggs {
			sum += a
		}
		want, _ := q([]int{lo}, []int{hi})
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
