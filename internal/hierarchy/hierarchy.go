// Package hierarchy models dimension hierarchies (city -> state ->
// region, day -> month -> year) and translates roll-up and drill-down
// operations into the collections of range-aggregate queries the
// paper's introduction describes ("roll-up and drill-down queries
// that aggregate on different levels of granularity are often
// collections of related range queries").
//
// A hierarchy is an ordered-partition view of a dense base domain:
// each level partitions [0, baseSize) into consecutive ranges, and
// coarser levels must be refinements in reverse — every coarse value
// is a union of consecutive finer values. The base level is implicit
// (identity).
package hierarchy

import (
	"fmt"
	"sort"
)

// Hierarchy describes the levels of one dimension.
type Hierarchy struct {
	name   string
	base   int
	levels []level
}

type level struct {
	name   string
	bounds []int // bounds[i] = first base coordinate of coarse value i; bounds[0] = 0
}

// New returns a hierarchy over a base domain of the given size with no
// coarse levels yet.
func New(name string, baseSize int) (*Hierarchy, error) {
	if baseSize <= 0 {
		return nil, fmt.Errorf("hierarchy: base size %d must be positive", baseSize)
	}
	return &Hierarchy{name: name, base: baseSize}, nil
}

// Name returns the dimension name.
func (h *Hierarchy) Name() string { return h.name }

// BaseSize returns the base domain size.
func (h *Hierarchy) BaseSize() int { return h.base }

// AddLevel appends a coarser level defined by the first base
// coordinate of each coarse value. bounds must start at 0, be strictly
// ascending and stay within the base domain; levels must be added
// fine-to-coarse, and each must coarsen the previous one (its bounds
// must be a subset of the previous level's bounds).
func (h *Hierarchy) AddLevel(name string, bounds []int) error {
	if len(bounds) == 0 || bounds[0] != 0 {
		return fmt.Errorf("hierarchy: level %q bounds must start at 0", name)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return fmt.Errorf("hierarchy: level %q bounds not strictly ascending at %d", name, i)
		}
	}
	if bounds[len(bounds)-1] >= h.base {
		return fmt.Errorf("hierarchy: level %q bound %d outside base domain [0,%d)", name, bounds[len(bounds)-1], h.base)
	}
	if _, err := h.levelIndex(name); err == nil {
		return fmt.Errorf("hierarchy: duplicate level name %q", name)
	}
	if len(h.levels) > 0 {
		prev := h.levels[len(h.levels)-1].bounds
		set := make(map[int]bool, len(prev))
		for _, b := range prev {
			set[b] = true
		}
		for _, b := range bounds {
			if !set[b] {
				return fmt.Errorf("hierarchy: level %q bound %d does not align with level %q", name, b, h.levels[len(h.levels)-1].name)
			}
		}
		if len(bounds) > len(prev) {
			return fmt.Errorf("hierarchy: level %q is finer than level %q", name, h.levels[len(h.levels)-1].name)
		}
	}
	h.levels = append(h.levels, level{name: name, bounds: append([]int(nil), bounds...)})
	return nil
}

// AddUniformLevel appends a level grouping the previous level's values
// (or base coordinates) into consecutive groups of groupSize.
func (h *Hierarchy) AddUniformLevel(name string, groupSize int) error {
	if groupSize <= 1 {
		return fmt.Errorf("hierarchy: group size %d must exceed 1", groupSize)
	}
	prev := h.finestBounds()
	var bounds []int
	for i := 0; i < len(prev); i += groupSize {
		bounds = append(bounds, prev[i])
	}
	return h.AddLevel(name, bounds)
}

func (h *Hierarchy) finestBounds() []int {
	if len(h.levels) > 0 {
		return h.levels[len(h.levels)-1].bounds
	}
	bounds := make([]int, h.base)
	for i := range bounds {
		bounds[i] = i
	}
	return bounds
}

// Levels returns the level names, fine to coarse, excluding the
// implicit base level.
func (h *Hierarchy) Levels() []string {
	out := make([]string, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.name
	}
	return out
}

func (h *Hierarchy) levelIndex(name string) (int, error) {
	for i, l := range h.levels {
		if l.name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("hierarchy: unknown level %q in dimension %q", name, h.name)
}

// Size returns the number of values at a level ("" = base).
func (h *Hierarchy) Size(levelName string) (int, error) {
	if levelName == "" {
		return h.base, nil
	}
	i, err := h.levelIndex(levelName)
	if err != nil {
		return 0, err
	}
	return len(h.levels[i].bounds), nil
}

// Range returns the base-coordinate range [lo, hi] covered by coarse
// value v at the level ("" = base: [v, v]).
func (h *Hierarchy) Range(levelName string, v int) (lo, hi int, err error) {
	if levelName == "" {
		if v < 0 || v >= h.base {
			return 0, 0, fmt.Errorf("hierarchy: base value %d outside [0,%d)", v, h.base)
		}
		return v, v, nil
	}
	i, err := h.levelIndex(levelName)
	if err != nil {
		return 0, 0, err
	}
	b := h.levels[i].bounds
	if v < 0 || v >= len(b) {
		return 0, 0, fmt.Errorf("hierarchy: value %d outside level %q [0,%d)", v, levelName, len(b))
	}
	lo = b[v]
	hi = h.base - 1
	if v+1 < len(b) {
		hi = b[v+1] - 1
	}
	return lo, hi, nil
}

// ValueAt returns the coarse value at the level containing base
// coordinate x — the drill-up direction.
func (h *Hierarchy) ValueAt(levelName string, x int) (int, error) {
	if x < 0 || x >= h.base {
		return 0, fmt.Errorf("hierarchy: base coordinate %d outside [0,%d)", x, h.base)
	}
	if levelName == "" {
		return x, nil
	}
	i, err := h.levelIndex(levelName)
	if err != nil {
		return 0, err
	}
	b := h.levels[i].bounds
	return sort.Search(len(b), func(k int) bool { return b[k] > x }) - 1, nil
}

// QueryFunc evaluates one base-coordinate range aggregate; GroupBy
// adapts any cube query to it.
type QueryFunc func(lo, hi []int) (float64, error)

// GroupBy rolls up dimension dim of the region [baseLo, baseHi] to a
// hierarchy level: one aggregate per coarse value whose range
// intersects the region (clipped to it), returned with the coarse
// values. This is exactly the "collection of related range queries"
// view of roll-up.
func GroupBy(q QueryFunc, baseLo, baseHi []int, dim int, h *Hierarchy, levelName string) (values []int, aggs []float64, err error) {
	if dim < 0 || dim >= len(baseLo) {
		return nil, nil, fmt.Errorf("hierarchy: dimension %d outside query arity %d", dim, len(baseLo))
	}
	first, err := h.ValueAt(levelName, baseLo[dim])
	if err != nil {
		return nil, nil, err
	}
	last, err := h.ValueAt(levelName, baseHi[dim])
	if err != nil {
		return nil, nil, err
	}
	lo := append([]int(nil), baseLo...)
	hi := append([]int(nil), baseHi...)
	for v := first; v <= last; v++ {
		rLo, rHi, err := h.Range(levelName, v)
		if err != nil {
			return nil, nil, err
		}
		if rLo < baseLo[dim] {
			rLo = baseLo[dim]
		}
		if rHi > baseHi[dim] {
			rHi = baseHi[dim]
		}
		lo[dim], hi[dim] = rLo, rHi
		a, err := q(lo, hi)
		if err != nil {
			return nil, nil, err
		}
		values = append(values, v)
		aggs = append(aggs, a)
	}
	return values, aggs, nil
}

// TimeBuckets partitions the closed time range [tLo, tHi] into
// consecutive buckets of width step (the last bucket may be shorter)
// and evaluates q on each — the roll-up along the TT-dimension (e.g.
// daily times grouped into months).
func TimeBuckets(q func(tLo, tHi int64) (float64, error), tLo, tHi, step int64) (starts []int64, aggs []float64, err error) {
	if step <= 0 {
		return nil, nil, fmt.Errorf("hierarchy: time bucket step %d must be positive", step)
	}
	if tLo > tHi {
		return nil, nil, fmt.Errorf("hierarchy: inverted time range [%d, %d]", tLo, tHi)
	}
	for s := tLo; s <= tHi; s += step {
		e := s + step - 1
		if e > tHi {
			e = tHi
		}
		a, err := q(s, e)
		if err != nil {
			return nil, nil, err
		}
		starts = append(starts, s)
		aggs = append(aggs, a)
	}
	return starts, aggs, nil
}
