package mvbt

import (
	"math/rand"
	"testing"
)

// TestRouterCoverageRegression pins the router-coverage bug: when a
// version split replaced a child whose smallest keys had died, the new
// entry's router was set to the copy's minimum live key, which could
// exceed the old router and strand still-live keys below it. Twenty
// seeded histories with full liveness sweeps every 50 operations catch
// any recurrence.
func TestRouterCoverageRegression(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr, err := New(Config{Capacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		live := map[int64]bool{}
		for ops := 0; ops < 4000; ops++ {
			k := int64(r.Intn(500))
			if live[k] {
				if err := tr.Delete(k); err != nil {
					t.Fatalf("seed %d op %d: delete %d: %v", seed, ops, k, err)
				}
				delete(live, k)
			} else {
				if err := tr.Insert(k, 1); err != nil {
					t.Fatalf("seed %d op %d: insert %d: %v", seed, ops, k, err)
				}
				live[k] = true
			}
			if ops%50 == 0 {
				for kk := range live {
					if _, ok := tr.Get(tr.Version(), kk); !ok {
						t.Fatalf("seed %d op %d: live key %d invisible", seed, ops, kk)
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, ops, err)
				}
			}
		}
	}
}
